(* The benchmark harness.

   Two parts:

   1. Bechamel micro-benchmarks — one [Test.make] per paper table/figure
      (measuring the regeneration of that figure's data from a shared
      tiny dataset) plus a group of runtime micro-benchmarks (mark
      operations, scheduler throughput per policy, reservation rounds,
      cache simulation).

   2. The figure tables themselves (the same rows/series the paper
      reports), printed at the 'small' scale, or the scale named by the
      BENCH_SCALE environment variable (tiny | small | paper).

   Run with: dune exec bench/main.exe *)

open Bechamel

(* ------------------------------------------------------------------ *)
(* Shared inputs for the micro-benchmarks. *)

let tiny_data = lazy (Figures.Dataset.collect Figures.Scale.tiny)
let tiny_timings = lazy (Figures.timings (Lazy.force tiny_data))

let figure_test name =
  Test.make ~name
    (Staged.stage (fun () ->
         let t = Figures.timings (Lazy.force tiny_data) in
         match List.find_opt (fun (n, _, _) -> n = name) (Figures.all_figures t) with
         | Some (_, _, f) -> ignore (f ())
         | None -> assert false))

let figure_tests =
  Test.make_grouped ~name:"figures"
    (List.map figure_test
       [
         "fig4";
         "fig5";
         "fig6";
         "fig7-m4x10";
         "fig7-m4x6";
         "fig7-numa8x4";
         "fig8";
         "fig9";
         "fig10";
         "fig11";
         "fig12";
         "summary";
         "obs-phases";
       ])

(* ------------------------------------------------------------------ *)
(* Runtime micro-benchmarks: the primitives the paper's overhead
   analysis is about. *)

let bench_claim_max =
  Test.make ~name:"lock.claim_max"
    (Staged.stage (fun () ->
         let l = Galois.Lock.create () in
         let stamp = Galois.Lock.new_epoch () in
         for i = 1 to 64 do
           ignore (Galois.Lock.claim_max l ~stamp i)
         done;
         Galois.Lock.force_clear l))

let bench_try_claim =
  Test.make ~name:"lock.try_claim+release"
    (Staged.stage (fun () ->
         let l = Galois.Lock.create () in
         let stamp = Galois.Lock.new_epoch () in
         for _ = 1 to 64 do
           ignore (Galois.Lock.try_claim l ~stamp 1);
           Galois.Lock.release l ~stamp 1
         done))

let bucket_app ?sink policy () =
  let k = 32 and n = 512 in
  let locks = Galois.Lock.create_array k in
  let cells = Array.make k 0 in
  let operator ctx i =
    let j = i mod k in
    Galois.Context.acquire ctx locks.(j);
    Galois.Context.failsafe ctx;
    cells.(j) <- cells.(j) + 1
  in
  ignore
    (Galois.Run.make ~operator (Array.init n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec)

let bench_scheduler name policy = Test.make ~name (Staged.stage (bucket_app policy))

(* Tracing overhead: the same deterministic run with the event stream
   captured in a ring, versus the null sink measured above. *)
let bench_obs_traced =
  Test.make ~name:"obs.det2+memory_sink"
    (Staged.stage (fun () ->
         let mem = Obs.Memory.create () in
         bucket_app ~sink:(Obs.Memory.sink mem) (Galois.Policy.det 2) ()))

let bench_obs_jsonl =
  let line =
    {
      Obs.at_s = 0.5;
      event = Obs.Execute_done { round = 3; work = 128; pushes = 17 };
    }
  in
  Test.make ~name:"obs.jsonl_encode+decode"
    (Staged.stage (fun () ->
         for _ = 1 to 64 do
           match Obs.Jsonl.of_line (Obs.Jsonl.to_line line) with
           | Ok _ -> ()
           | Error _ -> assert false
         done))

let bench_detreserve =
  Test.make ~name:"detreserve.speculative_for"
    (Staged.stage (fun () ->
         Parallel.Domain_pool.with_pool 2 (fun pool ->
             let cells = Detreserve.Cell.create_array 64 in
             ignore
               (Detreserve.speculative_for ~granularity:64 ~pool ~n:512
                  ~reserve:(fun i -> Detreserve.Cell.reserve cells.(i mod 64) i)
                  ~commit:(fun i ->
                    let c = cells.(i mod 64) in
                    if Detreserve.Cell.holds c i then begin
                      Detreserve.Cell.release c i;
                      true
                    end
                    else begin
                      Detreserve.Cell.release c i;
                      false
                    end)
                  ()))))

let bench_cachesim =
  Test.make ~name:"cachesim.replay"
    (Staged.stage (fun () ->
         let h = Cachesim.Hierarchy.create ~l1_lines:64 ~l2_lines:256 ~l3_lines:1024 ~threads:2 () in
         for i = 0 to 9999 do
           Cachesim.Hierarchy.access h ~worker:(i land 1) (i * 17 mod 4096)
         done))

let bench_makespan =
  Test.make ~name:"simmachine.makespan"
    (Staged.stage (fun () ->
         let costs = List.init 2048 (fun i -> float_of_int ((i mod 13) + 1)) in
         ignore (Simmachine.Exec_model.makespan ~threads:40 costs)))

let micro_tests =
  Test.make_grouped ~name:"micro"
    [
      bench_claim_max;
      bench_try_claim;
      bench_scheduler "runtime.serial" Galois.Policy.serial;
      bench_scheduler "runtime.nondet2" (Galois.Policy.nondet 2);
      bench_scheduler "runtime.det2" (Galois.Policy.det 2);
      bench_obs_traced;
      bench_obs_jsonl;
      bench_detreserve;
      bench_cachesim;
      bench_makespan;
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver: measure, OLS-analyze, print one line per test. *)

let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "  %-28s %12.1f ns/run@." name est
      | _ -> Fmt.pr "  %-28s (no estimate)@." name)
    rows

let () =
  (* Warm the shared dataset outside the measured region. *)
  Fmt.pr "Preparing tiny dataset for micro-benchmarks...@.";
  ignore (Lazy.force tiny_timings);

  Fmt.pr "@.== Bechamel: runtime micro-benchmarks ==@.";
  run_bechamel micro_tests;

  Fmt.pr "@.== Bechamel: figure regeneration (tiny dataset) ==@.";
  run_bechamel figure_tests;

  (* The actual tables. *)
  let scale_name = try Sys.getenv "BENCH_SCALE" with Not_found -> "small" in
  let scale =
    match Figures.Scale.by_name scale_name with
    | Some s -> s
    | None ->
        Fmt.epr "unknown BENCH_SCALE %S, using small@." scale_name;
        Figures.Scale.small
  in
  Fmt.pr "@.== Paper tables/figures at scale %s ==@." scale.Figures.Scale.name;
  let data = Figures.Dataset.collect scale in
  Figures.print_all (Figures.timings data)
