(* The application bench harness: BENCH_<app>.json emission and
   baseline comparison.

   For each app it does two passes over a freshly generated input:

   - a timing pass under det:T (T = --threads) measured on the
     monotonic clock, providing wall_s and the per-phase breakdown from
     [Stats.t.phases];

   - an allocation pass under det:1 bracketed by [Gc.full_major] +
     [Gc.quick_stat] deltas. With a single domain the OCaml 5 GC
     counters are exact for the whole pipeline, and determinism makes
     the det:1 schedule identical to the det:T one, so "minor words per
     committed task" measured here is the DIG scheduler's real per-task
     allocation bill.

   The two passes must agree on the schedule digest — a free
   determinism assertion on every bench run.

   Modes:
     bench_apps                          write BENCH_<app>.json to .
     bench_apps --out DIR                ... to DIR
     bench_apps --compare DIR            also diff against records in DIR
     bench_apps --scale tiny|small       input sizes (default small)
     bench_apps --threads T              timing-pass threads (default 4)
     bench_apps --apps bfs,sssp,...      subset (default the four apps,
                                         the soft-priority sssp_auto
                                         case and the serve service
                                         case)
     bench_apps --large                  also run the paper-scale tier
                                         (bfs_large / sssp_large on a
                                         million-vertex R-MAT graph)
     bench_apps --cachesim               replay a recorded bfs schedule
                                         against the boxed-8B and
                                         compact CSR layout models and
                                         print both cache summaries
     bench_apps --smoke                  tiny inputs, then re-load and
                                         validate every emitted file
                                         (JSON parses, phases sum to
                                         wall) — the @bench-smoke CI
                                         gate. *)

type app_case = {
  name : string;
  size : int;
  (* Soft-priority mode of both passes: Prio_off for the classic
     unordered cases, Prio_auto/Prio_delta for the ordered ones
     (sssp_auto). Feeds the det policy's options, so the emitted
     record's policy string carries it. *)
  priority : Galois.Policy.priority_mode;
  (* Build the input (timed into build_s) and return the closure that
     runs the Galois program under a policy on a shared pool, plus the
     off-heap bytes of the graph input (0 when there is none). A fresh
     prepare per pass: dmr mutates its mesh in place. *)
  prepare :
    seed:int -> size:int ->
    (pool:Galois.Pool.t -> Galois.Policy.t -> Galois.Runtime.report) * int;
}

let seed = 2014

let cases ~tiny =
  let sz small t = if tiny then t else small in
  [
    {
      name = "bfs";
      size = sz 20_000 600;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
          ( (fun ~pool policy -> snd (Apps.Bfs.galois ~pool ~policy g ~source:0)),
            Graphlib.Csr.memory_bytes g ));
    };
    {
      name = "sssp";
      size = sz 10_000 500;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
          let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
          ( (fun ~pool policy -> snd (Apps.Sssp.galois ~pool ~policy g w ~source:0)),
            Graphlib.Csr.memory_bytes g ));
    };
    {
      (* The same weighted input as sssp, scheduled by tentative
         distance (prio=auto delta-stepping buckets). Results and the
         sssp record's input digest column aside, the pair is read
         through work_units/efficiency: ordering by distance commits
         the same distances with fewer wasted re-relaxations. *)
      name = "sssp_auto";
      size = sz 10_000 500;
      priority = Galois.Policy.Prio_auto;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
          let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
          ( (fun ~pool policy -> snd (Apps.Sssp.galois ~pool ~policy g w ~source:0)),
            Graphlib.Csr.memory_bytes g ));
    };
    {
      name = "boruvka";
      size = sz 1_000 400;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:4 ()) in
          let w = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 1) g in
          ( (fun ~pool policy -> snd (Apps.Boruvka.galois ~pool ~policy g w)),
            Graphlib.Csr.memory_bytes g ));
    };
    {
      name = "dmr";
      size = sz 1_500 150;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let pts = Geometry.Point.random_unit_square ~seed size in
          let mesh = Apps.Dt.serial pts in
          ((fun ~pool policy -> Apps.Dmr.galois ~pool ~policy mesh), 0));
    };
  ]

(* The paper-scale tier (opt-in via --large): million-vertex R-MAT
   inputs streamed straight into the off-heap CSR. bfs_large runs on
   the unweighted scale-20 graph (2^20 nodes, 8·2^20 edges); sssp_large
   runs on a scale-18 graph with a weight plane attached, exercising
   the [Sssp.galois_weighted] path that reads weights from the plane.
   Sizes are the node counts, so the records slot into the same schema;
   distinct names give them their own BENCH_<app>.json baselines. *)
let large_cases =
  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n
  in
  [
    {
      name = "bfs_large";
      size = 1 lsl 20;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Generators.rmat ~seed ~scale:(log2 size) ~edge_factor:8 () in
          ( (fun ~pool policy -> snd (Apps.Bfs.galois ~pool ~policy g ~source:0)),
            Graphlib.Csr.memory_bytes g ));
    };
    {
      name = "sssp_large";
      size = 1 lsl 18;
      priority = Galois.Policy.Prio_off;
      prepare =
        (fun ~seed ~size ->
          let g = Graphlib.Generators.rmat ~seed ~scale:(log2 size) ~edge_factor:8 () in
          let g =
            Graphlib.Graph_io.attach_random_weights ~seed:(seed + 1) ~max_weight:100 g
          in
          ( (fun ~pool policy ->
              snd (Apps.Sssp.galois_weighted ~pool ~policy g ~source:0)),
            Graphlib.Csr.memory_bytes g ));
    };
  ]

let bench_case ~threads ~timing_pool ~alloc_pool { name; size; priority; prepare } =
  let det t =
    Galois.Policy.det ~options:(Galois.Policy.Det_options.make ~priority ()) t
  in
  (* Each app run gets its own lid namespace, so location ids in debug
     output are reproducible run-to-run. *)
  Galois.Lock.reset_lids ();
  (* Timing pass on the shared pool: the measured interval excludes
     domain spawn/teardown, which the persistent pools pay once for the
     whole bench session. *)
  let tb = Galois.Clock.now_s () in
  let exec, graph_bytes = prepare ~seed ~size in
  let build_s = Galois.Clock.elapsed_s tb in
  let timing_policy = det threads in
  let t0 = Galois.Clock.now_s () in
  let timing = exec ~pool:timing_pool timing_policy in
  let wall_s = Galois.Clock.elapsed_s t0 in
  (* Allocation pass: single domain, GC deltas around the run only. *)
  Galois.Lock.reset_lids ();
  let exec1, _ = prepare ~seed ~size in
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let alloc = exec1 ~pool:alloc_pool (det 1) in
  let g1 = Gc.quick_stat () in
  let stats = timing.Galois.Runtime.stats in
  let astats = alloc.Galois.Runtime.stats in
  if not (Galois.Trace_digest.equal stats.digest astats.digest) then
    Fmt.failwith "%s: det:%d and det:1 disagree on the schedule digest (%a vs %a)"
      name threads Galois.Trace_digest.pp stats.digest Galois.Trace_digest.pp
      astats.digest;
  let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
  {
    Analysis.Bench_record.app = name;
    policy = Galois.Policy.to_string timing_policy;
    size;
    seed;
    build_s;
    graph_bytes;
    wall_s;
    inspect_s = stats.phases.Galois.Stats.inspect_s;
    select_s = stats.phases.select_s;
    (* other_s absorbs builder overhead outside the scheduler proper so
       the three phases sum to the harness wall time. *)
    other_s = wall_s -. stats.phases.inspect_s -. stats.phases.select_s;
    commits = stats.commits;
    aborts = stats.aborts;
    rounds = stats.rounds;
    generations = stats.generations;
    work_units = stats.work_units;
    efficiency =
      Analysis.Bench_record.efficiency ~commits:stats.commits
        ~work_units:stats.work_units;
    minor_words;
    promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    minor_words_per_commit =
      Analysis.Bench_record.minor_words_per_commit ~minor_words
        ~commits:astats.commits;
    (* Sync-overhead metrics of the timing pass (report-only): round
       throughput, atomic mark updates per committed task, and the pool's
       spin/park split. *)
    rounds_per_s = Analysis.Bench_record.rounds_per_s ~rounds:stats.rounds ~wall_s;
    atomics_per_commit =
      Analysis.Bench_record.atomics_per_commit ~atomics:stats.atomics
        ~commits:stats.commits;
    spins = stats.spins;
    parks = stats.parks;
    queries_per_s = 0.0;
    p99_latency_s = 0.0;
    digest = Galois.Trace_digest.to_hex stats.digest;
  }

(* The service case: one persistent server per pass, a mixed bfs/sssp/cc
   workload submitted in fixed-size arrival batches. The timing pass
   (det:T on the shared timing pool) provides wall time, throughput and
   the p99 submit-to-completion latency; the allocation pass replays the
   identical submission sequence on the det:1 pool. The two service
   digests must agree — the same free determinism assertion the per-app
   passes make, lifted to the whole response stream. *)
let bench_serve ~threads ~timing_pool ~alloc_pool ~nodes ~requests ~batch =
  let run_pass ~pool ~threads =
    Galois.Lock.reset_lids ();
    let tb = Galois.Clock.now_s () in
    let catalog = Service.Catalog.synthetic ~seed ~nodes () in
    let build_s = Galois.Clock.elapsed_s tb in
    let graph_bytes = Service.Catalog.total_graph_bytes catalog in
    let queries = Detcheck.Service_case.queries ~seed ~nodes ~count:requests in
    let server = Service.Server.create ~threads ~catalog pool in
    let t0 = Galois.Clock.now_s () in
    List.iteri
      (fun i q ->
        (match Service.Server.submit server q with
        | `Accepted _ -> ()
        | `Rejected id -> Fmt.failwith "serve: job %d rejected" id);
        if (i + 1) mod batch = 0 then ignore (Service.Server.drain server))
      queries;
    ignore (Service.Server.drain server);
    let wall_s = Galois.Clock.elapsed_s t0 in
    (server, wall_s, build_s, graph_bytes)
  in
  let timing, wall_s, build_s, graph_bytes = run_pass ~pool:timing_pool ~threads in
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let alloc, _, _, _ = run_pass ~pool:alloc_pool ~threads:1 in
  let g1 = Gc.quick_stat () in
  if
    not
      (Galois.Trace_digest.equal (Service.Server.digest timing)
         (Service.Server.digest alloc))
  then
    Fmt.failwith "serve: det:%d and det:1 disagree on the service digest (%a vs %a)"
      threads Galois.Trace_digest.pp (Service.Server.digest timing)
      Galois.Trace_digest.pp (Service.Server.digest alloc);
  let sum f =
    List.fold_left
      (fun acc (r : Service.Server.response) ->
        match r.outcome with
        | Service.Server.Done { commits; rounds; _ } -> acc + f commits rounds
        | _ -> acc)
      0
      (Service.Server.responses timing)
  in
  let commits = sum (fun c _ -> c) in
  let rounds = sum (fun _ r -> r) in
  let stats = Service.Server.stats timing in
  if stats.failed > 0 || stats.rejected > 0 then
    Fmt.failwith "serve: %d failed, %d rejected responses in a clean workload"
      stats.failed stats.rejected;
  let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
  {
    Analysis.Bench_record.app = "serve";
    policy = Galois.Policy.to_string (Galois.Policy.det threads);
    size = nodes;
    seed;
    build_s;
    graph_bytes;
    wall_s;
    (* The server's wall time spans many runs plus admission bookkeeping;
       the per-phase split is not meaningful at this level, so everything
       is booked under other_s. *)
    inspect_s = 0.0;
    select_s = 0.0;
    other_s = wall_s;
    commits;
    aborts = 0;
    rounds;
    generations = 0;
    work_units = 0;
    efficiency = 0.0;
    minor_words;
    promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    minor_words_per_commit =
      Analysis.Bench_record.minor_words_per_commit ~minor_words ~commits;
    rounds_per_s = Analysis.Bench_record.rounds_per_s ~rounds ~wall_s;
    atomics_per_commit = 0.0;
    spins = 0;
    parks = 0;
    queries_per_s =
      (if wall_s <= 0.0 then 0.0 else float_of_int stats.completed /. wall_s);
    p99_latency_s = Service.Server.percentile_latency_s timing 99.0;
    digest = Galois.Trace_digest.to_hex (Service.Server.digest timing);
  }

let record_path dir app = Filename.concat dir (Printf.sprintf "BENCH_%s.json" app)

let validate_file path =
  match Analysis.Bench_record.load path with
  | Error msg -> Error msg
  | Ok r ->
      if not (Analysis.Bench_record.phases_consistent r) then
        Error
          (Printf.sprintf "%s: phases do not sum to wall time (%g + %g + %g <> %g)"
             path r.inspect_s r.select_s r.other_s r.wall_s)
      else if r.commits <= 0 then Error (Printf.sprintf "%s: no commits recorded" path)
      else if r.spins < 0 || r.parks < 0 then
        Error (Printf.sprintf "%s: negative sync counters (spins=%d parks=%d)" path r.spins r.parks)
      else if r.build_s < 0.0 || r.graph_bytes < 0 then
        Error
          (Printf.sprintf "%s: negative input metrics (build_s=%g graph_bytes=%d)"
             path r.build_s r.graph_bytes)
      else if
        (* rounds_per_s must be what the record's own rounds and wall
           time imply (same guard against a stale field as
           phases_consistent). *)
        Float.abs
          (r.rounds_per_s
          -. Analysis.Bench_record.rounds_per_s ~rounds:r.rounds ~wall_s:r.wall_s)
        > 1e-6 +. (1e-9 *. Float.abs r.rounds_per_s)
      then Error (Printf.sprintf "%s: rounds_per_s inconsistent with rounds/wall_s" path)
      else if
        (* efficiency is likewise derived: commits / work_units. *)
        Float.abs
          (r.efficiency
          -. Analysis.Bench_record.efficiency ~commits:r.commits
               ~work_units:r.work_units)
        > 1e-9
      then Error (Printf.sprintf "%s: efficiency inconsistent with commits/work_units" path)
      else if r.atomics_per_commit < 0.0 then
        Error (Printf.sprintf "%s: negative atomics_per_commit" path)
      else if r.queries_per_s < 0.0 || r.p99_latency_s < 0.0 then
        Error
          (Printf.sprintf "%s: negative service metrics (qps=%g p99=%g)" path
             r.queries_per_s r.p99_latency_s)
      else if r.app = "serve" && r.queries_per_s <= 0.0 then
        Error (Printf.sprintf "%s: serve record without throughput" path)
      else Ok r

let compare_against ~dir records =
  let ok = ref true in
  List.iter
    (fun (r : Analysis.Bench_record.t) ->
      let path = record_path dir r.app in
      match Analysis.Bench_record.load path with
      | Error msg -> Fmt.pr "@.%s: no baseline (%s)@." r.app msg
      | Ok baseline ->
          Fmt.pr "@.%s vs baseline %s:@." r.app path;
          List.iter
            (fun d -> Fmt.pr "  %a@." Analysis.Bench_record.pp_delta d)
            (Analysis.Bench_record.compare_to ~baseline r);
          let alloc =
            List.find
              (fun (d : Analysis.Bench_record.delta) ->
                d.metric = "minor_words_per_commit")
              (Analysis.Bench_record.compare_to ~baseline r)
          in
          Fmt.pr "  minor words/commit: %.1f -> %.1f (%s%.1f%%)@." alloc.baseline
            alloc.current
            (if alloc.change_pct <= 0.0 then "" else "+")
            alloc.change_pct;
          if alloc.change_pct > 10.0 then begin
            Fmt.pr "  REGRESSION: minor words/commit grew more than 10%%@.";
            ok := false
          end)
    records;
  !ok

let () =
  let out = ref "." and scale = ref "small" and threads = ref 4 in
  let apps = ref [ "bfs"; "sssp"; "sssp_auto"; "boruvka"; "dmr"; "serve" ] in
  let compare_dir = ref None and smoke = ref false in
  let large = ref false and cachesim = ref false in
  let rec parse = function
    | [] -> ()
    | "--out" :: d :: rest ->
        out := d;
        parse rest
    | "--scale" :: s :: rest ->
        scale := s;
        parse rest
    | "--threads" :: t :: rest ->
        threads := int_of_string t;
        parse rest
    | "--apps" :: a :: rest ->
        apps := String.split_on_char ',' a;
        parse rest
    | "--compare" :: d :: rest ->
        compare_dir := Some d;
        parse rest
    | "--large" :: rest ->
        large := true;
        parse rest
    | "--cachesim" :: rest ->
        cachesim := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        scale := "tiny";
        parse rest
    | arg :: _ -> Fmt.failwith "bench_apps: unknown argument %S" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !large then apps := !apps @ List.map (fun c -> c.name) large_cases;
  (* Keep first occurrences: --apps bfs_large --large must not run the
     case twice. *)
  apps :=
    List.rev
      (List.fold_left
         (fun acc a -> if List.mem a acc then acc else a :: acc)
         [] !apps);
  let tiny =
    match !scale with
    | "tiny" -> true
    | "small" -> false
    | s -> Fmt.failwith "bench_apps: unknown scale %S (tiny|small)" s
  in
  (try Unix.mkdir !out 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
      Fmt.failwith "bench_apps: cannot create %s: %s" !out (Unix.error_message e));
  let serve_nodes = if tiny then 400 else 2_000 in
  let serve_requests = if tiny then 60 else 200 in
  let serve_batch = if tiny then 16 else 32 in
  let bench name =
    if name = "serve" then
      bench_serve ~threads:!threads ~nodes:serve_nodes ~requests:serve_requests
        ~batch:serve_batch
    else
      match List.find_opt (fun c -> c.name = name) (cases ~tiny @ large_cases) with
      | Some c -> bench_case ~threads:!threads c
      | None -> fun ~timing_pool:_ ~alloc_pool:_ -> Fmt.failwith "bench_apps: unknown app %S" name
  in
  (* Two persistent pools shared by every case and both passes: det:T
     timing runs and det:1 allocation runs. Spawned once here, so no
     per-repetition domain spawn/teardown pollutes the timings. *)
  let records =
    Galois.Pool.with_pool ~domains:!threads (fun timing_pool ->
        Galois.Pool.with_pool ~domains:1 (fun alloc_pool ->
            List.map
              (fun name ->
                Fmt.pr "bench %-8s det:%d ... @?" name !threads;
                let r = bench name ~timing_pool ~alloc_pool in
                Fmt.pr "wall=%.4fs commits=%d rounds=%d alloc/commit=%.1f@."
                  r.wall_s r.commits r.rounds r.minor_words_per_commit;
                Analysis.Bench_record.save (record_path !out r.app) r;
                r)
              !apps))
  in
  (* Layout validation: replay a *recorded* bfs schedule against the
     byte-accurate cache model of the old boxed 8B-per-entry substrate
     and of the compact plane's own width. Same access stream, same
     cache — the delta is purely what the narrower layout buys. *)
  if !cachesim then begin
    let n = if tiny then 2_000 else 20_000 in
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    (* Re-base lock ids so the recorded lids are exactly the node ids
       the layout model maps onto plane addresses. *)
    Galois.Lock.reset_lids ();
    let _, report =
      Apps.Bfs.galois ~record:true ~policy:(Galois.Policy.det 1) g ~source:0
    in
    match report.Galois.Runtime.schedule with
    | None -> Fmt.failwith "bench_apps: --cachesim run recorded no schedule"
    | Some sched ->
        let boxed, compact = Cachesim.Layout.compare_layouts g sched in
        Fmt.pr "@.cachesim: recorded det bfs on kout n=%d (m=%d)@." n
          (Graphlib.Csr.edges g);
        Fmt.pr "  %a@." Cachesim.Layout.pp_summary boxed;
        Fmt.pr "  %a@." Cachesim.Layout.pp_summary compact;
        Fmt.pr "  hit-rate %+.4f, misses %d -> %d, lines %d -> %d@."
          (Cachesim.Layout.hit_rate compact -. Cachesim.Layout.hit_rate boxed)
          boxed.Cachesim.Layout.misses compact.Cachesim.Layout.misses
          boxed.Cachesim.Layout.lines_touched compact.Cachesim.Layout.lines_touched
  end;
  let failures = ref 0 in
  if !smoke then
    List.iter
      (fun (r : Analysis.Bench_record.t) ->
        match validate_file (record_path !out r.app) with
        | Ok loaded ->
            (* The loaded record must round-trip to the same JSON. *)
            if
              Analysis.Bench_record.to_json loaded
              <> Analysis.Bench_record.to_json r
            then begin
              Fmt.epr "%s: JSON round-trip mismatch@." r.app;
              incr failures
            end
            else Fmt.pr "validated %s@." (record_path !out r.app)
        | Error msg ->
            Fmt.epr "%s@." msg;
            incr failures)
      records;
  (match !compare_dir with
  | None -> ()
  | Some dir -> if not (compare_against ~dir records) then incr failures);
  if !failures > 0 then exit 1
