(* Ordered-scheduling smoke (@ordered-smoke).

   Two apps exercise the soft-priority (delta-stepping bucket)
   scheduler end to end:

   - sssp on a weighted R-MAT graph: prio=auto must produce exactly
     the prio=off distances (both equal to Dijkstra), each policy's
     schedule digest must be thread-count invariant, and the ordered
     run must cut work_units by at least MIN_DROP percent versus the
     unordered run — the delta-stepping payoff.

   - kcore on a symmetrized kout graph: coreness must equal the serial
     Matula-Beck peeling under prio=auto and prio=delta at every
     thread count, again with thread-invariant digests.

   Usage: ordered_check [--scale N] [--min-drop PCT]. *)

module D = Galois.Trace_digest

let failures = ref 0

let check name ok =
  if ok then Fmt.pr "  ok: %s@." name
  else begin
    incr failures;
    Fmt.pr "  FAIL: %s@." name
  end

let det ?(priority = Galois.Policy.Prio_off) threads =
  Galois.Policy.det ~options:(Galois.Policy.Det_options.make ~priority ()) threads

let () =
  let scale = ref 13 in
  let min_drop = ref 25.0 in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := int_of_string v;
        parse rest
    | "--min-drop" :: v :: rest ->
        min_drop := float_of_string v;
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "ordered_check: unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));

  (* --- sssp: correctness, digest invariance, work-unit drop -------- *)
  let g =
    Graphlib.Graph_io.attach_random_weights ~seed:2015 ~max_weight:100
      (Graphlib.Generators.rmat ~seed:2014 ~scale:!scale ~edge_factor:8 ())
  in
  let weights =
    match Graphlib.Csr.weights_array g with Some w -> w | None -> assert false
  in
  let reference = Apps.Sssp.serial g weights ~source:0 in
  let run_sssp policy =
    let dist, report = Apps.Sssp.galois_weighted ~policy g ~source:0 in
    (dist, report.Galois.Runtime.stats)
  in
  Fmt.pr "sssp: weighted rmat scale=%d (%d nodes, %d edges)@." !scale
    (Graphlib.Csr.nodes g) (Graphlib.Csr.edges g);
  let dist_off, off4 = run_sssp (det 4) in
  let _, off1 = run_sssp (det 1) in
  let dist_auto, auto4 = run_sssp (det ~priority:Galois.Policy.Prio_auto 4) in
  let _, auto1 = run_sssp (det ~priority:Galois.Policy.Prio_auto 1) in
  let _, auto2 = run_sssp (det ~priority:Galois.Policy.Prio_auto 2) in
  check "prio=off distances match Dijkstra" (dist_off = reference);
  check "prio=auto distances match Dijkstra" (dist_auto = reference);
  check "prio=off digest thread-invariant" (D.equal off4.digest off1.digest);
  check "prio=auto digest thread-invariant (1,2,4)"
    (D.equal auto4.digest auto1.digest && D.equal auto4.digest auto2.digest);
  check "prio=auto actually bucketizes" (auto4.buckets > 0 && off4.buckets = 0);
  check "prio=off and prio=auto schedules differ" (not (D.equal off4.digest auto4.digest));
  let drop =
    100.0 *. (1.0 -. (float_of_int auto4.work_units /. float_of_int off4.work_units))
  in
  Fmt.pr "  work_units: off=%d auto=%d drop=%.1f%% (floor %.1f%%)@." off4.work_units
    auto4.work_units drop !min_drop;
  check "ordered work-unit drop meets floor" (drop >= !min_drop);

  (* --- kcore: fixpoint equals peeling at every thread count -------- *)
  let g2 =
    Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed:2016 ~n:4000 ~k:5 ())
  in
  let core_ref = Apps.Kcore.serial g2 in
  let run_kcore policy =
    let core, report = Apps.Kcore.galois ~policy g2 in
    (core, report.Galois.Runtime.stats)
  in
  Fmt.pr "kcore: symmetrized kout (%d nodes, %d edges)@." (Graphlib.Csr.nodes g2)
    (Graphlib.Csr.edges g2);
  let c_auto4, k4 = run_kcore (det ~priority:Galois.Policy.Prio_auto 4) in
  let c_auto1, k1 = run_kcore (det ~priority:Galois.Policy.Prio_auto 1) in
  let c_delta, kd = run_kcore (det ~priority:(Galois.Policy.Prio_delta 2) 4) in
  let c_off, _ = run_kcore (det 4) in
  check "prio=auto coreness matches peeling (4 threads)" (c_auto4 = core_ref);
  check "prio=auto coreness matches peeling (1 thread)" (c_auto1 = core_ref);
  check "prio=delta:2 coreness matches peeling" (c_delta = core_ref);
  check "prio=off coreness matches peeling" (c_off = core_ref);
  check "kcore prio=auto digest thread-invariant" (D.equal k4.digest k1.digest);
  check "kcore delta changes the schedule" (not (D.equal k4.digest kd.digest));

  if !failures > 0 then begin
    Fmt.pr "ordered-check: %d failure(s)@." !failures;
    exit 1
  end;
  Fmt.pr "ordered-check: all checks passed@."
