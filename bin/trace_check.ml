(* Validate a JSONL observability trace against the event schema:
   every line must parse as exactly one known event with the right
   fields and types (Obs.Jsonl.validate_line). Used by the @trace-smoke
   alias to keep `galois_run --trace` output well-formed.

   Exit status: 0 if every line validates and the file is non-empty;
   1 otherwise, naming the first offending line. *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: trace_check FILE.jsonl";
        exit 2
  in
  let ic = open_in path in
  let lines = ref 0 in
  let det = ref 0 in
  let result =
    let rec go lineno =
      match input_line ic with
      | exception End_of_file -> Ok ()
      | line -> (
          match Obs.Jsonl.of_line line with
          | Ok s ->
              incr lines;
              if Obs.deterministic s.Obs.event then incr det;
              go (lineno + 1)
          | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
    in
    go 1
  in
  close_in_noerr ic;
  match result with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok () when !lines = 0 ->
      Printf.eprintf "%s: empty trace\n" path;
      exit 1
  | Ok () ->
      Printf.printf "%s: %d events ok (%d deterministic)\n" path !lines !det
