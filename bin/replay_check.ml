(* Schedule-prefix comparator behind @replay-smoke: given the schedule
   dump of an uninterrupted run and of a checkpoint/resume run of the
   same job, verify the resumed schedule is byte-for-byte the suffix of
   the full one — every "round=N ..." line in the resumed dump must
   equal the same-numbered line of the full dump, and the "digest=..."
   trailers must match exactly.

     replay_check full.sched resumed.sched *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* "round=N window=... committed=..." -> Some (N, line); trailer -> None *)
let round_of_line line =
  match String.index_opt line ' ' with
  | Some sp when String.length line > 6 && String.sub line 0 6 = "round=" ->
      int_of_string_opt (String.sub line 6 (sp - 6))
      |> Option.map (fun r -> (r, line))
  | _ -> None

let split lines =
  let rounds = List.filter_map round_of_line lines in
  let trailer =
    List.find_opt
      (fun l -> String.length l > 7 && String.sub l 0 7 = "digest=")
      lines
  in
  (rounds, trailer)

let () =
  match Sys.argv with
  | [| _; full_path; resumed_path |] ->
      let full_rounds, full_trailer = split (read_lines full_path) in
      let resumed_rounds, resumed_trailer = split (read_lines resumed_path) in
      let errors = ref 0 in
      let fail fmt = Printf.ksprintf (fun s -> incr errors; prerr_endline ("FAIL  " ^ s)) fmt in
      if resumed_rounds = [] then fail "%s: no round lines" resumed_path;
      List.iter
        (fun (r, line) ->
          match List.assoc_opt r full_rounds with
          | None -> fail "round %d in %s missing from %s" r resumed_path full_path
          | Some ref_line ->
              if ref_line <> line then
                fail "round %d differs:\n  full:    %s\n  resumed: %s" r ref_line line)
        resumed_rounds;
      (match (full_trailer, resumed_trailer) with
      | Some a, Some b when a = b -> ()
      | Some a, Some b -> fail "trailers differ:\n  full:    %s\n  resumed: %s" a b
      | _ -> fail "missing digest trailer");
      if !errors = 0 then begin
        Printf.printf "replay_check: resumed schedule matches (%d rounds, %s)\n"
          (List.length resumed_rounds)
          (match full_trailer with Some t -> t | None -> "");
        exit 0
      end
      else exit 1
  | _ ->
      prerr_endline "usage: replay_check FULL.sched RESUMED.sched";
      exit 2
