(* Determinism-audit driver: sweep the configuration lattice over the
   real benchmarks and over fuzz-generated synthetic operators, and fail
   loudly on any digest divergence.

     detcheck --cases 25 --seed 2014 --apps bfs,sssp,mst,dmr

   Wired into `dune runtest` (alias @detcheck) as a bounded smoke run, so
   every future scheduler change regresses against the paper's claim. *)

let parse_int_list s =
  try List.map int_of_string (String.split_on_char ',' s) with _ -> []

let run ~cases ~seed ~apps ~threads ~size ~points ~verbose =
  let threads = if threads = [] then Detcheck.default_threads else threads in
  let failures = ref 0 in
  let total_runs = ref 0 in
  let audit case =
    let report = Detcheck.check_invariance ~threads case in
    total_runs := !total_runs + report.Detcheck.runs;
    if Detcheck.ok report then begin
      if verbose then Fmt.pr "ok    %a@." Detcheck.pp_report report
      else Fmt.pr "ok    %s (%d runs)@." report.Detcheck.case_name report.Detcheck.runs
    end
    else begin
      incr failures;
      Fmt.pr "FAIL  %a@." Detcheck.pp_report report
    end
  in
  let app_case name =
    match name with
    | "bfs" -> Some (Detcheck.App_cases.bfs ~n:size ~seed)
    | "sssp" -> Some (Detcheck.App_cases.sssp ~n:size ~seed)
    | "mst" | "boruvka" -> Some (Detcheck.App_cases.boruvka ~n:size ~seed)
    | "dmr" -> Some (Detcheck.App_cases.dmr ~points ~seed)
    | _ -> None
  in
  List.iter
    (fun name ->
      match app_case name with
      | Some case -> audit case
      | None ->
          incr failures;
          Fmt.pr "FAIL  unknown app %S (expected bfs | sssp | mst | dmr)@." name)
    apps;
  for i = 0 to cases - 1 do
    audit (Detcheck.Gen.case ~seed:(seed + i))
  done;
  (* Positive control: the digests must be able to diverge at all. *)
  let control policy =
    let name = Galois.Policy.to_string policy in
    if
      Detcheck.seeds_distinguished
        ~gen:(fun s -> Detcheck.Gen.case ~seed:s)
        ~seed policy
    then Fmt.pr "ok    positive control: seed perturbation diverges under %s@." name
    else begin
      incr failures;
      Fmt.pr "FAIL  positive control: seed perturbation NOT seen under %s@." name
    end
  in
  control (Galois.Policy.det 2);
  control (Galois.Policy.nondet 2);
  if !failures = 0 then begin
    Fmt.pr "detcheck: all passed (%d lattice runs)@." !total_runs;
    `Ok ()
  end
  else `Error (false, Printf.sprintf "detcheck: %d failure(s)" !failures)

open Cmdliner

let cases_arg =
  let doc = "Number of fuzz-generated operator cases." in
  Arg.(value & opt int 25 & info [ "cases" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base seed: case $(i,i) uses seed + i, so any case is reproducible alone." in
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc)

let apps_arg =
  let doc = "Comma-separated benchmarks to audit (bfs | sssp | mst | dmr); empty to skip." in
  let parse s =
    Ok (List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s)))
  in
  let apps_conv = Arg.conv (parse, fun ppf l -> Fmt.pf ppf "%s" (String.concat "," l)) in
  Arg.(value & opt apps_conv [ "bfs"; "sssp"; "mst"; "dmr" ] & info [ "apps" ] ~docv:"APPS" ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts of the sweep." in
  let parse s =
    match parse_int_list s with
    | [] -> Error (`Msg (Printf.sprintf "bad thread list %S" s))
    | l when List.for_all (fun t -> t > 0) l -> Ok l
    | _ -> Error (`Msg "thread counts must be positive")
  in
  let threads_conv =
    Arg.conv (parse, fun ppf l -> Fmt.pf ppf "%s" (String.concat "," (List.map string_of_int l)))
  in
  Arg.(value & opt threads_conv [ 1; 2; 4; 8 ] & info [ "threads" ] ~docv:"T,T,..." ~doc)

let size_arg =
  let doc = "Graph size (nodes) for the graph benchmarks." in
  Arg.(value & opt int 400 & info [ "n"; "size" ] ~docv:"N" ~doc)

let points_arg =
  let doc = "Point count for the dmr benchmark." in
  Arg.(value & opt int 110 & info [ "points" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Print full per-case reports." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let cmd =
  let doc = "audit the determinism claims of the DIG scheduler" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sweeps every case over a configuration lattice (thread counts x initial windows x \
         locality spread x continuation x static ids) and compares round-trace digests, \
         output digests and the deterministic observability event stream (timing events \
         stripped, byte for byte) across the sweep. Any divergence falsifies the paper's \
         claim that deterministic output is a function of the input alone. Lattice \
         configurations correspond to policy strings like det:T[window=8,spread=1] \
         (see galois-run --policy).";
      `S Manpage.s_examples;
      `P "detcheck --cases 25 --seed 2014";
      `P "detcheck --apps dmr --cases 0 --threads 1,3,5 -v";
    ]
  in
  let term =
    Term.(
      ret
        (const (fun cases seed apps threads size points verbose ->
             run ~cases ~seed ~apps ~threads ~size ~points ~verbose)
        $ cases_arg $ seed_arg $ apps_arg $ threads_arg $ size_arg $ points_arg $ verbose_arg))
  in
  Cmd.v (Cmd.info "detcheck" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
