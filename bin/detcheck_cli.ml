(* Determinism-audit driver: sweep the configuration lattice over the
   real benchmarks and over fuzz-generated synthetic operators, and fail
   loudly on any digest divergence.

     detcheck --cases 25 --seed 2014 --apps bfs,sssp,mst,dmr

   Wired into `dune runtest` (alias @detcheck) as a bounded smoke run, so
   every future scheduler change regresses against the paper's claim. *)

let parse_int_list s =
  try List.map int_of_string (String.split_on_char ',' s) with _ -> []

(* --dmr-style: dual-modular-redundancy-style lockstep verification.
   Run every case twice — two fresh worlds, two thread counts — with a
   digest checkpoint every K rounds, and cross-check the trails: the
   verdict localizes any divergence to the first differing round
   boundary instead of merely failing on the final digest. *)
let run_lockstep ~cases ~seed ~apps ~threads ~size ~points ~every ~verbose =
  let ta, tb =
    match threads with
    | a :: b :: _ -> (a, b)
    | [ a ] -> (a, a + 1)
    | [] -> (2, 4)
  in
  let failures = ref 0 in
  let boundaries = ref 0 in
  let audit (Detcheck.Replay_cases.Case c) =
    let collect t =
      let run, output_digest = c.fresh ~static_id:false () in
      let trail, report =
        Replay.Lockstep.collect ~every
          (run |> Galois.Run.policy (Galois.Policy.det t))
      in
      (trail, report.Galois.Run.stats, output_digest ())
    in
    let trail_a, stats_a, out_a = collect ta in
    let trail_b, stats_b, out_b = collect tb in
    let verdict = Replay.Lockstep.first_divergence trail_a trail_b in
    let final_agree =
      Galois.Trace_digest.equal stats_a.Galois.Stats.digest stats_b.Galois.Stats.digest
      && Galois.Trace_digest.equal out_a out_b
      && stats_a.Galois.Stats.rounds = stats_b.Galois.Stats.rounds
    in
    (match verdict with
    | Replay.Lockstep.Agree { compared } -> boundaries := !boundaries + compared
    | _ -> ());
    match (verdict, final_agree) with
    | Replay.Lockstep.Diverge _, _ ->
        incr failures;
        Fmt.pr "FAIL  %s (det:%d vs det:%d): %a@." c.name ta tb Replay.Lockstep.pp_verdict
          verdict
    | _, false ->
        incr failures;
        Fmt.pr
          "FAIL  %s (det:%d vs det:%d): final state diverged (sched %a vs %a, output %a \
           vs %a, rounds %d vs %d) yet no checkpoint caught it@."
          c.name ta tb Galois.Trace_digest.pp stats_a.Galois.Stats.digest
          Galois.Trace_digest.pp stats_b.Galois.Stats.digest Galois.Trace_digest.pp out_a
          Galois.Trace_digest.pp out_b stats_a.Galois.Stats.rounds
          stats_b.Galois.Stats.rounds
    | _, true ->
        if verbose then
          Fmt.pr "ok    %s (det:%d vs det:%d): %a, final digest %a@." c.name ta tb
            Replay.Lockstep.pp_verdict verdict Galois.Trace_digest.pp
            stats_a.Galois.Stats.digest
        else Fmt.pr "ok    %s: %a@." c.name Replay.Lockstep.pp_verdict verdict
  in
  let app_case name =
    match name with
    | "bfs" -> Some (Detcheck.Replay_cases.bfs ~n:size ~seed)
    | "sssp" -> Some (Detcheck.Replay_cases.sssp ~n:size ~seed)
    | "mst" | "boruvka" -> Some (Detcheck.Replay_cases.boruvka ~n:size ~seed)
    | "dmr" -> Some (Detcheck.Replay_cases.dmr ~points ~seed)
    | _ -> None
  in
  List.iter
    (fun name ->
      match app_case name with
      | Some case -> audit case
      | None ->
          incr failures;
          Fmt.pr "FAIL  unknown app %S (expected bfs | sssp | mst | dmr)@." name)
    apps;
  for i = 0 to cases - 1 do
    audit (Detcheck.Replay_cases.gen ~seed:(seed + i))
  done;
  (* Negative control: a perturbed snapshot must be caught, and at the
     right round. A conflict-free operator (every task its own lock)
     with a pinned window commits the whole window each round, so the
     digest folds every window id in deque order — swapping two pending
     entries is then guaranteed to surface at the first round after the
     boundary, and the verifier must localize it there. *)
  let control () =
    let n = 100 in
    let policy =
      match Galois.Policy.of_string "det:2[window=8]" with
      | Ok p -> p
      | Error e -> failwith e
    in
    let run_of () =
      let locks = Array.init n (fun _ -> Galois.Lock.create ()) in
      Galois.Run.make
        ~operator:(fun ctx i -> Galois.Context.acquire ctx locks.(i))
        (Array.init n (fun i -> i))
      |> Galois.Run.policy policy
    in
    let captured = ref None in
    let acc = ref [] in
    let _ =
      run_of ()
      |> Galois.Run.checkpoint_every 1
      |> Galois.Run.on_checkpoint (fun snap ->
             let b = snap.Replay.Snapshot.boundary in
             acc := (b.Galois.Det_sched.b_rounds, b.Galois.Det_sched.b_digest) :: !acc;
             if b.Galois.Det_sched.b_rounds = 2 then captured := Some b)
      |> Galois.Run.exec
    in
    let trail_ref = List.rev !acc in
    match !captured with
    | Some b ->
        let perturbed = Replay.swap_pending_ids 0 1 b in
        let resumed = run_of () |> Galois.Run.resume perturbed in
        let trail_bad, _ = Replay.Lockstep.collect ~every:1 resumed in
        (match Replay.Lockstep.first_divergence trail_ref trail_bad with
        | Replay.Lockstep.Diverge { round = 3; _ } ->
            Fmt.pr "ok    negative control: swap at round 2 localized to round 3@."
        | v ->
            incr failures;
            Fmt.pr "FAIL  negative control: perturbed boundary not localized (%a)@."
              Replay.Lockstep.pp_verdict v)
    | None ->
        incr failures;
        Fmt.pr "FAIL  negative control: no boundary captured at round 2@."
  in
  control ();
  if !failures = 0 then begin
    Fmt.pr "detcheck --dmr-style: all passed (%d boundaries cross-checked)@." !boundaries;
    `Ok ()
  end
  else `Error (false, Printf.sprintf "detcheck --dmr-style: %d failure(s)" !failures)

(* --audit: dynamic neighborhood/race audit. Every Run-based benchmark
   executes with the shadow access recorder on — its report must be
   clean at every thread count (cautiousness, containment, and
   intra-round disjointness, acquires counting as writes) — then the two
   deliberately broken operators run as positive controls, whose witness
   findings must be flagged verbatim with (rule, round, task). *)
let run_audit ~seed ~threads ~size ~points ~verbose =
  let threads = if threads = [] then Detcheck.default_threads else threads in
  let tlist = String.concat "," (List.map string_of_int threads) in
  let failures = ref 0 in
  let tmax = List.fold_left max 1 threads in
  Galois.Pool.with_pool ~domains:tmax (fun pool ->
      List.iter
        (fun (c : Detcheck.Audit_cases.t) ->
          let before = !failures in
          List.iter
            (fun t ->
              let report = c.run ~policy:(Galois.Policy.det t) ~pool in
              if Galois.Audit.clean report then begin
                if verbose then
                  Fmt.pr "ok    audit %s det:%d (%d rounds, %d tasks)@." c.name t
                    report.Galois.Audit.rounds report.Galois.Audit.tasks
              end
              else begin
                incr failures;
                Fmt.pr "FAIL  audit %s det:%d: %d finding(s)@." c.name t
                  (List.length report.Galois.Audit.findings);
                List.iter
                  (fun f -> Fmt.pr "      %a@." Galois.Audit.pp_finding f)
                  report.Galois.Audit.findings
              end)
            threads;
          if !failures = before && not verbose then
            Fmt.pr "ok    audit %s clean at det:{%s}@." c.name tlist)
        (Detcheck.Audit_cases.apps ~n:size ~points ~seed);
      List.iter
        (fun (c : Detcheck.Audit_cases.control) ->
          let before = !failures in
          List.iter
            (fun t ->
              let report, witnesses = c.crun ~policy:(Galois.Policy.det t) ~pool in
              let missing =
                List.filter
                  (fun w -> not (List.mem w report.Galois.Audit.findings))
                  witnesses
              in
              if missing <> [] then begin
                incr failures;
                Fmt.pr "FAIL  control %s det:%d: expected finding(s) not flagged@."
                  c.cname t;
                List.iter (fun f -> Fmt.pr "      want %a@." Galois.Audit.pp_finding f) missing;
                List.iter
                  (fun f -> Fmt.pr "      got  %a@." Galois.Audit.pp_finding f)
                  report.Galois.Audit.findings
              end
              else if verbose then begin
                Fmt.pr "ok    control %s det:%d flagged (%d finding(s))@." c.cname t
                  (List.length report.Galois.Audit.findings);
                List.iter
                  (fun f -> Fmt.pr "      %a@." Galois.Audit.pp_finding f)
                  report.Galois.Audit.findings
              end)
            threads;
          if !failures = before && not verbose then
            Fmt.pr "ok    control %s flagged at det:{%s}@." c.cname tlist)
        (Detcheck.Audit_cases.controls ~n:size ~seed));
  if !failures = 0 then begin
    Fmt.pr "detcheck --audit: all passed@.";
    `Ok ()
  end
  else `Error (false, Printf.sprintf "detcheck --audit: %d failure(s)" !failures)

let run ~cases ~seed ~apps ~threads ~size ~points ~service ~verbose =
  let threads = if threads = [] then Detcheck.default_threads else threads in
  let failures = ref 0 in
  let total_runs = ref 0 in
  let audit case =
    let report = Detcheck.check_invariance ~threads case in
    total_runs := !total_runs + report.Detcheck.runs;
    if Detcheck.ok report then begin
      if verbose then Fmt.pr "ok    %a@." Detcheck.pp_report report
      else Fmt.pr "ok    %s (%d runs)@." report.Detcheck.case_name report.Detcheck.runs
    end
    else begin
      incr failures;
      Fmt.pr "FAIL  %a@." Detcheck.pp_report report
    end
  in
  let app_case name =
    match name with
    | "bfs" -> Some (Detcheck.App_cases.bfs ~n:size ~seed)
    | "sssp" -> Some (Detcheck.App_cases.sssp ~n:size ~seed)
    | "mst" | "boruvka" -> Some (Detcheck.App_cases.boruvka ~n:size ~seed)
    | "dmr" -> Some (Detcheck.App_cases.dmr ~points ~seed)
    | _ -> None
  in
  List.iter
    (fun name ->
      match app_case name with
      | Some case -> audit case
      | None ->
          incr failures;
          Fmt.pr "FAIL  unknown app %S (expected bfs | sssp | mst | dmr)@." name)
    apps;
  for i = 0 to cases - 1 do
    audit (Detcheck.Gen.case ~seed:(seed + i))
  done;
  (* Service lattice: byte-compare the response stream of a mixed query
     batch across pool sizes and admission interleavings. *)
  if service > 0 then begin
    let report =
      Detcheck.Service_case.check ~pool_sizes:threads ~count:service ~nodes:size
        ~seed ()
    in
    total_runs := !total_runs + report.Detcheck.runs;
    if Detcheck.ok report then
      Fmt.pr "ok    %s (%d sessions byte-identical)@." report.Detcheck.case_name
        report.Detcheck.runs
    else begin
      incr failures;
      Fmt.pr "FAIL  %a@." Detcheck.pp_report report
    end
  end;
  (* Positive control: the digests must be able to diverge at all. *)
  let skip_controls = cases = 0 && apps = [] in
  let control policy =
    let name = Galois.Policy.to_string policy in
    if
      Detcheck.seeds_distinguished
        ~gen:(fun s -> Detcheck.Gen.case ~seed:s)
        ~seed policy
    then Fmt.pr "ok    positive control: seed perturbation diverges under %s@." name
    else begin
      incr failures;
      Fmt.pr "FAIL  positive control: seed perturbation NOT seen under %s@." name
    end
  in
  if not skip_controls then begin
    control (Galois.Policy.det 2);
    control (Galois.Policy.nondet 2);
    (* Bucket-assignment control: priority-salt perturbation must move
       the ordered schedule and must not move the unordered one. *)
    if Detcheck.prio_salt_distinguished ~seed () then
      Fmt.pr "ok    positive control: priority salt moves ordered schedules only@."
    else begin
      incr failures;
      Fmt.pr "FAIL  positive control: priority salt NOT reflected in ordered schedules@."
    end
  end;
  if !failures = 0 then begin
    Fmt.pr "detcheck: all passed (%d lattice runs)@." !total_runs;
    `Ok ()
  end
  else `Error (false, Printf.sprintf "detcheck: %d failure(s)" !failures)

open Cmdliner

let cases_arg =
  let doc = "Number of fuzz-generated operator cases." in
  Arg.(value & opt int 25 & info [ "cases" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Base seed: case $(i,i) uses seed + i, so any case is reproducible alone." in
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc)

let apps_arg =
  let doc = "Comma-separated benchmarks to audit (bfs | sssp | mst | dmr); empty to skip." in
  let parse s =
    Ok (List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s)))
  in
  let apps_conv = Arg.conv (parse, fun ppf l -> Fmt.pf ppf "%s" (String.concat "," l)) in
  Arg.(value & opt apps_conv [ "bfs"; "sssp"; "mst"; "dmr" ] & info [ "apps" ] ~docv:"APPS" ~doc)

let threads_arg =
  let doc = "Comma-separated thread counts of the sweep." in
  let parse s =
    match parse_int_list s with
    | [] -> Error (`Msg (Printf.sprintf "bad thread list %S" s))
    | l when List.for_all (fun t -> t > 0) l -> Ok l
    | _ -> Error (`Msg "thread counts must be positive")
  in
  let threads_conv =
    Arg.conv (parse, fun ppf l -> Fmt.pf ppf "%s" (String.concat "," (List.map string_of_int l)))
  in
  Arg.(value & opt threads_conv [ 1; 2; 4; 8 ] & info [ "threads" ] ~docv:"T,T,..." ~doc)

let size_arg =
  let doc = "Graph size (nodes) for the graph benchmarks." in
  Arg.(value & opt int 400 & info [ "n"; "size" ] ~docv:"N" ~doc)

let points_arg =
  let doc = "Point count for the dmr benchmark." in
  Arg.(value & opt int 110 & info [ "points" ] ~docv:"N" ~doc)

let service_arg =
  let doc =
    "Also audit the service layer with a mixed batch of $(docv) bfs/sssp/cc queries: \
     responses, per-job event streams and the service digest must be byte-identical \
     across the $(b,--threads) pool sizes and across two admission interleavings. \
     0 skips the service lattice."
  in
  Arg.(value & opt int 0 & info [ "service" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Print full per-case reports." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let dmr_style_arg =
  let doc =
    "Lockstep (dual-modular-redundancy-style) mode: run each case twice at the first two \
     thread counts of $(b,--threads), cross-check digests at every checkpoint boundary \
     and report the first divergent round instead of only the final digest."
  in
  Arg.(value & flag & info [ "dmr-style" ] ~doc)

let every_arg =
  let doc = "Checkpoint cadence (rounds) for $(b,--dmr-style) digest cross-checks." in
  Arg.(value & opt int 4 & info [ "every" ] ~docv:"K" ~doc)

let audit_arg =
  let doc =
    "Dynamic neighborhood/race audit: run every Run-based benchmark with the shadow \
     access recorder on (reports must be clean — cautious, contained, intra-round \
     disjoint — at every $(b,--threads) count), then two deliberately broken operators \
     as positive controls whose findings must be localized to (rule, round, task)."
  in
  Arg.(value & flag & info [ "audit" ] ~doc)

let cmd =
  let doc = "audit the determinism claims of the DIG scheduler" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sweeps every case over a configuration lattice (thread counts x initial windows x \
         locality spread x continuation x static ids) and compares round-trace digests, \
         output digests and the deterministic observability event stream (timing events \
         stripped, byte for byte) across the sweep. Any divergence falsifies the paper's \
         claim that deterministic output is a function of the input alone. Lattice \
         configurations correspond to policy strings like det:T[window=8,spread=1] \
         (see galois-run --policy).";
      `S Manpage.s_examples;
      `P "detcheck --cases 25 --seed 2014";
      `P "detcheck --apps dmr --cases 0 --threads 1,3,5 -v";
      `P "detcheck --dmr-style --cases 5 --every 2 --threads 2,4";
      `P "detcheck --audit --size 300 --threads 1,2,4";
    ]
  in
  let term =
    Term.(
      ret
        (const (fun cases seed apps threads size points service verbose dmr_style every
                    audit ->
             if every < 1 then `Error (false, "--every must be >= 1")
             else if audit then run_audit ~seed ~threads ~size ~points ~verbose
             else if dmr_style then
               run_lockstep ~cases ~seed ~apps ~threads ~size ~points ~every ~verbose
             else run ~cases ~seed ~apps ~threads ~size ~points ~service ~verbose)
        $ cases_arg $ seed_arg $ apps_arg $ threads_arg $ size_arg $ points_arg
        $ service_arg $ verbose_arg $ dmr_style_arg $ every_arg $ audit_arg))
  in
  Cmd.v (Cmd.info "detcheck" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
