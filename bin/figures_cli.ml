(* Regenerate the paper's tables and figures:

     galois-figures                 # everything, small scale
     galois-figures fig7-m4x10      # one figure
     galois-figures --scale tiny    # quick smoke run
     galois-figures --phase-breakdown run.jsonl
                                    # summarize a `galois_run --trace` file *)

open Cmdliner

let run figure scale_name breakdown =
  match breakdown with
  | Some path -> (
      (* Trace post-processing needs no dataset collection: read the
         JSONL stream and render the phase-breakdown table. *)
      match Obs.Jsonl.load path with
      | Error e -> `Error (false, e)
      | Ok events ->
          Fmt.pr "@.== phase breakdown: %s (%d events) ==@." path (List.length events);
          Analysis.Table.pp Fmt.stdout (Figures.phase_breakdown events);
          `Ok ())
  | None -> (
      match Figures.Scale.by_name scale_name with
      | None -> `Error (false, Printf.sprintf "unknown scale %S (tiny | small | paper)" scale_name)
      | Some scale -> (
          Fmt.pr "Collecting dataset at scale %s (this runs every benchmark variant)...@."
            scale.Figures.Scale.name;
          let data = Figures.Dataset.collect scale in
          let t = Figures.timings data in
          match figure with
          | None ->
              Figures.print_all t;
              `Ok ()
          | Some name -> (
              match Figures.print_figure t name with
              | Ok () -> `Ok ()
              | Error e -> `Error (false, e))))

let figure_arg =
  let doc =
    "Figure to regenerate (fig4, fig5, fig6, fig7-m4x10, fig7-m4x6, fig7-numa8x4, fig8, fig9, \
     fig10, fig11, fig12, summary, ablation, obs-phases). Omit to print all."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)

let scale_arg =
  let doc = "Input scale: tiny | small | paper." in
  Arg.(value & opt string "small" & info [ "scale" ] ~docv:"SCALE" ~doc)

let breakdown_arg =
  let doc =
    "Render the phase-breakdown table from a JSONL trace file (written by \
     galois-run --trace) instead of collecting a dataset."
  in
  Arg.(value & opt (some string) None & info [ "phase-breakdown" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "regenerate the evaluation tables/figures of the Deterministic Galois paper" in
  Cmd.v
    (Cmd.info "galois-figures" ~version:"1.0.0" ~doc)
    Term.(ret (const run $ figure_arg $ scale_arg $ breakdown_arg))

let () = exit (Cmd.eval cmd)
