(* The command-line driver: run any benchmark under any execution
   policy. This is the paper's on-demand determinism in practice — the
   application code is fixed; [--policy serial|nondet:T|det:T[k=v,...]]
   picks the scheduler at run time, and [--trace FILE] streams the
   runtime's observability events (lib/obs) to a JSONL file.

   The checkpoint/replay flags (--checkpoint, --resume, --replay-to,
   --crash-resume, --schedule-out) drive det-policy runs of
   bfs | sssp | mst | dmr through the replay harness instead of the
   plain benchmark path. *)

module D = Galois.Trace_digest

type replay_opts = {
  checkpoint : string option;  (* write round-boundary snapshots here *)
  every : int option;  (* checkpoint cadence (default 1) *)
  resume : string option;  (* resume from this snapshot file *)
  replay_to : int option;  (* stop after this round, dump the schedule prefix *)
  crash_at : int option;  (* in-process crash/resume verification round *)
  schedule_out : string option;  (* where the schedule prefix goes (default stdout) *)
}

let replay_requested r =
  Option.is_some r.checkpoint || Option.is_some r.every || Option.is_some r.resume
  || Option.is_some r.replay_to || Option.is_some r.crash_at
  || Option.is_some r.schedule_out

(* The executed rounds as stable text: one [round=...] line per round
   with *absolute* round numbers (a resumed run's schedule starts
   mid-run), then a digest trailer. Byte-comparing a resumed run's
   prefix dump against the same rounds of an uninterrupted run is the
   @replay-smoke check. *)
let dump_schedule_prefix ~out (report : Galois.Runtime.report) =
  let lines =
    match report.schedule with
    | Some (Galois.Schedule.Rounds rounds) ->
        let first = report.stats.rounds - List.length rounds + 1 in
        List.mapi
          (fun i window ->
            let committed =
              Array.fold_left
                (fun a (t : Galois.Schedule.task_record) -> if t.committed then a + 1 else a)
                0 window
            in
            Printf.sprintf "round=%d window=%d committed=%d" (first + i)
              (Array.length window) committed)
          rounds
    | Some (Galois.Schedule.Flat _) | None -> []
  in
  let lines =
    lines
    @ [ Printf.sprintf "digest=%s rounds=%d" (D.to_hex report.stats.digest)
          report.stats.rounds ]
  in
  match out with
  | None -> List.iter print_endline lines
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let replay_case ~app ~size ~seed =
  match app with
  | "bfs" -> Some (Detcheck.Replay_cases.bfs ~n:size ~seed)
  | "sssp" -> Some (Detcheck.Replay_cases.sssp ~n:size ~seed)
  | "mst" -> Some (Detcheck.Replay_cases.boruvka ~n:size ~seed)
  | "dmr" -> Some (Detcheck.Replay_cases.dmr ~points:size ~seed)
  | _ -> None

let run_replay ~app ~policy ~size ~seed ~sink r =
  match replay_case ~app ~size ~seed with
  | None ->
      `Error
        (false, "checkpoint/replay flags support the bfs | sssp | mst | dmr benchmarks only")
  | Some (Detcheck.Replay_cases.Case c) -> (
      try
        if
          (Option.is_some r.checkpoint || Option.is_some r.resume)
          && not c.snapshot_capable
        then
          `Error
            ( false,
              Printf.sprintf
                "%s has no serializable world state; use --crash-resume (live in-process \
                 resume) instead"
                app )
        else
          match r.crash_at with
          | Some at ->
              (* Two fresh worlds: run one to completion, crash and
                 resume the other, then require digest & output equality. *)
              let full, full_out = c.fresh ~static_id:false () in
              let crash, crash_out = c.fresh ~static_id:false () in
              let outcome =
                Replay.crash_resume ~at
                  ~full:(full |> Galois.Run.policy policy)
                  ~crash:(crash |> Galois.Run.policy policy)
                  ()
              in
              let pp_line tag (rep : Galois.Runtime.report) =
                Fmt.pr "  %s digest=%a rounds=%d commits=%d@." tag D.pp rep.stats.digest
                  rep.stats.rounds rep.stats.commits
              in
              Fmt.pr "crash-resume %s (%a): crashed after round %d of %d@." app
                Galois.Policy.pp policy outcome.crash_round outcome.full.stats.rounds;
              pp_line "full   " outcome.full;
              pp_line "resumed" outcome.resumed;
              let ok =
                D.equal outcome.full.stats.digest outcome.resumed.stats.digest
                && D.equal (full_out ()) (crash_out ())
              in
              Fmt.pr "  verdict=%s@." (if ok then "identical" else "DIVERGED");
              if ok then `Ok () else `Error (false, "crash-resume replay diverged")
          | None ->
              let run, out = c.fresh ~static_id:false () in
              let report =
                run
                |> Galois.Run.policy policy
                |> Galois.Run.sink sink
                |> Galois.Run.opt Galois.Run.checkpoint_to r.checkpoint
                |> Galois.Run.opt Galois.Run.checkpoint_every r.every
                |> Galois.Run.opt Galois.Run.resume_from r.resume
                |> Galois.Run.opt Galois.Run.stop_after r.replay_to
                |> (if Option.is_some r.replay_to || Option.is_some r.schedule_out then
                      Galois.Run.record
                    else Fun.id)
                |> Galois.Run.exec
              in
              Fmt.pr "%s (%a):@." app Galois.Policy.pp policy;
              Fmt.pr "  %a@." Galois.Stats.pp report.stats;
              Fmt.pr "  output digest=%s@." (D.to_hex (out ()));
              if Option.is_some r.replay_to || Option.is_some r.schedule_out then
                dump_schedule_prefix ~out:r.schedule_out report;
              `Ok ()
      with
      | Invalid_argument msg | Failure msg -> `Error (false, msg))

let run_app ~app ~policy ~size ~seed ~verbose ~sink =
  let pp_stats name (stats : Galois.Stats.t) =
    Fmt.pr "%s (%a):@." name Galois.Policy.pp policy;
    Fmt.pr "  %a@." Galois.Stats.pp stats
  in
  match app with
  | "bfs" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let dist, report = Apps.Bfs.galois ~sink ~policy g ~source:0 in
      pp_stats "bfs" report.stats;
      let reached = Array.fold_left (fun a d -> if d <> Apps.Bfs.unreached then a + 1 else a) 0 dist in
      Fmt.pr "  reached %d of %d nodes; valid=%b@." reached size
        (Apps.Bfs.validate g ~source:0 dist);
      if verbose then
        Fmt.pr "  first distances: %a@."
          Fmt.(list ~sep:sp int)
          (Array.to_list (Array.sub dist 0 (min 20 size)));
      `Ok ()
  | "mis" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:5 ()) in
      let in_mis, report = Apps.Mis.galois ~sink ~policy g in
      pp_stats "mis" report.stats;
      let members = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_mis in
      Fmt.pr "  |MIS| = %d; valid=%b@." members (Apps.Mis.is_maximal_independent g in_mis);
      `Ok ()
  | "dt" ->
      let pts = Geometry.Point.random_unit_square ~seed size in
      let mesh, report = Apps.Dt.galois ~sink ~policy pts in
      pp_stats "dt" report.stats;
      Fmt.pr "  triangles=%d, delaunay violations=%d@." (Mesh.triangle_count mesh)
        (Mesh.delaunay_violations mesh);
      `Ok ()
  | "dmr" ->
      let pts = Geometry.Point.random_unit_square ~seed size in
      let mesh = Apps.Dt.serial pts in
      let before = Mesh.triangle_count mesh in
      let report = Apps.Dmr.galois ~sink ~policy mesh in
      pp_stats "dmr" report.stats;
      Fmt.pr "  triangles %d -> %d; refined=%b@." before (Mesh.triangle_count mesh)
        (Apps.Dmr.refined Apps.Dmr.default_config mesh);
      `Ok ()
  | "pfp" ->
      let g, caps, source, sink_node = Graphlib.Generators.flow_network ~seed ~n:size ~k:4 () in
      let net = Apps.Flow_network.of_graph g caps ~source ~sink:sink_node in
      let result = Apps.Pfp.galois ~sink ~policy net in
      pp_stats "pfp" result.stats;
      let ok, _ = Apps.Flow_network.check_flow net in
      Fmt.pr "  max flow=%d; epochs=%d; global relabels=%d; conservation=%b@."
        result.flow_value result.epochs result.global_relabels ok;
      `Ok ()
  | "cc" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:5 ()) in
      let label, report = Apps.Cc.galois ~sink ~policy g in
      pp_stats "cc" report.stats;
      Fmt.pr "  %d components; valid=%b@." (Apps.Cc.count_components label)
        (Apps.Cc.validate g label);
      `Ok ()
  | "sssp" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
      let dist, report = Apps.Sssp.galois ~sink ~policy g w ~source:0 in
      pp_stats "sssp" report.stats;
      let reached =
        Array.fold_left (fun a d -> if d <> Apps.Sssp.unreached then a + 1 else a) 0 dist
      in
      Fmt.pr "  reached %d of %d; valid=%b@." reached size (Apps.Sssp.validate g w ~source:0 dist);
      `Ok ()
  | "mst" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:4 ()) in
      let w = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 1) g in
      let forest, report = Apps.Boruvka.galois ~sink ~policy g w in
      pp_stats "mst (boruvka)" report.stats;
      Fmt.pr "  forest: %d edges, total weight %d; valid=%b@."
        (List.length forest.Apps.Boruvka.parent_edge) forest.Apps.Boruvka.total_weight
        (Apps.Boruvka.validate g forest);
      `Ok ()
  | "triangles" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.rmat ~seed ~scale:11 ~edge_factor:8 ()) in
      let total, report = Apps.Triangles.galois ~sink ~policy g in
      pp_stats "triangles" report.stats;
      Fmt.pr "  %d triangles@." total;
      `Ok ()
  | "kcore" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:5 ()) in
      let core, report = Apps.Kcore.galois ~sink ~policy g in
      pp_stats "kcore" report.stats;
      let kmax = Array.fold_left max 0 core in
      Fmt.pr "  max coreness=%d; valid=%b@." kmax (Apps.Kcore.validate g core);
      `Ok ()
  | "pagerank" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let ranks, report = Apps.Pagerank.galois ~sink ~policy g in
      pp_stats "pagerank" report.stats;
      let reference = Apps.Pagerank.serial g in
      Fmt.pr "  max deviation from power iteration: %.5f@."
        (Apps.Pagerank.max_abs_diff ranks reference);
      `Ok ()
  | other -> `Error (false, Printf.sprintf "unknown app %S" other)

open Cmdliner

let app_arg =
  let doc =
    "Benchmark to run: bfs | mis | dt | dmr | pfp | cc | sssp | mst | kcore | triangles | \
     pagerank."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let policy_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Galois.Policy.of_string s) in
  let print ppf p = Galois.Policy.pp ppf p in
  let policy_conv = Arg.conv (parse, print) in
  let doc =
    "Execution policy: $(b,serial), $(b,nondet:T) (speculative, T threads) or $(b,det:T) \
     (deterministic DIG scheduling). The program's code is identical under every policy. \
     det accepts a bracketed option block, \
     $(b,det:8[window=64,spread=1,ratio=0.95,cont=off,validate=on]): window=N|auto pins or \
     derives the first round's window, spread=N sets the locality-spread piles (1 disables), \
     ratio=R sets the adaptive commit-ratio target, cont/validate toggle the continuation \
     optimization and commit-time mark validation, and prio=off|delta:N|auto selects \
     soft-priority delta-stepping bucket scheduling (apps with a priority hint — sssp, \
     kcore — then run lowest-bucket-first)."
  in
  Arg.(value & opt policy_conv Galois.Policy.serial & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let size_arg =
  let doc = "Input size (nodes / points, app-dependent)." in
  Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Input generator seed (same seed = same input everywhere)." in
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Print sample output values." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Write the runtime's observability event stream (round/phase events, per-worker \
     counters, timings) to $(docv), one JSON object per line. For $(b,det) policies the \
     stream minus its timing events is identical for any thread count."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let checkpoint_arg =
  let doc =
    "Write round-boundary snapshots to $(docv) (atomically; the file always holds the \
     latest complete snapshot). Requires a det policy; bfs and sssp only (their world \
     state is serializable)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let every_arg =
  let doc = "Checkpoint cadence in rounds (default 1)." in
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"K" ~doc)

let resume_arg =
  let doc =
    "Resume from a snapshot written by --checkpoint: the run continues at the captured \
     round (under any thread count) and reproduces the uninterrupted run's digest."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let replay_to_arg =
  let doc =
    "Stop after round $(docv) and dump the executed schedule prefix (one line per round \
     plus a digest trailer; see --schedule-out)."
  in
  Arg.(value & opt (some int) None & info [ "replay-to" ] ~docv:"ROUND" ~doc)

let crash_resume_arg =
  let doc =
    "Crash-injection self-check: run the benchmark to completion, run a second fresh \
     world that is stopped at round $(docv) and resumed live, and verify both digests \
     and outputs agree. Exits non-zero on divergence. Supports bfs | sssp | mst | dmr."
  in
  Arg.(value & opt (some int) None & info [ "crash-resume" ] ~docv:"ROUND" ~doc)

let schedule_out_arg =
  let doc = "Write the --replay-to schedule prefix to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "schedule-out" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "run Deterministic Galois benchmarks under a chosen execution policy" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reproduction of 'Deterministic Galois: On-demand, Portable and Parameterless' \
         (ASPLOS 2014). The same application source runs non-deterministically \
         (fast, timing-dependent answers) or deterministically (identical output for \
         any thread count) depending on --policy.";
      `S Manpage.s_examples;
      `P "galois-run dmr -n 2000 --policy det:4";
      `P "galois-run bfs -n 100000 --policy nondet:8";
      `P "galois-run mst -n 50000 --policy 'det:4[window=64,spread=1]'";
      `P "galois-run bfs -n 20000 --policy det:4 --trace bfs.trace.jsonl";
      `P "galois-run bfs -n 20000 --policy det:4 --checkpoint bfs.snap --checkpoint-every 8";
      `P "galois-run bfs -n 20000 --policy det:4 --resume bfs.snap";
      `P "galois-run dmr -n 2000 --policy det:4 --crash-resume 5";
    ]
  in
  let run_traced app policy size seed verbose trace checkpoint every resume replay_to
      crash_at schedule_out =
    let r = { checkpoint; every; resume; replay_to; crash_at; schedule_out } in
    let dispatch sink =
      if replay_requested r then run_replay ~app ~policy ~size ~seed ~sink r
      else run_app ~app ~policy ~size ~seed ~verbose ~sink
    in
    (* The sink is assembled with the combinators: [of_list] collapses
       to [Obs.null] when no trace was requested, and teeing/closing a
       null sink is free, so dispatch never branches on an option. *)
    let sink =
      Obs.Sink.of_list
        (match trace with None -> [] | Some path -> [ Obs.Jsonl.file path ])
    in
    Fun.protect ~finally:(fun () -> Obs.close sink) (fun () -> dispatch sink)
  in
  let term =
    Term.(
      ret
        (const run_traced $ app_arg $ policy_arg $ size_arg $ seed_arg $ verbose_arg
       $ trace_arg $ checkpoint_arg $ every_arg $ resume_arg $ replay_to_arg
       $ crash_resume_arg $ schedule_out_arg))
  in
  Cmd.v (Cmd.info "galois-run" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
