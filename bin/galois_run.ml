(* The command-line driver: run any benchmark under any execution
   policy. This is the paper's on-demand determinism in practice — the
   application code is fixed; [--policy serial|nondet:T|det:T[k=v,...]]
   picks the scheduler at run time, and [--trace FILE] streams the
   runtime's observability events (lib/obs) to a JSONL file. *)

let run_app ~app ~policy ~size ~seed ~verbose ~sink =
  let pp_stats name (stats : Galois.Stats.t) =
    Fmt.pr "%s (%a):@." name Galois.Policy.pp policy;
    Fmt.pr "  %a@." Galois.Stats.pp stats
  in
  match app with
  | "bfs" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let dist, report = Apps.Bfs.galois ?sink ~policy g ~source:0 in
      pp_stats "bfs" report.stats;
      let reached = Array.fold_left (fun a d -> if d <> Apps.Bfs.unreached then a + 1 else a) 0 dist in
      Fmt.pr "  reached %d of %d nodes; valid=%b@." reached size
        (Apps.Bfs.validate g ~source:0 dist);
      if verbose then
        Fmt.pr "  first distances: %a@."
          Fmt.(list ~sep:sp int)
          (Array.to_list (Array.sub dist 0 (min 20 size)));
      `Ok ()
  | "mis" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:5 ()) in
      let in_mis, report = Apps.Mis.galois ?sink ~policy g in
      pp_stats "mis" report.stats;
      let members = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_mis in
      Fmt.pr "  |MIS| = %d; valid=%b@." members (Apps.Mis.is_maximal_independent g in_mis);
      `Ok ()
  | "dt" ->
      let pts = Geometry.Point.random_unit_square ~seed size in
      let mesh, report = Apps.Dt.galois ?sink ~policy pts in
      pp_stats "dt" report.stats;
      Fmt.pr "  triangles=%d, delaunay violations=%d@." (Mesh.triangle_count mesh)
        (Mesh.delaunay_violations mesh);
      `Ok ()
  | "dmr" ->
      let pts = Geometry.Point.random_unit_square ~seed size in
      let mesh = Apps.Dt.serial pts in
      let before = Mesh.triangle_count mesh in
      let report = Apps.Dmr.galois ?sink ~policy mesh in
      pp_stats "dmr" report.stats;
      Fmt.pr "  triangles %d -> %d; refined=%b@." before (Mesh.triangle_count mesh)
        (Apps.Dmr.refined Apps.Dmr.default_config mesh);
      `Ok ()
  | "pfp" ->
      let g, caps, source, sink_node = Graphlib.Generators.flow_network ~seed ~n:size ~k:4 () in
      let net = Apps.Flow_network.of_graph g caps ~source ~sink:sink_node in
      let result = Apps.Pfp.galois ?sink ~policy net in
      pp_stats "pfp" result.stats;
      let ok, _ = Apps.Flow_network.check_flow net in
      Fmt.pr "  max flow=%d; epochs=%d; global relabels=%d; conservation=%b@."
        result.flow_value result.epochs result.global_relabels ok;
      `Ok ()
  | "cc" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:5 ()) in
      let label, report = Apps.Cc.galois ?sink ~policy g in
      pp_stats "cc" report.stats;
      Fmt.pr "  %d components; valid=%b@." (Apps.Cc.count_components label)
        (Apps.Cc.validate g label);
      `Ok ()
  | "sssp" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
      let dist, report = Apps.Sssp.galois ?sink ~policy g w ~source:0 in
      pp_stats "sssp" report.stats;
      let reached =
        Array.fold_left (fun a d -> if d <> Apps.Sssp.unreached then a + 1 else a) 0 dist
      in
      Fmt.pr "  reached %d of %d; valid=%b@." reached size (Apps.Sssp.validate g w ~source:0 dist);
      `Ok ()
  | "mst" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n:size ~k:4 ()) in
      let w = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 1) g in
      let forest, report = Apps.Boruvka.galois ?sink ~policy g w in
      pp_stats "mst (boruvka)" report.stats;
      Fmt.pr "  forest: %d edges, total weight %d; valid=%b@."
        (List.length forest.Apps.Boruvka.parent_edge) forest.Apps.Boruvka.total_weight
        (Apps.Boruvka.validate g forest);
      `Ok ()
  | "triangles" ->
      let g = Graphlib.Csr.symmetrize (Graphlib.Generators.rmat ~seed ~scale:11 ~edge_factor:8 ()) in
      let total, report = Apps.Triangles.galois ?sink ~policy g in
      pp_stats "triangles" report.stats;
      Fmt.pr "  %d triangles@." total;
      `Ok ()
  | "pagerank" ->
      let g = Graphlib.Generators.kout ~seed ~n:size ~k:5 () in
      let ranks, report = Apps.Pagerank.galois ?sink ~policy g in
      pp_stats "pagerank" report.stats;
      let reference = Apps.Pagerank.serial g in
      Fmt.pr "  max deviation from power iteration: %.5f@."
        (Apps.Pagerank.max_abs_diff ranks reference);
      `Ok ()
  | other -> `Error (false, Printf.sprintf "unknown app %S" other)

open Cmdliner

let app_arg =
  let doc = "Benchmark to run: bfs | mis | dt | dmr | pfp | cc | sssp | mst | triangles | pagerank." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let policy_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Galois.Policy.of_string s) in
  let print ppf p = Galois.Policy.pp ppf p in
  let policy_conv = Arg.conv (parse, print) in
  let doc =
    "Execution policy: $(b,serial), $(b,nondet:T) (speculative, T threads) or $(b,det:T) \
     (deterministic DIG scheduling). The program's code is identical under every policy. \
     det accepts a bracketed option block, \
     $(b,det:8[window=64,spread=1,ratio=0.95,cont=off,validate=on]): window=N|auto pins or \
     derives the first round's window, spread=N sets the locality-spread piles (1 disables), \
     ratio=R sets the adaptive commit-ratio target, cont/validate toggle the continuation \
     optimization and commit-time mark validation."
  in
  Arg.(value & opt policy_conv Galois.Policy.serial & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let size_arg =
  let doc = "Input size (nodes / points, app-dependent)." in
  Arg.(value & opt int 10_000 & info [ "n"; "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Input generator seed (same seed = same input everywhere)." in
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Print sample output values." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let trace_arg =
  let doc =
    "Write the runtime's observability event stream (round/phase events, per-worker \
     counters, timings) to $(docv), one JSON object per line. For $(b,det) policies the \
     stream minus its timing events is identical for any thread count."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "run Deterministic Galois benchmarks under a chosen execution policy" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reproduction of 'Deterministic Galois: On-demand, Portable and Parameterless' \
         (ASPLOS 2014). The same application source runs non-deterministically \
         (fast, timing-dependent answers) or deterministically (identical output for \
         any thread count) depending on --policy.";
      `S Manpage.s_examples;
      `P "galois-run dmr -n 2000 --policy det:4";
      `P "galois-run bfs -n 100000 --policy nondet:8";
      `P "galois-run mst -n 50000 --policy 'det:4[window=64,spread=1]'";
      `P "galois-run bfs -n 20000 --policy det:4 --trace bfs.trace.jsonl";
    ]
  in
  let run_traced app policy size seed verbose trace =
    match trace with
    | None -> run_app ~app ~policy ~size ~seed ~verbose ~sink:None
    | Some path ->
        let sink = Obs.Jsonl.file path in
        Fun.protect
          ~finally:(fun () -> Obs.close sink)
          (fun () -> run_app ~app ~policy ~size ~seed ~verbose ~sink:(Some sink))
  in
  let term =
    Term.(
      ret
        (const run_traced $ app_arg $ policy_arg $ size_arg $ seed_arg $ verbose_arg
       $ trace_arg))
  in
  Cmd.v (Cmd.info "galois-run" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
