(* graph-gen: deterministic paper-scale graph generation.

   Generates a seeded synthetic graph (rmat / kout / uniform / grid)
   straight into the off-heap CSR substrate, optionally attaches a
   deterministic weight plane, and writes it in the compact binary
   GCSR format (or text). --verify reloads what was written and checks
   it is identical — the round-trip proof @graph-smoke runs in CI.

   Examples:
     graph-gen --kind rmat --scale 20 --edge-factor 8 -o rmat20.gcsr
     graph-gen --kind uniform --nodes 1000000 --edges 8000000 --weights 100 -o u.gcsr
     graph-gen --kind grid --rows 1000 --cols 1000 -o grid.gcsr --verify *)

open Cmdliner

let human_bytes b =
  if b >= 1 lsl 30 then Printf.sprintf "%.2f GiB" (float_of_int b /. 1073741824.0)
  else if b >= 1 lsl 20 then Printf.sprintf "%.2f MiB" (float_of_int b /. 1048576.0)
  else if b >= 1 lsl 10 then Printf.sprintf "%.2f KiB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%d B" b

let generate ~kind ~seed ~scale ~edge_factor ~nodes ~k ~edges ~rows ~cols =
  match kind with
  | "rmat" -> Graphlib.Generators.rmat ~seed ~scale ~edge_factor ()
  | "kout" -> Graphlib.Generators.kout ~seed ~n:nodes ~k ()
  | "uniform" -> Graphlib.Generators.uniform ~seed ~n:nodes ~m:edges ()
  | "grid" -> Graphlib.Generators.grid2d ~rows ~cols
  | k -> invalid_arg (Printf.sprintf "unknown kind %S (rmat|kout|uniform|grid)" k)

let run kind seed scale edge_factor nodes k edges rows cols weights out text verify =
  try
    Gc.full_major ();
    let h0 = Gc.quick_stat () in
    let t0 = Galois.Clock.now_s () in
    let g = generate ~kind ~seed ~scale ~edge_factor ~nodes ~k ~edges ~rows ~cols in
    let g =
      match weights with
      | None -> g
      | Some max_weight ->
          Graphlib.Graph_io.attach_random_weights ~seed:(seed + 1) ~max_weight g
    in
    let build_s = Galois.Clock.elapsed_s t0 in
    Gc.full_major ();
    let h1 = Gc.quick_stat () in
    let heap_words = h1.Gc.live_words - h0.Gc.live_words in
    Fmt.pr "graph-gen: %s seed=%d nodes=%d edges=%d%s@." kind seed
      (Graphlib.Csr.nodes g) (Graphlib.Csr.edges g)
      (if Graphlib.Csr.weighted g then " weighted" else "");
    Fmt.pr "  build=%.3fs off-heap=%s (%dB offsets, %dB targets) heap-delta=%d words@."
      build_s
      (human_bytes (Graphlib.Csr.memory_bytes g))
      (Graphlib.Plane.bytes_per_value (Graphlib.Csr.offsets_plane g))
      (Graphlib.Plane.bytes_per_value (Graphlib.Csr.targets_plane g))
      heap_words;
    (match out with
    | None -> ()
    | Some path ->
        let t1 = Galois.Clock.now_s () in
        if text then Graphlib.Graph_io.save_edges path g
        else Graphlib.Graph_io.save_binary path g;
        Fmt.pr "  wrote %s (%s) in %.3fs@." path
          (if text then "text" else "binary GCSR")
          (Galois.Clock.elapsed_s t1);
        if verify then begin
          let t2 = Galois.Clock.now_s () in
          let g' = Graphlib.Graph_io.load path in
          if not (Graphlib.Csr.equal g g') then failwith "verify: reloaded graph differs";
          (match Graphlib.Csr.validate g' with
          | Ok () -> ()
          | Error msg -> failwith ("verify: invalid reloaded graph: " ^ msg));
          Fmt.pr "  verified round-trip in %.3fs@." (Galois.Clock.elapsed_s t2)
        end);
    if out = None && verify then `Error (false, "--verify requires -o") else `Ok ()
  with
  | Invalid_argument msg | Failure msg -> `Error (false, msg)

let kind_arg =
  let doc = "Generator: $(b,rmat), $(b,kout), $(b,uniform) or $(b,grid)." in
  Arg.(value & opt string "rmat" & info [ "kind" ] ~docv:"KIND" ~doc)

let seed_arg =
  let doc = "Generator seed (weights use seed+1)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc = "rmat: log2 of the node count." in
  Arg.(value & opt int 16 & info [ "scale" ] ~docv:"S" ~doc)

let edge_factor_arg =
  let doc = "rmat: edges per node." in
  Arg.(value & opt int 8 & info [ "edge-factor" ] ~docv:"F" ~doc)

let nodes_arg =
  let doc = "kout/uniform: node count." in
  Arg.(value & opt int 100_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let k_arg =
  let doc = "kout: out-degree." in
  Arg.(value & opt int 5 & info [ "degree" ] ~docv:"K" ~doc)

let edges_arg =
  let doc = "uniform: edge count." in
  Arg.(value & opt int 800_000 & info [ "m"; "edges" ] ~docv:"M" ~doc)

let rows_arg =
  let doc = "grid: rows." in
  Arg.(value & opt int 1000 & info [ "rows" ] ~docv:"R" ~doc)

let cols_arg =
  let doc = "grid: columns." in
  Arg.(value & opt int 1000 & info [ "cols" ] ~docv:"C" ~doc)

let weights_arg =
  let doc = "Attach a deterministic weight plane with weights in [1, $(docv)]." in
  Arg.(value & opt (some int) None & info [ "weights" ] ~docv:"MAX" ~doc)

let out_arg =
  let doc = "Output file (binary GCSR unless --text)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let text_arg =
  let doc = "Write the text edge-list format instead of binary." in
  Arg.(value & flag & info [ "text" ] ~doc)

let verify_arg =
  let doc = "Reload the written file and fail unless it round-trips identically." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let cmd =
  let doc = "generate deterministic paper-scale graphs into the compact CSR format" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Seeded synthetic graph generators (R-MAT, uniform k-out, uniform \
         random, 2D grid) streaming straight into the off-heap CSR substrate, \
         with optional per-edge weight planes and a checksummed binary format \
         for load-once service catalogs.";
    ]
  in
  let term =
    Term.(
      ret
        (const run $ kind_arg $ seed_arg $ scale_arg $ edge_factor_arg $ nodes_arg
       $ k_arg $ edges_arg $ rows_arg $ cols_arg $ weights_arg $ out_arg
       $ text_arg $ verify_arg))
  in
  Cmd.v (Cmd.info "graph-gen" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
