(* Static determinism lint driver.

     detlint [PATH...]        lint every .ml under the paths (default: lib bin)
     detlint --json           one JSON object per finding on stdout
     detlint --rules          list the rules and exit

   Exit status 0 when the tree is clean, 1 when there are findings —
   wired into `dune runtest` via the @lint alias, so a stray Random.*,
   Hashtbl.iter or wall-clock read in deterministic-path code fails the
   build unless it carries a reasoned escape comment. *)

let run ~json ~list_rules ~paths =
  if list_rules then begin
    List.iter (fun (name, doc) -> Fmt.pr "%-14s %s@." name doc) Detlint.rules;
    `Ok ()
  end
  else
    let paths = if paths = [] then [ "lib"; "bin" ] else paths in
    match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
    | Some p -> `Error (false, Printf.sprintf "detlint: no such path %S" p)
    | None ->
        let findings = Detlint.scan_paths paths in
        List.iter
          (fun f ->
            if json then print_endline (Detlint.to_json f)
            else Fmt.pr "%a@." Detlint.pp_finding f)
          findings;
        let n = List.length findings in
        if n = 0 then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf
                "detlint: %d finding(s) (suppress with (* detlint: allow <rule> — \
                 <reason> *) if genuinely safe)"
                n )

open Cmdliner

let json_arg =
  let doc = "Emit findings as one JSON object per line." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc = "List the lint rules and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let paths_arg =
  let doc = "Files or directories to lint (every .ml underneath, recursively)." in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

let cmd =
  let doc = "statically lint source for determinism hazards" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml under the given paths and flags constructs that undermine \
         deterministic execution: ambient randomness (Random.*), hash-bucket iteration \
         order (Hashtbl.iter/fold/to_seq*), wall-clock reads outside Clock and driver \
         code, Domain.self-dependent control flow, and polymorphic structural hashing \
         of mutable values (Hashtbl.hash family).";
      `P
        "A finding is suppressed by a comment (* detlint: allow <rule> — <reason> *) on \
         or just above the offending line ((* detlint: allow-file ... *) covers the whole \
         file). The reason is mandatory: an allow without one, or naming an unknown rule, \
         is itself reported as bad-allow.";
      `S Manpage.s_examples;
      `P "detlint";
      `P "detlint --json lib/core";
      `P "detlint --rules";
    ]
  in
  let term =
    Term.(
      ret
        (const (fun json list_rules paths -> run ~json ~list_rules ~paths)
        $ json_arg $ rules_arg $ paths_arg))
  in
  Cmd.v (Cmd.info "detlint" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
