(* galois-serve: the Galois-as-a-service driver.

   Builds the synthetic catalog once, spawns one persistent domain
   pool, and pushes a mixed bfs/sssp/cc workload through the
   deterministic job server in fixed-size arrival batches. Reports
   queries/sec, latency percentiles and the service digest — which is a
   function of the submission sequence only, so the same invocation
   prints the same digest at any --domains. *)

open Cmdliner

let pp_stats ppf (s : Service.Server.stats) =
  Fmt.pf ppf "submitted=%d completed=%d failed=%d rejected=%d batches=%d"
    s.submitted s.completed s.failed s.rejected s.batches

let run nodes seed requests batch domains threads max_pending trace out verbose =
  if nodes < 1 then `Error (false, "--nodes must be >= 1")
  else if requests < 1 then `Error (false, "--requests must be >= 1")
  else if batch < 1 then `Error (false, "--batch must be >= 1")
  else
    try
      (* Global event sink: null unless --trace, so teeing it onto every
         job costs nothing by default. *)
      let sink =
        Obs.Sink.of_list
          (match trace with None -> [] | Some path -> [ Obs.Jsonl.file path ])
      in
      Fun.protect ~finally:(fun () -> Obs.close sink) @@ fun () ->
      Galois.Pool.with_pool ?domains @@ fun pool ->
      let threads =
        match threads with Some t -> t | None -> Galois.Pool.size pool
      in
      let catalog = Service.Catalog.synthetic ~seed ~nodes () in
      let queries = Detcheck.Service_case.queries ~seed ~nodes ~count:requests in
      let server =
        Service.Server.create ~threads ~max_pending ~sink ~catalog pool
      in
      let show rs =
        if verbose then
          List.iter (fun r -> Fmt.pr "%s@." (Service.Server.render r)) rs
      in
      let t0 = Galois.Clock.now_s () in
      List.iteri
        (fun i q ->
          ignore (Service.Server.submit server q);
          if (i + 1) mod batch = 0 then show (Service.Server.drain server))
        queries;
      show (Service.Server.drain server);
      let wall_s = Galois.Clock.elapsed_s t0 in
      let stats = Service.Server.stats server in
      let qps =
        if wall_s <= 0.0 then 0.0 else float_of_int stats.completed /. wall_s
      in
      let pct = Service.Server.percentile_latency_s server in
      Fmt.pr "galois-serve: pool=%d det:%d catalog=[%s] %a@."
        (Galois.Pool.size pool) threads
        (String.concat "," (Service.Catalog.names catalog))
        pp_stats stats;
      Fmt.pr "  wall=%.4fs queries/s=%.1f p50=%.3fms p99=%.3fms digest=%a@."
        wall_s qps
        (pct 50.0 *. 1e3)
        (pct 99.0 *. 1e3)
        Galois.Trace_digest.pp stats.digest;
      (match out with
      | None -> ()
      | Some path ->
          (* A BENCH_serve-shaped record for tooling. galois-serve makes
             no det:1 allocation pass, so the GC columns stay zero; the
             bench harness owns the gated record. *)
          let commits, rounds =
            List.fold_left
              (fun (c, r) (resp : Service.Server.response) ->
                match resp.outcome with
                | Service.Server.Done { commits; rounds; _ } ->
                    (c + commits, r + rounds)
                | _ -> (c, r))
              (0, 0)
              (Service.Server.responses server)
          in
          Analysis.Bench_record.save path
            {
              Analysis.Bench_record.app = "serve";
              policy = Galois.Policy.to_string (Galois.Policy.det threads);
              size = nodes;
              seed;
              build_s = 0.0;
              graph_bytes = Service.Catalog.total_graph_bytes catalog;
              wall_s;
              inspect_s = 0.0;
              select_s = 0.0;
              other_s = wall_s;
              commits;
              aborts = 0;
              rounds;
              generations = 0;
              work_units = 0;
              efficiency = 0.0;
              minor_words = 0.0;
              promoted_words = 0.0;
              major_words = 0.0;
              minor_collections = 0;
              major_collections = 0;
              minor_words_per_commit = 0.0;
              rounds_per_s =
                Analysis.Bench_record.rounds_per_s ~rounds ~wall_s;
              atomics_per_commit = 0.0;
              spins = 0;
              parks = 0;
              queries_per_s = qps;
              p99_latency_s = pct 99.0;
              digest = Galois.Trace_digest.to_hex stats.digest;
            };
          Fmt.pr "  record -> %s@." path);
      `Ok ()
    with Invalid_argument msg | Failure msg -> `Error (false, msg)

let nodes_arg =
  let doc = "Node count of each synthetic catalog graph." in
  Arg.(value & opt int 4_000 & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for both the catalog graphs and the query mix." in
  Arg.(value & opt int 2014 & info [ "seed" ] ~docv:"SEED" ~doc)

let requests_arg =
  let doc = "Number of queries to submit." in
  Arg.(value & opt int 500 & info [ "requests" ] ~docv:"N" ~doc)

let batch_arg =
  let doc = "Arrival batch size: drain after every $(docv) submissions." in
  Arg.(value & opt int 64 & info [ "batch" ] ~docv:"B" ~doc)

let domains_arg =
  let doc =
    "Worker pool size (default: the recommended domain count). The response \
     stream is byte-identical at any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"D" ~doc)

let threads_arg =
  let doc = "det:$(docv) policy for each query (default: the pool size)." in
  Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"T" ~doc)

let max_pending_arg =
  let doc = "Admission-queue capacity; beyond it submissions are rejected." in
  Arg.(value & opt int 1024 & info [ "max-pending" ] ~docv:"Q" ~doc)

let trace_arg =
  let doc = "Tee every job's deterministic event stream to $(docv) (JSONL)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let out_arg =
  let doc = "Write a BENCH_serve-style JSON record to $(docv)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Print every response line as its batch drains." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let cmd =
  let doc = "serve deterministic Galois queries from a persistent domain pool" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads a graph catalog once, keeps a domain pool warm, and answers \
         batches of bfs/sssp/cc queries deterministically: identical \
         submission sequences produce byte-identical responses no matter the \
         pool size or how the arrivals were grouped into batches.";
      `S Manpage.s_examples;
      `P "galois-serve --requests 1000 --batch 64 --domains 4";
      `P "galois-serve -n 20000 --requests 200 --out BENCH_serve.json";
      `P "galois-serve --requests 32 --batch 8 --trace serve.jsonl -v";
    ]
  in
  let term =
    Term.(
      ret
        (const run $ nodes_arg $ seed_arg $ requests_arg $ batch_arg
       $ domains_arg $ threads_arg $ max_pending_arg $ trace_arg $ out_arg
       $ verbose_arg))
  in
  Cmd.v (Cmd.info "galois-serve" ~version:"1.0.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
