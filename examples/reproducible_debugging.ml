(* Why on-demand determinism matters for debugging (paper §1).

   The program below has a benign-looking race in its *algorithm* (not
   its synchronization): each task claims one slot in a shared log, so
   the log's contents depend on execution order. Under the speculative
   scheduler the answer changes from run to run; under the deterministic
   scheduler it is identical every time and for every thread count — so
   a bug that depends on task ordering can be replayed exactly.

   Run with: dune exec examples/reproducible_debugging.exe *)

let run ~policy ~seed_order =
  let n = 400 in
  let slots = 64 in
  let locks = Galois.Lock.create_array slots in
  let log = Array.make slots (-1) in
  let cursor_lock = Galois.Lock.create () in
  let cursor = ref 0 in
  let operator ctx task =
    (* Claim the cursor, then the slot it designates. Cautious: both
       acquisitions precede the failsafe point. The *choice of slot*
       depends on execution order — the non-determinism under test. *)
    Galois.Context.acquire ctx cursor_lock;
    let slot = !cursor mod slots in
    Galois.Context.acquire ctx locks.(slot);
    Galois.Context.failsafe ctx;
    cursor := !cursor + 1;
    if log.(slot) < 0 then log.(slot) <- task
  in
  let tasks = Array.init n (fun i -> (i * seed_order) mod n) in
  let _ =
    Galois.Run.make ~operator tasks |> Galois.Run.policy policy |> Galois.Run.exec
  in
  Array.to_list log

let fingerprint l = Hashtbl.hash l

let () =
  Fmt.pr "Speculative execution (nondet:4), three runs:@.";
  let nd () = fingerprint (run ~policy:(Galois.Policy.nondet 4) ~seed_order:7) in
  let a, b, c = (nd (), nd (), nd ()) in
  Fmt.pr "  log fingerprints: %08x %08x %08x%s@." a b c
    (if a = b && b = c then "  (equal this time - but not guaranteed!)" else "  (differ)");

  Fmt.pr "@.Deterministic execution (det), thread counts 1, 2, 4, 8 - one fingerprint:@.";
  let det t = fingerprint (run ~policy:(Galois.Policy.det t) ~seed_order:7) in
  let results = List.map det [ 1; 2; 4; 8 ] in
  List.iteri (fun i f -> Fmt.pr "  det:%d -> %08x@." (List.nth [ 1; 2; 4; 8 ] i) f) results;
  match results with
  | f :: rest when List.for_all (fun x -> x = f) rest ->
      Fmt.pr "@.All deterministic runs agree: the execution can be replayed exactly@.";
      Fmt.pr "on any machine - the paper's portability property.@."
  | _ ->
      Fmt.pr "DETERMINISM VIOLATION@.";
      exit 1
