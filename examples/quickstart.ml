(* Quickstart: a complete Galois program in ~30 lines.

   The program: an unordered "account settlement". Each task moves the
   balance of one account into its hub account. Tasks conflict when they
   share a hub — the classic irregular pattern.

   The same operator runs serially, speculatively in parallel, or
   deterministically; only the policy changes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let accounts = 1000 and hubs = 16 in
  let hub_of i = i mod hubs in
  (* One abstract location per hub: tasks touching the same hub
     conflict. *)
  let hub_locks = Galois.Lock.create_array hubs in
  let hub_balance = Array.make hubs 0 in
  let balance = Array.init accounts (fun i -> 10 + (i mod 7)) in

  (* The operator: acquire the neighborhood, declare the failsafe point,
     then mutate. This code never changes between policies. *)
  let operator ctx account =
    Galois.Context.acquire ctx hub_locks.(hub_of account);
    Galois.Context.failsafe ctx;
    hub_balance.(hub_of account) <- hub_balance.(hub_of account) + balance.(account);
    balance.(account) <- 0
  in

  let run policy =
    Array.fill hub_balance 0 hubs 0;
    Array.iteri (fun i _ -> balance.(i) <- 10 + (i mod 7)) balance;
    let report =
      Galois.Run.make ~operator (Array.init accounts (fun i -> i))
      |> Galois.Run.policy policy
      |> Galois.Run.exec
    in
    Fmt.pr "%a: commits=%d aborts=%d rounds=%d total=%d@." Galois.Policy.pp policy
      report.stats.commits report.stats.aborts report.stats.rounds
      (Array.fold_left ( + ) 0 hub_balance)
  in

  Fmt.pr "The same program under three execution policies:@.";
  run Galois.Policy.serial;
  run (Galois.Policy.nondet 4);
  run (Galois.Policy.det 4);
  Fmt.pr "@.The total is always the same (the algorithm is deterministic here);@.";
  Fmt.pr "'det' additionally guarantees identical execution structure on any machine.@."
