(** Checkpoint/replay harnesses over the {!Galois.Run} replay
    primitives: lockstep dual-run digest cross-checking (the DMR-style
    verifier behind [detcheck --dmr-style]) and crash-injection
    (run, kill at a round, resume, compare with the uninterrupted
    run). The primitives themselves — [Run.checkpoint_every],
    [Run.resume_from], [Run.stop_after] and the snapshot codec — live
    in lib/core; this layer only composes them. *)

module Snapshot = Galois.Snapshot
(** Re-exported for callers that depend on [replay] alone. *)

(** Run a job twice (any two thread counts / pools) and cross-check the
    deterministic digest prefix at every shared round boundary —
    dual-modular-redundancy-style execution, with divergence localized
    to the first differing boundary. *)
module Lockstep : sig
  type trail = (int * Galois.Trace_digest.t) list
  (** [(round, digest prefix through that round)] in ascending round
      order. *)

  type verdict =
    | Agree of { compared : int }  (** all shared boundaries matched *)
    | Diverge of { round : int; a : Galois.Trace_digest.t; b : Galois.Trace_digest.t }
        (** earliest shared boundary where the digests differ *)
    | Disjoint  (** no shared boundaries — nothing was compared *)

  val collect :
    every:int -> ('item, 'state) Galois.Run.t -> trail * Galois.Run.report
  (** Execute the description with an [every]-round checkpoint hook
      that records [(round, digest)] — the description must already
      carry a det policy (and pool, if shared). *)

  val first_divergence : trail -> trail -> verdict
  (** Compare two trails at their common rounds (cadences may differ);
      rounds sampled by only one side are skipped. *)

  val pp_verdict : Format.formatter -> verdict -> unit
end

type crash_outcome = {
  full : Galois.Run.report;  (** the uninterrupted reference run *)
  resumed : Galois.Run.report;
      (** the run that was stopped at [crash_round] and resumed to
          completion; its deterministic stats (digest, rounds, commits)
          must equal [full]'s *)
  crash_round : int;
      (** the round the crash boundary was taken after; 0 if the run
          finished without taking any boundary (empty task pool) *)
}

val crash_resume :
  ?resume_policy:Galois.Policy.t ->
  at:int ->
  full:('i, 'sa) Galois.Run.t ->
  crash:('j, 'sb) Galois.Run.t ->
  unit ->
  crash_outcome
(** Crash-injection harness. [full] and [crash] must be the same job
    over two {e separate} worlds (both with det policies applied):
    [full] runs uninterrupted; [crash] is executed with per-round
    checkpointing and stopped at the first boundary [>= at], then
    resumed live from the last boundary — under [resume_policy] if
    given (e.g. a different thread count; determinism says the digest
    must not care). [at] past the end of the run degrades to a
    complete run plus a no-op resume. *)

val swap_pending_ids :
  int -> int -> 'item Galois.Det_sched.boundary -> 'item Galois.Det_sched.boundary
(** The negative-control perturbation: a copy of the boundary with
    pending-deque entries [i] and [j] (ids and items) swapped. The task
    set is preserved but the window draw order is not, so a resume from
    the perturbed boundary diverges at the first round after it. *)
