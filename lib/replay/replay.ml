(* Checkpoint/replay harnesses over the Galois.Run replay primitives.

   The primitives (Run.checkpoint_every / resume / stop_after, the
   Snapshot codec) live in lib/core where the builder can reach them;
   this layer composes them into the verification workflows: lockstep
   dual-run digest cross-checking (the DMR-style verifier), and
   crash-injection (run, kill at a round, resume, compare against the
   uninterrupted run). *)

module D = Galois.Trace_digest
module Snapshot = Galois.Snapshot

(* ------------------------------------------------------------------ *)
(* Lockstep verification                                               *)
(* ------------------------------------------------------------------ *)

module Lockstep = struct
  type trail = (int * D.t) list

  type verdict =
    | Agree of { compared : int }
    | Diverge of { round : int; a : D.t; b : D.t }
    | Disjoint

  let collect ~every run =
    let acc = ref [] in
    let report =
      run
      |> Galois.Run.checkpoint_every every
      |> Galois.Run.on_checkpoint (fun snap ->
             let b = snap.Snapshot.boundary in
             acc := (b.Galois.Det_sched.b_rounds, b.Galois.Det_sched.b_digest) :: !acc)
      |> Galois.Run.exec
    in
    (List.rev !acc, report)

  (* Walk both trails in ascending round order; compare digests at
     common rounds, skip rounds only one side sampled (different
     cadences). The first unequal pair names the earliest round the two
     executions are known to have diverged by. *)
  let first_divergence a b =
    let rec go compared a b =
      match (a, b) with
      | (ra, da) :: ta, (rb, db) :: tb ->
          if ra < rb then go compared ta b
          else if rb < ra then go compared a tb
          else if D.equal da db then go (compared + 1) ta tb
          else Diverge { round = ra; a = da; b = db }
      | _, _ -> if compared = 0 then Disjoint else Agree { compared }
    in
    go 0 a b

  let pp_verdict ppf = function
    | Agree { compared } -> Fmt.pf ppf "agree (%d boundaries compared)" compared
    | Diverge { round; a; b } ->
        Fmt.pf ppf "diverge at round %d: %a vs %a" round D.pp a D.pp b
    | Disjoint -> Fmt.pf ppf "no common boundaries"
end

(* ------------------------------------------------------------------ *)
(* Crash injection                                                     *)
(* ------------------------------------------------------------------ *)

type crash_outcome = {
  full : Galois.Run.report;  (* the uninterrupted run *)
  resumed : Galois.Run.report;  (* crash at [crash_round], then resume *)
  crash_round : int;  (* 0: the run finished before taking any boundary *)
}

(* Execute [full] to completion; execute [crash] (a description over a
   *separate* world) with per-round checkpointing and a stop at [at];
   then re-execute the same description with [Run.resume] from the last
   boundary — the world object is shared between the crashed and
   resumed exec, which is exactly the live-resume contract. If [at] is
   past the end, the "crashed" run completes and the resume is a no-op
   replay of the final boundary. The deterministic halves of the two
   reports must then agree: digest, rounds, commits, output. *)
let crash_resume ?resume_policy ~at ~full ~crash () =
  let full_report = Galois.Run.exec full in
  let last = ref None in
  let crashed =
    crash
    |> Galois.Run.checkpoint_every 1
    |> Galois.Run.on_checkpoint (fun snap -> last := Some snap.Snapshot.boundary)
    |> Galois.Run.stop_after at
    |> Galois.Run.exec
  in
  match !last with
  | None ->
      (* Zero rounds executed (empty task pool): nothing to resume. *)
      { full = full_report; resumed = crashed; crash_round = 0 }
  | Some b ->
      let resumed =
        crash
        |> (match resume_policy with Some p -> Galois.Run.policy p | None -> Fun.id)
        |> Galois.Run.resume b
        |> Galois.Run.exec
      in
      { full = full_report; resumed; crash_round = b.Galois.Det_sched.b_rounds }

(* ------------------------------------------------------------------ *)
(* Fault injection on snapshots                                        *)
(* ------------------------------------------------------------------ *)

(* The negative-control perturbation: swapping two pending-deque
   entries preserves the task *set* but changes the deque order the
   window is drawn from, so the resumed schedule diverges at the first
   round after the boundary — which the lockstep verifier must localize
   to exactly that round. *)
let swap_pending_ids i j (b : 'item Galois.Det_sched.boundary) =
  let n = Array.length b.Galois.Det_sched.b_pending_ids in
  if i < 0 || j < 0 || i >= n || j >= n then
    invalid_arg "Replay.swap_pending_ids: index out of bounds";
  let ids = Array.copy b.Galois.Det_sched.b_pending_ids in
  let items = Array.copy b.Galois.Det_sched.b_pending_items in
  let ti = ids.(i) in
  ids.(i) <- ids.(j);
  ids.(j) <- ti;
  let xi = items.(i) in
  items.(i) <- items.(j);
  items.(j) <- xi;
  { b with Galois.Det_sched.b_pending_ids = ids; b_pending_items = items }
