(* Graph serialization.

   Two formats, both deterministic round-trips:

   - Plain text: one "u v [w]" edge per line, '#' comments, first
     non-comment line "n m". Human-greppable, used by tests and small
     exchanges.

   - Binary "GCSR1": magic, a fixed header (node/edge counts and the
     byte width of each plane), the raw offsets/targets/weights planes
     little-endian, and an FNV-1a-64 checksum trailer over everything
     before it. Loads are checksum-verified and then re-validated
     against the CSR structural invariants, so truncation, bit flips
     and header tampering are all rejected with a reason. This is the
     format the service catalog and the bench harness load
     million-vertex inputs from: no parsing, no intermediate lists,
     straight into off-heap planes. *)

let parse_error line what = failwith (Printf.sprintf "Graph_io: line %d: %s" line what)

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let write_edges oc g =
  Printf.fprintf oc "# deterministic_galois edge list\n";
  Printf.fprintf oc "%d %d\n" (Csr.nodes g) (Csr.edges g);
  if Csr.weighted g then
    Csr.iter_edges_i g (fun e u v -> Printf.fprintf oc "%d %d %d\n" u v (Csr.weight g e))
  else Csr.iter_edges g (fun u v -> Printf.fprintf oc "%d %d\n" u v)

let save_edges path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_edges oc g)

let read_edges ic =
  let lineno = ref 0 in
  let rec next_line () =
    incr lineno;
    match input_line ic with
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then next_line () else Some line
    | exception End_of_file -> None
  in
  let header =
    match next_line () with
    | None -> parse_error !lineno "missing header"
    | Some l -> l
  in
  let n, m =
    match String.split_on_char ' ' header with
    | [ n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m when n >= 0 && m >= 0 -> (n, m)
        | _ -> parse_error !lineno "bad header")
    | _ -> parse_error !lineno "bad header"
  in
  let edges = Array.make m (0, 0) in
  let weights = ref None in
  for i = 0 to m - 1 do
    match next_line () with
    | None -> parse_error !lineno "unexpected end of file"
    | Some l -> (
        match List.filter (fun s -> s <> "") (String.split_on_char ' ' l) with
        | u :: v :: rest -> (
            (match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> edges.(i) <- (u, v)
            | _ -> parse_error !lineno "bad edge");
            match rest with
            | [] ->
                if !weights <> None then parse_error !lineno "missing weight column"
            | w :: _ -> (
                (* The first edge line fixes whether the file is
                   weighted; after that the column is mandatory. *)
                match int_of_string_opt w with
                | Some w when w >= 0 ->
                    let ws =
                      match !weights with
                      | Some ws -> ws
                      | None ->
                          if i > 0 then parse_error !lineno "unexpected weight column"
                          else begin
                            let ws = Array.make m 0 in
                            weights := Some ws;
                            ws
                          end
                    in
                    ws.(i) <- w
                | _ -> parse_error !lineno "bad weight"))
        | _ -> parse_error !lineno "bad edge")
  done;
  let g = Csr.of_edges ~n edges in
  match !weights with
  | None -> g
  | Some ws ->
      (* Weights arrived in input edge order; the counting sort is
         stable, so re-sorting them alongside the edges keeps each
         weight attached to its edge. *)
      let b = Csr.Builder.create ~capacity:m ~n () in
      Array.iteri (fun i (u, v) -> Csr.Builder.add_weighted_edge b u v ws.(i)) edges;
      Csr.Builder.build b

let load_edges path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_edges ic)

(* ------------------------------------------------------------------ *)
(* Binary format                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "GCSR1\n"

(* FNV-1a over bytes in Int64 (the checksum must not depend on OCaml's
   63-bit int). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_bytes h bytes len =
  let h = ref h in
  for i = 0 to len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get bytes i)))) fnv_prime
  done;
  !h

let chunk_size = 65536

(* Encode [len] plane values of width [w] bytes through a chunk buffer,
   feeding each flushed chunk to [emit]. *)
let stream_plane ~emit plane =
  let w = Plane.bytes_per_value plane in
  let len = Plane.length plane in
  let buf = Bytes.create chunk_size in
  let pos = ref 0 in
  for i = 0 to len - 1 do
    if !pos + 8 > chunk_size then begin
      emit buf !pos;
      pos := 0
    end;
    let v = Plane.unsafe_get plane i in
    if w = 4 then Bytes.set_int32_le buf !pos (Int32.of_int v)
    else Bytes.set_int64_le buf !pos (Int64.of_int v);
    pos := !pos + w
  done;
  if !pos > 0 then emit buf !pos

let write_binary oc g =
  let checksum = ref fnv_offset in
  let emit bytes len =
    checksum := fnv_bytes !checksum bytes len;
    output_bytes oc (if len = Bytes.length bytes then bytes else Bytes.sub bytes 0 len)
  in
  let emit_string s =
    let b = Bytes.of_string s in
    emit b (Bytes.length b)
  in
  let emit_u64 v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    emit b 8
  in
  let offsets = Csr.offsets_plane g and targets = Csr.targets_plane g in
  let weights = Csr.weights_plane g in
  emit_string magic;
  emit_u64 (Csr.nodes g);
  emit_u64 (Csr.edges g);
  emit_u64 (Plane.bytes_per_value offsets);
  emit_u64 (Plane.bytes_per_value targets);
  emit_u64 (match weights with None -> 0 | Some w -> Plane.bytes_per_value w);
  stream_plane ~emit offsets;
  stream_plane ~emit targets;
  (match weights with None -> () | Some w -> stream_plane ~emit w);
  let trailer = Bytes.create 8 in
  Bytes.set_int64_le trailer 0 !checksum;
  output_bytes oc trailer

let save_binary path g =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_binary oc g)

let corrupt what = failwith (Printf.sprintf "Graph_io: corrupt binary graph: %s" what)

let read_binary ic =
  let checksum = ref fnv_offset in
  let read_exact len what =
    let b = Bytes.create len in
    (try really_input ic b 0 len with End_of_file -> corrupt ("truncated " ^ what));
    checksum := fnv_bytes !checksum b len;
    b
  in
  let got_magic = read_exact (String.length magic) "magic" in
  if Bytes.to_string got_magic <> magic then corrupt "bad magic";
  let read_u64 what =
    let v = Bytes.get_int64_le (read_exact 8 what) 0 in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      corrupt ("header field out of range: " ^ what);
    Int64.to_int v
  in
  let n = read_u64 "node count" in
  let m = read_u64 "edge count" in
  let offw = read_u64 "offsets width" in
  let tgtw = read_u64 "targets width" in
  let ww = read_u64 "weights width" in
  let check_width what = function
    | 4 | 8 -> ()
    | w -> corrupt (Printf.sprintf "bad %s width %d" what w)
  in
  check_width "offsets" offw;
  check_width "targets" tgtw;
  (match ww with 0 | 4 | 8 -> () | w -> corrupt (Printf.sprintf "bad weights width %d" w));
  let read_plane ~width len what =
    let plane =
      Plane.create ~max_value:(if width = 4 then Plane.i32_max else max_int) len
    in
    let buf = Bytes.create chunk_size in
    let per_chunk = chunk_size / width in
    let i = ref 0 in
    while !i < len do
      let count = min per_chunk (len - !i) in
      let bytes = count * width in
      (try really_input ic buf 0 bytes with End_of_file -> corrupt ("truncated " ^ what));
      checksum := fnv_bytes !checksum buf bytes;
      for j = 0 to count - 1 do
        let v =
          if width = 4 then Int32.to_int (Bytes.get_int32_le buf (j * 4))
          else Int64.to_int (Bytes.get_int64_le buf (j * 8))
        in
        if v < 0 then corrupt ("negative value in " ^ what);
        Plane.unsafe_set plane (!i + j) v
      done;
      i := !i + count
    done;
    plane
  in
  let offsets = read_plane ~width:offw (n + 1) "offsets plane" in
  let targets = read_plane ~width:tgtw m "targets plane" in
  let weights = if ww = 0 then None else Some (read_plane ~width:ww m "weights plane") in
  let expected = !checksum in
  let trailer = Bytes.create 8 in
  (try really_input ic trailer 0 8 with End_of_file -> corrupt "truncated checksum");
  if Bytes.get_int64_le trailer 0 <> expected then corrupt "checksum mismatch";
  match Csr.of_planes ?weights ~n ~offsets ~targets () with
  | g -> g
  | exception Invalid_argument msg -> corrupt msg

let load_binary path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_binary ic)

(* Format-sniffing load: binary when the file starts with the GCSR
   magic, text otherwise. *)
let load path =
  let ic = open_in_bin path in
  let is_binary =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let b = Bytes.create (String.length magic) in
        match really_input ic b 0 (String.length magic) with
        | () -> Bytes.to_string b = magic
        | exception End_of_file -> false)
  in
  if is_binary then load_binary path else load_edges path

(* ------------------------------------------------------------------ *)
(* Deterministic weights                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic uniform edge weights in [1, max_weight]. *)
let random_weights ?(seed = 1) ?(max_weight = 100) g =
  let rng = Parallel.Splitmix.create seed in
  Array.init (Csr.edges g) (fun _ -> 1 + Parallel.Splitmix.int rng max_weight)

(* Same value sequence as [random_weights], generated straight into a
   weight plane — no heap array at million-edge scale. *)
let attach_random_weights ?(seed = 1) ?(max_weight = 100) g =
  let rng = Parallel.Splitmix.create seed in
  let w = Plane.create ~max_value:max_weight (Csr.edges g) in
  for e = 0 to Csr.edges g - 1 do
    Plane.unsafe_set w e (1 + Parallel.Splitmix.int rng max_weight)
  done;
  Csr.with_weight_plane g w

(* Weights for symmetric graphs where both directions of an undirected
   edge must carry the same weight (e.g. minimum spanning forest): the
   weight is a deterministic function of the unordered endpoint pair. *)
let undirected_random_weights ?(seed = 1) ?(max_weight = 100) g =
  let out = Array.make (Csr.edges g) 0 in
  Csr.iter_edges_i g (fun e u v ->
      let a = min u v and b = max u v in
      let rng = Parallel.Splitmix.create (seed + (a * 1_000_003) + b) in
      out.(e) <- 1 + Parallel.Splitmix.int rng max_weight);
  out
