(** Deterministic synthetic graph generators (paper §4.2 inputs), built
    for paper scale: edges stream straight into off-heap CSR planes
    with no per-node list allocation, so 10^6–10^7-vertex inputs build
    in seconds with a near-empty heap. *)

val kout : ?seed:int -> n:int -> k:int -> unit -> Csr.t
(** Uniform random graph: each node gets [k] distinct random out-edges
    (no self-loops) — the bfs/mis/pfp input family of the paper.
    Byte-identical output to the historical list-based generator for
    any (seed, n, k). *)

val grid2d : rows:int -> cols:int -> Csr.t
(** 4-connected grid (the 2D road-like input), symmetric. *)

val rmat :
  ?seed:int -> ?a:float -> ?b:float -> ?c:float -> scale:int -> edge_factor:int -> unit -> Csr.t
(** R-MAT power-law generator; [2^scale] nodes, [edge_factor] edges per
    node. *)

val uniform : ?seed:int -> n:int -> m:int -> unit -> Csr.t
(** Uniform random multigraph: [m] edges with uniform endpoints, no
    self-loops. *)

val flow_network :
  ?seed:int -> ?max_capacity:int -> n:int -> k:int -> unit -> Csr.t * int array * int * int
(** Random flow instance: (graph, edge capacities, source, sink). *)
