(* Compressed-sparse-row directed graphs on off-heap planes.

   The immutable topology shared by the graph benchmarks. Node ids are
   0..n-1; the out-edges of u occupy the index range
   [offsets.(u), offsets.(u+1)) of [targets]. Edge indices are stable
   and usable as keys for per-edge payload arrays (capacities, flows),
   and an optional weights plane stores per-edge weights adjacent to
   the topology (sssp).

   Storage is [Plane.t] (Bigarray, automatic 4/8-byte element sizing),
   so a graph's bulk lives outside the OCaml heap: the GC never scans
   or moves it, and a million-vertex graph costs a few dozen heap words
   regardless of edge count. Accessors are direct int loops — no
   closures or refs allocated per call on the traversal hot paths. *)

type t = {
  n : int;
  m : int;
  offsets : Plane.t;  (* length n+1, monotone, offsets[0]=0, offsets[n]=m *)
  targets : Plane.t;  (* length m, values in [0, n) *)
  weights : Plane.t option;  (* length m when present *)
  sorted : bool;  (* every adjacency range ascending (enables binary search) *)
}

let nodes t = t.n
let edges t = t.m

let memory_bytes t =
  Plane.memory_bytes t.offsets + Plane.memory_bytes t.targets
  + match t.weights with None -> 0 | Some w -> Plane.memory_bytes w

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let adjacency_sorted ~n ~offsets ~targets =
  let sorted = ref true in
  for u = 0 to n - 1 do
    let lo = Plane.unsafe_get offsets u and hi = Plane.unsafe_get offsets (u + 1) in
    for e = lo + 1 to hi - 1 do
      if Plane.unsafe_get targets (e - 1) > Plane.unsafe_get targets e then sorted := false
    done
  done;
  !sorted

(* Structural validation: offsets monotone and anchored, targets in
   range, weights (when present) matching the edge count. [Graph_io]
   runs this on every load, so a corrupt file that happens to pass the
   checksum still cannot produce an out-of-invariant graph. *)
let check ~n ~m ~offsets ~targets ~weights =
  if n < 0 || m < 0 then Error "negative node or edge count"
  else if Plane.length offsets <> n + 1 then Error "offsets length is not nodes + 1"
  else if Plane.length targets <> m then Error "targets length is not the edge count"
  else if Plane.get offsets 0 <> 0 then Error "offsets do not start at 0"
  else if Plane.get offsets n <> m then Error "offsets do not end at the edge count"
  else begin
    let ok = ref (Ok ()) in
    for u = 0 to n - 1 do
      if Plane.unsafe_get offsets u > Plane.unsafe_get offsets (u + 1) then
        ok := Error "offsets not monotone"
    done;
    for e = 0 to m - 1 do
      let v = Plane.unsafe_get targets e in
      if v < 0 || v >= n then ok := Error "edge target out of range"
    done;
    (match weights with
    | Some w when Plane.length w <> m -> ok := Error "weights length is not the edge count"
    | _ -> ());
    Result.map (fun () -> ()) !ok
  end

let of_planes ?weights ~n ~offsets ~targets () =
  match check ~n ~m:(Plane.length targets) ~offsets ~targets ~weights with
  | Error msg -> invalid_arg ("Csr.of_planes: " ^ msg)
  | Ok () ->
      let m = Plane.length targets in
      { n; m; offsets; targets; weights; sorted = adjacency_sorted ~n ~offsets ~targets }

let of_adjacency adj =
  let n = Array.length adj in
  let offsets_arr = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets_arr.(u + 1) <- offsets_arr.(u) + List.length adj.(u)
  done;
  let m = offsets_arr.(n) in
  let offsets = Plane.create ~max_value:m (n + 1) in
  Array.iteri (fun i o -> Plane.unsafe_set offsets i o) offsets_arr;
  let targets = Plane.create ~max_value:(max 0 (n - 1)) m in
  for u = 0 to n - 1 do
    List.iteri
      (fun i v ->
        if v < 0 || v >= n then invalid_arg "Csr.of_adjacency: node out of range";
        Plane.unsafe_set targets (offsets_arr.(u) + i) v)
      adj.(u)
  done;
  { n; m; offsets; targets; weights = None; sorted = adjacency_sorted ~n ~offsets ~targets }

(* Streaming counting-sort build shared by [of_edges] and
   [Builder.build]: a stable counting sort by source node, so edge
   order is preserved per source — the same adjacency order
   [of_adjacency] produces when its lists are built in edge order. *)
let of_edge_buffers ?wbuf ~n ~m ~src ~dst () =
  let degree = Plane.create ~max_value:m n in
  for i = 0 to m - 1 do
    let u = Plane.Buf.unsafe_get src i in
    Plane.unsafe_set degree u (Plane.unsafe_get degree u + 1)
  done;
  let offsets = Plane.create ~max_value:m (n + 1) in
  for u = 0 to n - 1 do
    Plane.unsafe_set offsets (u + 1) (Plane.unsafe_get offsets u + Plane.unsafe_get degree u)
  done;
  (* [degree] becomes the insertion cursor (relative position within
     each source's range). *)
  for u = 0 to n - 1 do
    Plane.unsafe_set degree u 0
  done;
  let targets = Plane.create ~max_value:(max 0 (n - 1)) m in
  let weights =
    match wbuf with
    | None -> None
    | Some wb ->
        let max_w = ref 0 in
        for i = 0 to m - 1 do
          max_w := max !max_w (Plane.Buf.unsafe_get wb i)
        done;
        Some (Plane.create ~max_value:!max_w m)
  in
  for i = 0 to m - 1 do
    let u = Plane.Buf.unsafe_get src i in
    let e = Plane.unsafe_get offsets u + Plane.unsafe_get degree u in
    Plane.unsafe_set degree u (Plane.unsafe_get degree u + 1);
    Plane.unsafe_set targets e (Plane.Buf.unsafe_get dst i);
    match weights with
    | None -> ()
    | Some w -> Plane.unsafe_set w e (Plane.Buf.unsafe_get (Option.get wbuf) i)
  done;
  { n; m; offsets; targets; weights; sorted = adjacency_sorted ~n ~offsets ~targets }

let of_edges ~n edge_list =
  let m = Array.length edge_list in
  let src = Plane.Buf.create m and dst = Plane.Buf.create m in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Csr.of_edges: node out of range";
      Plane.Buf.push src u;
      Plane.Buf.push dst v)
    edge_list;
  of_edge_buffers ~n ~m ~src ~dst ()

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)
(* ------------------------------------------------------------------ *)

let weighted t = t.weights <> None

let weight t e =
  match t.weights with
  | None -> invalid_arg "Csr.weight: graph has no weight plane"
  | Some w ->
      if e < 0 || e >= t.m then invalid_arg "Csr.weight: edge index out of bounds";
      Plane.unsafe_get w e

let unsafe_weight t e =
  match t.weights with None -> 0 | Some w -> Plane.unsafe_get w e

let with_weights t arr =
  if Array.length arr <> t.m then invalid_arg "Csr.with_weights: weight array size mismatch";
  { t with weights = Some (Plane.of_array arr) }

let with_weight_plane t w =
  if Plane.length w <> t.m then invalid_arg "Csr.with_weight_plane: weight plane size mismatch";
  { t with weights = Some w }

let drop_weights t = { t with weights = None }

let weights_array t = Option.map Plane.to_array t.weights

(* ------------------------------------------------------------------ *)
(* Accessors (direct int loops on the hot paths)                       *)
(* ------------------------------------------------------------------ *)

let check_node t u name =
  if u < 0 || u >= t.n then invalid_arg (name ^ ": node out of bounds")

let out_degree t u =
  check_node t u "Csr.out_degree";
  Plane.unsafe_get t.offsets (u + 1) - Plane.unsafe_get t.offsets u

let edge_range t u =
  check_node t u "Csr.edge_range";
  (Plane.unsafe_get t.offsets u, Plane.unsafe_get t.offsets (u + 1))

let edge_target t e =
  if e < 0 || e >= t.m then invalid_arg "Csr.edge_target: edge index out of bounds";
  Plane.unsafe_get t.targets e

let iter_succ t u f =
  check_node t u "Csr.iter_succ";
  let hi = Plane.unsafe_get t.offsets (u + 1) in
  let e = ref (Plane.unsafe_get t.offsets u) in
  while !e < hi do
    f (Plane.unsafe_get t.targets !e);
    incr e
  done

let iter_succ_edges t u f =
  check_node t u "Csr.iter_succ_edges";
  let hi = Plane.unsafe_get t.offsets (u + 1) in
  let e = ref (Plane.unsafe_get t.offsets u) in
  while !e < hi do
    f !e (Plane.unsafe_get t.targets !e);
    incr e
  done

(* A direct tail-recursive loop: no accumulator ref, no closure per
   call (the old version allocated both). *)
let fold_succ t u f acc =
  check_node t u "Csr.fold_succ";
  let hi = Plane.unsafe_get t.offsets (u + 1) in
  let rec go e acc = if e >= hi then acc else go (e + 1) (f acc (Plane.unsafe_get t.targets e)) in
  go (Plane.unsafe_get t.offsets u) acc

let exists_succ t u p =
  check_node t u "Csr.exists_succ";
  let hi = Plane.unsafe_get t.offsets (u + 1) in
  let rec go e = e < hi && (p (Plane.unsafe_get t.targets e) || go (e + 1)) in
  go (Plane.unsafe_get t.offsets u)

let succ_sorted t = t.sorted

(* Membership: binary search over the adjacency range when every range
   is sorted (symmetrize output, sorted builders), linear scan
   otherwise. The result is the same either way, so callers stay
   schedule-deterministic regardless of which path runs. *)
let mem_edge t u v =
  check_node t u "Csr.mem_edge";
  let lo = Plane.unsafe_get t.offsets u and hi = Plane.unsafe_get t.offsets (u + 1) in
  if t.sorted then begin
    let lo = ref lo and hi = ref hi in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      let w = Plane.unsafe_get t.targets mid in
      if w = v then found := true else if w < v then lo := mid + 1 else hi := mid
    done;
    !found
  end
  else begin
    let rec go e = e < hi && (Plane.unsafe_get t.targets e = v || go (e + 1)) in
    go lo
  end

let iter_edges t f =
  for u = 0 to t.n - 1 do
    iter_succ t u (fun v -> f u v)
  done

let iter_edges_i t f =
  for u = 0 to t.n - 1 do
    iter_succ_edges t u (fun e v -> f e u v)
  done

let all_edges t =
  let out = Array.make t.m (0, 0) in
  for u = 0 to t.n - 1 do
    iter_succ_edges t u (fun e v -> out.(e) <- (u, v))
  done;
  out

let transpose t =
  let src = Plane.Buf.create t.m and dst = Plane.Buf.create t.m in
  iter_edges t (fun u v ->
      Plane.Buf.push src v;
      Plane.Buf.push dst u);
  of_edge_buffers ~n:t.n ~m:t.m ~src ~dst ()

(* Make the graph symmetric and simple: for every edge (u,v), both
   directions exist, self-loops dropped, duplicates removed, adjacency
   sorted ascending. List-free: both directions are counting-sorted
   into a staging plane, each range is sorted with the int-specialized
   [Plane.sort_range], and duplicates are squeezed out in one pass.
   detlint note: the output is a pure function of the input edge set —
   ascending distinct neighbor ids — identical to the old
   [List.sort_uniq compare] path, just without polymorphic compare. *)
let symmetrize t =
  let n = t.n in
  (* Count both directions of every non-self-loop edge. *)
  let degree = Plane.create ~max_value:(2 * t.m) n in
  let bump u = Plane.unsafe_set degree u (Plane.unsafe_get degree u + 1) in
  iter_edges t (fun u v ->
      if u <> v then begin
        bump u;
        bump v
      end);
  let offsets = Plane.create ~max_value:(2 * t.m) (n + 1) in
  for u = 0 to n - 1 do
    Plane.unsafe_set offsets (u + 1) (Plane.unsafe_get offsets u + Plane.unsafe_get degree u)
  done;
  let total = Plane.unsafe_get offsets n in
  let staged = Plane.create ~max_value:(max 0 (n - 1)) total in
  for u = 0 to n - 1 do
    Plane.unsafe_set degree u 0
  done;
  let place u v =
    let e = Plane.unsafe_get offsets u + Plane.unsafe_get degree u in
    Plane.unsafe_set degree u (Plane.unsafe_get degree u + 1);
    Plane.unsafe_set staged e v
  in
  iter_edges t (fun u v ->
      if u <> v then begin
        place u v;
        place v u
      end);
  (* Sort each range, count distinct neighbors, then pack the deduped
     adjacency into finally-sized planes. *)
  let m' = ref 0 in
  for u = 0 to n - 1 do
    let lo = Plane.unsafe_get offsets u and hi = Plane.unsafe_get offsets (u + 1) in
    Plane.sort_range staged lo hi;
    let d = ref 0 in
    for e = lo to hi - 1 do
      if e = lo || Plane.unsafe_get staged e <> Plane.unsafe_get staged (e - 1) then incr d
    done;
    Plane.unsafe_set degree u !d;
    m' := !m' + !d
  done;
  let offsets' = Plane.create ~max_value:!m' (n + 1) in
  for u = 0 to n - 1 do
    Plane.unsafe_set offsets' (u + 1) (Plane.unsafe_get offsets' u + Plane.unsafe_get degree u)
  done;
  let targets' = Plane.create ~max_value:(max 0 (n - 1)) !m' in
  let cursor = ref 0 in
  for u = 0 to n - 1 do
    let lo = Plane.unsafe_get offsets u and hi = Plane.unsafe_get offsets (u + 1) in
    for e = lo to hi - 1 do
      if e = lo || Plane.unsafe_get staged e <> Plane.unsafe_get staged (e - 1) then begin
        Plane.unsafe_set targets' !cursor (Plane.unsafe_get staged e);
        incr cursor
      end
    done
  done;
  { n; m = !m'; offsets = offsets'; targets = targets'; weights = None; sorted = true }

(* Reverse-edge check. With sorted adjacency (every symmetrize output)
   each reverse lookup is a binary search — O(m log d) overall instead
   of the old O(m d) via [exists_succ] — so it stays usable on
   million-vertex catalogs. Unsorted graphs fall back to the linear
   scan inside [mem_edge]; the verdict is identical. *)
let is_symmetric t =
  let ok = ref true in
  for u = 0 to t.n - 1 do
    iter_succ t u (fun v -> if not (mem_edge t v u) then ok := false)
  done;
  !ok

let validate t =
  check ~n:t.n ~m:t.m ~offsets:t.offsets ~targets:t.targets ~weights:t.weights

let equal a b =
  a.n = b.n && a.m = b.m
  && Plane.equal a.offsets b.offsets
  && Plane.equal a.targets b.targets
  &&
  match (a.weights, b.weights) with
  | None, None -> true
  | Some wa, Some wb -> Plane.equal wa wb
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Internal plane access (Graph_io serialization, cachesim layouts)    *)
(* ------------------------------------------------------------------ *)

let offsets_plane t = t.offsets
let targets_plane t = t.targets
let weights_plane t = t.weights

(* ------------------------------------------------------------------ *)
(* Streaming builder                                                   *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  (* Accumulates an edge stream in off-heap staging buffers, then packs
     it with the stable counting sort above — bypassing the
     [int list array] intermediate entirely. [build] yields the same
     adjacency order as [of_adjacency] applied to lists built in edge
     order, so schedules and digests over builder-made graphs are
     byte-identical to the list path. *)
  type csr = t

  type t = {
    n : int;
    src : Plane.Buf.t;
    dst : Plane.Buf.t;
    mutable wts : Plane.Buf.t option;  (* created on first weighted add *)
  }

  let create ?(capacity = 1024) ~n () =
    if n < 0 then invalid_arg "Csr.Builder.create: negative node count";
    { n; src = Plane.Buf.create capacity; dst = Plane.Buf.create capacity; wts = None }

  let nodes b = b.n
  let edge_count b = Plane.Buf.length b.src

  let check_endpoints b u v =
    if u < 0 || u >= b.n || v < 0 || v >= b.n then
      invalid_arg "Csr.Builder.add_edge: node out of range"

  let add_edge b u v =
    (match b.wts with
    | Some _ -> invalid_arg "Csr.Builder.add_edge: builder is weighted"
    | None -> ());
    check_endpoints b u v;
    Plane.Buf.push b.src u;
    Plane.Buf.push b.dst v

  let add_weighted_edge b u v w =
    check_endpoints b u v;
    if w < 0 then invalid_arg "Csr.Builder.add_weighted_edge: negative weight";
    let wb =
      match b.wts with
      | Some wb -> wb
      | None ->
          if Plane.Buf.length b.src > 0 then
            invalid_arg "Csr.Builder.add_weighted_edge: builder already has unweighted edges";
          let wb = Plane.Buf.create 1024 in
          b.wts <- Some wb;
          wb
    in
    Plane.Buf.push b.src u;
    Plane.Buf.push b.dst v;
    Plane.Buf.push wb w

  let build b : csr =
    of_edge_buffers ?wbuf:b.wts ~n:b.n ~m:(Plane.Buf.length b.src) ~src:b.src ~dst:b.dst ()
end
