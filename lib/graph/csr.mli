(** Immutable compressed-sparse-row directed graphs on off-heap
    storage.

    Node ids are [0..nodes-1]. Edge indices are stable, so per-edge
    payloads (capacities, flows) live in arrays keyed by edge index —
    or, for weights, in an optional plane stored alongside the
    topology.

    The offsets/targets/weights vectors are {!Plane.t} (Bigarray with
    automatic 4/8-byte element sizing): the graph's bulk lives outside
    the OCaml heap, is never scanned by the GC, and costs half the
    memory of the old boxed [int array] representation on inputs with
    fewer than [2^31] edges. *)

type t

val nodes : t -> int
val edges : t -> int

val memory_bytes : t -> int
(** Total off-heap payload (offsets + targets + weights planes). *)

(** {2 Construction} *)

val of_adjacency : int list array -> t
(** Build from out-adjacency lists; list order becomes edge order. *)

val of_edges : n:int -> (int * int) array -> t
(** Build from an edge array. Edge order is preserved per source node
    (stable counting sort by source — the same adjacency order as
    {!of_adjacency} on lists built in edge order). Raises
    [Invalid_argument] on out-of-range endpoints. *)

val of_planes : ?weights:Plane.t -> n:int -> offsets:Plane.t -> targets:Plane.t -> unit -> t
(** Wrap pre-built planes after validating the CSR invariants (offsets
    monotone and anchored at [0]/[edges], targets in range). Raises
    [Invalid_argument] when they do not hold. *)

(** Streaming edge builder: accumulate edges one at a time in off-heap
    staging buffers (no [int list array] intermediate), then pack with
    the same stable counting sort as {!of_edges}. *)
module Builder : sig
  type csr = t
  type t

  val create : ?capacity:int -> n:int -> unit -> t
  val nodes : t -> int
  val edge_count : t -> int

  val add_edge : t -> int -> int -> unit
  (** Raises [Invalid_argument] on out-of-range endpoints, or if the
      builder already holds weighted edges. *)

  val add_weighted_edge : t -> int -> int -> int -> unit
  (** Raises [Invalid_argument] on out-of-range endpoints, a negative
      weight, or if the builder already holds unweighted edges. *)

  val build : t -> csr
end

(** {2 Weights} *)

val weighted : t -> bool

val weight : t -> int -> int
(** Raises [Invalid_argument] if the graph has no weight plane or the
    edge index is out of bounds. *)

val unsafe_weight : t -> int -> int
(** No checks; [0] on unweighted graphs. For traversal loops over
    verified edge ranges. *)

val with_weights : t -> int array -> t
(** Attach per-edge weights (copied into a sized plane). Raises on a
    length mismatch. *)

val with_weight_plane : t -> Plane.t -> t
val drop_weights : t -> t
val weights_array : t -> int array option
(** Materialize the weight plane back to a heap array (compatibility
    with [int array] consumers). *)

(** {2 Traversal} *)

val out_degree : t -> int -> int

val edge_range : t -> int -> int * int
(** [edge_range g u] is the half-open interval of edge indices leaving
    [u]. *)

val edge_target : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit
val iter_succ_edges : t -> int -> (int -> int -> unit) -> unit

val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Direct int loop — allocates neither a ref nor a per-call closure. *)

val exists_succ : t -> int -> (int -> bool) -> bool

val succ_sorted : t -> bool
(** Every adjacency range is ascending (computed at construction;
    always true for {!symmetrize} output). *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v]: is there an edge [u -> v]? Binary search when
    {!succ_sorted}, linear scan otherwise — same verdict either way. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** All edges in edge-index order, without materializing tuples. *)

val iter_edges_i : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges_i g f] calls [f e u v] for every edge in edge-index
    order. *)

val all_edges : t -> (int * int) array
val transpose : t -> t

val symmetrize : t -> t
(** Undirected, simple version: both directions present, no self-loops,
    no duplicate edges, adjacency sorted ascending. List-free and
    int-specialized; the output is a pure function of the input edge
    set (identical to the historical [List.sort_uniq compare] path). *)

val is_symmetric : t -> bool
(** Reverse-edge check: O(m log d) by binary search on sorted-adjacency
    graphs, linear-scan fallback otherwise. *)

val validate : t -> (unit, string) result
(** Re-check the structural invariants (used on every binary load). *)

val equal : t -> t -> bool
(** Same topology and weights, independent of element sizing. *)

(** {2 Internal plane access} (serialization and layout modelling) *)

val offsets_plane : t -> Plane.t
val targets_plane : t -> Plane.t
val weights_plane : t -> Plane.t option
