(* Off-heap integer planes — the storage substrate of the compact CSR.

   A plane is a fixed-length vector of non-negative ints stored in a
   [Bigarray.Array1], so the payload lives in malloc'd memory outside
   the OCaml major heap: the GC never scans it, and a graph's planes
   cost a handful of heap words (the custom-block headers) no matter
   how many edges they hold.

   Element sizing is automatic: values that fit 31 bits are stored in 4
   bytes, anything larger in 8. The 4-byte case is encoded as a pair of
   16-bit halves in an [int16_unsigned] bigarray rather than an [int32]
   one because int32 bigarray reads box their result on every access
   (this tree builds without flambda); int16 reads return immediate
   ints, so plane access never allocates. *)

type buf16 = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
type buf64 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = I32 of buf16 | I64 of buf64

let i32_max = 0x7FFF_FFFF

let length = function
  | I32 a -> Bigarray.Array1.dim a / 2
  | I64 a -> Bigarray.Array1.dim a

let bytes_per_value = function I32 _ -> 4 | I64 _ -> 8
let memory_bytes t = length t * bytes_per_value t

let create ~max_value len =
  if len < 0 then invalid_arg "Plane.create: negative length";
  if max_value < 0 then invalid_arg "Plane.create: negative max_value";
  if max_value <= i32_max then begin
    let a = Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout (2 * len) in
    Bigarray.Array1.fill a 0;
    I32 a
  end
  else begin
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
    Bigarray.Array1.fill a 0;
    I64 a
  end

let unsafe_get t i =
  match t with
  | I32 a ->
      Bigarray.Array1.unsafe_get a (2 * i)
      lor (Bigarray.Array1.unsafe_get a ((2 * i) + 1) lsl 16)
  | I64 a -> Bigarray.Array1.unsafe_get a i

let unsafe_set t i v =
  match t with
  | I32 a ->
      Bigarray.Array1.unsafe_set a (2 * i) (v land 0xFFFF);
      Bigarray.Array1.unsafe_set a ((2 * i) + 1) ((v lsr 16) land 0xFFFF)
  | I64 a -> Bigarray.Array1.unsafe_set a i v

let get t i =
  if i < 0 || i >= length t then invalid_arg "Plane.get: index out of bounds";
  unsafe_get t i

let set t i v =
  if i < 0 || i >= length t then invalid_arg "Plane.set: index out of bounds";
  if v < 0 then invalid_arg "Plane.set: negative value";
  (match t with
  | I32 _ -> if v > i32_max then invalid_arg "Plane.set: value exceeds 32-bit plane"
  | I64 _ -> ());
  unsafe_set t i v

let of_array arr =
  let max_value = Array.fold_left max 0 arr in
  let t = create ~max_value (Array.length arr) in
  Array.iteri
    (fun i v ->
      if v < 0 then invalid_arg "Plane.of_array: negative value";
      unsafe_set t i v)
    arr;
  t

let to_array t = Array.init (length t) (fun i -> unsafe_get t i)

let iter f t =
  for i = 0 to length t - 1 do
    f (unsafe_get t i)
  done

let equal a b =
  length a = length b
  &&
  let rec go i = i >= length a || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

(* In-place ascending sort of the value range [lo, hi) — the
   int-specialized sort the symmetrize path uses instead of a
   polymorphic [List.sort_uniq compare]. Plain quicksort with
   median-of-three pivots and insertion sort below 12 elements; the
   order is a pure function of the values, so it is deterministic. *)
let sort_range t lo hi =
  if lo < 0 || hi > length t || lo > hi then invalid_arg "Plane.sort_range: bad range";
  let rec quick lo hi =
    if hi - lo > 12 then begin
      let mid = lo + ((hi - lo) / 2) in
      let a = unsafe_get t lo and b = unsafe_get t mid and c = unsafe_get t (hi - 1) in
      let pivot = max (min a b) (min (max a b) c) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while unsafe_get t !i < pivot do incr i done;
        while unsafe_get t !j > pivot do decr j done;
        if !i <= !j then begin
          let x = unsafe_get t !i and y = unsafe_get t !j in
          unsafe_set t !i y;
          unsafe_set t !j x;
          incr i;
          decr j
        end
      done;
      quick lo (!j + 1);
      quick !i hi
    end
    else
      for i = lo + 1 to hi - 1 do
        let v = unsafe_get t i in
        let j = ref (i - 1) in
        while !j >= lo && unsafe_get t !j > v do
          unsafe_set t (!j + 1) (unsafe_get t !j);
          decr j
        done;
        unsafe_set t (!j + 1) v
      done
  in
  quick lo hi

(* ------------------------------------------------------------------ *)
(* Growable staging buffer (64-bit, off-heap) for edge streaming.      *)
(* ------------------------------------------------------------------ *)

module Buf = struct
  type nonrec t = { mutable data : buf64; mutable len : int }

  let create capacity =
    let capacity = max capacity 16 in
    { data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout capacity; len = 0 }

  let length b = b.len

  let push b v =
    if b.len = Bigarray.Array1.dim b.data then begin
      let bigger =
        Bigarray.Array1.create Bigarray.int Bigarray.c_layout (2 * b.len)
      in
      Bigarray.Array1.blit b.data (Bigarray.Array1.sub bigger 0 b.len);
      b.data <- bigger
    end;
    Bigarray.Array1.unsafe_set b.data b.len v;
    b.len <- b.len + 1

  let get b i =
    if i < 0 || i >= b.len then invalid_arg "Plane.Buf.get: index out of bounds";
    Bigarray.Array1.unsafe_get b.data i

  let unsafe_get b i = Bigarray.Array1.unsafe_get b.data i
end
