(** Graph serialization (text and compact binary) and per-edge weight
    generation. *)

(** {2 Text format} — one ["u v [w]"] edge per line, ['#'] comments,
    header line ["n m"]. *)

val write_edges : out_channel -> Csr.t -> unit
(** Weighted graphs emit a third column per edge. *)

val save_edges : string -> Csr.t -> unit

val read_edges : in_channel -> Csr.t
(** Raises [Failure] with a line number on malformed input. A weight
    column on the first edge line makes it mandatory on all of them and
    yields a weighted graph. *)

val load_edges : string -> Csr.t

(** {2 Binary format} — ["GCSR1"]: fixed header, raw little-endian
    planes at their in-memory element width, FNV-1a-64 checksum
    trailer. The catalog/bench path for million-vertex inputs: no
    parsing, loads straight into off-heap planes. *)

val write_binary : out_channel -> Csr.t -> unit
val save_binary : string -> Csr.t -> unit

val read_binary : in_channel -> Csr.t
(** Raises [Failure "Graph_io: corrupt binary graph: ..."] on a bad
    magic, truncation, checksum mismatch, or any CSR-invariant
    violation the payload encodes. *)

val load_binary : string -> Csr.t

val load : string -> Csr.t
(** Format-sniffing load: binary when the file starts with the GCSR
    magic, text otherwise. *)

(** {2 Deterministic weights} *)

val random_weights : ?seed:int -> ?max_weight:int -> Csr.t -> int array
(** Deterministic uniform weights in [\[1, max_weight\]], indexed by edge
    id. *)

val attach_random_weights : ?seed:int -> ?max_weight:int -> Csr.t -> Csr.t
(** The same weight sequence as {!random_weights}, written straight
    into an off-heap weight plane on the returned graph. *)

val undirected_random_weights : ?seed:int -> ?max_weight:int -> Csr.t -> int array
(** Like {!random_weights}, but the two directions of an undirected edge
    in a symmetric graph get equal weights (required by e.g. minimum
    spanning forest). *)
