(** Off-heap integer planes: fixed-length vectors of non-negative ints
    in [Bigarray] storage, outside the OCaml heap.

    Element width is chosen automatically at creation: 4 bytes when
    every value fits 31 bits, 8 bytes otherwise. Reads never allocate
    (the 4-byte case is stored as unboxed 16-bit halves, not as a
    boxing [int32] bigarray). *)

type t

val i32_max : int
(** Largest value a 4-byte plane can hold ([2^31 - 1]). *)

val create : max_value:int -> int -> t
(** [create ~max_value len]: a zero-filled plane of [len] values sized
    to hold [max_value]. Raises [Invalid_argument] on negative
    arguments. *)

val length : t -> int
val bytes_per_value : t -> int
val memory_bytes : t -> int
(** Off-heap payload size in bytes. *)

val get : t -> int -> int
val set : t -> int -> int -> unit
(** Bounds- and range-checked. [set] rejects negative values and values
    beyond the plane's element width. *)

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit
(** No bounds checks — for loops whose ranges are established
    invariants (CSR offsets are monotone and in-range by
    construction). *)

val of_array : int array -> t
(** Sized by the array's maximum value. Raises on negative entries. *)

val to_array : t -> int array
val iter : (int -> unit) -> t -> unit
val equal : t -> t -> bool

val sort_range : t -> int -> int -> unit
(** [sort_range t lo hi] sorts values in [\[lo, hi)] ascending in place
    — an int-specialized sort, no polymorphic compare. *)

(** Growable off-heap staging buffer of native ints (always 8-byte;
    used to accumulate edge streams before the counting sort packs them
    into sized planes). *)
module Buf : sig
  type t

  val create : int -> t
  val length : t -> int
  val push : t -> int -> unit
  val get : t -> int -> int
  val unsafe_get : t -> int -> int
end
