(* Synthetic graph generators matching the paper's inputs (§4.2):
   uniform k-out random graphs for bfs/mis/pfp, plus grid, R-MAT and
   uniform-random graphs for broader testing, at paper scale (10^6–10^7
   vertices). All are deterministic in the seed, stream their edges
   straight into off-heap CSR planes (no [int list array]
   intermediate), and allocate O(1) heap words per node. *)

(* [kout] writes targets directly into the final plane: the out-degree
   is uniformly [k], so offsets are [u * k] and no counting sort is
   needed. The SplitMix call sequence and the per-node insertion order
   are byte-identical to the historical list-based generator, so every
   pinned digest over k-out inputs is unchanged. *)
let kout ?(seed = 1) ~n ~k () =
  if n <= 0 then invalid_arg "Generators.kout: n must be positive";
  if k < 0 || (k >= n && n > 1) then invalid_arg "Generators.kout: need 0 <= k < n";
  let g = Parallel.Splitmix.create seed in
  let m = n * k in
  let offsets = Plane.create ~max_value:m (n + 1) in
  for u = 0 to n do
    Plane.unsafe_set offsets u (u * k)
  done;
  let targets = Plane.create ~max_value:(max 0 (n - 1)) m in
  let chosen = Array.make (max k 1) (-1) in
  for u = 0 to n - 1 do
    (* k distinct targets, none equal to u, in draw order. *)
    let count = ref 0 in
    while !count < k do
      let v = Parallel.Splitmix.int g n in
      let dup = ref false in
      for i = 0 to !count - 1 do
        if chosen.(i) = v then dup := true
      done;
      if v <> u && not !dup then begin
        chosen.(!count) <- v;
        incr count
      end
    done;
    for i = 0 to k - 1 do
      Plane.unsafe_set targets ((u * k) + i) chosen.(i)
    done
  done;
  Csr.of_planes ~n ~offsets ~targets ()

(* 4-connected grid; neighbor order per node is down, up, right, left
   (the historical list order), written directly into the plane. *)
let grid2d ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Generators.grid2d: dimensions must be positive";
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let deg r c =
    (if r + 1 < rows then 1 else 0)
    + (if r > 0 then 1 else 0)
    + (if c + 1 < cols then 1 else 0)
    + if c > 0 then 1 else 0
  in
  let m = ref 0 in
  let offsets = Plane.create ~max_value:(4 * n) (n + 1) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      m := !m + deg r c;
      Plane.unsafe_set offsets (id r c + 1) !m
    done
  done;
  let targets = Plane.create ~max_value:(n - 1) !m in
  let cursor = ref 0 in
  let emit v =
    Plane.unsafe_set targets !cursor v;
    incr cursor
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if r + 1 < rows then emit (id (r + 1) c);
      if r > 0 then emit (id (r - 1) c);
      if c + 1 < cols then emit (id r (c + 1));
      if c > 0 then emit (id r (c - 1))
    done
  done;
  Csr.of_planes ~n ~offsets ~targets ()

(* R-MAT (Chakrabarti et al.): recursive quadrant descent with
   probabilities (a, b, c, d). Produces the skewed degree distributions
   of social-network-like graphs. Edges are streamed into the counting
   sort in generation order, the order the historical
   [Array.init]-based path used. *)
let rmat ?(seed = 1) ?(a = 0.45) ?(b = 0.22) ?(c = 0.22) ~scale ~edge_factor () =
  if scale <= 0 || scale > 30 then invalid_arg "Generators.rmat: scale out of range";
  if edge_factor <= 0 then invalid_arg "Generators.rmat: edge_factor must be positive";
  let d = 1.0 -. a -. b -. c in
  if d < 0.0 then invalid_arg "Generators.rmat: probabilities exceed 1";
  let n = 1 lsl scale in
  let m = n * edge_factor in
  let g = Parallel.Splitmix.create seed in
  let builder = Csr.Builder.create ~capacity:m ~n () in
  for _ = 1 to m do
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Parallel.Splitmix.float g in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u * 2) + du;
      v := (!v * 2) + dv
    done;
    Csr.Builder.add_edge builder !u !v
  done;
  Csr.Builder.build builder

(* Uniform random multigraph: m edges with independently uniform
   endpoints, self-loops rejected by resampling. The Erdős–Rényi-style
   sibling of [rmat] for unskewed degree distributions at scale. *)
let uniform ?(seed = 1) ~n ~m () =
  if n <= 1 then invalid_arg "Generators.uniform: n must be at least 2";
  if m < 0 then invalid_arg "Generators.uniform: m must be non-negative";
  let g = Parallel.Splitmix.create seed in
  let builder = Csr.Builder.create ~capacity:(max m 1) ~n () in
  for _ = 1 to m do
    let u = ref (Parallel.Splitmix.int g n) and v = ref (Parallel.Splitmix.int g n) in
    while !u = !v do
      v := Parallel.Splitmix.int g n
    done;
    Csr.Builder.add_edge builder !u !v
  done;
  Csr.Builder.build builder

(* The paper's pfp input shape: random graph with a designated source and
   sink and uniform random capacities. Returns (graph, capacities,
   source, sink). *)
let flow_network ?(seed = 1) ?(max_capacity = 100) ~n ~k () =
  let g = kout ~seed ~n ~k () in
  let rng = Parallel.Splitmix.create (seed + 17) in
  let caps = Array.init (Csr.edges g) (fun _ -> 1 + Parallel.Splitmix.int rng max_capacity) in
  (g, caps, 0, n - 1)
