(* A fixed pool of domains executing SPMD jobs.

   Dispatch and join use a spin-then-park protocol: waiters spin a
   bounded number of [Domain.cpu_relax] iterations on an atomic word
   (the job generation, or the remaining-worker count) and only then
   fall back to the original mutex/condvar slow path. The fast path
   turns the two SPMD dispatches per scheduler round from four mutex
   round-trips per worker into a couple of atomic reads when cores are
   available, while the park fallback keeps the pool well-behaved when
   domains outnumber cores (the common case in the reproduction
   container).

   Lost-wakeup freedom, in terms of OCaml's SC atomics: a waiter
   increments its parked counter (under the mutex) and re-checks the
   waited-on word *after* the increment, while the signaler updates the
   word first and reads the parked counter afterwards, broadcasting
   under the mutex. If the signaler reads parked = 0, the waiter's
   increment — and hence its re-check — came after the word update in
   the SC total order, so the re-check sees the update and never waits.
   If the signaler reads parked > 0 it broadcasts while holding the
   mutex, which the waiter holds from before its re-check until
   [Condition.wait] atomically releases it, so the broadcast cannot fall
   between the re-check and the wait.

   The caller participates as worker 0, so a pool of size [n] spawns
   [n - 1] domains. *)

type job = int -> unit

(* Per-worker synchronization counters (one record per worker, so no
   cross-worker write sharing): [spins] counts wakeups served entirely
   by the spin fast path, [parks] waits that fell back to the condvar.
   Slot 0 belongs to the caller's join waits. *)
type counters = { mutable spins : int; mutable parks : int }

type t = {
  size : int;
  spin : int;  (* cpu_relax budget before parking *)
  mutex : Mutex.t;
  job_ready : Condition.t;
  job_done : Condition.t;
  mutable job : job;  (* plain write, published by the [generation] bump *)
  generation : int Atomic.t;
  remaining : int Atomic.t;
  parked : int Atomic.t;  (* workers parked on [job_ready] *)
  joiner_parked : int Atomic.t;  (* callers parked on [job_done] *)
  stop : bool Atomic.t;
  mutable failure : exn option;  (* mutex-protected writes *)
  counters : counters array;
  mutable domains : unit Domain.t list;
}

let default_spin = 512

(* Spinning only pays when the signaling and the waiting domain can run
   simultaneously. When the participants outnumber the machine's cores,
   every relax iteration steals the one core the signaler needs, so the
   oversubscription-safe default is to park immediately. *)
let adaptive_spin ~participants =
  if participants <= Domain.recommended_domain_count () then default_spin else 0

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

(* Wake any parked workers after updating the waited-on word. Reading
   the parked counter after the (SC) word update makes the 0 case safe;
   broadcasting under the mutex makes the > 0 case safe (see header). *)
let wake t parked_counter cond =
  if Atomic.get parked_counter > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast cond;
    Mutex.unlock t.mutex
  end

(* Spin-then-park until [ready ()]. [ready] must read only SC atomics.
   Returns [true] when the fast path sufficed. *)
let await t c ~parked_counter ~cond ready =
  let rec spin k =
    if ready () then begin
      c.spins <- c.spins + 1;
      true
    end
    else if k > 0 then begin
      Domain.cpu_relax ();
      spin (k - 1)
    end
    else begin
      Mutex.lock t.mutex;
      Atomic.incr parked_counter;
      while not (ready ()) do
        Condition.wait cond t.mutex
      done;
      Atomic.decr parked_counter;
      Mutex.unlock t.mutex;
      c.parks <- c.parks + 1;
      false
    end
  in
  ignore (spin t.spin : bool)

let worker_loop t index =
  let c = t.counters.(index) in
  let seen = ref 0 in
  let running = ref true in
  while !running do
    await t c ~parked_counter:t.parked ~cond:t.job_ready (fun () ->
        Atomic.get t.generation <> !seen || Atomic.get t.stop);
    if Atomic.get t.stop then running := false
    else begin
      seen := Atomic.get t.generation;
      (* The atomic generation read orders this plain [job] load after
         the caller's plain store (release/acquire through the SC
         bump). *)
      let job = t.job in
      (try job index with exn -> record_failure t exn);
      if Atomic.fetch_and_add t.remaining (-1) = 1 then
        wake t t.joiner_parked t.job_done
    end
  done

let create ?spin size =
  if size <= 0 then invalid_arg "Domain_pool.create: size must be positive";
  let spin =
    match spin with Some s -> s | None -> adaptive_spin ~participants:size
  in
  if spin < 0 then invalid_arg "Domain_pool.create: spin must be >= 0";
  let t =
    {
      size;
      spin;
      mutex = Mutex.create ();
      job_ready = Condition.create ();
      job_done = Condition.create ();
      job = ignore;
      generation = Atomic.make 0;
      remaining = Atomic.make 0;
      parked = Atomic.make 0;
      joiner_parked = Atomic.make 0;
      stop = Atomic.make false;
      failure = None;
      counters = Array.init size (fun _ -> { spins = 0; parks = 0 });
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.size

let sync_counters t = Array.map (fun c -> (c.spins, c.parks)) t.counters

let run t job =
  if Atomic.get t.stop then invalid_arg "Domain_pool.run: pool is shut down";
  t.failure <- None;
  t.job <- job;
  Atomic.set t.remaining (t.size - 1);
  Atomic.incr t.generation;
  wake t t.parked t.job_ready;
  (try job 0 with exn -> record_failure t exn);
  if t.size > 1 then
    await t t.counters.(0) ~parked_counter:t.joiner_parked ~cond:t.job_done
      (fun () -> Atomic.get t.remaining = 0);
  (* [remaining] reaching 0 orders every worker's [record_failure]
     before this plain read. *)
  let failure = t.failure in
  t.job <- ignore;
  match failure with None -> () | Some exn -> raise exn

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    wake t t.parked t.job_ready;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ?spin size f =
  let t = create ?spin size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Dynamic chunk size: small enough for balance, large enough to keep the
   shared counter off the critical path. *)
let default_chunk lo hi size =
  let n = hi - lo in
  max 1 (min 1024 (n / (size * 8)))

let parallel_for ?chunk t lo hi body =
  if hi > lo then begin
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk lo hi t.size in
    let next = Atomic.make lo in
    run t (fun _worker ->
        let continue_ = ref true in
        while !continue_ do
          let start = Atomic.fetch_and_add next chunk in
          if start >= hi then continue_ := false
          else
            for i = start to min (start + chunk) hi - 1 do
              body i
            done
        done)
  end

let parallel_for_workers t lo hi body =
  if hi > lo then
    run t (fun worker ->
        (* Contiguous static split: worker w gets one slice, preserving
           spatial locality of the index range. *)
        let n = hi - lo in
        let per = n / t.size and rem = n mod t.size in
        let start = lo + (worker * per) + min worker rem in
        let len = per + if worker < rem then 1 else 0 in
        if len > 0 then body worker start (start + len))
