(** A fixed pool of OCaml domains executing SPMD-style jobs.

    The calling domain participates as worker [0]; a pool of size [n]
    spawns [n - 1] additional domains. Between jobs, workers spin a
    bounded number of [Domain.cpu_relax] iterations on an atomic
    generation word (the fast path when cores are available) and then
    park on a condition variable (the oversubscription-safe slow
    path). *)

type t

val create : ?spin:int -> int -> t
(** [create n] spawns a pool of [n] workers. [spin] bounds the
    [Domain.cpu_relax] iterations a waiter spends on the fast path
    before parking; [0] parks immediately, recovering the pure condvar
    behavior. The default is parameterless and oversubscription-safe:
    512 when all [n] workers fit the machine's cores
    ([Domain.recommended_domain_count]), 0 otherwise — spinning cannot
    help when the signaling domain has no core to run on. Raises
    [Invalid_argument] when [n <= 0] or [spin < 0]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job w] on every worker [w] (0 to [size t - 1])
    concurrently and returns when all have finished. If any worker
    raises, one of the raised exceptions is re-raised in the caller after
    all workers have completed. *)

val sync_counters : t -> (int * int) array
(** Per-worker [(spins, parks)] totals accumulated since pool creation:
    wakeups served entirely by the spin fast path vs. waits that fell
    back to the condvar. Slot [0] counts the caller's job-completion
    joins. Timing-dependent — read only between jobs, and never fold
    into anything deterministic. *)

val shutdown : t -> unit
(** Join all worker domains. The pool cannot be used afterwards.
    Idempotent. *)

val with_pool : ?spin:int -> int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, shutting it down
    afterwards even if [f] raises. *)

val parallel_for : ?chunk:int -> t -> int -> int -> (int -> unit) -> unit
(** [parallel_for t lo hi body] runs [body i] for [lo <= i < hi] with
    dynamic chunked load balancing. *)

val parallel_for_workers : t -> int -> int -> (int -> int -> int -> unit) -> unit
(** [parallel_for_workers t lo hi body] statically splits [\[lo, hi)] into
    contiguous slices and calls [body worker slice_lo slice_hi] once per
    worker that received a non-empty slice. *)
