(** Reusable phase-counting barrier for a fixed set of participants,
    with a bounded spin fast path before parking on a condvar. *)

type t

val create : ?spin:int -> int -> t
(** [create parties] makes a barrier that releases once [parties]
    domains have called {!wait}. [spin] bounds the [Domain.cpu_relax]
    iterations a waiter spends watching the phase word before parking;
    [0] parks immediately. The default matches {!Domain_pool.create}:
    512 when [parties] fit the machine's cores, 0 otherwise. Raises
    [Invalid_argument] on a non-positive party count or negative
    [spin]. *)

val parties : t -> int

val wait : t -> unit
(** Block until all parties arrive. The barrier resets automatically and
    can be reused for any number of rounds. *)
