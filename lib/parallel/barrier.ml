(* A reusable phase-counting barrier with a spin-then-park wait.

   Arrival is a single fetch-and-add on an atomic counter; the last
   arriver resets the counter and bumps the atomic phase word, releasing
   everyone. Waiters spin a bounded number of [Domain.cpu_relax]
   iterations on the phase word before falling back to the mutex/condvar
   slow path, so barrier crossings cost no mutex round-trip when cores
   are available, yet the container this reproduction runs in — often
   fewer cores than domains — never spins unboundedly.

   Reuse safety: the last arriver resets [arrived] *before* bumping
   [phase]. A party can only re-enter [wait] after observing the bump
   (that is how it left the previous phase), so with SC atomics its next
   arrival increment is ordered after the reset and counts toward the
   new phase.

   Lost-wakeup freedom follows the same protocol as [Domain_pool]: a
   parking waiter increments [parked] and re-checks the phase word while
   holding the mutex; the releaser bumps the phase first and reads
   [parked] afterwards, broadcasting under the mutex when it is
   non-zero. *)

type t = {
  parties : int;
  spin : int;
  mutex : Mutex.t;
  cond : Condition.t;
  phase : int Atomic.t;
  arrived : int Atomic.t;
  parked : int Atomic.t;
}

let default_spin = 512

(* Same oversubscription rule as [Domain_pool]: a spin budget only when
   all parties can be on cores at once. *)
let adaptive_spin ~parties =
  if parties <= Domain.recommended_domain_count () then default_spin else 0

let create ?spin parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  let spin = match spin with Some s -> s | None -> adaptive_spin ~parties in
  if spin < 0 then invalid_arg "Barrier.create: spin must be >= 0";
  {
    parties;
    spin;
    mutex = Mutex.create ();
    cond = Condition.create ();
    phase = Atomic.make 0;
    arrived = Atomic.make 0;
    parked = Atomic.make 0;
  }

let parties t = t.parties

let wait t =
  let my_phase = Atomic.get t.phase in
  if Atomic.fetch_and_add t.arrived 1 = t.parties - 1 then begin
    (* Last arriver: reset for reuse, then release everyone. *)
    Atomic.set t.arrived 0;
    Atomic.incr t.phase;
    if Atomic.get t.parked > 0 then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
  end
  else begin
    let rec spin k =
      if Atomic.get t.phase <> my_phase then ()
      else if k > 0 then begin
        Domain.cpu_relax ();
        spin (k - 1)
      end
      else begin
        Mutex.lock t.mutex;
        Atomic.incr t.parked;
        while Atomic.get t.phase = my_phase do
          Condition.wait t.cond t.mutex
        done;
        Atomic.decr t.parked;
        Mutex.unlock t.mutex
      end
    in
    spin t.spin
  end
