type phase = Inspect | Select | Execute

let phase_name = function
  | Inspect -> "inspect"
  | Select -> "select"
  | Execute -> "execute"

let phase_of_name = function
  | "inspect" -> Some Inspect
  | "select" -> Some Select
  | "execute" -> Some Execute
  | _ -> None

type event =
  | Run_begin of { policy : string; threads : int; tasks : int }
  | Generation_begin of { generation : int; tasks : int }
  | Round_begin of { round : int; window : int }
  | Inspect_done of { round : int; marked : int; saved_continuations : int }
  | Select_done of { round : int; committed : int; defeated : int }
  | Execute_done of { round : int; work : int; pushes : int }
  | Window_adapted of { old_w : int; new_w : int; ratio : float }
  | Phase_time of { round : int; phase : phase; dt_s : float }
  | Chunk_sized of { round : int; tasks : int; chunk : int }
  | Worker_counters of {
      worker : int;
      committed : int;
      aborted : int;
      acquires : int;
      atomics : int;
      work : int;
      pushes : int;
      inspections : int;
      chunks : int;
      spins : int;
      parks : int;
    }
  | Bucket_opened of { generation : int; bucket : int; size : int }
  | Bucket_drained of { round : int; bucket : int }
  | Checkpoint_taken of { round : int; digest : string }
  | Resumed of { round : int; digest : string }
  | Audit_finding of { round : int; rule : string; task : int; other : int; lid : int }
  | Run_end of { commits : int; rounds : int; generations : int }

type stamped = { at_s : float; event : event }

let deterministic = function
  | Run_begin _ | Phase_time _ | Chunk_sized _ | Worker_counters _ -> false
  | Generation_begin _ | Round_begin _ | Inspect_done _ | Select_done _
  | Execute_done _ | Window_adapted _ | Bucket_opened _ | Bucket_drained _
  | Checkpoint_taken _ | Resumed _ | Audit_finding _ | Run_end _ ->
      true

let pp_event ppf = function
  | Run_begin { policy; threads; tasks } ->
      Fmt.pf ppf "run-begin policy=%s threads=%d tasks=%d" policy threads tasks
  | Generation_begin { generation; tasks } ->
      Fmt.pf ppf "generation-begin generation=%d tasks=%d" generation tasks
  | Round_begin { round; window } ->
      Fmt.pf ppf "round-begin round=%d window=%d" round window
  | Inspect_done { round; marked; saved_continuations } ->
      Fmt.pf ppf "inspect-done round=%d marked=%d saved=%d" round marked
        saved_continuations
  | Select_done { round; committed; defeated } ->
      Fmt.pf ppf "select-done round=%d committed=%d defeated=%d" round
        committed defeated
  | Execute_done { round; work; pushes } ->
      Fmt.pf ppf "execute-done round=%d work=%d pushes=%d" round work pushes
  | Window_adapted { old_w; new_w; ratio } ->
      Fmt.pf ppf "window-adapted old=%d new=%d ratio=%.6f" old_w new_w ratio
  | Phase_time { round; phase; dt_s } ->
      Fmt.pf ppf "phase-time round=%d phase=%s dt=%.6fs" round
        (phase_name phase) dt_s
  | Chunk_sized { round; tasks; chunk } ->
      Fmt.pf ppf "chunk-sized round=%d tasks=%d chunk=%d" round tasks chunk
  | Worker_counters
      { worker; committed; aborted; acquires; atomics; work; pushes;
        inspections; chunks; spins; parks } ->
      Fmt.pf ppf
        "worker-counters worker=%d committed=%d aborted=%d acquires=%d \
         atomics=%d work=%d pushes=%d inspections=%d chunks=%d spins=%d \
         parks=%d"
        worker committed aborted acquires atomics work pushes inspections
        chunks spins parks
  | Bucket_opened { generation; bucket; size } ->
      Fmt.pf ppf "bucket-opened generation=%d bucket=%d size=%d" generation
        bucket size
  | Bucket_drained { round; bucket } ->
      Fmt.pf ppf "bucket-drained round=%d bucket=%d" round bucket
  | Checkpoint_taken { round; digest } ->
      Fmt.pf ppf "checkpoint-taken round=%d digest=%s" round digest
  | Resumed { round; digest } -> Fmt.pf ppf "resumed round=%d digest=%s" round digest
  | Audit_finding { round; rule; task; other; lid } ->
      Fmt.pf ppf "audit-finding round=%d rule=%s task=%d other=%d lid=%d" round rule
        task other lid
  | Run_end { commits; rounds; generations } ->
      Fmt.pf ppf "run-end commits=%d rounds=%d generations=%d" commits rounds
        generations

let deterministic_lines trace =
  let buf = Buffer.create 1024 in
  List.iter
    (fun { event; _ } ->
      if deterministic event then (
        Buffer.add_string buf (Fmt.str "%a" pp_event event);
        Buffer.add_char buf '\n'))
    trace;
  Buffer.contents buf

(* Sinks *)

type sink = { emit : stamped -> unit; close : unit -> unit }

module Sink = struct
  type nonrec t = sink

  let null = { emit = ignore; close = ignore }
  let is_null s = s == null

  (* [null] operands collapse away, so builder code can chain optional
     sinks unconditionally without stacking dead indirections. *)
  let tee a b =
    if is_null a then b
    else if is_null b then a
    else
      {
        emit =
          (fun s ->
            a.emit s;
            b.emit s);
        close =
          (fun () ->
            a.close ();
            b.close ());
      }

  let of_list sinks =
    match List.filter (fun s -> not (is_null s)) sinks with
    | [] -> null
    | [ s ] -> s
    | sinks ->
        {
          emit = (fun ev -> List.iter (fun s -> s.emit ev) sinks);
          close = (fun () -> List.iter (fun s -> s.close ()) sinks);
        }
end

let null = Sink.null
let tee = Sink.tee
let close s = s.close ()

let pretty ?ppf () =
  let ppf = match ppf with Some p -> p | None -> Fmt.stderr in
  let t0 = ref None in
  {
    emit =
      (fun { at_s; event } ->
        let base = match !t0 with Some b -> b | None -> t0 := Some at_s; at_s in
        Fmt.pf ppf "[%8.4fs] %a@." (at_s -. base) pp_event event);
    close = (fun () -> Format.pp_print_flush ppf ());
  }

module Memory = struct
  type t = {
    mutable ring : stamped array;
    capacity : int;
    mutable head : int; (* next write position *)
    mutable length : int;
    mutable dropped : int;
  }

  let create ?(capacity = 65536) () =
    if capacity < 1 then invalid_arg "Obs.Memory.create: capacity < 1";
    { ring = [||]; capacity; head = 0; length = 0; dropped = 0 }

  let push t s =
    if Array.length t.ring = 0 then begin
      t.ring <- Array.make t.capacity s;
      t.head <- 1 mod t.capacity;
      t.length <- 1
    end
    else begin
      t.ring.(t.head) <- s;
      t.head <- (t.head + 1) mod t.capacity;
      if t.length < t.capacity then t.length <- t.length + 1
      else t.dropped <- t.dropped + 1
    end

  let sink t = { emit = (fun s -> push t s); close = ignore }

  let contents t =
    let n = t.length in
    let start = (t.head - n + t.capacity * 2) mod t.capacity in
    List.init n (fun i -> t.ring.((start + i) mod t.capacity))

  let dropped t = t.dropped

  let clear t =
    t.head <- 0;
    t.length <- 0;
    t.dropped <- 0
end

(* JSONL encoding *)

module Jsonl = struct
  (* A flat JSON value: this module only ever emits (and therefore only
     ever parses) strings and numbers. *)
  type jv = S of string | I of int | F of float

  let fields = function
    | Run_begin { policy; threads; tasks } ->
        ("run_begin",
         [ ("policy", S policy); ("threads", I threads); ("tasks", I tasks) ])
    | Generation_begin { generation; tasks } ->
        ("generation_begin", [ ("generation", I generation); ("tasks", I tasks) ])
    | Round_begin { round; window } ->
        ("round_begin", [ ("round", I round); ("window", I window) ])
    | Inspect_done { round; marked; saved_continuations } ->
        ("inspect_done",
         [ ("round", I round); ("marked", I marked);
           ("saved_continuations", I saved_continuations) ])
    | Select_done { round; committed; defeated } ->
        ("select_done",
         [ ("round", I round); ("committed", I committed);
           ("defeated", I defeated) ])
    | Execute_done { round; work; pushes } ->
        ("execute_done",
         [ ("round", I round); ("work", I work); ("pushes", I pushes) ])
    | Window_adapted { old_w; new_w; ratio } ->
        ("window_adapted",
         [ ("old_w", I old_w); ("new_w", I new_w); ("ratio", F ratio) ])
    | Phase_time { round; phase; dt_s } ->
        ("phase_time",
         [ ("round", I round); ("phase", S (phase_name phase));
           ("dt_s", F dt_s) ])
    | Chunk_sized { round; tasks; chunk } ->
        ("chunk_sized",
         [ ("round", I round); ("tasks", I tasks); ("chunk", I chunk) ])
    | Worker_counters
        { worker; committed; aborted; acquires; atomics; work; pushes;
          inspections; chunks; spins; parks } ->
        ("worker_counters",
         [ ("worker", I worker); ("committed", I committed);
           ("aborted", I aborted); ("acquires", I acquires);
           ("atomics", I atomics); ("work", I work); ("pushes", I pushes);
           ("inspections", I inspections); ("chunks", I chunks);
           ("spins", I spins); ("parks", I parks) ])
    | Bucket_opened { generation; bucket; size } ->
        ("bucket_opened",
         [ ("generation", I generation); ("bucket", I bucket);
           ("size", I size) ])
    | Bucket_drained { round; bucket } ->
        ("bucket_drained", [ ("round", I round); ("bucket", I bucket) ])
    | Checkpoint_taken { round; digest } ->
        ("checkpoint_taken", [ ("round", I round); ("digest", S digest) ])
    | Resumed { round; digest } ->
        ("resumed", [ ("round", I round); ("digest", S digest) ])
    | Audit_finding { round; rule; task; other; lid } ->
        ("audit_finding",
         [ ("round", I round); ("rule", S rule); ("task", I task);
           ("other", I other); ("lid", I lid) ])
    | Run_end { commits; rounds; generations } ->
        ("run_end",
         [ ("commits", I commits); ("rounds", I rounds);
           ("generations", I generations) ])

  let add_escaped buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_float buf f =
    (* Shortest lossless-enough form: integers as "N.0" (stays a JSON
       number, parses back exactly), everything else at 17 significant
       digits so the round-trip is bit-exact. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

  let add_jv buf = function
    | S s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | I i -> Buffer.add_string buf (string_of_int i)
    | F f -> add_float buf f

  let to_line { at_s; event } =
    let name, fs = fields event in
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"at_s\":";
    add_float buf at_s;
    Buffer.add_string buf ",\"ev\":\"";
    Buffer.add_string buf name;
    Buffer.add_char buf '"';
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf ",\"";
        Buffer.add_string buf k;
        Buffer.add_string buf "\":";
        add_jv buf v)
      fs;
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* Minimal parser for the flat objects emitted above. *)

  exception Bad of string

  let parse_flat line =
    let n = String.length line in
    let pos = ref 0 in
    let fail msg = raise (Bad msg) in
    let peek () = if !pos < n then Some line.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false)
      do incr pos done
    in
    let expect c =
      skip_ws ();
      match peek () with
      | Some c' when c' = c -> incr pos
      | _ -> fail (Printf.sprintf "expected %c at column %d" c !pos)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              if !pos >= n then fail "unterminated escape";
              (match line.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 >= n then fail "bad \\u escape";
                  let hex = String.sub line (!pos + 1) 4 in
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  if code > 0xff then fail "\\u escape beyond latin-1"
                  else Buffer.add_char buf (Char.chr code);
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              incr pos;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num line.[!pos] do incr pos done;
      if !pos = start then fail (Printf.sprintf "expected value at column %d" start);
      let txt = String.sub line start (!pos - start) in
      match int_of_string_opt txt with
      | Some i -> I i
      | None -> (
          match float_of_string_opt txt with
          | Some f -> F f
          | None -> fail (Printf.sprintf "bad number %S" txt))
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> S (parse_string ())
      | Some ('0' .. '9' | '-') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unsupported value starting with %c" c)
      | None -> fail "truncated line"
    in
    expect '{';
    let fields = ref [] in
    skip_ws ();
    (match peek () with
    | Some '}' -> incr pos
    | _ ->
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          if List.mem_assoc k !fields then
            fail (Printf.sprintf "duplicate field %S" k);
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ());
    skip_ws ();
    if !pos <> n then fail "trailing characters after object";
    List.rev !fields

  let get fs k =
    match List.assoc_opt k fs with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" k))

  let get_int fs k =
    match get fs k with
    | I i -> i
    | _ -> raise (Bad (Printf.sprintf "field %S: expected integer" k))

  let get_float fs k =
    match get fs k with
    | F f -> f
    | I i -> float_of_int i
    | _ -> raise (Bad (Printf.sprintf "field %S: expected number" k))

  let get_string fs k =
    match get fs k with
    | S s -> s
    | _ -> raise (Bad (Printf.sprintf "field %S: expected string" k))

  let event_of_fields ev fs =
    match ev with
    | "run_begin" ->
        Run_begin
          { policy = get_string fs "policy"; threads = get_int fs "threads";
            tasks = get_int fs "tasks" }
    | "generation_begin" ->
        Generation_begin
          { generation = get_int fs "generation"; tasks = get_int fs "tasks" }
    | "round_begin" ->
        Round_begin { round = get_int fs "round"; window = get_int fs "window" }
    | "inspect_done" ->
        Inspect_done
          { round = get_int fs "round"; marked = get_int fs "marked";
            saved_continuations = get_int fs "saved_continuations" }
    | "select_done" ->
        Select_done
          { round = get_int fs "round"; committed = get_int fs "committed";
            defeated = get_int fs "defeated" }
    | "execute_done" ->
        Execute_done
          { round = get_int fs "round"; work = get_int fs "work";
            pushes = get_int fs "pushes" }
    | "window_adapted" ->
        Window_adapted
          { old_w = get_int fs "old_w"; new_w = get_int fs "new_w";
            ratio = get_float fs "ratio" }
    | "phase_time" ->
        let name = get_string fs "phase" in
        let phase =
          match phase_of_name name with
          | Some p -> p
          | None -> raise (Bad (Printf.sprintf "unknown phase %S" name))
        in
        Phase_time { round = get_int fs "round"; phase; dt_s = get_float fs "dt_s" }
    | "chunk_sized" ->
        Chunk_sized
          { round = get_int fs "round"; tasks = get_int fs "tasks";
            chunk = get_int fs "chunk" }
    | "worker_counters" ->
        Worker_counters
          { worker = get_int fs "worker"; committed = get_int fs "committed";
            aborted = get_int fs "aborted"; acquires = get_int fs "acquires";
            atomics = get_int fs "atomics"; work = get_int fs "work";
            pushes = get_int fs "pushes";
            inspections = get_int fs "inspections";
            chunks = get_int fs "chunks";
            spins = get_int fs "spins";
            parks = get_int fs "parks" }
    | "bucket_opened" ->
        Bucket_opened
          { generation = get_int fs "generation"; bucket = get_int fs "bucket";
            size = get_int fs "size" }
    | "bucket_drained" ->
        Bucket_drained { round = get_int fs "round"; bucket = get_int fs "bucket" }
    | "checkpoint_taken" ->
        Checkpoint_taken
          { round = get_int fs "round"; digest = get_string fs "digest" }
    | "resumed" ->
        Resumed { round = get_int fs "round"; digest = get_string fs "digest" }
    | "audit_finding" ->
        Audit_finding
          { round = get_int fs "round"; rule = get_string fs "rule";
            task = get_int fs "task"; other = get_int fs "other";
            lid = get_int fs "lid" }
    | "run_end" ->
        Run_end
          { commits = get_int fs "commits"; rounds = get_int fs "rounds";
            generations = get_int fs "generations" }
    | other -> raise (Bad (Printf.sprintf "unknown event %S" other))

  let of_line line =
    match
      let fs = parse_flat line in
      let at_s = get_float fs "at_s" in
      let ev = get_string fs "ev" in
      let event = event_of_fields ev fs in
      (* Schema check: nothing beyond the envelope and this event's own
         fields may be present. *)
      let _, expected = fields event in
      List.iter
        (fun (k, _) ->
          if k <> "at_s" && k <> "ev" && not (List.mem_assoc k expected) then
            raise (Bad (Printf.sprintf "unexpected field %S for event %S" k ev)))
        fs;
      { at_s; event }
    with
    | s -> Ok s
    | exception Bad msg -> Error msg

  let validate_line line = Result.map ignore (of_line line)

  let load path =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line -> (
              match of_line line with
              | Ok s -> go (lineno + 1) (s :: acc)
              | Error msg ->
                  Error (Printf.sprintf "%s:%d: %s" path lineno msg))
        in
        go 1 [])

  let sink oc =
    {
      emit =
        (fun s ->
          output_string oc (to_line s);
          output_char oc '\n');
      close = (fun () -> flush oc);
    }

  let file path =
    let oc = open_out path in
    let closed = ref false in
    {
      emit =
        (fun s ->
          if not !closed then begin
            output_string oc (to_line s);
            output_char oc '\n'
          end);
      close =
        (fun () ->
          if not !closed then begin
            closed := true;
            close_out oc
          end);
    }
end
