(** Structured round/phase observability for the Galois runtime.

    All three schedulers can emit a stream of typed events into a
    {!sink}: round boundaries, per-phase outcomes (inspect /
    select-and-execute), adaptive-window decisions, per-worker counters
    and per-phase wall-clock timings. Events that depend only on the
    input and the policy — never on timing or thread count — are
    classified {!deterministic}; rendering just those
    ({!deterministic_lines}) yields a byte-comparable stream that must
    be identical across thread counts for a deterministic run, which
    [lib/detcheck] audits across its configuration lattice.

    Sinks are synchronous and are only ever called from the scheduler's
    sequential sections (never concurrently), so they need no locking. *)

(** {1 Events} *)

(** The two instrumented phases of a DIG round, plus [Execute] for
    schedulers that run tasks directly (serial, speculative). *)
type phase = Inspect | Select | Execute

val phase_name : phase -> string
(** ["inspect"], ["select"] or ["execute"]. *)

val phase_of_name : string -> phase option

type event =
  | Run_begin of { policy : string; threads : int; tasks : int }
      (** First event of a run. Carries the rendered policy and thread
          count, so it is {e not} part of the deterministic stream. *)
  | Generation_begin of { generation : int; tasks : int }
      (** The DIG scheduler drained its pending queue into a new
          sorted generation of [tasks] tasks. *)
  | Round_begin of { round : int; window : int }
      (** A DIG round starts over a window of [window] tasks. *)
  | Inspect_done of { round : int; marked : int; saved_continuations : int }
      (** Inspect phase finished: [marked] locations were acquired
          (max-id marked) in total; [saved_continuations] tasks saved a
          continuation at their failsafe point. *)
  | Select_done of { round : int; committed : int; defeated : int }
      (** Mark ownership resolved: [committed] tasks won all their
          marks, [defeated] lost at least one and retry next round. *)
  | Execute_done of { round : int; work : int; pushes : int }
      (** Commit execution finished: [work] abstract work units were
          performed by committed tasks, which pushed [pushes] children. *)
  | Window_adapted of { old_w : int; new_w : int; ratio : float }
      (** The adaptive controller resized the window after a round with
          commit ratio [ratio]. Only emitted when the size changes. *)
  | Phase_time of { round : int; phase : phase; dt_s : float }
      (** Wall-clock seconds spent in one phase of one round. Timing
          is machine- and run-dependent: never deterministic. *)
  | Chunk_sized of { round : int; tasks : int; chunk : int }
      (** The DIG scheduler's guided chunking picked grab size [chunk]
          for this round's [tasks]-task parallel phases. The choice
          depends on the thread count, so — like [Phase_time] — it is
          not part of the deterministic stream. *)
  | Worker_counters of {
      worker : int;
      committed : int;
      aborted : int;
      acquires : int;
      atomics : int;
      work : int;
      pushes : int;
      inspections : int;
      chunks : int;
      spins : int;
      parks : int;
    }
      (** End-of-run per-worker totals ([chunks] counts dynamic
          chunk grabs in the DIG parallel phases; [spins]/[parks] count
          pool-synchronization wakeups served by the spin fast path vs.
          waits that parked on the condvar slow path). Task→worker
          attribution and synchronization behavior depend on timing, so
          these are not deterministic. *)
  | Bucket_opened of { generation : int; bucket : int; size : int }
      (** Soft-priority scheduling ([prio=delta:<n>|auto]) started
          drawing windows from delta-stepping bucket [bucket] of
          [generation], holding [size] tasks. Bucket membership is
          [priority / delta] — a pure function of the task set — so the
          event is deterministic. *)
  | Bucket_drained of { round : int; bucket : int }
      (** The last task of bucket [bucket] left the pending window after
          [round] (committed or carried to the next generation); the
          next round draws from the following non-empty bucket. *)
  | Checkpoint_taken of { round : int; digest : string }
      (** A round-boundary snapshot was captured after [round], with the
          digest prefix through that round (hex). Emitted only when
          checkpointing is enabled; round and digest are deterministic,
          so two checkpointed runs must agree on every such event. *)
  | Resumed of { round : int; digest : string }
      (** The scheduler restarted from a round-boundary snapshot taken
          after [round] and will replay round [round + 1] next. Emitted
          only on resume. *)
  | Audit_finding of { round : int; rule : string; task : int; other : int; lid : int }
      (** The dynamic determinism audit ([Run.audit]) flagged task
          [task] in [round]: [rule] is ["containment"],
          ["cautiousness"] or ["race"] (see [Galois.Audit]); [other] is
          the race partner's task id (0 otherwise); [lid] the location.
          Deterministic given a fixed location-id namespace
          ([Lock.reset_lids]). *)
  | Run_end of { commits : int; rounds : int; generations : int }
      (** Last event of a run. *)

type stamped = { at_s : float; event : event }
(** An event with the absolute wall-clock time it was emitted at. *)

val deterministic : event -> bool
(** [true] iff every field of the event is a function of the input and
    the policy alone — identical across machines and thread counts for
    a deterministic ([det]) run. [Run_begin], [Phase_time],
    [Chunk_sized] and [Worker_counters] are excluded; everything else is
    included. *)

val pp_event : Format.formatter -> event -> unit
(** One-line human rendering, stable across runs (no timestamps). *)

val deterministic_lines : stamped list -> string
(** Render the deterministic subset of a trace, one event per line,
    timestamps stripped. Two deterministic runs of the same input must
    produce byte-identical results regardless of thread count; this is
    the quantity detcheck compares across its lattice. *)

(** {1 Sinks} *)

type sink = { emit : stamped -> unit; close : unit -> unit }
(** A consumer of stamped events. [close] flushes/releases resources;
    the creator of a sink is responsible for closing it (the runtime
    never closes user-supplied sinks — a sink may outlive several runs,
    e.g. one trace file across the epochs of [pfp]). *)

(** Sink combinators: compose per-job sinks with a global sink (the
    service layer's shape — every query can carry its own sink teed
    into the server's), or fan one stream out to several consumers. *)
module Sink : sig
  type t = sink

  val null : t
  (** Discards everything. *)

  val is_null : t -> bool
  (** Physical test against {!null} — the combinators guarantee any
      composition that would discard everything {e is} [null]. *)

  val tee : t -> t -> t
  (** Emits into both sinks; [close] closes both. [null] operands
      collapse: [tee null s == s]. *)

  val of_list : t list -> t
  (** Emits into every sink, in list order; [close] closes all. [null]
      elements are dropped; an empty (or all-[null]) list is {!null}. *)
end

val null : sink
(** [Sink.null]. *)

val tee : sink -> sink -> sink
(** [Sink.tee]. *)

val close : sink -> unit
(** [close s = s.close ()]. *)

val pretty : ?ppf:Format.formatter -> unit -> sink
(** Human-readable printer (default {!Fmt.stderr}); each line is
    prefixed with seconds elapsed since the sink's first event. *)

(** In-memory ring buffer, the sink used by tests and [detcheck]. *)
module Memory : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Ring of at most [capacity] (default 65536) most-recent events.
      Older events are dropped once full — ample for test-sized runs,
      but note that an overflowing ring is no longer a faithful prefix
      of the run. *)

  val sink : t -> sink
  (** [close] is a no-op; the buffer stays readable. *)

  val contents : t -> stamped list
  (** Oldest first. *)

  val dropped : t -> int
  (** Number of events evicted due to capacity. *)

  val clear : t -> unit
end

(** Line-oriented JSON encoding of stamped events: one flat object per
    line, e.g.
    [{"at_s":12.5,"ev":"round_begin","round":3,"window":64}].
    Self-contained emitter and validating parser (no external JSON
    dependency); [of_line (to_line s)] round-trips every event. *)
module Jsonl : sig
  val to_line : stamped -> string
  (** Without the trailing newline. *)

  val of_line : string -> (stamped, string) result
  (** Parse and schema-check one line: must be a flat JSON object with
      an [at_s] number, a known [ev] name, exactly that event's fields
      with the right types, and nothing else. *)

  val validate_line : string -> (unit, string) result

  val load : string -> (stamped list, string) result
  (** Read a trace file; the error names the first offending line. *)

  val sink : out_channel -> sink
  (** Write lines to a channel the caller owns; [close] only flushes. *)

  val file : string -> sink
  (** Open [path] for writing; [close] closes the file (idempotent). *)
end
