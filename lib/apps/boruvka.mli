(** Boruvka's minimum spanning forest as an unordered Galois program.

    Requires a symmetric graph with direction-symmetric weights
    ({!Graphlib.Graph_io.undirected_random_weights}); ties break by edge
    id, making the forest weight unique across all policies. *)

type forest = { parent_edge : int list; total_weight : int }

val plan :
  Graphlib.Csr.t -> int array -> (int, unit) Galois.Run.t * (unit -> forest)
(** The unexecuted {!galois} description plus a closure reading the
    forest off the world after (each) exec. Tagged [app "boruvka"];
    carries no snapshot-state hook (union-find is not serializable), so
    it supports live in-process resume only. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  int array ->
  forest * Galois.Runtime.report

val serial : Graphlib.Csr.t -> int array -> forest
(** Kruskal with (weight, edge id) ordering — defines the deterministic
    answer. *)

val validate : Graphlib.Csr.t -> forest -> bool
(** Acyclic and spanning (forest components = graph components). *)
