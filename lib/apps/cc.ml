(* Connected components by label propagation — a classic unordered
   Galois program: each task lowers a node's label to the minimum of its
   neighborhood and re-activates changed neighbors. The result (minimum
   node id per component) is algorithm-deterministic, so every policy
   must agree — a strong end-to-end cross-check of the runtime.

   [serial] uses union-find, the strongest sequential baseline. *)

module Csr = Graphlib.Csr

let galois ?record ?audit ?sink ~policy ?pool g =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let label = Array.init n Fun.id in
  let operator ctx u =
    Galois.Context.acquire ctx locks.(u);
    Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
    Galois.Context.work ctx (Csr.out_degree g u);
    (* The minimum over the closed neighborhood. *)
    let m = Csr.fold_succ g u (fun acc v -> min acc label.(v)) label.(u) in
    if m >= label.(u) && Csr.fold_succ g u (fun acc v -> acc && label.(v) <= m) true then
      () (* nothing to update: pure task *)
    else begin
      Galois.Context.failsafe ctx;
      label.(u) <- m;
      Csr.iter_succ g u (fun v ->
          if label.(v) > m then begin
            label.(v) <- m;
            Galois.Context.push ctx v
          end)
    end
  in
  let report =
    Galois.Run.make ~operator (Array.init n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (label, report)

let serial g =
  let n = Csr.nodes g in
  let uf = Graphlib.Union_find.create n in
  Array.iter (fun (u, v) -> ignore (Graphlib.Union_find.union uf u v)) (Csr.all_edges g);
  (* Canonical labels: minimum node id in each component. *)
  let label = Array.make n max_int in
  for u = 0 to n - 1 do
    let r = Graphlib.Union_find.find uf u in
    if u < label.(r) then label.(r) <- u
  done;
  Array.init n (fun u -> label.(Graphlib.Union_find.find uf u))

let count_components label =
  let seen = Hashtbl.create 16 in
  Array.iter (fun l -> Hashtbl.replace seen l ()) label;
  Hashtbl.length seen

(* Every edge's endpoints share a label, and each component's label is
   its minimum member. *)
let validate g label =
  let ok = ref true in
  Array.iter (fun (u, v) -> if label.(u) <> label.(v) then ok := false) (Csr.all_edges g);
  Array.iteri (fun u l -> if l > u then ok := false) label;
  Array.iter (fun l -> if label.(l) <> l then ok := false) label;
  !ok
