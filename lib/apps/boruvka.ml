(* Boruvka's minimum-spanning-forest algorithm as an unordered Galois
   program — a morph algorithm in the Galois taxonomy, here expressed
   over union-find components.

   A task owns one component (identified by a node): it finds the
   lightest edge leaving its component, merges the two components and
   re-activates the merged component. Neighborhood = the two current
   component roots (locked via per-root locks), so concurrent merges of
   disjoint component pairs proceed in parallel.

   Requires a symmetric graph with direction-symmetric weights
   ([Graph_io.undirected_random_weights]); the per-component search only
   scans outward-oriented edges, so the cut property needs the inward
   copy to carry the same weight. The MSF weight is then unique (ties
   break by edge id), so all policies must agree with [serial]
   (Kruskal). *)

module Csr = Graphlib.Csr
module Uf = Graphlib.Union_find

type forest = { parent_edge : int list; total_weight : int }

(* The lightest (weight, edge id) leaving the component of [root],
   scanning that component's vertices; ties break by edge id for
   determinism. *)
let lightest_out g weights members uf root =
  let best = ref None in
  List.iter
    (fun u ->
      Csr.iter_succ_edges g u (fun e v ->
          if Uf.find_readonly uf v <> root then
            let cand = (weights.(e), e, u, v) in
            match !best with
            | None -> best := Some cand
            | Some b -> if cand < b then best := Some cand))
    members.(root);
  !best

(* Unexecuted run description + a closure reading the forest off the
   world. No snapshot hook: the union-find structure has no copy-out
   API, so boruvka supports live in-process resume (the world object is
   shared between the crashed and resumed exec) but not cross-process
   snapshot files. *)
let plan g weights =
  if Array.length weights <> Csr.edges g then
    invalid_arg "Boruvka.galois: weight array size mismatch";
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let uf = Uf.create n in
  (* Component member lists, merged on union; owned by the root's
     lock. *)
  let members = Array.init n (fun u -> [ u ]) in
  let chosen = Array.make (Csr.edges g) false in
  let operator ctx u =
    (* Optimistically find our root, then lock it and re-validate — the
       same pattern as dt's container location. *)
    let rec lock_root x =
      let r = Uf.find_readonly uf x in
      Galois.Context.acquire ctx locks.(r);
      if Uf.find_readonly uf x = r then r else lock_root x
    in
    let root = lock_root u in
    if root <> Uf.find_readonly uf u then ()
    else
      match lightest_out g weights members uf root with
      | None -> () (* isolated component: done, pure *)
      | Some (_, e, _, v) ->
          let other = lock_root v in
          (* Locking [other] happened after computing the edge; if the
             component moved, retry by re-finding the lightest edge.
             Re-validate simply by checking roots are still distinct and
             stable. *)
          if other = root then () (* merged underneath us: stale task *)
          else begin
            Galois.Context.work ctx (List.length members.(root));
            Galois.Context.failsafe ctx;
            ignore (Uf.union uf root other);
            let new_root = Uf.find_readonly uf root in
            members.(new_root) <- List.rev_append members.(root) members.(other);
            if new_root <> root then members.(root) <- [];
            if new_root <> other then members.(other) <- [];
            chosen.(e) <- true;
            Galois.Context.push ctx new_root
          end
  in
  let run = Galois.Run.make ~operator (Array.init n Fun.id) |> Galois.Run.app "boruvka" in
  let forest () =
    let parent_edge = ref [] and total = ref 0 in
    Array.iteri
      (fun e picked ->
        if picked then begin
          parent_edge := e :: !parent_edge;
          total := !total + weights.(e)
        end)
      chosen;
    { parent_edge = !parent_edge; total_weight = !total }
  in
  (run, forest)

let galois ?record ?audit ?sink ~policy ?pool g weights =
  let run, forest = plan g weights in
  let report =
    run
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (forest (), report)

(* Kruskal with sort by (weight, edge id) — the sequential baseline and
   the definition of the deterministic answer. *)
let serial g weights =
  let n = Csr.nodes g in
  let order = Array.init (Csr.edges g) Fun.id in
  Array.sort (fun a b -> compare (weights.(a), a) (weights.(b), b)) order;
  let uf = Uf.create n in
  let edges = Csr.all_edges g in
  let parent_edge = ref [] and total = ref 0 in
  Array.iter
    (fun e ->
      let u, v = edges.(e) in
      if Uf.union uf u v then begin
        parent_edge := e :: !parent_edge;
        total := !total + weights.(e)
      end)
    order;
  { parent_edge = !parent_edge; total_weight = !total }

(* A spanning forest: acyclic (|edges| = n - components) and spanning
   (edge endpoints connect everything connectable). *)
let validate g forest =
  let n = Csr.nodes g in
  let uf = Uf.create n in
  let edges = Csr.all_edges g in
  let acyclic =
    List.for_all
      (fun e ->
        let u, v = edges.(e) in
        Uf.union uf u v)
      forest.parent_edge
  in
  (* Forest components must equal graph components. *)
  let guf = Uf.create n in
  Array.iter (fun (u, v) -> ignore (Uf.union guf u v)) edges;
  acyclic && Uf.components uf = Uf.components guf
