(* Delaunay mesh refinement (paper §4.1): Chew's algorithm.

   A task takes a bad triangle (minimum angle below threshold), inserts
   its circumcenter (or, when the circumcenter falls outside the domain,
   the midpoint of the border edge in the way), retriangulates the
   cavity, and creates tasks for any newly created bad triangles.

   The [min_edge] floor stops refinement of triangles whose shortest
   edge is already tiny: a standard safeguard that guarantees
   termination regardless of the angle threshold and floating-point
   placement of circumcenters.

   - [galois]: operator under any policy (g-n / g-d); new bad triangles
     are pushed as child tasks, exercising deterministic id assignment.
   - [pbbs]: deterministic reservations with dynamic work.
   - [serial]: worklist refinement. *)

module Point = Geometry.Point

type config = { min_angle : float; min_edge : float }

(* 20 degrees is safely below Ruppert's 20.7-degree termination bound;
   the [min_edge] floor is a belt-and-braces backstop against numeric
   corner cases (e.g. small angles between hull segments). *)
let default_config = { min_angle = 20.0; min_edge = 1e-3 }

let shortest_edge mesh tri =
  let p0 = Mesh.triangle_point mesh tri 0 in
  let p1 = Mesh.triangle_point mesh tri 1 in
  let p2 = Mesh.triangle_point mesh tri 2 in
  sqrt (Float.min (Point.dist2 p0 p1) (Float.min (Point.dist2 p1 p2) (Point.dist2 p2 p0)))

let is_bad cfg mesh tri =
  tri.Mesh.alive
  && Mesh.min_angle mesh tri < cfg.min_angle
  && shortest_edge mesh tri > cfg.min_edge

let bad_triangles cfg mesh = List.filter (is_bad cfg mesh) (Mesh.triangles mesh)

(* Is [p] strictly inside the diametral circle of segment (a, b)? The
   Ruppert encroachment test. *)
let encroaches a b p =
  Point.dot (Point.sub a p) (Point.sub b p) < 0.0

(* Compute the refinement cavity for [tri]: around its circumcenter —
   unless the circumcenter is outside the domain (cavity [Blocked]) or
   encroaches a border segment's diametral circle, in which case that
   segment's midpoint is inserted instead (Ruppert's rule; required for
   termination). Returns [None] when the task should be skipped. *)
let plan_cavity mesh ~acquire tri =
  let split_border a b btri =
    (* Split border segment (a,b) at its midpoint. The segment is
       excluded from the Blocked check (the midpoint may round to a hair
       outside the domain) and, later, from the star (see
       [Mesh.retriangulate ~split]). *)
    let m = Point.midpoint (Mesh.point mesh a) (Mesh.point mesh b) in
    match Mesh.collect_cavity ~ignore_border:(a, b) mesh ~acquire ~start:btri m with
    | cavity -> Some (m, cavity, Some (a, b))
    | exception Mesh.Blocked _ ->
        (* Numerically possible on a near-degenerate boundary; dropping
           the task is safe (mesh untouched). *)
        None
  in
  match Mesh.circumcenter mesh tri with
  | None -> None (* degenerate triangle; nothing sensible to do *)
  | Some c -> (
      match Mesh.collect_cavity mesh ~acquire ~start:tri c with
      | cavity -> (
          (* Ruppert: if the circumcenter encroaches any border segment
             on the cavity boundary, split that segment instead. *)
          let encroached =
            List.find_opt
              (fun be ->
                be.Mesh.outer = None
                && encroaches (Mesh.point mesh be.Mesh.a) (Mesh.point mesh be.Mesh.b) c)
              cavity.Mesh.boundary
          in
          match encroached with
          | Some be -> split_border be.Mesh.a be.Mesh.b be.Mesh.inner
          | None -> Some (c, cavity, None))
      | exception Mesh.Blocked (a, b, btri) -> split_border a b btri)

let refine_with cfg mesh ctx tri (newpt, cavity, split) =
  Galois.Context.failsafe ctx;
  let q = Mesh.add_point mesh newpt in
  let fresh =
    Mesh.retriangulate ?split mesh ~register:(Galois.Context.register_new ctx) cavity q
  in
  List.iter (fun nt -> if is_bad cfg mesh nt then Galois.Context.push ctx nt) fresh;
  (* A segment split need not destroy the offending triangle; requeue it
     (Ruppert). Terminates: the nearby segments keep shortening until the
     circumcenter becomes insertable or the triangle is destroyed. *)
  if tri.Mesh.alive && is_bad cfg mesh tri then Galois.Context.push ctx tri

let operator cfg mesh ctx tri =
  match Galois.Context.saved ctx with
  | Some plan -> refine_with cfg mesh ctx tri plan
  | None -> (
      let acquire t = Galois.Context.acquire ctx t.Mesh.lock in
      acquire tri;
      if not (is_bad cfg mesh tri) then () (* stale task: pure no-op *)
      else
        match plan_cavity mesh ~acquire tri with
        | None -> ()
        | Some plan ->
            let _, cavity, _ = plan in
            Galois.Context.work ctx (List.length cavity.Mesh.old_tris);
            Galois.Context.save ctx plan;
            refine_with cfg mesh ctx tri plan)

type op_state = Geometry.Point.t * Mesh.cavity * (int * int) option

(* Unexecuted run description over the initial bad triangles. No
   snapshot hook: triangles are identified physically within the live
   mesh, so a marshalled snapshot would detach them — dmr supports live
   in-process resume (crash/resume against the same mesh) only. *)
let plan ?(config = default_config) mesh =
  let bad = Array.of_list (bad_triangles config mesh) in
  Galois.Run.make ~operator:(operator config mesh) bad |> Galois.Run.app "dmr"

let galois ?(config = default_config) ?record ?audit ?sink ~policy ?pool mesh =
  plan ~config mesh
  |> Galois.Run.policy policy
  |> Galois.Run.opt Galois.Run.pool pool
  |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
  |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
  |> Galois.Run.opt Galois.Run.sink sink
  |> Galois.Run.exec

let serial ?(config = default_config) mesh = galois ~config ~policy:Galois.Policy.serial mesh

(* PBBS-style deterministic variant: dynamic deterministic reservations,
   triangle mark words as min-reservation cells. *)
let pbbs ?(config = default_config) ?granularity ~pool mesh =
  (* Priorities are encoded into the 30-bit task-id field of the mark
     word; one lock epoch covers the whole refinement. *)
  let bound = Galois.Lock.max_task_id in
  let encode prio = bound - prio in
  let stamp = Galois.Lock.new_epoch () in
  (* The plan table is written concurrently during the reserve phase;
     Hashtbl needs external synchronization. Contention is negligible
     next to cavity computation. *)
  let plans = Hashtbl.create 1024 and plans_mutex = Mutex.create () in
  let put prio plan =
    Mutex.lock plans_mutex;
    Hashtbl.replace plans prio plan;
    Mutex.unlock plans_mutex
  in
  let take prio =
    Mutex.lock plans_mutex;
    let plan = Hashtbl.find_opt plans prio in
    Hashtbl.remove plans prio;
    Mutex.unlock plans_mutex;
    plan
  in
  let reserve prio tri =
    (* Everything claim_max touched must reach the commit phase so it
       can be released there — even when the plan is abandoned. A stale
       reservation would block every later (lower-priority) item
       forever. *)
    if is_bad config mesh tri then begin
      let acquired = ref [] in
      let acquire t =
        ignore (Galois.Lock.claim_max t.Mesh.lock ~stamp (encode prio));
        acquired := t :: !acquired
      in
      acquire tri;
      let plan = plan_cavity mesh ~acquire tri in
      put prio (plan, !acquired)
    end
  in
  let commit prio tri =
    match take prio with
    | None -> Some [] (* nothing reserved: the triangle was already good *)
    | Some (plan, acquired) -> (
        let finish () =
          List.iter (fun t -> Galois.Lock.release t.Mesh.lock ~stamp (encode prio)) acquired
        in
        match plan with
        | None ->
            (* plan_cavity declined (numeric corner); drop the task. *)
            finish ();
            Some []
        | Some (newpt, cavity, split) ->
            if not (is_bad config mesh tri) then begin
              (* A concurrent commit already destroyed the triangle. *)
              finish ();
              Some []
            end
            else begin
              let mine t = Galois.Lock.holds t.Mesh.lock ~stamp (encode prio) in
              if List.for_all mine acquired then begin
                let q = Mesh.add_point mesh newpt in
                let fresh = Mesh.retriangulate ?split mesh ~register:(fun _ -> ()) cavity q in
                finish ();
                let children = List.filter (is_bad config mesh) fresh in
                (* Requeue the offending triangle if a segment split left
                   it alive (Ruppert). *)
                let children =
                  if tri.Mesh.alive && is_bad config mesh tri then tri :: children else children
                in
                Some children
              end
              else begin
                finish ();
                None
              end
            end)
  in
  let initial = Array.of_list (bad_triangles config mesh) in
  Detreserve.speculative_for_dynamic ?granularity ~pool ~initial ~reserve ~commit ()

(* No alive triangle is still bad (the refinement postcondition). *)
let refined cfg mesh = bad_triangles cfg mesh = []
