(** k-core decomposition (coreness) — the ordered showcase app of the
    soft-priority scheduler.

    The graph is read as undirected (successors are neighbors): pass a
    symmetric CSR, e.g. {!Graphlib.Csr.symmetrize}. Coreness is a
    unique function of the graph, so every policy — serial peeling,
    unordered det, soft-priority det at any delta and thread count —
    produces the same array. *)

val plan : Graphlib.Csr.t -> (int * int, unit) Galois.Run.t * int array
(** The unexecuted {!galois} description plus its estimate array
    (which converges to the coreness), tagged [app "kcore"], with the
    task's push-time estimate as its {!Galois.Run.priority} and a
    [Run.snapshot_state] hook over the estimates. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  int array * Galois.Runtime.report
(** Montresor-style h-index local updates: a task lowers its vertex's
    estimate to the h-index of its neighbors' estimates and wakes the
    neighbors whose estimate exceeds the new value. The fixpoint is the
    coreness, so the result equals {!serial} under every policy; an
    ordered policy ([prio=delta:<n>]/[prio=auto]) merely reaches it
    with fewer re-evaluations. *)

val serial : Graphlib.Csr.t -> int array
(** Matula–Beck bin-sort peeling, O(n + m). *)

val validate : Graphlib.Csr.t -> int array -> bool
(** [validate g core] checks [core] against {!serial}. *)

val h_index : counts:int array -> Graphlib.Csr.t -> int array -> int -> int
(** The local update rule, exposed for the property tests: the largest
    [h] such that at least [h] neighbors of the vertex have estimate
    [>= h]. [counts] is zeroed scratch of size at least [degree + 1],
    re-zeroed before returning. *)
