(** Push-based residual PageRank (asynchronous Galois fixed point).

    Integer Q20 fixed-point arithmetic makes the Galois variants exactly
    reproducible under the deterministic policy; all policies agree with
    the synchronous power iteration within the tolerance. *)

type config = { damping : int; tolerance : int }
(** Q20 fixed point (see [one] = 2^20 internally): default damping 0.85,
    tolerance 1e-3. *)

val default_config : config

val galois :
  ?config:config ->
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  float array * Galois.Runtime.report
(** Ranks (converted to floats). Ranks are un-normalized (PageRank's
    (1-d) + d·Σ formulation). *)

val serial : ?config:config -> ?max_iters:int -> Graphlib.Csr.t -> float array
(** Synchronous power iteration (floating point) — the reference. *)

val max_abs_diff : float array -> float array -> float
