(* k-core decomposition (coreness) — the repo's ordered app.

   [galois] runs Montresor-style h-index local updates: every vertex
   carries a coreness estimate, initially its degree; processing a
   vertex lowers the estimate to the h-index of its neighbors'
   estimates and wakes the neighbors whose estimate exceeds the new
   value. Estimates only ever decrease and the fixpoint of the h-index
   map is exactly the coreness — unique regardless of processing
   order, so every policy agrees with the serial Matula–Beck peeling.

   The natural schedule is ordered, though: peeling low-estimate
   vertices first settles their neighborhoods before high-degree
   vertices look at them, so far fewer re-evaluations are wasted.
   That is what [Run.priority] (the estimate at push time) plus a
   [prio=delta:<n>]/[prio=auto] policy exploit; under [prio=off] the
   program is still correct, just chattier.

   The graph is read as undirected: successors are neighbors. Pass a
   symmetric CSR (e.g. {!Graphlib.Csr.symmetrize}) for meaningful
   coreness — [plan] does not symmetrize for you. *)

module Csr = Graphlib.Csr

(* h-index of the (estimate-capped) neighbor multiset: the largest [h]
   with at least [h] neighbors whose estimate is [>= h]. Counting sort
   into [counts] (scratch of size [>= deg + 1], zeroed on entry and
   re-zeroed before returning) then a suffix-sum scan. *)
let h_index ~counts g est u =
  let d = Csr.out_degree g u in
  Csr.iter_succ g u (fun v ->
      let c = if est.(v) > d then d else est.(v) in
      counts.(c) <- counts.(c) + 1);
  let h = ref 0 in
  let at_least = ref 0 in
  (try
     for c = d downto 1 do
       at_least := !at_least + counts.(c);
       if !at_least >= c then begin
         h := c;
         raise Exit
       end
     done
   with Exit -> ());
  Array.fill counts 0 (d + 1) 0;
  !h

let plan g =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let est = Array.init n (fun v -> Csr.out_degree g v) in
  let operator ctx (u, _est_at_push) =
    Galois.Context.acquire ctx locks.(u);
    Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
    Galois.Context.work ctx (Csr.out_degree g u);
    Galois.Context.failsafe ctx;
    (* Degree-sized scratch per call: self-contained and small. *)
    let counts = Array.make (Csr.out_degree g u + 1) 0 in
    let h = h_index ~counts g est u in
    if h < est.(u) then begin
      est.(u) <- h;
      Csr.iter_succ g u (fun v ->
          if est.(v) > h then Galois.Context.push ctx (v, est.(v)))
    end
  in
  let initial = Array.init n (fun v -> (v, est.(v))) in
  let run =
    Galois.Run.make ~operator initial
    |> Galois.Run.app "kcore"
    |> Galois.Run.priority (fun (_, e) -> e)
    |> Galois.Run.snapshot_state
         ~save:(fun () -> Array.copy est)
         ~restore:(fun saved -> Array.blit saved 0 est 0 n)
  in
  (run, est)

let galois ?record ?audit ?sink ~policy ?pool g =
  let run, est = plan g in
  let report =
    run
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (est, report)

(* Matula–Beck peeling: bin-sort vertices by degree, repeatedly remove
   a minimum-degree vertex, assign it the current degree as coreness
   and decrement its still-present neighbors (repositioning them one
   bin down). O(n + m) with the standard bin/pos/vert bookkeeping. *)
let serial g =
  let n = Csr.nodes g in
  if n = 0 then [||]
  else begin
    let deg = Array.init n (fun v -> Csr.out_degree g v) in
    let max_deg = Array.fold_left max 0 deg in
    let bin = Array.make (max_deg + 2) 0 in
    Array.iter (fun d -> bin.(d) <- bin.(d) + 1) deg;
    let start = ref 0 in
    for d = 0 to max_deg do
      let c = bin.(d) in
      bin.(d) <- !start;
      start := !start + c
    done;
    let pos = Array.make n 0 in
    let vert = Array.make n 0 in
    Array.iteri
      (fun v d ->
        pos.(v) <- bin.(d);
        vert.(bin.(d)) <- v;
        bin.(d) <- bin.(d) + 1)
      deg;
    (* Restore bin starts (they were bumped while placing). *)
    for d = max_deg downto 1 do
      bin.(d) <- bin.(d - 1)
    done;
    bin.(0) <- 0;
    let core = Array.make n 0 in
    for i = 0 to n - 1 do
      let v = vert.(i) in
      core.(v) <- deg.(v);
      Csr.iter_succ g v (fun u ->
          if deg.(u) > deg.(v) then begin
            let du = deg.(u) and pu = pos.(u) in
            let pw = bin.(du) in
            let w = vert.(pw) in
            if u <> w then begin
              pos.(u) <- pw;
              vert.(pu) <- w;
              pos.(w) <- pu;
              vert.(pw) <- u
            end;
            bin.(du) <- bin.(du) + 1;
            deg.(u) <- du - 1
          end)
    done;
    core
  end

let validate g core =
  let reference = serial g in
  Array.length core = Csr.nodes g && core = reference
