(* Breadth-first search (paper §4.1).

   - [galois]: the Lonestar-style unordered label-correcting program. A
     task (u, d) claims u and its successors, improves dist(u), and
     creates tasks for improvable successors. Runs non-deterministically
     or deterministically depending on the policy (g-n / g-d).
   - [pbbs]: the handwritten deterministic level-synchronous program
     with min-parent races resolved by deterministic reservations
     (PBBS detBFS).
   - [serial]: optimized sequential queue BFS — the role of the
     Schardl–Leiserson baseline in Fig. 8. *)

module Csr = Graphlib.Csr

let unreached = max_int

(* The run description and the world (distance array) it executes
   against, without executing it — the checkpoint/replay layer composes
   its own policies, checkpoints and resumes onto it. The distance
   array is the app's entire mutable state, so the snapshot hook is a
   plain copy in / copy out. *)
let plan g ~source =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let dist = Array.make n unreached in
  let operator ctx (u, d) =
    Galois.Context.acquire ctx locks.(u);
    if dist.(u) <= d then () (* stale task: nothing to do, stays pure *)
    else begin
      Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
      Galois.Context.work ctx (Csr.out_degree g u);
      Galois.Context.failsafe ctx;
      dist.(u) <- d;
      Csr.iter_succ g u (fun v -> if dist.(v) > d + 1 then Galois.Context.push ctx (v, d + 1))
    end
  in
  let run =
    Galois.Run.make ~operator [| (source, 0) |]
    |> Galois.Run.app "bfs"
    |> Galois.Run.snapshot_state
         ~save:(fun () -> Array.copy dist)
         ~restore:(fun saved -> Array.blit saved 0 dist 0 n)
  in
  (run, dist)

let galois ?record ?audit ?sink ~policy ?pool g ~source =
  let run, dist = plan g ~source in
  let report =
    run
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (dist, report)

let serial g ~source =
  let n = Csr.nodes g in
  let dist = Array.make n unreached in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let d = dist.(u) + 1 in
    Csr.iter_succ g u (fun v ->
        if dist.(v) = unreached then begin
          dist.(v) <- d;
          Queue.add v queue
        end)
  done;
  dist

(* PBBS detBFS: level-synchronous rounds; within a round, contending
   parents of a frontier vertex are resolved by a deterministic min
   reservation, so parents (and everything else) are thread-independent. *)
let pbbs ~pool g ~source =
  let n = Csr.nodes g in
  let dist = Array.make n unreached in
  let parent = Array.make n (-1) in
  let cells = Detreserve.Cell.create_array n in
  let rounds = ref 0 in
  dist.(source) <- 0;
  parent.(source) <- source;
  let frontier = ref [| source |] in
  while Array.length !frontier > 0 do
    incr rounds;
    let f = !frontier in
    let level = !rounds in
    (* Reserve: every frontier vertex bids for its unvisited neighbors. *)
    Parallel.Domain_pool.parallel_for pool 0 (Array.length f) (fun i ->
        let u = f.(i) in
        Csr.iter_succ g u (fun v ->
            if dist.(v) = unreached then Detreserve.Cell.reserve cells.(v) u));
    (* Commit: the minimum bidder becomes the parent. *)
    Parallel.Domain_pool.parallel_for pool 0 (Array.length f) (fun i ->
        let u = f.(i) in
        Csr.iter_succ g u (fun v ->
            if dist.(v) = unreached && Detreserve.Cell.holds cells.(v) u then begin
              dist.(v) <- level;
              parent.(v) <- u
            end));
    (* Next frontier: nodes discovered this level, in node order —
       deterministic. Gathered with per-worker contiguous slices. *)
    let workers = Parallel.Domain_pool.size pool in
    let buffers = Array.make workers [] in
    Parallel.Domain_pool.parallel_for_workers pool 0 n (fun w lo hi ->
        let acc = ref [] in
        for v = hi - 1 downto lo do
          if dist.(v) = level then acc := v :: !acc
        done;
        buffers.(w) <- !acc);
    frontier := Array.concat (List.map Array.of_list (Array.to_list buffers))
  done;
  (dist, parent, !rounds)

(* Check a distance labelling against the definition (used by tests and
   the harness's self-checks). *)
let validate g ~source dist =
  let ok = ref true in
  if dist.(source) <> 0 then ok := false;
  Array.iteri
    (fun u du ->
      if du <> unreached then
        Csr.iter_succ g u (fun v -> if dist.(v) > du + 1 then ok := false))
    dist;
  (* Every reached non-source node has a predecessor exactly one
     closer. *)
  let has_pred = Array.make (Csr.nodes g) false in
  has_pred.(source) <- true;
  Array.iteri
    (fun u du ->
      if du <> unreached then
        Csr.iter_succ g u (fun v -> if dist.(v) = du + 1 then has_pred.(v) <- true))
    dist;
  Array.iteri (fun v dv -> if dv <> unreached && not has_pred.(v) then ok := false) dist;
  !ok
