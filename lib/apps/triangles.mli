(** Triangle counting over a symmetric simple graph. All tasks are
    read-only up to their single result-cell write — a stress of the
    runtime's near-pure task handling. *)

val count_at : Graphlib.Csr.t -> int -> int
(** Triangles whose minimum vertex is [u]. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  int * Galois.Runtime.report

val serial : Graphlib.Csr.t -> int
