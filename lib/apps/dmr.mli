(** Delaunay mesh refinement (Chew's algorithm with Ruppert segment
    splitting; paper §4.1). *)

type config = { min_angle : float; min_edge : float }
(** Quality threshold (degrees) and minimum-edge backstop. *)

val default_config : config

val shortest_edge : Mesh.t -> Mesh.triangle -> float
val is_bad : config -> Mesh.t -> Mesh.triangle -> bool
val bad_triangles : config -> Mesh.t -> Mesh.triangle list

val plan_cavity :
  Mesh.t ->
  acquire:(Mesh.triangle -> unit) ->
  Mesh.triangle ->
  (Geometry.Point.t * Mesh.cavity * (int * int) option) option
(** The insertion plan for a bad triangle: circumcenter — or, when that
    encroaches or escapes the domain, a border-segment midpoint with the
    segment to split. [None]: drop the task (mesh untouched). *)

type op_state
(** The operator's saved-continuation state (an insertion plan). *)

val plan : ?config:config -> Mesh.t -> (Mesh.triangle, op_state) Galois.Run.t
(** The unexecuted {!galois} description over the mesh's current bad
    triangles, tagged [app "dmr"]. No snapshot-state hook — triangles
    live inside the mesh, so dmr supports live in-process resume
    only. *)

val galois :
  ?config:config ->
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Mesh.t ->
  Galois.Runtime.report
(** Refine all bad triangles in place under any policy. *)

val serial : ?config:config -> Mesh.t -> Galois.Runtime.report

val pbbs :
  ?config:config ->
  ?granularity:int ->
  pool:Parallel.Domain_pool.t ->
  Mesh.t ->
  Detreserve.stats
(** Handwritten deterministic variant (dynamic deterministic
    reservations). *)

val refined : config -> Mesh.t -> bool
(** Postcondition: no alive triangle is still bad. *)
