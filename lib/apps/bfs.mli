(** Breadth-first search (paper §4.1). *)

val unreached : int
(** Distance value of unreachable nodes ([max_int]). *)

val plan :
  Graphlib.Csr.t -> source:int -> ((int * int), unit) Galois.Run.t * int array
(** The unexecuted {!galois} run description plus the distance array it
    will fill — the checkpoint/replay layer's entry point. The
    description is tagged [app "bfs"] and carries a
    [Run.snapshot_state] hook over the distance array, so snapshots can
    resume in a fresh process. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  source:int ->
  int array * Galois.Runtime.report
(** Lonestar-style unordered label-correcting BFS: runs
    non-deterministically or deterministically by policy (the paper's
    g-n / g-d variants). Returns the distance array. *)

val serial : Graphlib.Csr.t -> source:int -> int array
(** Optimized sequential queue BFS (the Fig. 8 baseline role). *)

val pbbs :
  pool:Parallel.Domain_pool.t -> Graphlib.Csr.t -> source:int -> int array * int array * int
(** PBBS detBFS: level-synchronous with deterministic min-parent
    resolution. Returns (distances, parents, levels). *)

val validate : Graphlib.Csr.t -> source:int -> int array -> bool
(** Checks a distance labelling against the BFS definition. *)
