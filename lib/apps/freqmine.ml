(* FP-growth frequent itemset mining: the computational skeleton of
   PARSEC's freqmine. Build an FP-tree over a transaction database, then
   mine frequent itemsets by recursive projection. Parallelism: one task
   per frequent item's projected subtree — coarse and irregular in size,
   with a couple of barriers and almost no atomic traffic. *)

type config = {
  transactions : int;
  items : int;  (* item universe size *)
  avg_length : int;  (* average transaction length *)
  min_support : int;
  seed : int;
}

let default_config =
  { transactions = 2000; items = 200; avg_length = 10; min_support = 20; seed = 23 }

(* Zipf-ish skewed item popularity, as in real market-basket data. *)
let generate cfg =
  let g = Parallel.Splitmix.create cfg.seed in
  let pick () =
    (* Inverse-power sampling: item rank r with probability ~ 1/(r+1). *)
    let u = Parallel.Splitmix.float g in
    let r = int_of_float (float_of_int cfg.items ** u) - 1 in
    min (cfg.items - 1) (max 0 r)
  in
  Array.init cfg.transactions (fun _ ->
      let len = 1 + Parallel.Splitmix.int g (2 * cfg.avg_length) in
      List.sort_uniq compare (List.init len (fun _ -> pick ())))

(* FP-tree: children keyed by item; [count] = transactions through this
   node. *)
type node = {
  item : int;
  mutable count : int;
  mutable children : (int * node) list;
  parent : node option;
}

let new_node ?parent item = { item; count = 0; children = []; parent }

let insert_path root path =
  let rec go node = function
    | [] -> ()
    | item :: rest ->
        let child =
          match List.assoc_opt item node.children with
          | Some c -> c
          | None ->
              let c = new_node ~parent:node item in
              node.children <- (item, c) :: node.children;
              c
        in
        child.count <- child.count + 1;
        go child rest
  in
  go root path

(* Collect all nodes for each item (the header table). *)
let header_table root =
  let table = Hashtbl.create 64 in
  let rec walk node =
    List.iter
      (fun (item, c) ->
        Hashtbl.replace table item (c :: Option.value ~default:[] (Hashtbl.find_opt table item));
        walk c)
      node.children
  in
  walk root;
  table

(* Conditional pattern base of an item: prefix paths with counts. *)
let conditional_paths table item =
  match Hashtbl.find_opt table item with
  | None -> []
  | Some nodes ->
      List.filter_map
        (fun n ->
          let rec prefix acc node =
            match node.parent with
            | None -> acc
            | Some p -> if p.item < 0 then acc else prefix (p.item :: acc) p
          in
          let path = prefix [] n in
          if path = [] then None else Some (path, n.count))
        nodes

(* Count of frequent itemsets (including the singleton) rooted at a
   suffix, by recursive conditional FP-trees. Also accumulates abstract
   work. *)
let rec mine ~min_support paths work =
  (* Count item frequencies inside the conditional base. *)
  let freq = Hashtbl.create 16 in
  let seen = ref [] in
  List.iter
    (fun (path, c) ->
      List.iter
        (fun item ->
          match Hashtbl.find_opt freq item with
          | None ->
              seen := item :: !seen;
              Hashtbl.replace freq item c
          | Some c0 -> Hashtbl.replace freq item (c0 + c))
        path)
    paths;
  (* Walk the explicit occurrence list, never the table: Hashtbl.fold
     visits bindings in hash-bucket order, which is representation-, not
     input-, determined. The sort pins the recursion order by item id. *)
  let frequent =
    List.sort compare (List.filter (fun i -> Hashtbl.find freq i >= min_support) !seen)
  in
  work := !work + List.length paths + List.length frequent;
  List.fold_left
    (fun acc item ->
      (* Build the conditional base for [item] within these paths. *)
      let sub =
        List.filter_map
          (fun (path, c) ->
            let rec before acc = function
              | [] -> None
              | x :: rest -> if x = item then Some (List.rev acc) else before (x :: acc) rest
            in
            match before [] path with
            | Some [] | None -> None
            | Some prefix -> Some (prefix, c))
          paths
      in
      acc + 1 + mine ~min_support sub work)
    0 frequent

let run ?(config = default_config) ~pool () =
  let db = generate config in
  let t0 = Galois.Clock.now_s () in
  (* Pass 1 (parallel): global item frequencies via per-worker partial
     counts. *)
  let workers = Parallel.Domain_pool.size pool in
  let partial = Array.init workers (fun _ -> Array.make config.items 0) in
  Parallel.Domain_pool.parallel_for_workers pool 0 config.transactions (fun w lo hi ->
      let mine_counts = partial.(w) in
      for t = lo to hi - 1 do
        List.iter (fun item -> mine_counts.(item) <- mine_counts.(item) + 1) db.(t)
      done);
  let counts = Array.make config.items 0 in
  Array.iter (fun p -> Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) p) partial;
  (* Pass 2 (sequential, as in freqmine's tree build): insert
     transactions with infrequent items dropped and items ordered by
     descending frequency. *)
  let order i j = if counts.(j) <> counts.(i) then compare counts.(j) counts.(i) else compare i j in
  let root = new_node (-1) in
  Array.iter
    (fun tx ->
      let path = List.sort order (List.filter (fun i -> counts.(i) >= config.min_support) tx) in
      insert_path root path)
    db;
  let table = header_table root in
  let frequent_items =
    List.sort order
      (Array.to_list (Array.init config.items Fun.id)
      |> List.filter (fun i -> counts.(i) >= config.min_support))
  in
  (* Pass 3 (parallel): mine one projected subtree per frequent item —
     irregular task sizes, the freqmine signature. *)
  let items = Array.of_list frequent_items in
  let results = Array.make (Array.length items) 0 in
  let costs = Array.make (Array.length items) 0 in
  Parallel.Domain_pool.parallel_for ~chunk:1 pool 0 (Array.length items) (fun idx ->
      let work = ref 0 in
      let paths = conditional_paths table items.(idx) in
      results.(idx) <- 1 + mine ~min_support:config.min_support paths work;
      costs.(idx) <- 1 + !work);
  let total = Array.fold_left ( + ) 0 results in
  let time_s = Galois.Clock.elapsed_s t0 in
  ( total,
    {
      Kernel_profile.tasks = Array.length items;
      atomics = Array.length items + (2 * workers);
      barriers = 3;
      time_s;
      task_costs = costs;
    } )
