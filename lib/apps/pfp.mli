(** Preflow-push maximum flow with global relabeling (paper §4.1). *)

type result = {
  flow_value : int;
  epochs : int;
  global_relabels : int;
  stats : Galois.Stats.t;
  schedule : Galois.Schedule.t option;
  audit : Galois.Audit.report option;
}

val discharge :
  Flow_network.t -> int array -> int array -> activated:(int -> unit) -> int -> int * int
(** Discharge one node to zero excess; returns (relabels, steps). *)

val saturate_source : Flow_network.t -> int array -> activated:(int -> unit) -> unit

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Flow_network.t ->
  result
(** Epoch-structured Galois preflow-push: active nodes are unordered
    tasks (static node ids — the §3.3 fast path); global relabeling runs
    between epochs once enough local relabels accumulate. Mutates the
    network's residual capacities. *)

val serial : Flow_network.t -> result
(** FIFO push-relabel with periodic global relabeling (the hi_pr
    baseline role, Fig. 8). *)
