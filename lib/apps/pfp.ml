(* Preflow-push maximum flow with the global relabeling heuristic
   (paper §4.1, [13]).

   - [galois]: active nodes are unordered Galois tasks; one task
     discharges its node completely (pushing to admissible residual
     edges, relabeling when stuck). Nodes activated by incoming pushes
     are collected and form the next epoch's task pool; a global relabel
     runs between epochs once enough local relabels accumulated. The
     task universe is the node set, so the deterministic scheduler uses
     the paper's static-id fast path (§3.3).
   - [serial]: FIFO push-relabel with periodic global relabeling — the
     hi_pr-style sequential baseline of Fig. 8. *)

type result = {
  flow_value : int;
  epochs : int;
  global_relabels : int;
  stats : Galois.Stats.t;  (* summed over epochs; Stats.zero for serial *)
  schedule : Galois.Schedule.t option;  (* concatenated over epochs *)
  audit : Galois.Audit.report option;  (* merged over epochs *)
}

(* Discharge [u] to zero excess. [activated v] is called whenever a push
   gives v positive excess. Returns the number of local relabels. *)
let discharge net height excess ~activated u =
  let lo, hi = Flow_network.edge_range net u in
  let relabels = ref 0 and steps = ref 0 in
  while excess.(u) > 0 do
    (* One sweep over residual edges, pushing wherever admissible. *)
    let e = ref lo in
    while excess.(u) > 0 && !e < hi do
      let v = Flow_network.edge_target net !e in
      if net.Flow_network.cap.(!e) > 0 && height.(u) = height.(v) + 1 then begin
        let delta = min excess.(u) net.Flow_network.cap.(!e) in
        net.Flow_network.cap.(!e) <- net.Flow_network.cap.(!e) - delta;
        let r = net.Flow_network.rev.(!e) in
        net.Flow_network.cap.(r) <- net.Flow_network.cap.(r) + delta;
        excess.(u) <- excess.(u) - delta;
        let was = excess.(v) in
        excess.(v) <- was + delta;
        incr steps;
        if was = 0 && v <> net.Flow_network.source && v <> net.Flow_network.sink then
          activated v
      end;
      incr e
    done;
    if excess.(u) > 0 then begin
      (* Relabel: 1 + min height over residual out-edges. A node with
         excess always has one (the reverse of an edge that delivered
         flow). *)
      let m = ref max_int in
      for e = lo to hi - 1 do
        if net.Flow_network.cap.(e) > 0 then
          m := min !m (height.(Flow_network.edge_target net e))
      done;
      assert (!m < max_int);
      height.(u) <- !m + 1;
      incr relabels;
      incr steps
    end
  done;
  (!relabels, !steps)

let saturate_source net excess ~activated =
  let s = net.Flow_network.source in
  let lo, hi = Flow_network.edge_range net s in
  for e = lo to hi - 1 do
    let c = net.Flow_network.cap.(e) in
    if c > 0 then begin
      let v = Flow_network.edge_target net e in
      net.Flow_network.cap.(e) <- 0;
      let r = net.Flow_network.rev.(e) in
      net.Flow_network.cap.(r) <- net.Flow_network.cap.(r) + c;
      let was = excess.(v) in
      excess.(v) <- was + c;
      if was = 0 && v <> s && v <> net.Flow_network.sink then activated v
    end
  done

let galois ?(record = false) ?(audit = false) ?sink ~policy ?pool net =
  let n = Flow_network.nodes net in
  let locks = Galois.Lock.create_array n in
  let height = Array.make n 0 and excess = Array.make n 0 in
  let next_active = Array.make n false in
  Flow_network.global_relabel net height;
  saturate_source net excess ~activated:(fun v -> next_active.(v) <- true);
  let relabel_budget = max 16 (n / 4) in
  let pending_relabels = ref 0 in
  let epochs = ref 0 and global_relabels = ref 1 in
  let total = ref (Galois.Stats.zero (Galois.Policy.threads policy)) in
  let audit_total = ref Galois.Audit.empty_report in
  let flat_records = ref [] and round_records = ref [] in
  (* Per-node relabel tallies, written under the node's lock and summed
     sequentially between epochs — keeping the relabel trigger (and so
     the whole execution) deterministic under the deterministic policy. *)
  let relabel_tally = Array.make n 0 in
  let operator ctx u =
    Galois.Context.acquire ctx locks.(u);
    if excess.(u) <= 0 then () (* deactivated or duplicate: pure skip *)
    else begin
      let lo, hi = Flow_network.edge_range net u in
      for e = lo to hi - 1 do
        Galois.Context.acquire ctx locks.(Flow_network.edge_target net e)
      done;
      Galois.Context.failsafe ctx;
      let relabels, steps =
        discharge net height excess ~activated:(fun v -> next_active.(v) <- true) u
      in
      Galois.Context.work ctx steps;
      relabel_tally.(u) <- relabel_tally.(u) + relabels
    end
  in
  let collect_active () =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if next_active.(v) then begin
        next_active.(v) <- false;
        acc := v :: !acc
      end
    done;
    Array.of_list !acc
  in
  let rec loop () =
    let active = collect_active () in
    if Array.length active > 0 then begin
      incr epochs;
      if !pending_relabels >= relabel_budget then begin
        Flow_network.global_relabel net height;
        incr global_relabels;
        pending_relabels := 0
      end;
      (* One Run per epoch; a caller-supplied sink spans all epochs
         (Run never closes it), bracketing each with Run_begin/Run_end. *)
      let report =
        Galois.Run.make ~operator active
        |> Galois.Run.policy policy
        |> Galois.Run.opt Galois.Run.pool pool
        |> (if record then Galois.Run.record else Fun.id)
        |> (if audit then Galois.Run.audit else Fun.id)
        |> Galois.Run.static_id Fun.id
        |> Galois.Run.opt Galois.Run.sink sink
        |> Galois.Run.exec
      in
      (match report.schedule with
      | Some (Galois.Schedule.Flat l) -> flat_records := l :: !flat_records
      | Some (Galois.Schedule.Rounds l) -> round_records := l :: !round_records
      | None -> ());
      Array.iter
        (fun u ->
          pending_relabels := !pending_relabels + relabel_tally.(u);
          relabel_tally.(u) <- 0)
        active;
      total := Galois.Stats.add !total report.stats;
      (match report.audit with
      | Some a -> audit_total := Galois.Audit.merge_reports !audit_total a
      | None -> ());
      loop ()
    end
  in
  loop ();
  let schedule =
    if not record then None
    else if !round_records <> [] then
      Some (Galois.Schedule.Rounds (List.concat (List.rev !round_records)))
    else Some (Galois.Schedule.Flat (List.concat (List.rev !flat_records)))
  in
  {
    flow_value = excess.(net.Flow_network.sink);
    epochs = !epochs;
    global_relabels = !global_relabels;
    stats = !total;
    schedule;
    audit = (if audit then Some !audit_total else None);
  }

let serial net =
  let n = Flow_network.nodes net in
  let height = Array.make n 0 and excess = Array.make n 0 in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let activated v =
    if not queued.(v) then begin
      queued.(v) <- true;
      Queue.add v queue
    end
  in
  Flow_network.global_relabel net height;
  saturate_source net excess ~activated;
  let relabel_budget = max 16 (n / 4) in
  let pending = ref 0 in
  let global_relabels = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    queued.(u) <- false;
    if excess.(u) > 0 then begin
      if !pending >= relabel_budget then begin
        Flow_network.global_relabel net height;
        incr global_relabels;
        pending := 0
      end;
      let relabels, _ = discharge net height excess ~activated u in
      pending := !pending + relabels
    end
  done;
  {
    flow_value = excess.(net.Flow_network.sink);
    epochs = 1;
    global_relabels = !global_relabels;
    stats = Galois.Stats.zero 1;
    schedule = None;
    audit = None;
  }
