(** Delaunay triangulation by parallel incremental insertion
    (Bowyer–Watson cavities; paper §4.1). *)

type state
(** Internal per-run state (mesh + point containers). *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Geometry.Point.t array ->
  Mesh.t * Galois.Runtime.report
(** Triangulate the points under any policy. The synthetic bounding
    vertices are stripped before returning; the result is the Delaunay
    triangulation of the points' convex hull. *)

val serial : Geometry.Point.t array -> Mesh.t

val pbbs :
  ?granularity:int ->
  pool:Parallel.Domain_pool.t ->
  Geometry.Point.t array ->
  Mesh.t * Detreserve.stats
(** Handwritten deterministic variant via deterministic reservations
    over insertion priorities. *)

val canonical : Mesh.t -> (float * float) list list
(** Order-independent fingerprint of a mesh: sorted triangle coordinate
    triples. Two runs produced the same triangulation iff their
    canonical forms are equal. *)
