(* Delaunay triangulation by incremental insertion (paper §4.1).

   Each task inserts one point: locate its containing triangle (via the
   per-point container pointer maintained with the mesh), flood the
   Bowyer–Watson cavity, and star the point to the cavity boundary.
   Uninserted points ride in triangle buckets and are redistributed when
   their triangle dies — all under the cavity's locks, so the program is
   correct under speculative execution and deterministic under DIG
   scheduling.

   The continuation optimization (§3.3) saves the computed cavity at the
   failsafe point and reuses it at commit.

   - [galois]: the operator above under any policy (g-n / g-d).
   - [pbbs]: deterministic reservations over insertion priorities —
     the handwritten deterministic variant.
   - [serial]: sequential incremental insertion. *)

module Point = Geometry.Point

type state = {
  mesh : Mesh.t;
  cont : Mesh.triangle option array;  (* point id -> containing triangle *)
  n : int;  (* number of real points; ids 0..n-1 *)
}

let prepare points =
  let n = Array.length points in
  let mesh = Mesh.create ~capacity:(2 * (n + 8)) () in
  Array.iter (fun p -> ignore (Mesh.add_point mesh p)) points;
  let big, fakes = Mesh.bounding_triangle mesh in
  let cont = Array.make n (Some big) in
  big.Mesh.bucket <- List.init n Fun.id;
  (({ mesh; cont; n } : state), fakes)

(* Locate the current containing triangle of [pid]: optimistic read of
   the container pointer, acquire, re-validate. [None] = already
   inserted. *)
let rec locate st ~acquire pid =
  match st.cont.(pid) with
  | None -> None
  | Some tri ->
      acquire tri;
      (match st.cont.(pid) with
      | Some tri' when tri' == tri && tri.Mesh.alive -> Some tri
      | _ -> locate st ~acquire pid)

(* Move the bucketed points of the dead cavity triangles into the fresh
   triangles, updating their container pointers. Runs under the cavity
   locks. *)
let redistribute st cavity fresh inserted =
  let place x =
    let px = Mesh.point st.mesh x in
    let target =
      match List.find_opt (fun nt -> Mesh.contains_point st.mesh nt px) fresh with
      | Some nt -> Some nt
      | None ->
          (* On a numeric boundary the containment test can reject
             everywhere; circumcircle containment still holds inside the
             cavity region. *)
          List.find_opt (fun nt -> Mesh.circumcircle_contains st.mesh nt px) fresh
    in
    let target = match (target, fresh) with Some nt, _ -> nt | None, nt :: _ -> nt | None, [] -> assert false in
    st.cont.(x) <- Some target;
    target.Mesh.bucket <- x :: target.Mesh.bucket
  in
  List.iter
    (fun old ->
      List.iter (fun x -> if x <> inserted then place x) old.Mesh.bucket;
      old.Mesh.bucket <- [])
    cavity.Mesh.old_tris

let insert_with_cavity st ctx pid cavity =
  Galois.Context.failsafe ctx;
  let fresh =
    Mesh.retriangulate st.mesh ~register:(Galois.Context.register_new ctx) cavity pid
  in
  redistribute st cavity fresh pid;
  st.cont.(pid) <- None

let operator st ctx pid =
  match Galois.Context.saved ctx with
  | Some cavity -> insert_with_cavity st ctx pid cavity
  | None -> (
      let acquire tri = Galois.Context.acquire ctx tri.Mesh.lock in
      match locate st ~acquire pid with
      | None -> () (* already inserted: pure no-op *)
      | Some start ->
          let p = Mesh.point st.mesh pid in
          let cavity = Mesh.collect_cavity st.mesh ~acquire ~start p in
          Galois.Context.work ctx (List.length cavity.Mesh.old_tris);
          Galois.Context.save ctx cavity;
          insert_with_cavity st ctx pid cavity)

let galois ?record ?audit ?sink ~policy ?pool points =
  let st, fakes = prepare points in
  let report =
    Galois.Run.make ~operator:(operator st) (Array.init st.n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  Mesh.strip_vertices st.mesh fakes;
  (st.mesh, report)

let serial points =
  let mesh, report = galois ~policy:Galois.Policy.serial points in
  ignore report;
  mesh

(* PBBS-style deterministic variant: deterministic reservations over
   insertion priorities, reusing the triangle mark words as
   min-reservation cells — priorities are encoded so that a smaller
   insertion index wins ([Lock.claim_max] keeps the max, so priority
   value = bound - index). This mirrors how the PBBS dt implementation
   is itself a handwritten DIG scheduler (paper §5.3). *)
let pbbs ?granularity ~pool points =
  let st, fakes = prepare points in
  let bound = st.n + 1 in
  let prio i = bound - i in
  let stamp = Galois.Lock.new_epoch () in
  let cavities = Array.make st.n None in
  let reserve i =
    if st.cont.(i) <> None then begin
      let acquired = ref [] in
      let acquire tri =
        ignore (Galois.Lock.claim_max tri.Mesh.lock ~stamp (prio i));
        acquired := tri :: !acquired
      in
      match locate st ~acquire i with
      | None -> cavities.(i) <- None
      | Some start ->
          let p = Mesh.point st.mesh i in
          let cavity = Mesh.collect_cavity st.mesh ~acquire ~start p in
          cavities.(i) <- Some (cavity, !acquired)
    end
  in
  let commit i =
    if st.cont.(i) = None then true
    else
      match cavities.(i) with
      | None -> true
      | Some (cavity, acquired) ->
          let mine tri = Galois.Lock.holds tri.Mesh.lock ~stamp (prio i) in
          let ok = List.for_all mine acquired in
          if ok then begin
            let fresh = Mesh.retriangulate st.mesh ~register:(fun _ -> ()) cavity i in
            redistribute st cavity fresh i;
            st.cont.(i) <- None
          end;
          (* Release surviving marks either way. *)
          List.iter (fun tri -> Galois.Lock.release tri.Mesh.lock ~stamp (prio i)) acquired;
          cavities.(i) <- None;
          ok
  in
  let stats =
    Detreserve.speculative_for ?granularity ~pool ~n:st.n ~reserve ~commit ()
  in
  Mesh.strip_vertices st.mesh fakes;
  (st.mesh, stats)

(* Canonical form for output comparison: triangles as sorted coordinate
   triples, sorted. Point ids are internal, coordinates are not. *)
let canonical mesh =
  let tri_key tri =
    let coords =
      List.sort compare
        (List.map
           (fun i ->
             let p = Mesh.triangle_point mesh tri i in
             (p.Point.x, p.Point.y))
           [ 0; 1; 2 ])
    in
    coords
  in
  List.sort compare (List.map tri_key (Mesh.triangles mesh))
