(* Black–Scholes option pricing: the PARSEC kernel's computational
   skeleton — embarrassingly parallel, uniform coarse tasks, nearly zero
   synchronization. *)

type option_data = {
  spot : float;
  strike : float;
  rate : float;
  volatility : float;
  maturity : float;
  call : bool;
}

let generate ?(seed = 7) n =
  let g = Parallel.Splitmix.create seed in
  Array.init n (fun _ ->
      {
        spot = 10.0 +. (Parallel.Splitmix.float g *. 190.0);
        strike = 10.0 +. (Parallel.Splitmix.float g *. 190.0);
        rate = 0.01 +. (Parallel.Splitmix.float g *. 0.09);
        volatility = 0.05 +. (Parallel.Splitmix.float g *. 0.55);
        maturity = 0.1 +. (Parallel.Splitmix.float g *. 2.9);
        call = Parallel.Splitmix.bool g;
      })

(* Cumulative normal distribution via the Abramowitz–Stegun polynomial,
   as in the PARSEC source. *)
let cndf x =
  let sign_negative = x < 0.0 in
  let x = Float.abs x in
  let k = 1.0 /. (1.0 +. (0.2316419 *. x)) in
  let poly =
    k
    *. (0.319381530
       +. (k *. (-0.356563782 +. (k *. (1.781477937 +. (k *. (-1.821255978 +. (k *. 1.330274429))))))))
  in
  let pdf = exp (-0.5 *. x *. x) /. sqrt (2.0 *. Float.pi) in
  let value = 1.0 -. (pdf *. poly) in
  if sign_negative then 1.0 -. value else value

let price o =
  let d1 =
    (log (o.spot /. o.strike) +. ((o.rate +. (0.5 *. o.volatility *. o.volatility)) *. o.maturity))
    /. (o.volatility *. sqrt o.maturity)
  in
  let d2 = d1 -. (o.volatility *. sqrt o.maturity) in
  let discounted = o.strike *. exp (-.o.rate *. o.maturity) in
  if o.call then (o.spot *. cndf d1) -. (discounted *. cndf d2)
  else (discounted *. cndf (-.d2)) -. (o.spot *. cndf (-.d1))

let run ?(iterations = 1) ~pool options =
  let n = Array.length options in
  let out = Array.make n 0.0 in
  let atomics = Atomic.make 0 in
  let t0 = Galois.Clock.now_s () in
  for _ = 1 to iterations do
    (* One dynamic chunk grab per 1024 options is the only shared-memory
       synchronization — the kernel's defining characteristic. *)
    Parallel.Domain_pool.parallel_for ~chunk:1024 pool 0 n (fun i ->
        if i land 1023 = 0 then Atomic.incr atomics;
        out.(i) <- price options.(i))
  done;
  let time_s = Galois.Clock.elapsed_s t0 in
  ( out,
    {
      Kernel_profile.tasks = n * iterations;
      atomics = Atomic.get atomics;
      barriers = iterations;
      time_s;
      task_costs = Array.make (n * iterations) 1;
    } )
