(* Single-source shortest paths with non-negative integer weights:
   label-correcting over unordered tasks, the weighted sibling of bfs.
   The distances are algorithm-deterministic, so all policies must agree
   with Dijkstra ([serial]). *)

module Csr = Graphlib.Csr

let unreached = max_int

(* Unexecuted run description + world, like [Bfs.plan]: the distance
   array is the entire mutable state, so the snapshot hook copies it.
   [weight] abstracts where the per-edge weight lives — a heap array or
   the CSR's own off-heap weight plane; the task stream (and therefore
   the schedule digest) depends only on the weight values, so both
   sources produce byte-identical schedules. *)
let plan_with ~weight g ~source =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let dist = Array.make n unreached in
  let operator ctx (u, d) =
    Galois.Context.acquire ctx locks.(u);
    if dist.(u) <= d then () (* stale: pure skip *)
    else begin
      Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
      Galois.Context.work ctx (Csr.out_degree g u);
      Galois.Context.failsafe ctx;
      dist.(u) <- d;
      Csr.iter_succ_edges g u (fun e v ->
          let nd = d + weight e in
          if dist.(v) > nd then Galois.Context.push ctx (v, nd))
    end
  in
  let run =
    Galois.Run.make ~operator [| (source, 0) |]
    |> Galois.Run.app "sssp"
    (* Soft-priority hint: the tentative distance. Only consulted when
       the policy asks for prio=delta/auto; prio=off schedules are
       byte-identical to the hint-free ones. *)
    |> Galois.Run.priority (fun (_, d) -> d)
    |> Galois.Run.snapshot_state
         ~save:(fun () -> Array.copy dist)
         ~restore:(fun saved -> Array.blit saved 0 dist 0 n)
  in
  (run, dist)

let plan g weights ~source =
  if Array.length weights <> Csr.edges g then
    invalid_arg "Sssp.galois: weight array size mismatch";
  plan_with ~weight:(fun e -> weights.(e)) g ~source

(* The run description over the graph's own weight plane (no heap-side
   weight array at all). *)
let plan_weighted g ~source =
  if not (Csr.weighted g) then invalid_arg "Sssp.galois_weighted: graph has no weight plane";
  plan_with ~weight:(fun e -> Csr.unsafe_weight g e) g ~source

let exec_plan ?record ?audit ?sink ~policy ?pool (run, dist) =
  let report =
    run
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (dist, report)

let galois_weighted ?record ?audit ?sink ~policy ?pool g ~source =
  exec_plan ?record ?audit ?sink ~policy ?pool (plan_weighted g ~source)

let galois ?record ?audit ?sink ~policy ?pool g weights ~source =
  exec_plan ?record ?audit ?sink ~policy ?pool (plan g weights ~source)

(* Dijkstra with a simple pairing of (dist, node) in a sorted module-less
   binary heap. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0, 0); size = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.data.((!i - 1) / 2) > h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.data.(l) < h.data.(!smallest) then smallest := l;
        if r < h.size && h.data.(r) < h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let serial g weights ~source =
  let n = Csr.nodes g in
  let dist = Array.make n unreached in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.push heap (0, source);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d = dist.(u) then
          Csr.iter_succ_edges g u (fun e v ->
              let nd = d + weights.(e) in
              if dist.(v) > nd then begin
                dist.(v) <- nd;
                Heap.push heap (nd, v)
              end);
        drain ()
  in
  drain ();
  dist

(* Triangle-inequality check plus witness-predecessor existence. *)
let validate g weights ~source dist =
  let ok = ref (dist.(source) = 0) in
  Array.iteri
    (fun u du ->
      if du <> unreached then
        Csr.iter_succ_edges g u (fun e v -> if dist.(v) > du + weights.(e) then ok := false))
    dist;
  let witnessed = Array.make (Csr.nodes g) false in
  witnessed.(source) <- true;
  Array.iteri
    (fun u du ->
      if du <> unreached then
        Csr.iter_succ_edges g u (fun e v ->
            if dist.(v) = du + weights.(e) then witnessed.(v) <- true))
    dist;
  Array.iteri (fun v dv -> if dv <> unreached && not witnessed.(v) then ok := false) dist;
  !ok
