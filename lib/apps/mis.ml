(* Maximal independent set (paper §4.1).

   - [galois]: the Lonestar non-deterministic greedy program — any node
     whose neighbors are not yet in the set joins it. The result is a
     valid MIS but depends on execution order (unless run under the
     deterministic policy).
   - [pbbs]: the deterministic data-parallel program via deterministic
     reservations: equivalent to the sequential lexicographically-first
     greedy, hence equal to [serial] — a strong cross-check.
   - [serial]: greedy in node order (lexicographically-first MIS). *)

module Csr = Graphlib.Csr

let galois ?record ?audit ?sink ~policy ?pool g =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let in_mis = Array.make n false in
  let operator ctx u =
    Galois.Context.acquire ctx locks.(u);
    Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
    Galois.Context.work ctx (Csr.out_degree g u);
    Galois.Context.failsafe ctx;
    if not (Csr.exists_succ g u (fun v -> in_mis.(v))) then in_mis.(u) <- true
  in
  let report =
    Galois.Run.make ~operator (Array.init n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (in_mis, report)

let serial g =
  let n = Csr.nodes g in
  let in_mis = Array.make n false in
  for u = 0 to n - 1 do
    if not (Csr.exists_succ g u (fun v -> in_mis.(v))) then in_mis.(u) <- true
  done;
  in_mis

(* PBBS-style deterministic MIS: speculative_for in node-priority order.
   An item reserves itself and its neighbors; if it owns everything it
   decides (joining unless an earlier neighbor already joined) and
   releases. The outcome equals the sequential greedy. *)
let pbbs ?granularity ~pool g =
  let n = Csr.nodes g in
  let in_mis = Array.make n false in
  let decided = Array.make n false in
  let cells = Detreserve.Cell.create_array n in
  let reserve u =
    if not decided.(u) then begin
      Detreserve.Cell.reserve cells.(u) u;
      Csr.iter_succ g u (fun v -> if not decided.(v) then Detreserve.Cell.reserve cells.(v) u)
    end
  in
  let commit u =
    if decided.(u) then true
    else begin
      let owns = ref (Detreserve.Cell.holds cells.(u) u) in
      Csr.iter_succ g u (fun v ->
          if (not decided.(v)) && not (Detreserve.Cell.holds cells.(v) u) then owns := false);
      let result =
        if !owns then begin
          (* All conflicting earlier neighbors are already decided. *)
          if not (Csr.exists_succ g u (fun v -> in_mis.(v))) then in_mis.(u) <- true;
          decided.(u) <- true;
          true
        end
        else false
      in
      (* Release own reservations either way so later rounds see free
         cells. *)
      Detreserve.Cell.release cells.(u) u;
      Csr.iter_succ g u (fun v -> Detreserve.Cell.release cells.(v) u);
      result
    end
  in
  let stats = Detreserve.speculative_for ?granularity ~pool ~n ~reserve ~commit () in
  (in_mis, stats)

let is_maximal_independent g in_mis =
  let n = Csr.nodes g in
  let ok = ref true in
  for u = 0 to n - 1 do
    if in_mis.(u) && Csr.exists_succ g u (fun v -> in_mis.(v)) then ok := false;
    if (not in_mis.(u)) && not (Csr.exists_succ g u (fun v -> in_mis.(v))) then ok := false
  done;
  !ok
