(* Push-based residual PageRank — the classic asynchronous Galois
   formulation: each node holds a rank and a residual; a task flushes a
   node's residual into its rank and pushes damped shares to its
   successors, re-activating any successor whose residual crosses the
   tolerance.

   Fixed-point iterations of this kind converge to the same answer (up
   to tolerance) under any schedule, so all policies must agree with the
   synchronous power iteration ([serial]) within tolerance. Integer
   fixed-point arithmetic (scaled by 2^20) keeps the Galois variants'
   answers exactly reproducible under the deterministic policy. *)

module Csr = Graphlib.Csr

let scale_bits = 20
let one = 1 lsl scale_bits

type config = { damping : int; tolerance : int }

(* damping 0.85, tolerance 1e-3 in fixed point *)
let default_config = { damping = 85 * one / 100; tolerance = one / 1000 }

let galois ?(config = default_config) ?record ?audit ?sink ~policy ?pool g =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let rank = Array.make n 0 in
  let residual = Array.make n (one - config.damping) in
  let operator ctx u =
    Galois.Context.acquire ctx locks.(u);
    if residual.(u) < config.tolerance then () (* drained: pure skip *)
    else begin
      Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
      Galois.Context.work ctx (Csr.out_degree g u);
      Galois.Context.failsafe ctx;
      let r = residual.(u) in
      residual.(u) <- 0;
      rank.(u) <- rank.(u) + r;
      let deg = Csr.out_degree g u in
      if deg > 0 then begin
        (* share = damping * r / deg in Q20 fixed point; the product
           stays well under 2^62. *)
        let give = config.damping * r / one / deg in
        if give > 0 then
          Csr.iter_succ g u (fun v ->
              let before = residual.(v) in
              residual.(v) <- before + give;
              if before < config.tolerance && before + give >= config.tolerance then
                Galois.Context.push ctx v)
      end
    end
  in
  let report =
    Galois.Run.make ~operator (Array.init n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (Array.map (fun r -> float_of_int r /. float_of_int one) rank, report)

(* Synchronous power iteration in floats: the reference answer. *)
let serial ?(config = default_config) ?(max_iters = 200) g =
  let n = Csr.nodes g in
  let d = float_of_int config.damping /. float_of_int one in
  let tol = float_of_int config.tolerance /. float_of_int one in
  let base = 1.0 -. d in
  let rank = Array.make n base in
  let next = Array.make n 0.0 in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iters < max_iters do
    incr iters;
    Array.fill next 0 n base;
    for u = 0 to n - 1 do
      let deg = Csr.out_degree g u in
      if deg > 0 then begin
        let share = d *. rank.(u) /. float_of_int deg in
        Csr.iter_succ g u (fun v -> next.(v) <- next.(v) +. share)
      end
    done;
    let delta = ref 0.0 in
    for u = 0 to n - 1 do
      delta := Float.max !delta (Float.abs (next.(u) -. rank.(u)));
      rank.(u) <- next.(u)
    done;
    if !delta < tol /. 10.0 then continue_ := false
  done;
  rank

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
  !m
