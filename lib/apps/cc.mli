(** Connected components by label propagation (Galois program) and
    union-find (sequential baseline). The graph must be symmetric. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  int array * Galois.Runtime.report
(** Minimum-label propagation. The result — minimum node id per
    component — is unique, so every policy agrees. *)

val serial : Graphlib.Csr.t -> int array

val count_components : int array -> int
val validate : Graphlib.Csr.t -> int array -> bool
