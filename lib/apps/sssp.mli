(** Single-source shortest paths with non-negative integer weights. *)

val unreached : int

val plan :
  Graphlib.Csr.t ->
  int array ->
  source:int ->
  ((int * int), unit) Galois.Run.t * int array
(** The unexecuted {!galois} description plus its distance array,
    tagged [app "sssp"] with a [Run.snapshot_state] hook — see
    {!Bfs.plan}. *)

val plan_weighted :
  Graphlib.Csr.t ->
  source:int ->
  ((int * int), unit) Galois.Run.t * int array
(** Like {!plan}, but weights come from the graph's own off-heap weight
    plane ({!Graphlib.Csr.weight}) — no heap-side weight array. Raises
    [Invalid_argument] on an unweighted graph. The schedule depends
    only on the weight values, so for equal weights the digest is
    byte-identical to the array path. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  int array ->
  source:int ->
  int array * Galois.Runtime.report
(** Unordered label-correcting SSSP (weights indexed by edge id). The
    distances are unique, so every policy agrees with {!serial}. Raises
    [Invalid_argument] on weight-array size mismatch. *)

val galois_weighted :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  source:int ->
  int array * Galois.Runtime.report
(** {!galois} over {!plan_weighted}: the embedded-weight-plane run. *)

val serial : Graphlib.Csr.t -> int array -> source:int -> int array
(** Dijkstra. *)

val validate : Graphlib.Csr.t -> int array -> source:int -> int array -> bool
