(* Annealed particle filter: the computational skeleton of PARSEC's
   bodytrack. A hidden state (the "pose") evolves over frames; each
   frame runs several annealing layers of (parallel weighting →
   sequential resampling → noisy propagation). Tasks are per-particle
   likelihood evaluations: coarse, with a few barriers per frame and
   almost no atomic traffic — the PARSEC profile. *)

type config = {
  particles : int;
  frames : int;
  layers : int;
  state_dim : int;
  seed : int;
}

let default_config = { particles = 512; frames = 8; layers = 3; state_dim = 8; seed = 11 }

type result = {
  (* Mean tracking error across frames: the filter's estimate vs the
     hidden trajectory. Deterministic in the config. *)
  mean_error : float;
  profile : Kernel_profile.t;
}

(* Synthetic observation model: the likelihood of a particle is a
   Gaussian in its distance to the hidden pose, with some deliberately
   heavy per-evaluation trigonometric work standing in for PARSEC's edge
   and silhouette image measurements. *)
let likelihood ~beta hidden particle dim =
  let d2 = ref 0.0 in
  for j = 0 to dim - 1 do
    let diff = particle.(j) -. hidden.(j) in
    d2 := !d2 +. (diff *. diff) +. (0.000001 *. sin (diff *. 10.0))
  done;
  exp (-.beta *. !d2)

let run ?(config = default_config) ~pool () =
  let { particles = np; frames; layers; state_dim = dim; seed } = config in
  let g = Parallel.Splitmix.create seed in
  let hidden = Array.init dim (fun _ -> Parallel.Splitmix.float g) in
  let parts = Array.init np (fun _ -> Array.init dim (fun _ -> Parallel.Splitmix.float g)) in
  let weights = Array.make np 0.0 in
  let error_sum = ref 0.0 in
  let atomics = ref 0 and barriers = ref 0 in
  let t0 = Galois.Clock.now_s () in
  for _frame = 1 to frames do
    (* The hidden pose drifts deterministically. *)
    for j = 0 to dim - 1 do
      hidden.(j) <- hidden.(j) +. (0.01 *. sin (hidden.(j) *. 7.0)) +. 0.005
    done;
    for layer = 1 to layers do
      let beta = 4.0 *. float_of_int layer in
      (* Parallel weighting: one task per particle. *)
      Parallel.Domain_pool.parallel_for ~chunk:32 pool 0 np (fun i ->
          weights.(i) <- likelihood ~beta hidden parts.(i) dim);
      atomics := !atomics + (np / 32) + 1;
      incr barriers;
      (* Sequential systematic resampling (as in the PARSEC code, the
         resample step is serialized). *)
      let total = Array.fold_left ( +. ) 0.0 weights in
      if total > 0.0 then begin
        let step = total /. float_of_int np in
        let offset = step *. 0.5 in
        let chosen = Array.make np parts.(0) in
        let cumulative = ref 0.0 and src = ref (-1) in
        let next = ref offset in
        for i = 0 to np - 1 do
          while !cumulative < !next && !src < np - 1 do
            incr src;
            cumulative := !cumulative +. weights.(!src)
          done;
          chosen.(i) <- Array.copy parts.(max 0 !src);
          next := !next +. step
        done;
        Array.blit chosen 0 parts 0 np
      end;
      (* Noisy propagation, narrower at deeper annealing layers. *)
      let sigma = 0.05 /. float_of_int layer in
      let gp = Parallel.Splitmix.create (seed + layer) in
      Array.iter
        (fun p ->
          for j = 0 to dim - 1 do
            p.(j) <- p.(j) +. ((Parallel.Splitmix.float gp -. 0.5) *. sigma)
          done)
        parts
    done;
    (* Estimate = weighted mean; accumulate tracking error. *)
    let est = Array.make dim 0.0 in
    let total = Float.max 1e-30 (Array.fold_left ( +. ) 0.0 weights) in
    Array.iteri
      (fun i p ->
        for j = 0 to dim - 1 do
          est.(j) <- est.(j) +. (weights.(i) *. p.(j) /. total)
        done)
      parts;
    let err = ref 0.0 in
    for j = 0 to dim - 1 do
      let d = est.(j) -. hidden.(j) in
      err := !err +. (d *. d)
    done;
    error_sum := !error_sum +. sqrt !err
  done;
  let time_s = Galois.Clock.elapsed_s t0 in
  let tasks = np * frames * layers in
  {
    mean_error = !error_sum /. float_of_int frames;
    profile =
      {
        Kernel_profile.tasks;
        atomics = !atomics;
        barriers = !barriers;
        time_s;
        task_costs = Array.make tasks dim;
      };
  }
