(* Triangle counting: for each node, count pairs of neighbors that are
   themselves adjacent (u < v < w ordering avoids double counting).

   Every task is read-only — it acquires its neighborhood and never
   reaches a failsafe point — which exercises the runtime's pure-task
   path: under DIG scheduling such tasks complete entirely during
   inspection and merely publish their result at commit. Results are
   accumulated per node (owned by the node's lock), then reduced. *)

module Csr = Graphlib.Csr

(* Count for node u: neighbors v > u, w > v with (v, w) an edge. The
   graph must be symmetric and simple. [Csr.mem_edge] binary-searches
   the sorted adjacency a symmetrized graph carries, so the membership
   probe is O(log d) instead of the old O(d) [exists_succ] scan. *)
let count_at g u =
  let count = ref 0 in
  Csr.iter_succ g u (fun v ->
      if v > u then
        Csr.iter_succ g v (fun w -> if w > v && Csr.mem_edge g u w then incr count));
  !count

let galois ?record ?audit ?sink ~policy ?pool g =
  let n = Csr.nodes g in
  let locks = Galois.Lock.create_array n in
  let per_node = Array.make n 0 in
  let operator ctx u =
    (* Read-only: acquire u and its 2-hop reads' 1-hop anchors. The
       per-node result cell is written through [push]-free pure
       completion: writing per_node.(u) is a write, so this task is not
       pure — acquire u, read neighbors (their adjacency is immutable
       topology, no lock needed), write own cell. *)
    Galois.Context.acquire ctx locks.(u);
    let c = count_at g u in
    Galois.Context.work ctx (Csr.out_degree g u);
    Galois.Context.failsafe ctx;
    per_node.(u) <- c
  in
  let report =
    Galois.Run.make ~operator (Array.init n Fun.id)
    |> Galois.Run.policy policy
    |> Galois.Run.opt Galois.Run.pool pool
    |> (match record with Some true -> Galois.Run.record | _ -> Fun.id)
    |> (match audit with Some true -> Galois.Run.audit | _ -> Fun.id)
    |> Galois.Run.opt Galois.Run.sink sink
    |> Galois.Run.exec
  in
  (Array.fold_left ( + ) 0 per_node, report)

let serial g =
  let total = ref 0 in
  for u = 0 to Csr.nodes g - 1 do
    total := !total + count_at g u
  done;
  !total
