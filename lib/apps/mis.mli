(** Maximal independent set (paper §4.1). The graph must be symmetric. *)

val galois :
  ?record:bool ->
  ?audit:bool ->
  ?sink:Obs.sink ->
  policy:Galois.Policy.t ->
  ?pool:Galois.Pool.t ->
  Graphlib.Csr.t ->
  bool array * Galois.Runtime.report
(** Lonestar greedy MIS under any policy. Result depends on the schedule
    (unless deterministic), but is always a valid MIS. *)

val serial : Graphlib.Csr.t -> bool array
(** Greedy in node order: the lexicographically-first MIS. *)

val pbbs :
  ?granularity:int ->
  pool:Parallel.Domain_pool.t ->
  Graphlib.Csr.t ->
  bool array * Detreserve.stats
(** Deterministic-reservations MIS; equals {!serial}'s output. *)

val is_maximal_independent : Graphlib.Csr.t -> bool array -> bool
