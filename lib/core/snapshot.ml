(* Versioned, checksummed round-boundary snapshots.

   A snapshot is a [Det_sched.boundary] plus the run configuration it
   is only valid for (application tag, rendered policy options, the
   static-id flag) and an optional marshalled application state blob
   (world arrays a cross-process resume must restore — captured by the
   [Run.snapshot_state] hook).

   Wire format, all integers little-endian:

     "GSNAP"  5-byte magic
     u16      format version (currently 2; v2 added the b_delta field)
     u64      FNV-1a checksum of everything after this field
     body:
       str      app tag            (u64 length + bytes)
       str      options            (Det_options.to_string rendering)
       u8       static_id
       i64 x6   rounds generations next_id gen_base window delta
       u64      digest prefix
       i64 x6   commits aborts acquired work created inspected
       i64      n_pending, then n_pending pending ids (deque order)
       i64      n_todo, then n_todo (parent, birth) i64 pairs
       u64      Marshal blob length, then the blob:
                  (pending items, todo items, state) marshalled together
                  so sharing between the three survives the round-trip

   Scheduler state is fully structural (ints + digest); only the opaque
   item/state payload goes through [Marshal] (flags [], so no closures
   — items must be plain data, which every shipped app's are). The
   checksum is the same FNV-1a fold as the trace digests: cheap,
   dependency-free, and already pinned machine-independent. It guards
   against truncation and bit rot, not adversaries.

   Thread count is deliberately NOT recorded: resuming under a
   different thread count and reproducing the digest is the determinism
   claim itself. *)

type 'item t = {
  app : string;
  options : string;
  static_id : bool;
  boundary : 'item Det_sched.boundary;
  state : Obj.t option;
}

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_checksum
  | Corrupt of string
  | Io of string

let error_to_string = function
  | Truncated -> "snapshot truncated"
  | Bad_magic -> "not a snapshot (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Bad_checksum -> "snapshot checksum mismatch (corrupt or bit-rotted)"
  | Corrupt what -> Printf.sprintf "corrupt snapshot: %s" what
  | Io what -> Printf.sprintf "snapshot i/o error: %s" what

let magic = "GSNAP"
let version = 2

(* --- encoding ---------------------------------------------------------- *)

let add_int buf x = Buffer.add_int64_le buf (Int64.of_int x)

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let encode t =
  let b = t.boundary in
  let body = Buffer.create 1024 in
  add_str body t.app;
  add_str body t.options;
  Buffer.add_uint8 body (if t.static_id then 1 else 0);
  add_int body b.Det_sched.b_rounds;
  add_int body b.b_generations;
  add_int body b.b_next_id;
  add_int body b.b_gen_base;
  add_int body b.b_window;
  add_int body b.b_delta;
  Buffer.add_int64_le body b.b_digest;
  add_int body b.b_commits;
  add_int body b.b_aborts;
  add_int body b.b_acquired;
  add_int body b.b_work;
  add_int body b.b_created;
  add_int body b.b_inspected;
  add_int body (Array.length b.b_pending_ids);
  Array.iter (add_int body) b.b_pending_ids;
  add_int body (Array.length b.b_todo_items);
  Array.iteri
    (fun i parent ->
      add_int body parent;
      add_int body b.b_todo_births.(i))
    b.b_todo_parents;
  let blob = Marshal.to_string (b.b_pending_items, b.b_todo_items, t.state) [] in
  add_str body blob;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 15) in
  Buffer.add_string out magic;
  Buffer.add_uint16_le out version;
  Buffer.add_int64_le out (Trace_digest.fold_string Trace_digest.seed body);
  Buffer.add_string out body;
  Buffer.contents out

(* --- decoding ---------------------------------------------------------- *)

exception Short
exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then raise Short in
  let u8 () =
    need 1;
    let x = Char.code s.[!pos] in
    incr pos;
    x
  in
  let i64 () =
    need 8;
    let x = String.get_int64_le s !pos in
    pos := !pos + 8;
    x
  in
  let int () =
    let x = i64 () in
    let v = Int64.to_int x in
    if Int64.of_int v <> x then raise (Bad "integer out of range");
    v
  in
  let len ~what =
    let n = int () in
    if n < 0 || n > String.length s - !pos then raise (Bad (what ^ " length"));
    n
  in
  let str ~what =
    let n = len ~what in
    let x = String.sub s !pos n in
    pos := !pos + n;
    x
  in
  try
    need (String.length magic + 2 + 8);
    if not (String.equal (String.sub s 0 (String.length magic)) magic) then
      Error Bad_magic
    else begin
      pos := String.length magic;
      let v = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
      pos := !pos + 2;
      if v <> version then Error (Bad_version v)
      else begin
        let checksum = i64 () in
        let body_start = !pos in
        let body = String.sub s body_start (String.length s - body_start) in
        if
          not
            (Trace_digest.equal checksum
               (Trace_digest.fold_string Trace_digest.seed body))
        then Error Bad_checksum
        else begin
          let app = str ~what:"app tag" in
          let options = str ~what:"options" in
          let static_id =
            match u8 () with
            | 0 -> false
            | 1 -> true
            | _ -> raise (Bad "static_id flag")
          in
          let b_rounds = int () in
          let b_generations = int () in
          let b_next_id = int () in
          let b_gen_base = int () in
          let b_window = int () in
          let b_delta = int () in
          let b_digest = i64 () in
          let b_commits = int () in
          let b_aborts = int () in
          let b_acquired = int () in
          let b_work = int () in
          let b_created = int () in
          let b_inspected = int () in
          let n_pending = len ~what:"pending" in
          let b_pending_ids = Array.init n_pending (fun _ -> int ()) in
          let n_todo = len ~what:"todo" in
          let b_todo_parents = Array.make n_todo 0 in
          let b_todo_births = Array.make n_todo 0 in
          for i = 0 to n_todo - 1 do
            b_todo_parents.(i) <- int ();
            b_todo_births.(i) <- int ()
          done;
          let blob = str ~what:"payload" in
          if !pos <> String.length s then raise (Bad "trailing bytes");
          let b_pending_items, b_todo_items, state =
            try (Marshal.from_string blob 0 : _ * _ * Obj.t option)
            with Failure what -> raise (Bad ("payload unmarshal: " ^ what))
          in
          if Array.length b_pending_items <> n_pending then
            raise (Bad "pending item count");
          if Array.length b_todo_items <> n_todo then raise (Bad "todo item count");
          Ok
            {
              app;
              options;
              static_id;
              state;
              boundary =
                {
                  Det_sched.b_rounds;
                  b_generations;
                  b_next_id;
                  b_gen_base;
                  b_window;
                  b_delta;
                  b_digest;
                  b_pending_ids;
                  b_pending_items;
                  b_todo_parents;
                  b_todo_births;
                  b_todo_items;
                  b_commits;
                  b_aborts;
                  b_acquired;
                  b_work;
                  b_created;
                  b_inspected;
                };
            }
        end
      end
    end
  with
  | Short -> Error Truncated
  | Bad what -> Error (Corrupt what)

(* --- files ------------------------------------------------------------- *)

let save ~path t =
  let bytes = encode t in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc bytes);
    Sys.rename tmp path;
    Ok ()
  with Sys_error what -> Error (Io what)

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | bytes -> decode bytes
  | exception Sys_error what -> Error (Io what)
  | exception End_of_file -> Error Truncated
