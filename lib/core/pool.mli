(** A first-class, long-lived worker pool.

    Without an explicit pool every {!Run.exec} spawns and joins its own
    domains — correct, but ruinous for servers running thousands of
    small queries. A [Pool.t] is created once, injected into any number
    of runs ({!Run.pool}, or the [?pool] argument of the applications),
    shared freely between them, and shut down exactly once:

    {[
      let pool = Galois.Pool.create ~domains:8 () in
      (* ... many runs: Run.make ... |> Run.pool pool |> Run.exec ... *)
      Galois.Pool.shutdown pool
    ]}

    A pool may be larger than a run's thread count — schedulers use the
    first [threads] workers and the rest stay parked — but never
    smaller ({!Run.exec} raises). Deterministic schedules do not depend
    on the pool: running on a fresh pool, a shared pool, or a pool of a
    different size yields byte-identical digests. *)

type t

val create : ?domains:int -> unit -> t
(** [create ()] sizes the pool to the machine
    ([Domain.recommended_domain_count]); [~domains] pins the worker
    count. The calling domain participates as worker 0, so [domains - 1]
    new domains are spawned. Raises [Invalid_argument] when
    [domains <= 0]. *)

val size : t -> int
(** Worker count, including the caller's slot. *)

val is_shut_down : t -> bool

val domain_pool : t -> Parallel.Domain_pool.t
(** The underlying SPMD pool, for code driving [Parallel] primitives
    ([parallel_for], the pbbs kernels) directly. Raises
    [Invalid_argument "Galois.Pool: pool is shut down"] after
    {!shutdown} — every use-after-shutdown fails loudly rather than
    hanging on parked workers. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent: a second [shutdown] is a
    no-op. Any later attempt to {e use} the pool (a run, or
    {!domain_pool}) raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down
    afterwards, even if [f] raises. *)
