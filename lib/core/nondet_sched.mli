(** Non-deterministic speculative scheduler (paper Fig. 1b).

    Executes tasks eagerly with mark-based conflict detection and
    cheap rollback (dining-philosophers style, §2.1). The answer may
    depend on timing and thread count — this is the fast default the
    paper argues for, with determinism available on demand via
    {!Det_sched}. *)

val run :
  ?record:bool ->
  ?sink:Obs.sink ->
  ?threads:int ->
  pool:Parallel.Domain_pool.t ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
(** [sink] receives one [Phase_time] ([Execute]) and per-worker
    [Worker_counters] events at the end of the run; it is not closed. *)
