(** Operator execution context.

    A Galois operator is a function [('item, 'state) t -> 'item -> unit].
    Inside the operator, the context provides neighborhood acquisition,
    the failsafe declaration, task creation and (optional) continuation
    state, exactly mirroring the paper's programming model (§2, §3.3).

    Contract for operators ({e cautiousness}): acquire every abstract
    location the task reads or writes, then call {!failsafe}, and only
    then mutate shared state. Violations raise {!Not_cautious}. *)

exception Conflict
(** The task lost a location to another task (non-deterministic
    execution). The scheduler catches this and retries the task; operator
    code should let it propagate. *)

exception Not_cautious
(** An acquisition happened after the failsafe point. *)

exception Failsafe_reached
(** Internal control flow of the deterministic inspect phase; operator
    code must not catch it (catching [exn] and re-raising is fine). *)

type phase =
  | Direct  (** one-shot execution: serial or speculative (Fig. 1b) *)
  | Inspect  (** deterministic neighborhood marking (Fig. 2) *)
  | Commit  (** deterministic select-and-execute (Fig. 3) *)

type ('item, 'state) t

val acquire : (_, _) t -> Lock.t -> unit
(** Acquire an abstract location. Phase-dependent: exclusive claim
    (Direct; raises {!Conflict} when lost), priority marking (Inspect;
    never fails) or verification (Commit). *)

val failsafe : (_, _) t -> unit
(** Declare the failsafe point: all reads are done, writes may begin.
    Idempotent. *)

val register_new : (_, _) t -> Lock.t -> unit
(** Integrate an abstract location created by this task after its
    failsafe point (a fresh object, e.g. a new mesh triangle). Must only
    be called with locks nobody else has seen. *)

val touch : ?write:bool -> (_, _) t -> Lock.t -> unit
(** Declare a shared-state access on an abstract location for the
    dynamic determinism audit ({!Audit}, enabled via [Run.audit]):
    a write by default, a read with [~write:false]. Purely
    observational — it never synchronizes or raises; with auditing off
    it costs one branch. Accesses before the failsafe point are
    recorded as such and flagged as cautiousness violations when they
    are writes; accesses to locations outside the acquired neighborhood
    are flagged as containment violations at the end of the round. *)

val push : ('item, _) t -> 'item -> unit
(** Create a new task. Buffered; takes effect only if this task
    commits. *)

val save : (_, 'state) t -> 'state -> unit
(** Stash continuation state during the inspect phase (the paper's
    continuation optimization, §3.3). The state reappears via {!saved}
    when the task is committed in the same round. *)

val saved : (_, 'state) t -> 'state option
(** Previously saved state, if the scheduler preserved it. Operators must
    recompute when [None]. *)

val work : (_, _) t -> int -> unit
(** Report abstract work units (used by the machine simulator's cost
    model). *)

val phase : (_, _) t -> phase
val task_id : (_, _) t -> int

val stamp : (_, _) t -> int
(** The {!Lock} epoch all this task's claims run under (set by the
    scheduler via {!reset}). *)

(** {2 Scheduler internals}

    Everything below is used by the schedulers in this library and is not
    part of the application-facing API. A context is per-worker scratch:
    its neighborhood and push buffers keep their capacity across
    {!reset}, so a warmed-up worker runs tasks without allocating. *)

val create : unit -> ('item, 'state) t

val reset :
  ('item, 'state) t ->
  phase:phase -> task_id:int -> stamp:int -> saved:'state option -> unit
(** [stamp] is the lock epoch (from {!Lock.new_epoch}) the task's
    acquisitions are made under. *)

val neighborhood_array : (_, _) t -> Lock.t array
(** Fresh array of the acquired locks, in acquisition order. *)

val neighborhood_into : (_, _) t -> Lock.t array -> Lock.t array
(** Copy the acquired locks (acquisition order) into the given array if
    it is large enough, else into a fresh one; returns whichever was
    filled. Entries beyond {!neighborhood_count} are stale — callers
    must pair the array with the count, not [Array.length]. *)

val neighborhood_count : (_, _) t -> int

val pushed_get : ('item, _) t -> int -> 'item
(** [pushed_get t i] is the [i]-th pushed item in push order,
    [0 <= i < pushed_count t]. *)

val pushed_list : ('item, _) t -> 'item list
(** Pushed items in push order (allocates; for the one-shot
    schedulers). *)

val pushed_into : ('item, _) t -> 'item array -> 'item array
(** Same contract as {!neighborhood_into}, for the pushed items. *)

val pushed_count : (_, _) t -> int
val work_units : (_, _) t -> int
val reached_failsafe : (_, _) t -> bool
val set_on_defeat : (_, _) t -> (int -> unit) -> unit
val set_stats : (_, _) t -> Stats.worker -> unit

val set_tape : (_, _) t -> Audit.tape option -> unit
(** Attach (or detach) the audit recorder tape this context records
    acquire/touch events into. Set once per run by the DIG scheduler;
    [None] disables recording. *)

val release_all : (_, _) t -> unit
