(** The primary runtime entry point: a builder over everything a run
    can carry — policy, pool, schedule recording, static ids, trace
    sinks and in-memory trace capture.

    {[
      let report =
        Galois.Run.(
          make ~operator initial_tasks
          |> policy (Galois.Policy.det 8)
          |> record
          |> sink (Obs.Jsonl.file "run.jsonl")
          |> exec)
    ]}

    {!Runtime.for_each} remains as a thin alias for the common cases. *)

type ('item, 'state) operator = ('item, 'state) Context.t -> 'item -> unit

type report = {
  stats : Stats.t;
  schedule : Schedule.t option;  (** present iff {!record} was requested *)
  trace : Obs.stamped list option;  (** present iff {!trace} was requested *)
  audit : Audit.report option;  (** present iff {!audit} was requested *)
}

type ('item, 'state) t
(** An unexecuted run description. Immutable: every combinator returns
    a new value, so partial descriptions can be shared and specialized. *)

val make : operator:('item, 'state) operator -> 'item array -> ('item, 'state) t
(** A run of [operator] over the given initial tasks, under
    {!Policy.serial}, with no pool, recording, sinks or capture. *)

val policy : Policy.t -> ('item, 'state) t -> ('item, 'state) t

val pool : Pool.t -> ('item, 'state) t -> ('item, 'state) t
(** Reuse a long-lived {!Pool.t} (must be at least as large as the
    policy's thread count — {!exec} raises [Invalid_argument]
    otherwise, and also when the pool is already shut down); without
    one, {!exec} creates a temporary pool per run. *)

val record : ('item, 'state) t -> ('item, 'state) t
(** Capture a {!Schedule.t} for the simulators ([report.schedule]). *)

val static_id : ('item -> int) -> ('item, 'state) t -> ('item, 'state) t
(** Deterministic-scheduler fast path for fixed task universes (§3.3);
    ignored by other policies. *)

val priority : ('item -> int) -> ('item, 'state) t -> ('item, 'state) t
(** Soft-priority hint: map each task to a (lower-is-sooner) integer
    priority. Only consulted by det policies whose options carry
    [prio=delta:<n>] or [prio=auto] ({!Policy.with_priority}) — the
    scheduler then lays each generation out as delta-stepping bucket
    runs and draws windows from the lowest non-empty bucket. Under the
    default [prio=off] (and under serial/nondet policies) the hint is
    ignored and schedules are byte-identical to runs without it. *)

val sink : Obs.sink -> ('item, 'state) t -> ('item, 'state) t
(** Stream observability events into [sink] during execution. May be
    called several times; all sinks receive every event. Sinks are
    {e never closed} by {!exec} — a sink can outlive many runs (e.g.
    one trace file across the epochs of preflow-push); closing is the
    creator's responsibility. *)

val trace : ('item, 'state) t -> ('item, 'state) t
(** Additionally capture the event stream in memory and return it as
    [report.trace]. *)

val opt : ('a -> ('i, 's) t -> ('i, 's) t) -> 'a option -> ('i, 's) t -> ('i, 's) t
(** [opt f (Some v)] is [f v]; [opt f None] is the identity — for
    threading optional arguments through a builder chain. *)

val audit : ('item, 'state) t -> ('item, 'state) t
(** Enable the dynamic determinism audit ({!Audit}): record every
    task's acquire/touch footprint and check cautiousness, containment
    and intra-round races after each committed round, returning the
    accumulated findings as [report.audit]. Requires a det policy
    ({!exec} raises [Invalid_argument] otherwise). With auditing off no
    recorder is allocated — the hot path is unchanged. *)

(** {1 Checkpoint & replay}

    All of these require a det policy: {!exec} raises
    [Invalid_argument] if any is combined with serial or nondet.
    Validation failures (option/app/static-id mismatches, cadence
    without destination) also raise [Invalid_argument]; snapshot
    decode/io failures raise [Failure] with the {!Snapshot.error}
    rendering. *)

val app : string -> ('item, 'state) t -> ('item, 'state) t
(** Tag the description with an application name, recorded in
    snapshots; resuming from a snapshot whose tag disagrees is
    refused. Untagged descriptions and snapshots skip the check. *)

val snapshot_state :
  save:(unit -> 'st) -> restore:('st -> unit) -> ('item, 'state) t -> ('item, 'state) t
(** Register the application's world state with the snapshot machinery:
    [save ()] captures it (called at each checkpoint; the result is
    marshalled, so it must be plain data — copy your arrays), [restore]
    writes a captured value back (called once when resuming from a
    serialized snapshot, before the first round). Without a hook,
    snapshots carry scheduler state only and can resume {e live} (in
    the same process, against the already-advanced world via {!resume})
    but not from a file in a fresh process. *)

val checkpoint_every : int -> ('item, 'state) t -> ('item, 'state) t
(** Capture a snapshot after every [k]-th round. Requires a
    destination: {!checkpoint_to}, {!on_checkpoint} or both. Either
    destination alone implies a cadence of 1. *)

val checkpoint_to : string -> ('item, 'state) t -> ('item, 'state) t
(** Write each snapshot to this path (atomically — the file always
    holds the latest complete snapshot). *)

val on_checkpoint : ('item Snapshot.t -> unit) -> ('item, 'state) t -> ('item, 'state) t
(** Receive each snapshot in-process (e.g. to keep the latest boundary
    for a live resume, or to ship it elsewhere). Runs in the scheduler's
    sequential glue; must not call back into the run. *)

val resume : 'item Det_sched.boundary -> ('item, 'state) t -> ('item, 'state) t
(** Live resume: restart the scheduler from a boundary captured in this
    process against a world that already reflects rounds
    [1 .. boundary.b_rounds]. No validation — the caller vouches that
    the description and world are the ones the boundary came from. *)

val resume_from : string -> ('item, 'state) t -> ('item, 'state) t
(** Resume from a snapshot file: validate it against this description
    (options, app tag, static-id flag), restore the application state
    it carries through the {!snapshot_state} hook, and continue at the
    captured round. The initial items of the description are ignored.
    The digest of the completed resumed run equals the uninterrupted
    run's — at any thread count. *)

val resume_from_bytes : string -> ('item, 'state) t -> ('item, 'state) t
(** {!resume_from} for an in-memory encoded snapshot. *)

val stop_after : int -> ('item, 'state) t -> ('item, 'state) t
(** Stop at the first round boundary [>= r] (replay-to). A no-op if the
    run finishes earlier; the report covers the executed prefix. *)

val encode_snapshot : ('item, 'state) t -> 'item Det_sched.boundary -> string
(** Serialize a boundary exactly as a {!checkpoint_to} of this
    description would (including the {!snapshot_state} capture) —
    for tests and custom transports. *)

val exec : ('item, 'state) t -> report
(** Run all tasks (and the tasks they create) to completion. The event
    stream is bracketed by [Run_begin] and [Run_end]. *)
