(** The primary runtime entry point: a builder over everything a run
    can carry — policy, pool, schedule recording, static ids, trace
    sinks and in-memory trace capture.

    {[
      let report =
        Galois.Run.(
          make ~operator initial_tasks
          |> policy (Galois.Policy.det 8)
          |> record
          |> sink (Obs.Jsonl.file "run.jsonl")
          |> exec)
    ]}

    {!Runtime.for_each} remains as a thin alias for the common cases. *)

type ('item, 'state) operator = ('item, 'state) Context.t -> 'item -> unit

type report = {
  stats : Stats.t;
  schedule : Schedule.t option;  (** present iff {!record} was requested *)
  trace : Obs.stamped list option;  (** present iff {!trace} was requested *)
}

type ('item, 'state) t
(** An unexecuted run description. Immutable: every combinator returns
    a new value, so partial descriptions can be shared and specialized. *)

val make : operator:('item, 'state) operator -> 'item array -> ('item, 'state) t
(** A run of [operator] over the given initial tasks, under
    {!Policy.serial}, with no pool, recording, sinks or capture. *)

val policy : Policy.t -> ('item, 'state) t -> ('item, 'state) t

val pool : Parallel.Domain_pool.t -> ('item, 'state) t -> ('item, 'state) t
(** Reuse an existing domain pool (must be at least as large as the
    policy's thread count — {!exec} raises [Invalid_argument]
    otherwise); without one, {!exec} creates a temporary pool. *)

val record : ('item, 'state) t -> ('item, 'state) t
(** Capture a {!Schedule.t} for the simulators ([report.schedule]). *)

val static_id : ('item -> int) -> ('item, 'state) t -> ('item, 'state) t
(** Deterministic-scheduler fast path for fixed task universes (§3.3);
    ignored by other policies. *)

val sink : Obs.sink -> ('item, 'state) t -> ('item, 'state) t
(** Stream observability events into [sink] during execution. May be
    called several times; all sinks receive every event. Sinks are
    {e never closed} by {!exec} — a sink can outlive many runs (e.g.
    one trace file across the epochs of preflow-push); closing is the
    creator's responsibility. *)

val trace : ('item, 'state) t -> ('item, 'state) t
(** Additionally capture the event stream in memory and return it as
    [report.trace]. *)

val opt : ('a -> ('i, 's) t -> ('i, 's) t) -> 'a option -> ('i, 's) t -> ('i, 's) t
(** [opt f (Some v)] is [f v]; [opt f None] is the identity — for
    threading optional arguments through a builder chain. *)

val exec : ('item, 'state) t -> report
(** Run all tasks (and the tasks they create) to completion. The event
    stream is bracketed by [Run_begin] and [Run_end]. *)
