(* Shared task pool for the non-deterministic scheduler.

   A mutex-protected FIFO with integrated termination detection:
   [pending] counts tasks that have not yet completed successfully, so
   workers can distinguish "pool momentarily empty" (another worker may
   still abort and requeue, or push children) from "all work done".

   Blocking on a condition variable instead of spinning matters here:
   the reproduction container is oversubscribed, and the machine
   simulator — not this queue — models contention at real scale. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable pending : int;
}

let create items =
  let queue = Queue.create () in
  Array.iter (fun x -> Queue.add x queue) items;
  { mutex = Mutex.create (); nonempty = Condition.create (); queue; pending = Array.length items }

let take t =
  Mutex.lock t.mutex;
  let rec go () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.pending = 0 then None
    else begin
      Condition.wait t.nonempty t.mutex;
      go ()
    end
  in
  let result = go () in
  Mutex.unlock t.mutex;
  result

(* New tasks created by a committed parent: they extend the pending
   count. *)
let push_new t items =
  match items with
  | [] -> ()
  | _ ->
      Mutex.lock t.mutex;
      List.iter
        (fun x ->
          Queue.add x t.queue;
          t.pending <- t.pending + 1)
        items;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex

(* An aborted task goes back for retry; it was already pending.

   Broadcast, not signal: [take] waits for two distinct reasons (queue
   nonempty, or pending = 0), so a single signal can land on a waiter
   that is about to lose the race for this item and go back to sleep —
   stranding another waiter that would have taken it. Waking everyone
   is cheap at these worker counts and cannot deadlock. *)
let requeue t item =
  Mutex.lock t.mutex;
  Queue.add item t.queue;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

(* A task committed: one fewer pending. Reaching zero releases all
   blocked workers so they can observe termination. *)
let complete t =
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
