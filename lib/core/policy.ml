(* Execution policies: the on-demand determinism switch.

   A program written against [Runtime.for_each] never changes; the policy
   (serial, speculative non-deterministic, or deterministic DIG
   scheduling) is chosen at run time, e.g. from the command line — the
   paper's "on-demand" requirement (§1). *)

type priority_mode =
  | Prio_off
      (* Unordered execution: generations are pure id order, the
         original DIG behaviour. *)
  | Prio_delta of int
      (* Delta-stepping buckets of width [delta >= 1]: tasks whose
         priority lands in a lower [priority / delta] bucket run in
         earlier rounds. Bucket assignment is a pure function of
         (priority, delta); intra-bucket order stays id order, so the
         schedule is still deterministic. *)
  | Prio_auto
      (* Derive delta per generation from the priority range
         (span / 64, at least 1) — parameterless, but still a pure
         function of the generation's task set. *)

type det_options = {
  target_ratio : float;
      (* Commit-ratio threshold of the adaptive window (§3.2). Below it
         the window shrinks proportionally; at or above it the window
         doubles. A fixed constant: not machine-tuned, hence
         parameterless. *)
  initial_window : int option;
      (* Window of the first round. [None] derives it from the task
         count — deterministic, machine-independent. *)
  spread : int;
      (* Locality-spread piles (§3.3): iteration order is dealt into
         [spread] strided piles so neighboring (likely conflicting) tasks
         land in different rounds. [1] disables. *)
  continuation : bool;
      (* §3.3 continuation optimization: keep inspect-phase state for the
         commit phase instead of re-executing the task prefix. *)
  validate : bool;
      (* Debug: re-verify all neighborhood marks at commit instead of
         trusting the O(1) defeat flags. The two must agree; tests check
         this. *)
  priority : priority_mode;
      (* Soft-priority windows: when on, each generation is dealt into
         delta-stepping buckets by the run's priority function and
         rounds draw from the lowest non-empty bucket first. Off by
         default — schedules (and digests) are unchanged unless asked
         for. *)
}

let default_det =
  {
    target_ratio = 0.9;
    initial_window = None;
    spread = 16;
    continuation = true;
    validate = false;
    priority = Prio_off;
  }

module Det_options = struct
  type t = det_options = {
    target_ratio : float;
    initial_window : int option;
    spread : int;
    continuation : bool;
    validate : bool;
    priority : priority_mode;
  }

  let default = default_det

  let with_ratio target_ratio t =
    if target_ratio <= 0.0 then invalid_arg "Det_options.with_ratio: ratio must be > 0";
    { t with target_ratio }

  let with_window initial_window t =
    (match initial_window with
    | Some w when w < 1 -> invalid_arg "Det_options.with_window: window must be >= 1"
    | _ -> ());
    { t with initial_window }

  let with_spread spread t =
    if spread < 1 then invalid_arg "Det_options.with_spread: spread must be >= 1";
    { t with spread }

  let with_continuation continuation t = { t with continuation }
  let with_validate validate t = { t with validate }

  let with_priority priority t =
    (match priority with
    | Prio_delta d when d < 1 -> invalid_arg "Det_options.with_priority: delta must be >= 1"
    | _ -> ());
    { t with priority }

  let make ?ratio ?window ?spread ?continuation ?validate ?priority () =
    let apply f o t = match o with Some v -> f v t | None -> t in
    default
    |> apply with_ratio ratio
    |> (match window with Some w -> with_window w | None -> Fun.id)
    |> apply with_spread spread
    |> apply with_continuation continuation
    |> apply with_validate validate
    |> apply with_priority priority

  (* Keyed option grammar: "window=64,spread=1,ratio=0.95,cont=off,
     validate=on". [to_string] emits only the non-default keys, in that
     fixed order; [of_string] accepts them in any order, rejecting
     unknown or duplicate keys and out-of-range values, so the two
     round-trip. *)

  let onoff = function true -> "on" | false -> "off"

  (* %.12g keeps human-entered ratios (0.95) readable while remaining
     exact for anything with <= 12 significant digits; values that need
     more fall back to %.17g, which round-trips every float, so
     [of_string (to_string t) = Ok t] holds for arbitrary ratios. *)
  let float_str f =
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let prio_str = function
    | Prio_off -> "off"
    | Prio_delta d -> Printf.sprintf "delta:%d" d
    | Prio_auto -> "auto"

  let to_string t =
    let d = default in
    let kv = Buffer.create 32 in
    let add k v =
      if Buffer.length kv > 0 then Buffer.add_char kv ',';
      Buffer.add_string kv k;
      Buffer.add_char kv '=';
      Buffer.add_string kv v
    in
    (match t.initial_window with
    | None -> ()
    | Some w -> add "window" (string_of_int w));
    if t.spread <> d.spread then add "spread" (string_of_int t.spread);
    if t.target_ratio <> d.target_ratio then add "ratio" (float_str t.target_ratio);
    if t.continuation <> d.continuation then add "cont" (onoff t.continuation);
    if t.validate <> d.validate then add "validate" (onoff t.validate);
    if t.priority <> d.priority then add "prio" (prio_str t.priority);
    Buffer.contents kv

  let of_string body =
    let ( let* ) = Result.bind in
    let parse_onoff k v =
      match v with
      | "on" -> Ok true
      | "off" -> Ok false
      | _ -> Error (Printf.sprintf "option %s: expected on|off, got %S" k v)
    in
    let parse_kv (seen, acc) kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
      | Some i ->
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          if List.mem k seen then Error (Printf.sprintf "duplicate option %S" k)
          else
            let* acc =
              match k with
              | "window" -> (
                  match v with
                  | "auto" -> Ok { acc with initial_window = None }
                  | _ -> (
                      match int_of_string_opt v with
                      | Some w when w >= 1 -> Ok { acc with initial_window = Some w }
                      | _ ->
                          Error
                            (Printf.sprintf
                               "option window: expected auto or an integer >= 1, got %S" v)))
              | "spread" -> (
                  match int_of_string_opt v with
                  | Some s when s >= 1 -> Ok { acc with spread = s }
                  | _ -> Error (Printf.sprintf "option spread: expected an integer >= 1, got %S" v))
              | "ratio" -> (
                  match float_of_string_opt v with
                  | Some r when r > 0.0 -> Ok { acc with target_ratio = r }
                  | _ -> Error (Printf.sprintf "option ratio: expected a float > 0, got %S" v))
              | "cont" ->
                  let* b = parse_onoff "cont" v in
                  Ok { acc with continuation = b }
              | "validate" ->
                  let* b = parse_onoff "validate" v in
                  Ok { acc with validate = b }
              | "prio" -> (
                  match v with
                  | "off" -> Ok { acc with priority = Prio_off }
                  | "auto" -> Ok { acc with priority = Prio_auto }
                  | _ when String.starts_with ~prefix:"delta:" v -> (
                      let dv = String.sub v 6 (String.length v - 6) in
                      match int_of_string_opt dv with
                      | Some d when d >= 1 -> Ok { acc with priority = Prio_delta d }
                      | _ ->
                          Error
                            (Printf.sprintf
                               "option prio: expected delta:<int >= 1>, got %S" v))
                  | _ ->
                      Error
                        (Printf.sprintf
                           "option prio: expected off|auto|delta:<n>, got %S" v))
              | _ -> Error (Printf.sprintf "unknown option %S" k)
            in
            Ok (k :: seen, acc)
    in
    if String.trim body = "" then Ok default
    else
      let* _, t =
        List.fold_left
          (fun acc kv -> match acc with Ok acc -> parse_kv acc kv | e -> e)
          (Ok ([], default))
          (String.split_on_char ',' body)
      in
      Ok t
end

type t =
  | Serial
  | Nondet of { threads : int }
  | Det of { threads : int; options : det_options }

let serial = Serial
let nondet threads = Nondet { threads }
let det ?(options = default_det) threads = Det { threads; options }

let threads = function Serial -> 1 | Nondet { threads } | Det { threads; _ } -> threads

let is_deterministic = function Serial | Det _ -> true | Nondet _ -> false

let grammar = "serial | nondet[:T] | det[:T][k=v,...]"

let of_string s =
  let fail msg = Error (Printf.sprintf "bad policy %S (%s)" s msg) in
  let parse_threads rest =
    match int_of_string_opt rest with
    | Some t when t > 0 -> Ok t
    | _ -> Error (Printf.sprintf "bad policy %S (bad thread count %S)" s rest)
  in
  (* "[:T]" suffix: "" means 1 thread, ":8" means 8. *)
  let parse_suffix rest k =
    if rest = "" then k 1
    else if rest.[0] = ':' then
      Result.bind (parse_threads (String.sub rest 1 (String.length rest - 1))) k
    else fail ("expected " ^ grammar)
  in
  if s = "serial" then Ok Serial
  else if String.starts_with ~prefix:"nondet" s then
    parse_suffix (String.sub s 6 (String.length s - 6)) (fun threads ->
        Ok (Nondet { threads }))
  else if String.starts_with ~prefix:"det" s then
    let rest = String.sub s 3 (String.length s - 3) in
    (* Split off a trailing "[window=64,...]" option block, if any. *)
    let head, body =
      match String.index_opt rest '[' with
      | None -> (rest, Ok "")
      | Some i ->
          if String.length rest > 0 && rest.[String.length rest - 1] = ']' then
            (String.sub rest 0 i, Ok (String.sub rest (i + 1) (String.length rest - i - 2)))
          else (String.sub rest 0 i, Error ())
    in
    match body with
    | Error () -> fail "unterminated option block, expected det:T[k=v,...]"
    | Ok body ->
        parse_suffix head (fun threads ->
            match Det_options.of_string body with
            | Ok options -> Ok (Det { threads; options })
            | Error msg -> fail msg)
  else fail ("expected " ^ grammar)

let to_string = function
  | Serial -> "serial"
  | Nondet { threads } -> Printf.sprintf "nondet:%d" threads
  | Det { threads; options } -> (
      match Det_options.to_string options with
      | "" -> Printf.sprintf "det:%d" threads
      | body -> Printf.sprintf "det:%d[%s]" threads body)

let pp ppf t = Fmt.string ppf (to_string t)
