(* The builder behind [Galois.Run] — the runtime's primary entry point.

   A Galois program is an operator plus an initial task pool; everything
   about *how* it executes — serially, speculatively in parallel, or
   deterministically, with or without schedule recording and event
   tracing — is configured here at run time. This is the paper's
   on-demand determinism: the application source never changes. *)

type ('item, 'state) operator = ('item, 'state) Context.t -> 'item -> unit

type report = {
  stats : Stats.t;
  schedule : Schedule.t option;
  trace : Obs.stamped list option;
  audit : Audit.report option;
}

(* Application world-state capture for cross-process resume. The state
   type is existential: the builder never looks inside, it only shuttles
   [save ()]'s result through [Marshal] (via Obj.repr) and back into
   [restore]. Per-description, so the Obj round-trip is well-typed by
   construction as long as save/restore come from the same closure
   pair — which the GADT enforces. *)
type state_hook = Hook : { save : unit -> 'st; restore : 'st -> unit } -> state_hook

type 'item resume_src =
  | From_boundary of 'item Det_sched.boundary
  | From_file of string
  | From_bytes of string

type ('item, 'state) t = {
  operator : ('item, 'state) operator;
  items : 'item array;
  policy_ : Policy.t;
  pool_ : Pool.t option;
  record_ : bool;
  static_id_ : ('item -> int) option;
  priority_ : ('item -> int) option;
  sink_ : Obs.sink;
  capture_ : bool;
  app_ : string;
  hook_ : state_hook option;
  checkpoint_every_ : int option;
  checkpoint_path_ : string option;
  on_checkpoint_ : ('item Snapshot.t -> unit) option;
  resume_ : 'item resume_src option;
  stop_after_ : int option;
  audit_ : bool;
}

let make ~operator items =
  {
    operator;
    items;
    policy_ = Policy.Serial;
    pool_ = None;
    record_ = false;
    static_id_ = None;
    priority_ = None;
    sink_ = Obs.null;
    capture_ = false;
    app_ = "";
    hook_ = None;
    checkpoint_every_ = None;
    checkpoint_path_ = None;
    on_checkpoint_ = None;
    resume_ = None;
    stop_after_ = None;
    audit_ = false;
  }

let policy p t = { t with policy_ = p }
let pool p t = { t with pool_ = Some p }
let record t = { t with record_ = true }
let static_id f t = { t with static_id_ = Some f }
let priority f t = { t with priority_ = Some f }

let sink s t = { t with sink_ = Obs.Sink.tee t.sink_ s }

let trace t = { t with capture_ = true }

let opt f o t = match o with Some v -> f v t | None -> t

let app name t = { t with app_ = name }
let snapshot_state ~save ~restore t = { t with hook_ = Some (Hook { save; restore }) }
let checkpoint_every k t = { t with checkpoint_every_ = Some k }
let checkpoint_to path t = { t with checkpoint_path_ = Some path }
let on_checkpoint f t = { t with on_checkpoint_ = Some f }
let resume b t = { t with resume_ = Some (From_boundary b) }
let resume_from path t = { t with resume_ = Some (From_file path) }
let resume_from_bytes bytes t = { t with resume_ = Some (From_bytes bytes) }
let stop_after r t = { t with stop_after_ = Some r }
let audit t = { t with audit_ = true }

let det_options_string t =
  match t.policy_ with
  | Policy.Det { options; _ } -> Policy.Det_options.to_string options
  | Policy.Serial | Policy.Nondet _ ->
      invalid_arg "Galois.Run: checkpoint/resume requires a det policy"

let snapshot_of_boundary t boundary =
  {
    Snapshot.app = t.app_;
    options = det_options_string t;
    static_id = Option.is_some t.static_id_;
    boundary;
    state = Option.map (fun (Hook h) -> Obj.repr (h.save ())) t.hook_;
  }

let encode_snapshot t boundary = Snapshot.encode (snapshot_of_boundary t boundary)

(* Validate a decoded snapshot against the run description it is being
   resumed into, restore the application state it carries, and hand the
   boundary to the scheduler. *)
let accept_snapshot t (snap : _ Snapshot.t) =
  if snap.app <> "" && t.app_ <> "" && not (String.equal snap.app t.app_) then
    invalid_arg
      (Printf.sprintf "Galois.Run.resume: snapshot is for app %S, description is %S"
         snap.app t.app_);
  let options = det_options_string t in
  if not (String.equal snap.options options) then
    invalid_arg
      (Printf.sprintf
         "Galois.Run.resume: snapshot options %S disagree with policy options %S \
          (the schedule would diverge)"
         snap.options options);
  if snap.static_id <> Option.is_some t.static_id_ then
    invalid_arg "Galois.Run.resume: snapshot and description disagree on static ids";
  (match (snap.state, t.hook_) with
  | Some st, Some (Hook h) -> h.restore (Obj.obj st)
  | Some _, None ->
      invalid_arg
        "Galois.Run.resume: snapshot carries application state but the description \
         has no snapshot_state hook"
  | None, _ -> ());
  snap.boundary

let fail_snapshot what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Snapshot.error_to_string e))

let resume_boundary t =
  match t.resume_ with
  | None -> None
  | Some (From_boundary b) -> Some b
  | Some (From_file path) ->
      Some (accept_snapshot t (fail_snapshot path (Snapshot.load ~path)))
  | Some (From_bytes bytes) ->
      Some (accept_snapshot t (fail_snapshot "snapshot" (Snapshot.decode bytes)))

let checkpoint_hook t =
  match (t.checkpoint_every_, t.checkpoint_path_, t.on_checkpoint_) with
  | None, None, None -> None
  | every, path, callback ->
      if Option.is_none path && Option.is_none callback then
        invalid_arg
          "Galois.Run.checkpoint_every: no destination (add checkpoint_to or \
           on_checkpoint)";
      let every = Option.value every ~default:1 in
      Some
        ( every,
          fun boundary ->
            let snap = snapshot_of_boundary t boundary in
            (match path with
            | Some p -> fail_snapshot p (Snapshot.save ~path:p snap)
            | None -> ());
            match callback with Some f -> f snap | None -> () )

let with_pool ?pool threads f =
  match pool with
  | Some p ->
      (* [domain_pool] is the use-after-shutdown gate. *)
      let dp = Pool.domain_pool p in
      if Parallel.Domain_pool.size dp < threads then
        invalid_arg "Galois.Run: pool smaller than policy thread count";
      f dp
  | None -> Parallel.Domain_pool.with_pool threads f

let exec t =
  let memory = if t.capture_ then Some (Obs.Memory.create ()) else None in
  let sink =
    match memory with
    | Some m -> Obs.Sink.tee t.sink_ (Obs.Memory.sink m)
    | None -> t.sink_
  in
  let tracing = not (Obs.Sink.is_null sink) in
  let emit event =
    (* detlint: allow wall-clock — Obs.at_s is an absolute wall-clock timestamp; durations use Clock *)
    if tracing then sink.Obs.emit { Obs.at_s = Unix.gettimeofday (); event }
  in
  emit
    (Obs.Run_begin
       {
         policy = Policy.to_string t.policy_;
         threads = Policy.threads t.policy_;
         tasks = Array.length t.items;
       });
  let replay_features =
    Option.is_some t.checkpoint_every_
    || Option.is_some t.checkpoint_path_
    || Option.is_some t.on_checkpoint_
    || Option.is_some t.resume_
    || Option.is_some t.stop_after_
  in
  let audit_state = if t.audit_ then Some (Audit.create ()) else None in
  let stats, schedule =
    match t.policy_ with
    | (Policy.Serial | Policy.Nondet _) when replay_features ->
        invalid_arg "Galois.Run: checkpoint/resume requires a det policy"
    | (Policy.Serial | Policy.Nondet _) when t.audit_ ->
        invalid_arg "Galois.Run: audit requires a det policy"
    | Policy.Serial -> Serial_sched.run ~record:t.record_ ~sink ~operator:t.operator t.items
    | Policy.Nondet { threads } ->
        with_pool ?pool:t.pool_ threads (fun pool ->
            Nondet_sched.run ~record:t.record_ ~sink ~threads ~pool ~operator:t.operator
              t.items)
    | Policy.Det { threads; options } ->
        let checkpoint = checkpoint_hook t in
        let resume = resume_boundary t in
        with_pool ?pool:t.pool_ threads (fun pool ->
            Det_sched.run ~record:t.record_ ~sink ?audit:audit_state ?checkpoint ?resume
              ?stop_after:t.stop_after_ ~threads ?priority:t.priority_ ~pool ~options
              ~static_id:t.static_id_ ~operator:t.operator t.items)
  in
  emit
    (Obs.Run_end
       {
         commits = stats.Stats.commits;
         rounds = stats.Stats.rounds;
         generations = stats.Stats.generations;
       });
  (* User sinks are never closed here: they may span several runs. The
     capture buffer is ours and needs no closing. *)
  {
    stats;
    schedule;
    trace = Option.map Obs.Memory.contents memory;
    audit = Option.map Audit.report audit_state;
  }
