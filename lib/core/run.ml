(* The builder behind [Galois.Run] — the runtime's primary entry point.

   A Galois program is an operator plus an initial task pool; everything
   about *how* it executes — serially, speculatively in parallel, or
   deterministically, with or without schedule recording and event
   tracing — is configured here at run time. This is the paper's
   on-demand determinism: the application source never changes. *)

type ('item, 'state) operator = ('item, 'state) Context.t -> 'item -> unit

type report = {
  stats : Stats.t;
  schedule : Schedule.t option;
  trace : Obs.stamped list option;
}

type ('item, 'state) t = {
  operator : ('item, 'state) operator;
  items : 'item array;
  policy_ : Policy.t;
  pool_ : Parallel.Domain_pool.t option;
  record_ : bool;
  static_id_ : ('item -> int) option;
  sink_ : Obs.sink;
  capture_ : bool;
}

let make ~operator items =
  {
    operator;
    items;
    policy_ = Policy.Serial;
    pool_ = None;
    record_ = false;
    static_id_ = None;
    sink_ = Obs.null;
    capture_ = false;
  }

let policy p t = { t with policy_ = p }
let pool p t = { t with pool_ = Some p }
let record t = { t with record_ = true }
let static_id f t = { t with static_id_ = Some f }

let sink s t =
  { t with sink_ = (if t.sink_ == Obs.null then s else Obs.tee t.sink_ s) }

let trace t = { t with capture_ = true }

let opt f o t = match o with Some v -> f v t | None -> t

let with_pool ?pool threads f =
  match pool with
  | Some p ->
      if Parallel.Domain_pool.size p < threads then
        invalid_arg "Runtime.for_each: pool smaller than policy thread count";
      f p
  | None -> Parallel.Domain_pool.with_pool threads f

let exec t =
  let memory = if t.capture_ then Some (Obs.Memory.create ()) else None in
  let sink =
    match memory with
    | Some m ->
        if t.sink_ == Obs.null then Obs.Memory.sink m
        else Obs.tee t.sink_ (Obs.Memory.sink m)
    | None -> t.sink_
  in
  let tracing = sink != Obs.null in
  let emit event =
    if tracing then sink.Obs.emit { Obs.at_s = Unix.gettimeofday (); event }
  in
  emit
    (Obs.Run_begin
       {
         policy = Policy.to_string t.policy_;
         threads = Policy.threads t.policy_;
         tasks = Array.length t.items;
       });
  let stats, schedule =
    match t.policy_ with
    | Policy.Serial -> Serial_sched.run ~record:t.record_ ~sink ~operator:t.operator t.items
    | Policy.Nondet { threads } ->
        with_pool ?pool:t.pool_ threads (fun pool ->
            Nondet_sched.run ~record:t.record_ ~sink ~threads ~pool ~operator:t.operator
              t.items)
    | Policy.Det { threads; options } ->
        with_pool ?pool:t.pool_ threads (fun pool ->
            Det_sched.run ~record:t.record_ ~sink ~threads ~pool ~options
              ~static_id:t.static_id_ ~operator:t.operator t.items)
  in
  emit
    (Obs.Run_end
       {
         commits = stats.Stats.commits;
         rounds = stats.Stats.rounds;
         generations = stats.Stats.generations;
       });
  (* User sinks are never closed here: they may span several runs. The
     capture buffer is ours and needs no closing. *)
  { stats; schedule; trace = Option.map Obs.Memory.contents memory }
