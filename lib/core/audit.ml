(* Dynamic determinism audit: a shadow access recorder for the DIG
   scheduler (the runtime half of the detlint/audit pair).

   The paper's determinism guarantee rests on an *unchecked* contract:
   operators must be cautious and must acquire every abstract location
   they touch (§2, §3.3). [Context.Not_cautious] only catches late
   acquires; nothing catches a write to a location that was never
   acquired at all. When auditing is on, every worker context carries a
   [tape] — a flat, growable int buffer of (task id, location id,
   flags) triples — into which [Context.acquire] and the operator-facing
   [Context.touch] record the task's footprint. The scheduler drains the
   tapes in its sequential end-of-round glue and checks three
   properties against the committed set:

   - {e cautiousness}: no shared write before the failsafe point, even
     to an acquired location (checked for every inspected task — a
     defeated task's pre-failsafe write already mutated the world);
   - {e containment}: every location a committed task touched is in its
     acquired neighborhood;
   - {e race}: no two distinct committed tasks of the same round
     overlap on a location with at least one writer. Acquires count as
     writers (exclusive intent), so this doubles as an independent
     check of the scheduler's disjoint-neighborhood invariant — it
     needs no operator instrumentation to be non-vacuous.

   Recording is allocation-free on the hot path (amortized tape growth
   only); when auditing is off the context's tape is [None] and the
   only cost is one branch per acquire/touch. All checking runs in the
   sequential glue, so tapes are strictly per-worker and need no
   synchronization.

   Findings are deterministic: per-task event sets are deduplicated and
   sorted by (location id, flags), tasks and locations are visited in
   ascending id order, so the finding sequence is a pure function of
   the schedule (which is itself deterministic) and the lid namespace
   (see [Lock.reset_lids]). *)

type kind = Acquire | Read | Write

type rule = Containment | Cautiousness | Race

let rule_name = function
  | Containment -> "containment"
  | Cautiousness -> "cautiousness"
  | Race -> "race"

type finding = {
  rule : rule;
  round : int;
  task : int;
  other : int;  (* race partner (lower id), 0 otherwise *)
  lid : int;
}

let pp_finding ppf f =
  if f.rule = Race then
    Fmt.pf ppf "round %d: race on location %d between tasks %d and %d" f.round f.lid
      f.other f.task
  else
    Fmt.pf ppf "round %d: %s violation by task %d at location %d" f.round
      (rule_name f.rule) f.task f.lid

type report = {
  findings : finding list;
  rounds : int;
  tasks : int;
  dropped : int;
}

let empty_report = { findings = []; rounds = 0; tasks = 0; dropped = 0 }

let merge_reports a b =
  {
    findings = a.findings @ b.findings;
    rounds = a.rounds + b.rounds;
    tasks = a.tasks + b.tasks;
    dropped = a.dropped + b.dropped;
  }

let clean r = r.findings = [] && r.dropped = 0

(* Per-worker event tape: triples of (task, lid, flags) flattened into
   one int array. Bits 0-1 of flags encode the kind, bit 2 marks a
   pre-failsafe access. *)

type tape = { mutable buf : int array; mutable len : int }

let flags_of ~kind ~pre =
  (match kind with Acquire -> 0 | Read -> 1 | Write -> 2)
  lor (if pre then 4 else 0)

let kind_of_flags flags =
  match flags land 3 with 0 -> Acquire | 1 -> Read | _ -> Write

let pre_of_flags flags = flags land 4 <> 0

let record tape ~task ~lid ~kind ~pre =
  let n = tape.len in
  if n + 3 > Array.length tape.buf then begin
    let fresh = Array.make (max 256 (2 * Array.length tape.buf)) 0 in
    Array.blit tape.buf 0 fresh 0 n;
    tape.buf <- fresh
  end;
  tape.buf.(n) <- task;
  tape.buf.(n + 1) <- lid;
  tape.buf.(n + 2) <- flags_of ~kind ~pre;
  tape.len <- n + 3

type t = {
  mutable tapes : tape array;
  mutable findings_rev : finding list;
  mutable n_findings : int;
  mutable dropped : int;
  mutable rounds : int;
  mutable tasks : int;
  limit : int;
}

let create ?(limit = 10_000) () =
  if limit < 1 then invalid_arg "Audit.create: limit must be >= 1";
  {
    tapes = [||];
    findings_rev = [];
    n_findings = 0;
    dropped = 0;
    rounds = 0;
    tasks = 0;
    limit;
  }

(* The scheduler asks for one tape per worker slot in its sequential
   setup; the registry grows to fit. *)
let tape t w =
  if w < 0 then invalid_arg "Audit.tape: negative worker index";
  let n = Array.length t.tapes in
  if w >= n then begin
    let fresh = Array.init (w + 1) (fun _ -> { buf = [||]; len = 0 }) in
    Array.blit t.tapes 0 fresh 0 n;
    t.tapes <- fresh
  end;
  t.tapes.(w)

(* ------------------------------------------------------------------ *)
(* End-of-round checking                                               *)
(* ------------------------------------------------------------------ *)

(* Per-task canonical footprint, rebuilt each round from the tapes.
   Iteration never goes through Hashtbl.iter/fold (bucket order is
   exactly the nondeterminism this library polices): explicit order
   lists carry the visit order, tables only answer membership. *)
type task_rec = {
  acquired : (int, unit) Hashtbl.t;
  seen : (int, unit) Hashtbl.t;  (* dedup key: (lid lsl 3) lor flags *)
  mutable events_rev : (int * int) list;  (* (lid, flags) *)
}

type lid_rec = { mutable writers : int list; mutable readers : int list }

let end_round t ~round ~inspected ~committed =
  t.rounds <- t.rounds + 1;
  t.tasks <- t.tasks + inspected;
  let by_task : (int, task_rec) Hashtbl.t = Hashtbl.create 64 in
  let task_ids = ref [] in
  let rec_of id =
    match Hashtbl.find_opt by_task id with
    | Some r -> r
    | None ->
        let r =
          { acquired = Hashtbl.create 8; seen = Hashtbl.create 8; events_rev = [] }
        in
        Hashtbl.add by_task id r;
        task_ids := id :: !task_ids;
        r
  in
  Array.iter
    (fun tape ->
      let i = ref 0 in
      while !i < tape.len do
        let task = tape.buf.(!i)
        and lid = tape.buf.(!i + 1)
        and flags = tape.buf.(!i + 2) in
        let r = rec_of task in
        if flags land 3 = 0 then
          (if not (Hashtbl.mem r.acquired lid) then Hashtbl.add r.acquired lid ());
        let key = (lid lsl 3) lor flags in
        if not (Hashtbl.mem r.seen key) then begin
          Hashtbl.add r.seen key ();
          r.events_rev <- (lid, flags) :: r.events_rev
        end;
        i := !i + 3
      done;
      tape.len <- 0)
    t.tapes;
  let fresh_rev = ref [] in
  let n_fresh = ref 0 in
  let emit rule ~task ~other ~lid =
    if t.n_findings + !n_fresh >= t.limit then t.dropped <- t.dropped + 1
    else begin
      fresh_rev := { rule; round; task; other; lid } :: !fresh_rev;
      incr n_fresh
    end
  in
  let sorted_events r =
    List.sort compare (List.rev r.events_rev)
  in
  (* Cautiousness: any pre-failsafe write, by any inspected task. *)
  List.iter
    (fun id ->
      let r = Hashtbl.find by_task id in
      List.iter
        (fun (lid, flags) ->
          if kind_of_flags flags = Write && pre_of_flags flags then
            emit Cautiousness ~task:id ~other:0 ~lid)
        (sorted_events r))
    (List.sort compare !task_ids);
  (* Containment and race concern committed tasks only. *)
  let lid_tbl : (int, lid_rec) Hashtbl.t = Hashtbl.create 64 in
  let lid_order = ref [] in
  let lid_rec_of lid =
    match Hashtbl.find_opt lid_tbl lid with
    | Some r -> r
    | None ->
        let r = { writers = []; readers = [] } in
        Hashtbl.add lid_tbl lid r;
        lid_order := lid :: !lid_order;
        r
  in
  Array.iter
    (fun id ->
      match Hashtbl.find_opt by_task id with
      | None -> ()
      | Some r ->
          List.iter
            (fun (lid, flags) ->
              (match kind_of_flags flags with
              | Acquire -> ()
              | Read | Write ->
                  if not (Hashtbl.mem r.acquired lid) then
                    emit Containment ~task:id ~other:0 ~lid);
              let lr = lid_rec_of lid in
              match kind_of_flags flags with
              | Acquire | Write ->
                  (* Acquire = exclusive intent: counts as a write, which
                     makes two committed tasks sharing an acquired
                     location — a scheduler invariant violation — a
                     race finding even without operator instrumentation. *)
                  if not (List.mem id lr.writers) then lr.writers <- id :: lr.writers
              | Read ->
                  if not (List.mem id lr.readers) then lr.readers <- id :: lr.readers)
            (sorted_events r))
    committed;
  List.iter
    (fun lid ->
      let lr = Hashtbl.find lid_tbl lid in
      let writers = List.sort compare lr.writers in
      let readers =
        List.sort compare (List.filter (fun id -> not (List.mem id lr.writers)) lr.readers)
      in
      (* Every (writer, other-task) pair with distinct ids conflicts;
         reader pairs do not. Report each pair once, anchored at the
         higher id. *)
      let parties = List.sort compare (writers @ readers) in
      List.iter
        (fun w ->
          List.iter
            (fun p ->
              if p < w then emit Race ~task:w ~other:p ~lid
              else if p > w && not (List.mem p writers) then
                emit Race ~task:p ~other:w ~lid)
            parties)
        writers)
    (List.sort compare !lid_order);
  let fresh = List.rev !fresh_rev in
  t.findings_rev <- List.rev_append fresh t.findings_rev;
  t.n_findings <- t.n_findings + !n_fresh;
  fresh

let report t =
  {
    findings = List.rev t.findings_rev;
    rounds = t.rounds;
    tasks = t.tasks;
    dropped = t.dropped;
  }
