(* Monotonic time for duration measurement.

   Phase breakdowns and wall-clock figures were historically derived
   from [Unix.gettimeofday], which is wall time: an NTP step mid-round
   makes a phase duration negative (and [Stats.breakdown] silently
   clamps it to zero, corrupting the split). All durations in the
   schedulers and the bench harness are now differences of this
   monotonic clock; [Unix.gettimeofday] remains only for absolute event
   timestamps ([Obs.at_s]), where wall time is the point.

   The clock itself is bechamel's CLOCK_MONOTONIC stub — nanoseconds
   from an arbitrary origin, never stepping backwards. *)

let now_ns () : int64 = Monotonic_clock.now ()

let now_s () = Int64.to_float (now_ns ()) *. 1e-9

(* Seconds elapsed since a [now_s] reading. Non-negative by
   construction (monotonicity), modulo float rounding at the origin. *)
let elapsed_s since = Float.max 0.0 (now_s () -. since)
