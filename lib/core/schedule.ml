(* Recorded execution structure.

   When recording is enabled, schedulers keep, for every executed task,
   its abstract cost (mark operations + user-reported work) and the ids
   of the locations it touched. The machine simulator (lib/simmachine)
   replays these records under machine cost models to regenerate the
   paper's scaling figures, and the cache simulator (lib/cachesim)
   replays the location streams for the locality study (Fig. 11). *)

type task_record = {
  acquires : int;  (* neighborhood size = number of mark operations *)
  inspect_work : int;  (* work units before the failsafe point (0 for flat) *)
  commit_work : int;  (* work units of the commit / full execution *)
  committed : bool;  (* false: failed selection or aborted attempt *)
  locks : int array;  (* location ids touched, in acquisition order *)
}

type t =
  | Rounds of task_record array list
      (* Deterministic execution: one array per round, in round order;
         each array lists the inspected window with commit outcomes. *)
  | Flat of task_record list
      (* Non-deterministic / serial execution: attempts in completion
         order (aborted attempts marked uncommitted). *)

let rounds_count = function Rounds l -> List.length l | Flat _ -> 0

let tasks = function
  | Rounds l -> List.concat_map Array.to_list l
  | Flat l -> l

let committed_tasks t = List.filter (fun r -> r.committed) (tasks t)

let task_cost r = r.acquires + r.inspect_work + r.commit_work

let total_work t = List.fold_left (fun acc r -> acc + task_cost r) 0 (committed_tasks t)

(* Structural digest of a recorded schedule: folds round boundaries and
   every task record's shape. Raw location ids are excluded (they come
   from a process-global counter, so two runs of the same program would
   disagree on them); the neighborhood sizes are already in [acquires].
   Two recordings with equal digests have the same round structure,
   costs and commit decisions. *)
let digest t =
  let fold_record d r =
    let d = Trace_digest.fold_int d r.acquires in
    let d = Trace_digest.fold_int d r.inspect_work in
    let d = Trace_digest.fold_int d r.commit_work in
    Trace_digest.fold_bool d r.committed
  in
  match t with
  | Rounds l ->
      List.fold_left
        (fun d round ->
          Array.fold_left fold_record (Trace_digest.fold_int d (Array.length round)) round)
        (Trace_digest.fold_bool Trace_digest.seed true)
        l
  | Flat l ->
      List.fold_left fold_record (Trace_digest.fold_bool Trace_digest.seed false) l
