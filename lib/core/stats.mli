(** Execution statistics for a runtime invocation.

    These back the paper's application-characteristics study (Figures 4
    and 5: task commit rates, abort ratios, rounds, atomic update
    rates). *)

type worker = {
  mutable committed : int;
  mutable aborted : int;
  mutable acquires : int;
  mutable atomic_updates : int;
  mutable work : int;
  mutable pushes : int;
  mutable inspections : int;
}
(** Per-worker mutable counters; owned exclusively by one worker during a
    parallel section. *)

val make_worker : unit -> worker

type t = {
  threads : int;
  commits : int;
  aborts : int;
  acquired : int;
  atomics : int;
  work_units : int;
  created : int;
  inspected : int;
  rounds : int;
  generations : int;
  digest : Trace_digest.t;
      (** Round-trace digest of a deterministic execution
          ({!Trace_digest.absent} for nondet/serial). Two deterministic
          runs of the same program took the same schedule iff their
          digests agree. *)
  time_s : float;
}
(** Aggregated result of one [for_each] execution. *)

val merge :
  ?digest:Trace_digest.t ->
  threads:int ->
  rounds:int ->
  generations:int ->
  time_s:float ->
  worker array ->
  t

val add : t -> t -> t
(** Combine consecutive executions (counters sum, times add, digests
    chain with {!Trace_digest.combine}). *)

val zero : int -> t
(** Neutral element of {!add} for a given thread count. *)

val abort_ratio : t -> float
(** Aborts / (commits + aborts); the paper's abort ratio (Fig. 4). *)

val commits_per_us : t -> float
(** Committed tasks per microsecond (Fig. 4's task rate). *)

val atomics_per_us : t -> float
(** Atomic updates per microsecond (Fig. 5). *)

val pp : Format.formatter -> t -> unit
