(** Execution statistics for a runtime invocation.

    These back the paper's application-characteristics study (Figures 4
    and 5: task commit rates, abort ratios, rounds, atomic update
    rates). *)

type worker = {
  mutable committed : int;
  mutable aborted : int;
  mutable acquires : int;
  mutable atomic_updates : int;
  mutable work : int;
  mutable pushes : int;
  mutable inspections : int;
  mutable chunks : int;
  mutable spins : int;
  mutable parks : int;
}
(** Per-worker mutable counters; owned exclusively by one worker during a
    parallel section. [chunks] counts chunk grabs in the deterministic
    scheduler's dynamic parallel iteration — a load-balance signal
    surfaced through the [Worker_counters] observability event.
    [spins]/[parks] mirror the {!Parallel.Domain_pool} sync counters:
    wakeups served by the bounded spin fast path vs. waits that fell
    back to the mutex/condvar slow path. Both are timing-dependent and
    therefore non-deterministic. *)

val make_worker : unit -> worker

type phase_times = { inspect_s : float; select_s : float; other_s : float }
(** Wall-clock breakdown of {!t.time_s} across scheduler phases. The DIG
    scheduler reports its two parallel phases in [inspect_s]/[select_s]
    with sequential glue (generation sort, mark resolution, window
    adaptation) in [other_s]; serial and speculative executions book all
    their time under [select_s]. Always sums to {!t.time_s} (up to float
    rounding). *)

val no_phases : phase_times
(** All zero; the breakdown of {!zero}. *)

val breakdown : inspect_s:float -> select_s:float -> time_s:float -> phase_times
(** Clamp the measured phase times to [\[0, ∞)] and attribute the
    remainder of [time_s] to [other_s] (clamped at 0). *)

val phase_total : phase_times -> float
(** Sum of the three components. *)

type t = {
  threads : int;
  commits : int;
  aborts : int;
  acquired : int;
  atomics : int;
  work_units : int;
  created : int;
  inspected : int;
  spins : int;  (** pool-sync wakeups served by the spin fast path *)
  parks : int;  (** pool-sync waits that parked on a condvar *)
  rounds : int;
  generations : int;
  buckets : int;
      (** soft-priority buckets opened by the deterministic scheduler
          (0 when [prio=off] and for nondet/serial) *)
  digest : Trace_digest.t;
      (** Round-trace digest of a deterministic execution
          ({!Trace_digest.absent} for nondet/serial). Two deterministic
          runs of the same program took the same schedule iff their
          digests agree. *)
  time_s : float;
  phases : phase_times;  (** where [time_s] went, per scheduler phase *)
}
(** Aggregated result of one [for_each] execution. *)

val merge :
  ?digest:Trace_digest.t ->
  ?phases:phase_times ->
  ?buckets:int ->
  threads:int ->
  rounds:int ->
  generations:int ->
  time_s:float ->
  worker array ->
  t
(** When [phases] is omitted the whole of [time_s] is booked under
    [other_s]; [buckets] defaults to 0 (unordered execution). *)

val add : t -> t -> t
(** Combine consecutive executions (counters sum, times add, digests
    chain with {!Trace_digest.combine}). *)

val zero : int -> t
(** Neutral element of {!add} for a given thread count. *)

val abort_ratio : t -> float
(** Aborts / (commits + aborts); the paper's abort ratio (Fig. 4). *)

val commits_per_us : t -> float
(** Committed tasks per microsecond (Fig. 4's task rate). *)

val atomics_per_us : t -> float
(** Atomic updates per microsecond (Fig. 5). *)

val pp_phases : Format.formatter -> phase_times -> unit

val pp : Format.formatter -> t -> unit
(** Multi-line summary. The digest is printed only when present
    (deterministic runs); serial/nondet runs show the phase-time
    breakdown without a digest line. *)
