(** Recorded schedules: per-task costs and location streams.

    Optional output of a runtime execution, consumed by the machine
    simulator (scaling figures) and the cache simulator (locality
    figures). *)

type task_record = {
  acquires : int;  (** neighborhood size (mark operations) *)
  inspect_work : int;  (** work units before the failsafe point *)
  commit_work : int;  (** work units of the commit / full execution *)
  committed : bool;
  locks : int array;  (** location ids in acquisition order *)
}

type t =
  | Rounds of task_record array list
      (** Deterministic rounds, in order; each array is one inspected
          window. *)
  | Flat of task_record list
      (** Asynchronous execution: attempts in completion order. *)

val rounds_count : t -> int
val tasks : t -> task_record list
val committed_tasks : t -> task_record list

val task_cost : task_record -> int
(** Acquires + all work units of one task. *)

val total_work : t -> int
(** Sum of {!task_cost} over committed tasks. *)

val digest : t -> Trace_digest.t
(** Structural digest: round boundaries plus every record's costs and
    commit decision (location ids excluded — they are process-local).
    Lets two recordings be compared in O(1) after the fact; the live
    {!Stats.t.digest} additionally covers committed task ids. *)
