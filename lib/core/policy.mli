(** Execution policies — the on-demand determinism switch.

    The same application code runs under any policy; programs select one
    at run time (typically from the command line), realizing the paper's
    on-demand determinism. *)

type priority_mode =
  | Prio_off  (** unordered: generations in pure id order (default) *)
  | Prio_delta of int
      (** delta-stepping buckets of width [delta >= 1]; bucket
          [priority / delta] runs before higher buckets, id order within
          a bucket *)
  | Prio_auto
      (** per-generation delta derived from the priority span — still a
          pure function of the task set, so still deterministic *)

type det_options = {
  target_ratio : float;
      (** Adaptive-window commit-ratio threshold (default 0.9). *)
  initial_window : int option;
      (** First-round window; [None] (default) derives it from the task
          count, keeping it machine-independent. *)
  spread : int;  (** Locality-spread piles; 1 disables (default 16). *)
  continuation : bool;  (** §3.3 continuation optimization (default on). *)
  validate : bool;
      (** Debug: re-verify neighborhood marks at commit in addition to
          the O(1) defeat flags. *)
  priority : priority_mode;
      (** Soft-priority windows over the run's priority function; rounds
          draw from the lowest non-empty bucket first. [Prio_off]
          (default) leaves schedules byte-identical to the unordered
          scheduler. *)
}

val default_det : det_options

(** Constructors, with-style setters and a keyed string grammar for
    {!det_options}, replacing bare record literals at call sites. *)
module Det_options : sig
  type t = det_options = {
    target_ratio : float;
    initial_window : int option;
    spread : int;
    continuation : bool;
    validate : bool;
    priority : priority_mode;
  }

  val default : t
  (** = {!default_det}. *)

  val make :
    ?ratio:float ->
    ?window:int option ->
    ?spread:int ->
    ?continuation:bool ->
    ?validate:bool ->
    ?priority:priority_mode ->
    unit ->
    t
  (** Build from {!default}; each argument behaves like the
      corresponding setter. [window] is the full option: pass
      [~window:(Some 64)] for a fixed first window, [~window:None] for
      the task-count-derived default. *)

  val with_ratio : float -> t -> t
  (** Raises [Invalid_argument] unless the ratio is [> 0]. Values above
      1 are allowed: they make the target unreachable, pinning the
      window (used by the §3.3 ablations). *)

  val with_window : int option -> t -> t
  (** [Some w] fixes the first-round window ([w >= 1], or
      [Invalid_argument]); [None] restores the task-count-derived
      default ([window=auto] in the string grammar). *)

  val with_spread : int -> t -> t
  (** Raises [Invalid_argument] unless [>= 1]; [1] disables spreading. *)

  val with_continuation : bool -> t -> t
  val with_validate : bool -> t -> t

  val with_priority : priority_mode -> t -> t
  (** Raises [Invalid_argument] on [Prio_delta d] with [d < 1]. *)

  val to_string : t -> string
  (** Keyed form, e.g. ["window=64,spread=1,ratio=0.95,cont=off"]. Only
      non-default keys are emitted, in the fixed order [window],
      [spread], [ratio], [cont], [validate], [prio]; the default prints
      as [""]. Round-trips through {!of_string} for every value
      (human-entered ratios stay short; pathological floats fall back to
      a 17-digit render). *)

  val of_string : string -> (t, string) result
  (** Parse the keyed form, any key order. Keys: [window=<int>=1..|auto],
      [spread=<int>=1..], [ratio=<float>0..], [cont=on|off],
      [validate=on|off], [prio=off|auto|delta:<int>=1..]. Unknown keys,
      duplicate keys and out-of-range values are rejected; [""] is
      {!default}. *)
end

type t =
  | Serial  (** in-order sequential execution *)
  | Nondet of { threads : int }  (** speculative scheduling (Fig. 1b) *)
  | Det of { threads : int; options : det_options }
      (** deterministic DIG scheduling (Fig. 2) *)

val serial : t
val nondet : int -> t
val det : ?options:det_options -> int -> t

val threads : t -> int

val is_deterministic : t -> bool
(** True for [Serial] and [Det]: the output is a function of the input
    only, not of timing or thread count. *)

val grammar : string
(** One-line grammar summary for help text:
    ["serial | nondet[:T] | det[:T][k=v,...]"]. *)

val of_string : string -> (t, string) result
(** Parses ["serial"], ["nondet\[:T\]"] and ["det\[:T\]\[k=v,...\]"]
    (thread count defaults to 1). The optional bracketed block after
    [det] carries {!Det_options.of_string} options, e.g.
    ["det:8\[window=64,spread=1,ratio=0.95,cont=off\]"]. Inverse of
    {!to_string}. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical render; non-default deterministic options reappear in the
    bracketed keyed form, so [of_string (to_string p)] yields [p]. *)
