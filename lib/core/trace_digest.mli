(** Incremental FNV-1a (64-bit) digests of execution traces.

    The deterministic scheduler folds each round's shape into a digest as
    it runs ({!Stats.t.digest}); the determinism audit compares two runs
    in O(1) by comparing digests instead of diffing full schedules. The
    byte-wise FNV-1a fold is fixed and machine-independent: equal traces
    give equal digests everywhere, and unequal digests prove the traces
    differ. (Digest equality is evidence, not proof, of trace equality —
    the usual 2^-64 caveat.) *)

type t = int64

val absent : t
(** Reported by schedulers that keep no trace (serial, nondet); the
    neutral element of {!combine}. *)

val seed : t
(** Starting value of a real trace fold (the FNV-1a offset basis). *)

val is_absent : t -> bool

val fold_int : t -> int -> t
(** Fold the 8 little-endian bytes of the word into the digest. *)

val fold_int64 : t -> int64 -> t
val fold_bool : t -> bool -> t

val fold_float : t -> float -> t
(** Folds the IEEE-754 bit pattern (so [-0. <> +0.] and NaNs compare by
    representation). *)

val fold_string : t -> string -> t

val combine : t -> t -> t
(** Fold digest [b] into digest [a]; {!absent} is neutral on either
    side. *)

val equal : t -> t -> bool

val to_hex : t -> string
(** 16 lowercase hex digits — the printed digest format. *)

val of_hex : string -> t option
(** Parse what {!to_hex} or {!pp} printed: 16 lowercase hex digits, or
    ["-"] for {!absent}. [None] on anything else. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_hex}, or ["-"] for {!absent}. *)
