(** Convenience runtime entry point: execute an unordered Galois task
    pool under a chosen policy.

    This is a thin, stable alias over the {!Run} builder — the two are
    interchangeable; use {!Run} when a run carries more configuration
    (multiple sinks, trace capture) than reads well as optional
    arguments.

    {[
      let report =
        Galois.Runtime.for_each
          ~policy:(Galois.Policy.det 8)   (* or [nondet 8], or [serial] *)
          ~operator:(fun ctx node ->
            Galois.Context.acquire ctx (lock_of node);
            (* ... read neighborhood ... *)
            Galois.Context.failsafe ctx;
            (* ... write, push new tasks ... *))
          initial_tasks
    ]} *)

type ('item, 'state) operator = ('item, 'state) Run.operator
(** An operator executes one task: acquire the neighborhood, declare the
    failsafe point, then mutate. ['state] is the continuation-state type
    ([unit] if unused). *)

type report = Run.report = {
  stats : Stats.t;
  schedule : Schedule.t option;
  trace : Obs.stamped list option;
  audit : Audit.report option;
}

val for_each :
  ?policy:Policy.t ->
  ?pool:Pool.t ->
  ?record:bool ->
  ?static_id:('item -> int) ->
  ?sink:Obs.sink ->
  operator:('item, 'state) operator ->
  'item array ->
  report
[@@deprecated "use the Galois.Run builder (Run.make ... |> Run.exec)"]
(** Run all tasks (and the tasks they create) to completion. Equivalent
    to [Run.make ~operator items |> Run.policy ... |> Run.exec].

    @param policy execution policy; default {!Policy.Serial}.
    @param pool reuse an existing domain pool (must be at least as large
      as the policy's thread count); otherwise a temporary pool is
      created.
    @param record capture a {!Schedule.t} for the simulators.
    @param static_id deterministic-scheduler fast path for fixed task
      universes (§3.3); ignored by other policies.
    @param sink stream observability events into an {!Obs.sink}; the
      sink is not closed (see {!Run.sink}). *)
