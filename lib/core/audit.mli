(** Dynamic determinism audit: shadow access recording and per-round
    neighborhood/race checking for the DIG scheduler.

    Enable with {!Run.audit} (det policies only). When auditing is on,
    {!Context.acquire} records each acquisition and operators may
    declare their shared-state accesses with {!Context.touch}; the
    scheduler drains the per-worker tapes in its sequential end-of-round
    glue and checks, per committed round:

    - {e cautiousness} — no shared write before the failsafe point (any
      inspected task, committed or defeated);
    - {e containment} — every location a committed task touched was in
      its acquired neighborhood;
    - {e race} — no write/write or write/read overlap between distinct
      committed tasks of the same round. Acquires count as writes, so
      the check is non-vacuous even for operators that never call
      [touch]: it independently verifies the scheduler's
      disjoint-neighborhood invariant.

    Auditing is zero-cost when disabled: no recorder is allocated and
    the hot path pays one branch per acquire/touch. Findings are a
    deterministic function of the schedule and the location-id
    namespace ({!Lock.reset_lids}). *)

type kind = Acquire | Read | Write

type rule =
  | Containment  (** touched a location outside the acquired set *)
  | Cautiousness  (** wrote shared state before the failsafe point *)
  | Race  (** two committed tasks of one round overlap, >= 1 writer *)

val rule_name : rule -> string
(** ["containment"], ["cautiousness"] or ["race"] — the names used by
    [Obs.Audit_finding] and the detlint/detcheck tooling. *)

type finding = {
  rule : rule;
  round : int;
  task : int;  (** offending task id (the higher id, for races) *)
  other : int;  (** race partner (lower id); [0] for other rules *)
  lid : int;  (** location id ({!Lock.id}) *)
}

val pp_finding : Format.formatter -> finding -> unit

type report = {
  findings : finding list;  (** in detection order (round-major) *)
  rounds : int;  (** rounds audited *)
  tasks : int;  (** task inspections audited (retries recount) *)
  dropped : int;  (** findings past the recorder's limit, not retained *)
}

val empty_report : report
val merge_reports : report -> report -> report
(** Concatenate findings and sum the counters — for multi-epoch apps
    that execute one {!Run} per epoch (e.g. preflow-push). *)

val clean : report -> bool
(** No findings and none dropped. *)

(** {2 Scheduler internals}

    Everything below is wired by {!Run.exec} and the DIG scheduler;
    applications only see {!report} and {!Context.touch}. *)

type t
(** A recorder: per-worker tapes plus the accumulated findings. One
    recorder serves exactly one run (tapes are drained per round,
    findings accumulate across rounds). *)

val create : ?limit:int -> unit -> t
(** [limit] (default 10000) bounds retained findings; excess findings
    are counted in [report.dropped] rather than silently lost. *)

type tape
(** A per-worker flat event buffer. Recording never allocates beyond
    amortized buffer growth. *)

val tape : t -> int -> tape
(** The tape for worker slot [w], created on first use. Call from
    sequential code only. *)

val record : tape -> task:int -> lid:int -> kind:kind -> pre:bool -> unit
(** Append one access event. [pre] marks an access before the task's
    failsafe point. *)

val end_round : t -> round:int -> inspected:int -> committed:int array -> finding list
(** Drain all tapes, run the three checks for [round] against the
    (ascending-sorted) committed task ids, clear the tapes, and return
    this round's fresh findings (also accumulated into the recorder).
    Call from the scheduler's sequential glue, after selectAndExec and
    before the pending set is compacted. *)

val report : t -> report
