(* The deterministic scheduler's pending-task deque.

   A generation's tasks arrive as one array in deterministic order; each
   round then takes the first [w] pending tasks as its window and must
   put the failed ones back in front of the untried remainder, still in
   order. The original implementation did this with linked lists
   (window extraction, [List.rev_append] re-splicing), allocating O(w)
   cons cells every round. Here the window is just an index range over
   the generation array and a round ends with an in-place compaction:
   no per-round allocation at all.

   [compact] walks the window backwards, sliding each kept (failed)
   task down to sit directly before the untried remainder. Writing
   index [j] always satisfies [j >= head + i] (at most [w_use - 1 - i]
   tasks were kept from positions above [i]), so no unread entry is
   ever clobbered, and the descending walk preserves the relative order
   of the kept tasks. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int;
  mutable len : int;
  (* Soft-priority bucket runs: the buffer is a concatenation of
     contiguous segments ("runs"), one per delta-stepping bucket in
     ascending bucket order; [run_buckets.(i)]/[run_counts.(i)] hold the
     bucket index and remaining task count of run [i], [run_head] the
     current (lowest non-empty) run. Failed tasks are compacted back in
     front of their own run, so a run only shrinks when its tasks
     commit. Empty arrays when the generation is unordered. *)
  mutable run_buckets : int array;
  mutable run_counts : int array;
  mutable run_head : int;
}

let create () =
  { buf = [||]; head = 0; len = 0; run_buckets = [||]; run_counts = [||]; run_head = 0 }

(* Takes ownership of [arr]: the deque compacts tasks within it in
   place. Callers must not reuse the array. *)
let load t arr =
  t.buf <- arr;
  t.head <- 0;
  t.len <- Array.length arr;
  t.run_buckets <- [||];
  t.run_counts <- [||];
  t.run_head <- 0

let load_runs t arr runs =
  let total = Array.fold_left (fun a (_, c) -> a + c) 0 runs in
  if total <> Array.length arr then
    invalid_arg "Pending.load_runs: run sizes must sum to the task count";
  if Array.exists (fun (_, c) -> c <= 0) runs then
    invalid_arg "Pending.load_runs: runs must be non-empty";
  load t arr;
  t.run_buckets <- Array.map fst runs;
  t.run_counts <- Array.map snd runs

let length t = t.len

let get t i = t.buf.(t.head + i)

let current_run t =
  if t.run_head >= Array.length t.run_buckets then None
  else Some (t.run_buckets.(t.run_head), t.run_counts.(t.run_head))

(* Window cap: never straddle a bucket boundary — the remaining tasks
   of the current run, or everything when the generation is unordered. *)
let window_avail t =
  if t.run_head >= Array.length t.run_counts then t.len
  else t.run_counts.(t.run_head)

let note_dropped t dropped =
  if t.run_head >= Array.length t.run_counts || dropped = 0 then None
  else begin
    let c = t.run_counts.(t.run_head) - dropped in
    if c < 0 then invalid_arg "Pending.note_dropped: more drops than the current run holds";
    t.run_counts.(t.run_head) <- c;
    if c = 0 then begin
      let b = t.run_buckets.(t.run_head) in
      t.run_head <- t.run_head + 1;
      Some b
    end
    else None
  end

let compact t ~w_use ~keep =
  if w_use < 0 || w_use > t.len then invalid_arg "Pending.compact";
  let j = ref (t.head + w_use - 1) in
  for i = w_use - 1 downto 0 do
    if keep i then begin
      t.buf.(!j) <- t.buf.(t.head + i);
      decr j
    end
  done;
  let dropped = !j - t.head + 1 in
  t.head <- !j + 1;
  t.len <- t.len - dropped;
  dropped
