(* The deterministic scheduler's pending-task deque.

   A generation's tasks arrive as one array in deterministic order; each
   round then takes the first [w] pending tasks as its window and must
   put the failed ones back in front of the untried remainder, still in
   order. The original implementation did this with linked lists
   (window extraction, [List.rev_append] re-splicing), allocating O(w)
   cons cells every round. Here the window is just an index range over
   the generation array and a round ends with an in-place compaction:
   no per-round allocation at all.

   [compact] walks the window backwards, sliding each kept (failed)
   task down to sit directly before the untried remainder. Writing
   index [j] always satisfies [j >= head + i] (at most [w_use - 1 - i]
   tasks were kept from positions above [i]), so no unread entry is
   ever clobbered, and the descending walk preserves the relative order
   of the kept tasks. *)

type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

let create () = { buf = [||]; head = 0; len = 0 }

(* Takes ownership of [arr]: the deque compacts tasks within it in
   place. Callers must not reuse the array. *)
let load t arr =
  t.buf <- arr;
  t.head <- 0;
  t.len <- Array.length arr

let length t = t.len

let get t i = t.buf.(t.head + i)

let compact t ~w_use ~keep =
  if w_use < 0 || w_use > t.len then invalid_arg "Pending.compact";
  let j = ref (t.head + w_use - 1) in
  for i = w_use - 1 downto 0 do
    if keep i then begin
      t.buf.(!j) <- t.buf.(t.head + i);
      decr j
    end
  done;
  let dropped = !j - t.head + 1 in
  t.head <- !j + 1;
  t.len <- t.len - dropped;
  dropped
