(* Flat per-worker child accumulation for the DIG scheduler.

   Workers buffer the tasks their committed window entries push; between
   rounds the sequential glue drains every worker's buffer into the
   generation-wide todo buffer that the next [form_generation] consumes.
   A structure-of-arrays layout ((parent id, birth index, item) columns)
   replaces the previous [(id, k, item) :: list] accumulation: pushes
   into a warmed-up buffer allocate nothing, and [clear] keeps capacity,
   so steady-state rounds do no per-child allocation at all. *)

type 'a t = {
  mutable parent : int array;  (* id of the pushing task *)
  mutable birth : int array;  (* push index within the pushing task *)
  mutable items : 'a array;
  mutable len : int;
}

let create () = { parent = [||]; birth = [||]; items = [||]; len = 0 }

let length t = t.len

let clear t = t.len <- 0

let grow t item =
  let cap = max 8 (2 * t.len) in
  let parent = Array.make cap 0 and birth = Array.make cap 0 in
  (* The pushed item doubles as the filler, so an empty buffer needs no
     dummy element (same trick as the Context scratch buffers). *)
  let items = Array.make cap item in
  Array.blit t.parent 0 parent 0 t.len;
  Array.blit t.birth 0 birth 0 t.len;
  Array.blit t.items 0 items 0 t.len;
  t.parent <- parent;
  t.birth <- birth;
  t.items <- items

let push t ~parent ~birth item =
  let n = t.len in
  if n = Array.length t.items then grow t item;
  t.parent.(n) <- parent;
  t.birth.(n) <- birth;
  t.items.(n) <- item;
  t.len <- n + 1

let parent t i = t.parent.(i)
let birth t i = t.birth.(i)
let item t i = t.items.(i)

(* Append [src]'s contents to [into] and clear [src] (capacity kept on
   both sides). *)
let transfer ~into src =
  let n = src.len in
  if n > 0 then begin
    if into.len + n > Array.length into.items then begin
      (* Grow [into] to at least the required size in one step. *)
      let cap = max (max 8 (2 * into.len)) (into.len + n) in
      let parent = Array.make cap 0 and birth = Array.make cap 0 in
      let items = Array.make cap src.items.(0) in
      Array.blit into.parent 0 parent 0 into.len;
      Array.blit into.birth 0 birth 0 into.len;
      Array.blit into.items 0 items 0 into.len;
      into.parent <- parent;
      into.birth <- birth;
      into.items <- items
    end;
    Array.blit src.parent 0 into.parent into.len n;
    Array.blit src.birth 0 into.birth into.len n;
    Array.blit src.items 0 into.items into.len n;
    into.len <- into.len + n;
    src.len <- 0
  end
