(* Non-deterministic speculative scheduler (Fig. 1b).

   Each worker repeatedly takes an arbitrary task from the shared pool
   and executes it in [Direct] mode: acquisitions claim mark words
   exclusively, and losing any location raises [Conflict], upon which the
   worker rolls back (releases its marks — cheap, because cautious tasks
   have written nothing before the failsafe point) and requeues the task.

   Worker w uses task id w+1: ids need only be distinct among
   concurrently executing tasks (§2.1), and a worker runs one task at a
   time, releasing all marks in between. *)

let run ?(record = false) ?(sink = Obs.null) ?threads ~pool ~operator items =
  (* The policy's thread count rules; a larger shared pool just leaves
     the extra workers idle. *)
  let threads =
    match threads with
    | None -> Parallel.Domain_pool.size pool
    | Some t -> min t (Parallel.Domain_pool.size pool)
  in
  let workers = Array.init threads (fun _ -> Stats.make_worker ()) in
  let records = Array.make threads [] in
  let ws = Workset.create items in
  (* One lock epoch for the whole run: the speculative scheduler really
     releases its marks (rollback needs to), so staleness is not used,
     but stamped claims keep the fast path shared with the DIG rounds. *)
  let stamp = Lock.new_epoch () in
  let sync0 = Parallel.Domain_pool.sync_counters pool in
  let t0 = Clock.now_s () in
  Parallel.Domain_pool.run pool (fun w ->
      if w >= threads then ()
      else
      let stats = workers.(w) in
      let ctx = Context.create () in
      Context.set_stats ctx stats;
      let record_attempt ~committed =
        if record then
          records.(w) <-
            {
              Schedule.acquires = Context.neighborhood_count ctx;
              inspect_work = 0;
              commit_work = Context.work_units ctx;
              committed;
              locks = Array.map Lock.id (Context.neighborhood_array ctx);
            }
            :: records.(w)
      in
      (* Bounded exponential backoff after repeated conflicts: without
         it, a worker spinning against a long-running task burns its
         time slice re-aborting (classic speculative end-game, e.g.
         Boruvka's final components). *)
      let consecutive_aborts = ref 0 in
      let backoff () =
        incr consecutive_aborts;
        if !consecutive_aborts > 4 then
          Unix.sleepf (Float.min 0.001 (1e-6 *. float_of_int (1 lsl min 16 !consecutive_aborts)))
      in
      let rec loop () =
        match Workset.take ws with
        | None -> ()
        | Some item ->
            Context.reset ctx ~phase:Direct ~task_id:(w + 1) ~stamp ~saved:None;
            (match operator ctx item with
            | () ->
                consecutive_aborts := 0;
                (* Committed: release marks, publish created tasks. *)
                stats.atomic_updates <- stats.atomic_updates + Context.neighborhood_count ctx;
                record_attempt ~committed:true;
                Context.release_all ctx;
                Workset.push_new ws (Context.pushed_list ctx);
                stats.pushes <- stats.pushes + Context.pushed_count ctx;
                stats.work <- stats.work + Context.work_units ctx;
                stats.committed <- stats.committed + 1;
                Workset.complete ws
            | exception Context.Conflict ->
                (* Rollback: cautious tasks made no writes yet, so
                   releasing the marks undoes everything. *)
                stats.atomic_updates <- stats.atomic_updates + Context.neighborhood_count ctx;
                record_attempt ~committed:false;
                Context.release_all ctx;
                stats.aborted <- stats.aborted + 1;
                Workset.requeue ws item;
                backoff ());
            loop ()
      in
      loop ());
  let time_s = Clock.elapsed_s t0 in
  let sync1 = Parallel.Domain_pool.sync_counters pool in
  for w = 0 to threads - 1 do
    let s0, p0 = sync0.(w) and s1, p1 = sync1.(w) in
    workers.(w).Stats.spins <- s1 - s0;
    workers.(w).Stats.parks <- p1 - p0
  done;
  (* detlint: allow wall-clock — Obs.at_s is an absolute wall-clock timestamp; durations use Clock *)
  let emit event = sink.Obs.emit { Obs.at_s = Unix.gettimeofday (); event } in
  emit (Obs.Phase_time { round = 0; phase = Obs.Execute; dt_s = time_s });
  Array.iteri
    (fun w (st : Stats.worker) ->
      emit
        (Obs.Worker_counters
           { worker = w; committed = st.committed; aborted = st.aborted;
             acquires = st.acquires; atomics = st.atomic_updates;
             work = st.work; pushes = st.pushes;
             inspections = st.inspections; chunks = st.chunks;
             spins = st.spins; parks = st.parks }))
    workers;
  let stats =
    Stats.merge ~threads ~rounds:0 ~generations:0 ~time_s
      ~phases:(Stats.breakdown ~inspect_s:0.0 ~select_s:time_s ~time_s)
      workers
  in
  let schedule =
    if record then
      Some (Schedule.Flat (List.concat_map (fun l -> List.rev l) (Array.to_list records)))
    else None
  in
  (stats, schedule)
