(** Abstract locations with atomic, epoch-stamped mark words.

    The Galois runtime synchronizes by associating marks with abstract
    locations (paper §2). Each lock word holds 0 when free or a packed
    [(stamp, task id)] pair. All claiming operations take the epoch
    [~stamp] they run under (obtained from {!new_epoch}); a mark whose
    stamp belongs to a different epoch is {e stale} and behaves like a
    free word. This makes end-of-round mark clearing unnecessary: the
    DIG scheduler opens a fresh epoch per round, invalidating every
    surviving mark at once instead of CAS-ing each one back to 0. *)

type t

val create : unit -> t
(** A fresh location (word 0) with a location id unique within the
    current lid namespace (process-unique unless {!reset_lids} is
    used). *)

val reset_lids : ?base:int -> unit -> unit
(** Re-base the process-global lid counter (default 0) so location ids
    are reproducible from one run to the next within a process. Call
    only between runs, when no locks created under the previous
    namespace remain live — lid uniqueness holds per namespace only.
    Lids stay excluded from all schedule/trace digests regardless. *)

val create_array : int -> t array

val id : t -> int
(** Stable location id, used for access traces and cache simulation. *)

val max_task_id : int
(** Largest representable task id ([2^30 - 1]). Claiming with an id
    outside [1, max_task_id] raises [Invalid_argument]. *)

val max_stamp : int
(** Largest representable epoch stamp ([2^32 - 1]). *)

val new_epoch : unit -> int
(** A fresh epoch stamp from a process-global monotonic counter
    (always >= 1). Marks written under earlier epochs are stale — free
    by construction — for every operation taking this stamp. Raises
    [Invalid_argument] if the 32-bit stamp space is ever exhausted. *)

val mark : t -> int
(** The task-id field of the current mark word regardless of its epoch
    (0 = free). A stale mark still decodes to the id that wrote it;
    epoch-respecting readers use {!holds}. *)

val raw : t -> int
(** The raw packed word (0 = free); for tests and debugging. *)

val try_claim : t -> stamp:int -> int -> bool
(** [try_claim l ~stamp id] implements Fig. 1b's [writeMarks] for one
    location: atomically claim [l] for task [id] if free or stale (or
    already held by [id] under [stamp]). False means a same-epoch
    conflict with another task. *)

val claim_fresh : t -> stamp:int -> int -> bool
(** [claim_fresh l ~stamp id] claims [l] only if its word is literally 0
    — never marked, or explicitly cleared. Unlike {!try_claim}, a stale
    mark from an earlier epoch fails the claim: it proves another task
    has seen the location, which is what freshness rules out. Used by
    [Context.register_new]. *)

val claim_max : t -> stamp:int -> int -> [ `Won of int | `Lost ]
(** [claim_max l ~stamp id] implements Fig. 3's [writeMarksMax] for one
    location: raise the mark to [max mark id] within the epoch, where a
    stale or free word counts as 0. [`Won d] means the mark now carries
    [id] and displaced the same-epoch task with id [d] (0 when the
    location was free, stale or already ours); [`Lost] means a
    higher-priority task holds it under this epoch. Never fails to
    complete — required for determinism (§3.2). *)

val holds : t -> stamp:int -> int -> bool
(** Does the mark equal this (stamp, task id) pair exactly? *)

val release : t -> stamp:int -> int -> unit
(** Reset the mark to 0 if held by this task id under this epoch. *)

val force_clear : t -> unit
(** Unconditionally reset; only for (re)initializing data structures. *)
