(** Abstract locations with atomic mark words.

    The Galois runtime synchronizes by associating marks with abstract
    locations (paper §2). Each lock word holds 0 when free or the id of
    the task marking it. *)

type t

val create : unit -> t
(** A fresh location with a location id unique within the current lid
    namespace (process-unique unless {!reset_lids} is used). *)

val reset_lids : ?base:int -> unit -> unit
(** Re-base the process-global lid counter (default 0) so location ids
    are reproducible from one run to the next within a process. Call
    only between runs, when no locks created under the previous
    namespace remain live — lid uniqueness holds per namespace only.
    Lids stay excluded from all schedule/trace digests regardless. *)


val create_array : int -> t array

val id : t -> int
(** Stable location id, used for access traces and cache simulation. *)

val mark : t -> int
(** Current mark value (0 = free). *)

val try_claim : t -> int -> bool
(** [try_claim l id] implements Fig. 1b's [writeMarks] for one location:
    atomically claim [l] for task [id] if free (or already held by [id]).
    False means a conflict with another task. *)

val claim_max : t -> int -> [ `Won of int | `Lost ]
(** [claim_max l id] implements Fig. 3's [writeMarksMax] for one
    location: raise the mark to [max mark id]. [`Won d] means the mark now
    carries [id] and displaced the task with id [d] (0 when the location
    was free or already ours); [`Lost] means a higher-priority task holds
    it. Never fails to complete — required for determinism (§3.2). *)

val holds : t -> int -> bool
(** Does the mark equal this task id? *)

val release : t -> int -> unit
(** Reset the mark to 0 if held by this task id. *)

val force_clear : t -> unit
(** Unconditionally reset; only for (re)initializing data structures. *)
