(* Abstract locations (\S2 of the paper).

   Every shared abstract object (graph node, triangle, ...) owns one lock
   word. The word holds 0 when free, or a packed (stamp, task id) pair:
   the low [id_bits] carry the id of the task currently marking the
   location, the bits above them the epoch stamp under which the mark was
   written. Claims are made under an epoch obtained from [new_epoch]; a
   mark whose stamp differs from the claimant's is *stale* and treated
   exactly like a free word. Staleness-by-construction is what lets the
   DIG scheduler skip the end-of-round mark-clearing pass: opening a new
   epoch invalidates every surviving mark in O(1), with no CAS per held
   lock. Both schedulers synchronize exclusively through these words,
   matching the Galois system's per-object lock design. *)

type t = { mark : int Atomic.t; lid : int }

(* 30 bits of task id leave 32 bits of epoch stamp: the packed word
   (stamp lsl 30) lor id stays below 2^62 and therefore within OCaml's
   63-bit native int on 64-bit platforms. *)
let id_bits = 30
let max_task_id = (1 lsl id_bits) - 1
let id_mask = max_task_id
let max_stamp = (1 lsl 32) - 1

let pack ~stamp task_id =
  if task_id < 1 || task_id > max_task_id then
    invalid_arg "Lock: task id out of range";
  if stamp < 1 || stamp > max_stamp then invalid_arg "Lock: stamp out of range";
  (stamp lsl id_bits) lor task_id

(* Epochs come from a process-global counter so that any two concurrent
   users (scheduler rounds, speculative runs, PBBS reservation loops)
   are automatically in distinct epochs and cannot mistake each other's
   marks for their own. *)
let next_stamp = Atomic.make 1

let new_epoch () =
  let s = Atomic.fetch_and_add next_stamp 1 in
  if s > max_stamp then invalid_arg "Lock.new_epoch: stamp space exhausted";
  s

let next_lid = Atomic.make 0

(* Location ids come from a process-global counter, so a second run in
   the same process sees different lids for the same program — which is
   why lids are excluded from every digest (Trace_digest folds ids, not
   lids). [reset_lids] re-bases the counter so a harness that fully owns
   the setup phase (tests, the bench harness, CLI drivers) can make lids
   reproducible run-to-run and fold them into debug output safely. It
   must only be called between runs, when no locks from the previous
   namespace are still live: lid uniqueness is only per-namespace. *)
let reset_lids ?(base = 0) () =
  if base < 0 then invalid_arg "Lock.reset_lids: base must be >= 0";
  Atomic.set next_lid base

let create () = { mark = Atomic.make 0; lid = Atomic.fetch_and_add next_lid 1 }

let create_array n = Array.init n (fun _ -> create ())

let id t = t.lid

let raw t = Atomic.get t.mark

(* The id field of the current mark word, whatever its epoch (0 = free).
   Stale marks still decode: callers that care about epochs use the
   stamped operations below, which never confuse epochs. *)
let mark t = Atomic.get t.mark land id_mask

(* Fig. 1b [writeMarks]: claim the location for [task_id] if it is free
   — including stale-marked, which is free by construction — or already
   ours under this epoch. Returns false on a same-epoch conflict. *)
let try_claim t ~stamp task_id =
  let packed = pack ~stamp task_id in
  let cur = Atomic.get t.mark in
  cur = packed
  || ((cur lsr id_bits) <> stamp && Atomic.compare_and_set t.mark cur packed)

(* Strict freshness claim for [Context.register_new]: the word must be
   literally 0 — never written, or explicitly cleared. A stale mark from
   an earlier epoch means some other task has seen this location, which
   is exactly what "fresh" rules out, so staleness does NOT count as
   free here. *)
let claim_fresh t ~stamp task_id =
  let packed = pack ~stamp task_id in
  Atomic.compare_and_set t.mark 0 packed

(* Fig. 3 [writeMarksMax]: deterministically raise the mark to the
   maximum of its current value and [task_id], within this epoch; a
   stale or free word loses to any claimant. Never fails to complete:
   determinism requires that every marking attempt runs even after the
   task has already lost some other location (§3.2). The result reports
   who lost the location, so the inspect phase can maintain the paper's
   commit-prevention flags (§3.3). *)
let claim_max t ~stamp task_id =
  let packed = pack ~stamp task_id in
  let rec go () =
    let cur = Atomic.get t.mark in
    let cur_id = if cur lsr id_bits = stamp then cur land id_mask else 0 in
    if cur_id = task_id then `Won 0
    else if cur_id > task_id then `Lost
    else if Atomic.compare_and_set t.mark cur packed then `Won cur_id
    else go ()
  in
  go ()

let holds t ~stamp task_id = Atomic.get t.mark = pack ~stamp task_id

(* Release the location if we hold it under this epoch. Used by
   non-deterministic rollback/commit and by the PBBS reservation loops;
   the DIG scheduler no longer releases anything — its next round opens
   a new epoch instead. *)
let release t ~stamp task_id =
  let packed = pack ~stamp task_id in
  if Atomic.get t.mark = packed then
    ignore (Atomic.compare_and_set t.mark packed 0)

let force_clear t = Atomic.set t.mark 0
