(* Abstract locations (\S2 of the paper).

   Every shared abstract object (graph node, triangle, ...) owns one lock
   word. The word holds 0 when free, or the id of the task currently
   marking the location. Both schedulers synchronize exclusively through
   these words, matching the Galois system's per-object lock design. *)

type t = { mark : int Atomic.t; lid : int }

let next_lid = Atomic.make 0

(* Location ids come from a process-global counter, so a second run in
   the same process sees different lids for the same program — which is
   why lids are excluded from every digest (Trace_digest folds ids, not
   lids). [reset_lids] re-bases the counter so a harness that fully owns
   the setup phase (tests, the bench harness, CLI drivers) can make lids
   reproducible run-to-run and fold them into debug output safely. It
   must only be called between runs, when no locks from the previous
   namespace are still live: lid uniqueness is only per-namespace. *)
let reset_lids ?(base = 0) () =
  if base < 0 then invalid_arg "Lock.reset_lids: base must be >= 0";
  Atomic.set next_lid base

let create () = { mark = Atomic.make 0; lid = Atomic.fetch_and_add next_lid 1 }

let create_array n = Array.init n (fun _ -> create ())

let id t = t.lid

let mark t = Atomic.get t.mark

(* Fig. 1b [writeMarks]: claim the location for [task_id] if it is free
   or already ours. Returns false on conflict. *)
let try_claim t task_id =
  let cur = Atomic.get t.mark in
  cur = task_id || (cur = 0 && Atomic.compare_and_set t.mark 0 task_id)

(* Fig. 3 [writeMarksMax]: deterministically raise the mark to the
   maximum of its current value and [task_id]. Never fails to complete:
   determinism requires that every marking attempt runs even after the
   task has already lost some other location (§3.2). The result reports
   who lost the location, so the inspect phase can maintain the paper's
   commit-prevention flags (§3.3). *)
let claim_max t task_id =
  let rec go () =
    let cur = Atomic.get t.mark in
    if cur = task_id then `Won 0
    else if cur > task_id then `Lost
    else if Atomic.compare_and_set t.mark cur task_id then `Won cur
    else go ()
  in
  go ()

let holds t task_id = Atomic.get t.mark = task_id

(* Release the location if we hold it. Used both by non-deterministic
   rollback/commit and by end-of-round mark clearing. *)
let release t task_id =
  let cur = Atomic.get t.mark in
  if cur = task_id then ignore (Atomic.compare_and_set t.mark task_id 0)

let force_clear t = Atomic.set t.mark 0
