(* Incremental FNV-1a (64-bit) digests of execution traces.

   The deterministic scheduler folds every round's shape (window size,
   commit count, committed task ids) into one 64-bit word as it runs, so
   two executions can be compared for schedule equality in O(1) — the
   determinism audit (lib/detcheck) sweeps whole configuration lattices
   without retaining full schedules.

   FNV-1a is used byte-wise over the 8 little-endian bytes of each folded
   word: tiny, portable, fixed for all time (a digest printed today must
   compare equal to one printed on any other machine). Collisions are
   possible in principle (2^-64 per comparison) and harmless here: a
   collision can only mask a divergence, never invent one, and any real
   nondeterminism differs in many folded words at once. *)

type t = int64

(* 0 is reserved as "no trace was kept". A real trace digest starts from
   the FNV offset basis and is never 0 in practice (and a 2^-64 accident
   would merely report one absent trace). *)
let absent = 0L

let seed = 0xCBF29CE484222325L (* FNV-1a 64-bit offset basis *)

let prime = 0x100000001B3L

let is_absent t = Int64.equal t absent

let fold_byte t b =
  Int64.mul (Int64.logxor t (Int64.of_int (b land 0xff))) prime

let fold_int64 t x =
  let t = ref t in
  for i = 0 to 7 do
    t := fold_byte !t (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !t

let fold_int t x = fold_int64 t (Int64.of_int x)

let fold_bool t b = fold_byte t (if b then 1 else 0)

let fold_float t f = fold_int64 t (Int64.bits_of_float f)

let fold_string t s =
  let t = ref t in
  String.iter (fun c -> t := fold_byte !t (Char.code c)) s;
  !t

(* [combine] treats [absent] as neutral so that digest-carrying records
   keep a monoid structure (Stats.add / Stats.zero). *)
let combine a b =
  if is_absent a then b else if is_absent b then a else fold_int64 a b

let equal = Int64.equal

let to_hex t = Printf.sprintf "%016Lx" t

(* Inverse of the printed forms: 16 lowercase hex digits, or "-" for
   [absent] (matching [pp]). [Int64.of_string "0x..."] accepts the full
   unsigned range, so digests with the top bit set round-trip. *)
let of_hex s =
  if String.equal s "-" then Some absent
  else if
    String.length s = 16
    && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
  then Int64.of_string_opt ("0x" ^ s)
  else None

let pp ppf t = if is_absent t then Fmt.string ppf "-" else Fmt.string ppf (to_hex t)
