(* Thin compatibility facade over [Run], the builder-style entry point.

   [for_each] predates the builder and remains the convenient call for
   the common cases; it simply assembles a [Run.t] and executes it. *)

type ('item, 'state) operator = ('item, 'state) Run.operator

type report = Run.report = {
  stats : Stats.t;
  schedule : Schedule.t option;
  trace : Obs.stamped list option;
  audit : Audit.report option;
}

let for_each ?(policy = Policy.Serial) ?pool ?(record = false) ?static_id ?sink ~operator
    items =
  Run.make ~operator items
  |> Run.policy policy
  |> Run.opt Run.pool pool
  |> (if record then Run.record else Fun.id)
  |> Run.opt Run.static_id static_id
  |> Run.opt Run.sink sink
  |> Run.exec
