(* Execution statistics.

   Workers own private counter records (no sharing, no false-sharing
   hazards beyond allocation placement); the runtime merges them after
   the parallel phase. These counters feed the paper's Figures 4 and 5
   (task rates, abort ratios, rounds, atomic update rates). *)

type worker = {
  mutable committed : int;  (* tasks that executed to completion *)
  mutable aborted : int;  (* conflict aborts / failed round selections *)
  mutable acquires : int;  (* neighborhood mark operations *)
  mutable atomic_updates : int;  (* CAS-class operations on shared words *)
  mutable work : int;  (* abstract work units reported by operators *)
  mutable pushes : int;  (* tasks created *)
  mutable inspections : int;  (* deterministic-scheduler inspect executions *)
  mutable chunks : int;  (* chunk grabs in dynamic parallel iteration *)
  mutable spins : int;  (* pool wakeups served by the spin fast path *)
  mutable parks : int;  (* pool waits that fell back to the condvar *)
}

let make_worker () =
  {
    committed = 0;
    aborted = 0;
    acquires = 0;
    atomic_updates = 0;
    work = 0;
    pushes = 0;
    inspections = 0;
    chunks = 0;
    spins = 0;
    parks = 0;
  }

(* Wall-clock breakdown of a run across scheduler phases. For the DIG
   scheduler [inspect_s]/[select_s] accumulate the two parallel phases
   and [other_s] is everything else (generation sort, sequential round
   glue, window adaptation); serial and speculative runs book all their
   time under [select_s] (execution). The three fields always sum to
   [time_s]. *)
type phase_times = { inspect_s : float; select_s : float; other_s : float }

let no_phases = { inspect_s = 0.0; select_s = 0.0; other_s = 0.0 }

let breakdown ~inspect_s ~select_s ~time_s =
  let inspect_s = Float.max 0.0 inspect_s
  and select_s = Float.max 0.0 select_s in
  { inspect_s; select_s; other_s = Float.max 0.0 (time_s -. inspect_s -. select_s) }

let phase_total p = p.inspect_s +. p.select_s +. p.other_s

type t = {
  threads : int;
  commits : int;
  aborts : int;
  acquired : int;
  atomics : int;
  work_units : int;
  created : int;
  inspected : int;
  spins : int;  (* pool-synchronization wakeups served by spinning *)
  parks : int;  (* pool-synchronization waits that parked on a condvar *)
  rounds : int;  (* deterministic scheduler rounds (0 for nondet/serial) *)
  generations : int;  (* sort generations of the deterministic scheduler *)
  buckets : int;
      (* soft-priority buckets opened by the deterministic scheduler
         (0 when prio=off or for nondet/serial) *)
  digest : Trace_digest.t;
      (* Round-trace digest of the deterministic scheduler
         ([Trace_digest.absent] for nondet/serial): an FNV-1a fold of
         every round's window size, commit count and committed task ids.
         Two deterministic runs took the same schedule iff their digests
         agree — the O(1) comparison the determinism audit relies on. *)
  time_s : float;  (* wall-clock of the parallel section *)
  phases : phase_times;  (* where [time_s] went, per scheduler phase *)
}

let merge ?(digest = Trace_digest.absent) ?phases ?(buckets = 0) ~threads ~rounds
    ~generations ~time_s workers =
  let commits = ref 0
  and aborts = ref 0
  and acquired = ref 0
  and atomics = ref 0
  and work_units = ref 0
  and created = ref 0
  and inspected = ref 0
  and spins = ref 0
  and parks = ref 0 in
  Array.iter
    (fun w ->
      commits := !commits + w.committed;
      aborts := !aborts + w.aborted;
      acquired := !acquired + w.acquires;
      atomics := !atomics + w.atomic_updates;
      work_units := !work_units + w.work;
      created := !created + w.pushes;
      inspected := !inspected + w.inspections;
      spins := !spins + w.spins;
      parks := !parks + w.parks)
    workers;
  {
    threads;
    commits = !commits;
    aborts = !aborts;
    acquired = !acquired;
    atomics = !atomics;
    work_units = !work_units;
    created = !created;
    inspected = !inspected;
    spins = !spins;
    parks = !parks;
    rounds;
    generations;
    buckets;
    digest;
    time_s;
    phases =
      (match phases with
      | Some p -> p
      | None -> breakdown ~inspect_s:0.0 ~select_s:0.0 ~time_s);
  }

(* Combine reports of consecutive executions (e.g. the epochs of
   preflow-push) into one summary. *)
let add a b =
  {
    threads = max a.threads b.threads;
    commits = a.commits + b.commits;
    aborts = a.aborts + b.aborts;
    acquired = a.acquired + b.acquired;
    atomics = a.atomics + b.atomics;
    work_units = a.work_units + b.work_units;
    created = a.created + b.created;
    inspected = a.inspected + b.inspected;
    spins = a.spins + b.spins;
    parks = a.parks + b.parks;
    rounds = a.rounds + b.rounds;
    generations = a.generations + b.generations;
    buckets = a.buckets + b.buckets;
    digest = Trace_digest.combine a.digest b.digest;
    time_s = a.time_s +. b.time_s;
    phases =
      {
        inspect_s = a.phases.inspect_s +. b.phases.inspect_s;
        select_s = a.phases.select_s +. b.phases.select_s;
        other_s = a.phases.other_s +. b.phases.other_s;
      };
  }

let zero threads =
  {
    threads;
    commits = 0;
    aborts = 0;
    acquired = 0;
    atomics = 0;
    work_units = 0;
    created = 0;
    inspected = 0;
    spins = 0;
    parks = 0;
    rounds = 0;
    generations = 0;
    buckets = 0;
    digest = Trace_digest.absent;
    time_s = 0.0;
    phases = no_phases;
  }

let abort_ratio t =
  let attempts = t.commits + t.aborts in
  if attempts = 0 then 0.0 else float_of_int t.aborts /. float_of_int attempts

let commits_per_us t = if t.time_s <= 0.0 then 0.0 else float_of_int t.commits /. (t.time_s *. 1e6)

let atomics_per_us t = if t.time_s <= 0.0 then 0.0 else float_of_int t.atomics /. (t.time_s *. 1e6)

let pp_phases ppf p =
  Fmt.pf ppf "phases inspect=%.4fs select=%.4fs other=%.4fs" p.inspect_s
    p.select_s p.other_s

(* The digest line only means something for deterministic runs; for
   serial/nondet ([Trace_digest.absent]) show the phase breakdown
   without a misleading "digest=-". *)
let pp_digest ppf d =
  if not (Trace_digest.is_absent d) then Fmt.pf ppf " digest=%a" Trace_digest.pp d

(* Bucket count only appears under soft-priority scheduling; suppress
   the column for the (common) unordered runs. *)
let pp_buckets ppf b = if b > 0 then Fmt.pf ppf " buckets=%d" b

let pp ppf t =
  Fmt.pf ppf
    "@[<v>threads=%d commits=%d aborts=%d (ratio %.4f)@ acquires=%d atomics=%d work=%d created=%d@ \
     inspections=%d rounds=%d generations=%d%a spins=%d parks=%d%a time=%.4fs@ %a@]"
    t.threads t.commits t.aborts (abort_ratio t) t.acquired t.atomics t.work_units t.created
    t.inspected t.rounds t.generations pp_buckets t.buckets t.spins t.parks pp_digest
    t.digest t.time_s pp_phases t.phases
