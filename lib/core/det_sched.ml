(* Deterministic interference-graph (DIG) scheduling — Fig. 2 and Fig. 3
   of the paper, with all three §3.3 optimizations.

   Execution proceeds in generations (one per deterministic sort of the
   [todo] set) and rounds within a generation. Each round:

     inspect        run a deterministically chosen window of tasks up to
                    their failsafe points, marking neighborhoods with
                    [writeMarksMax]. The final mark of a location is the
                    max id among touching tasks regardless of timing, so
                    the implicitly built interference graph — and the
                    selected independent set — are deterministic.

     selectAndExec  a task commits iff its defeat flag is clear, which is
                    provably equivalent to "all its marks still carry its
                    id" (the flag is set either by the task that displaced
                    our mark, or by ourselves when we observe a higher
                    mark; marks only grow within a round). Committed
                    tasks run their write phase; failed tasks keep their
                    place ahead of untried tasks, preserving id order.

   Determinism argument, in code terms: the window contents are a prefix
   of a deterministically ordered sequence; the marks after inspect are a
   max-fold over a deterministic set; the selected set is therefore
   unique; committed tasks have pairwise-disjoint neighborhoods, so their
   write phases commute; and children ids come from a lexicographic
   (parent id, birth index) sort, independent of which worker ran what.
   The window size for the next round depends only on the (deterministic)
   commit count — the paper's parameterless adaptive windowing.

   Steady-state rounds are allocation-free and release-free: the pending
   set is an in-place [Pending] deque over the generation array (window =
   index range, descending compaction), the defeat table is a flat array
   indexed by [id - generation base] (generation ids are dense) with
   round stamps instead of per-round clearing, tasks reuse their
   neighborhood / child arrays across retries via the [Context] scratch
   buffers, children accumulate in flat per-worker [Child_buffer]s
   instead of consed lists, and every round claims marks under a fresh
   [Lock] epoch — marks surviving the previous round are stale by
   construction, so the former end-of-select [Lock.release] pass (one CAS
   per held lock per task per round) is gone entirely. The schedule
   itself is bit-for-bit the one the original list-based implementation
   produced — test/test_digest_fixture.ml pins it. *)

type ('item, 'state) task = {
  item : 'item;
  id : int;
  (* Defeat flag (§3.3). Written concurrently during inspect, but only
     ever from [true] to [false] (an idempotent immediate), so the plain
     racy write is benign; the pool barrier publishes it before the
     commit phase reads it. *)
  mutable alive : bool;
  (* First [n_locks] entries are this round's neighborhood, in
     acquisition order; capacity is reused across retries. *)
  mutable neighborhood : Lock.t array;
  mutable n_locks : int;
  mutable saved : 'state option;
  mutable pure : bool;  (* inspect finished without reaching a failsafe *)
  mutable pure_children : 'item array;  (* first [n_pure_children], push order *)
  mutable n_pure_children : int;
  mutable task_work : int;  (* inspect-phase (prefix) work units *)
  mutable commit_work : int;  (* commit-phase work units *)
}

let make_task id item =
  {
    item;
    id;
    alive = true;
    neighborhood = [||];
    n_locks = 0;
    saved = None;
    pure = false;
    pure_children = [||];
    n_pure_children = 0;
    task_work = 0;
    commit_work = 0;
  }

(* §3.3 locality spread: deal a sequence into [spread] strided piles so
   that tasks adjacent in iteration order (likely to share neighborhoods)
   land in different rounds. A fixed constant permutation — deterministic
   and machine-independent. *)
let spread_permute spread arr =
  let n = Array.length arr in
  if spread <= 1 || n <= spread then arr
  else begin
    let out = Array.make n arr.(0) in
    let idx = ref 0 in
    for pile = 0 to spread - 1 do
      let i = ref pile in
      while !i < n do
        out.(!idx) <- arr.(!i);
        incr idx;
        i := !i + spread
      done
    done;
    out
  end

(* The parameterless window controller (§3.1): growth on a good round,
   proportional shrink (with a floor) on a bad one. Exposed for the
   property tests; must stay bit-identical to the original inline
   computation — the adapted sizes feed the round-trace digest. *)
let adapt_window ~target_ratio ~window ~committed ~w_use =
  let ratio = float_of_int committed /. float_of_int w_use in
  if ratio >= target_ratio then min (window * 2) (1 lsl 22)
  else max 32 (int_of_float (float_of_int window *. ratio /. target_ratio) + 1)

(* Deterministic id assignment (§3.2). Children are sorted by
   (parent id, birth index) — unique per child, so the order is total
   and independent of which worker buffered what. Ids are the sorted
   ranks offset by a counter that grows monotonically across
   generations. With [static_id], ids come from the application's fixed
   task universe instead (§3.3, third optimization) and duplicates
   collapse to a single task. Either way the assigned ids are dense in
   [base, base + count) — the defeat table below indexes on exactly
   that.

   Returns tasks in id order; the caller applies the spread permutation
   (unordered generations) or the bucket layout (soft-priority
   generations) on top. *)
let form_generation ~static_id ~next_id (todo : 'item Child_buffer.t) =
  let n = Child_buffer.length todo in
  if n = 0 then [||]
  else
    match static_id with
    | Some key_of ->
        let arr =
          Array.init n (fun i ->
              let item = Child_buffer.item todo i in
              (key_of item, item))
        in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        let tasks = ref [] and count = ref 0 in
        Array.iteri
          (fun i (key, item) ->
            let duplicate = i > 0 && fst arr.(i - 1) = key in
            if not duplicate then begin
              incr count;
              tasks := item :: !tasks
            end)
          arr;
        let base = !next_id in
        next_id := base + !count;
        let out = Array.of_list (List.rev !tasks) in
        Array.mapi (fun i item -> make_task (base + i) item) out
    | None ->
        let idx = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            let p1 = Child_buffer.parent todo i and p2 = Child_buffer.parent todo j in
            if p1 <> p2 then compare (p1 : int) p2
            else
              compare
                (Child_buffer.birth todo i : int)
                (Child_buffer.birth todo j))
          idx;
        let base = !next_id in
        next_id := base + n;
        Array.mapi (fun r i -> make_task (base + r) (Child_buffer.item todo i)) idx

(* Delta-stepping bucket index with floor semantics, so negative
   priorities order correctly below zero instead of folding onto
   bucket 0. *)
let bucket_of ~delta p = if p >= 0 then p / delta else -(((-p) + delta - 1) / delta)

(* Per-generation automatic delta: spread the priority span over ~64
   buckets. A pure function of the generation's priorities, so [auto]
   is as deterministic as an explicit delta. *)
let auto_delta prios =
  let pmin = ref prios.(0) and pmax = ref prios.(0) in
  Array.iter
    (fun p ->
      if p < !pmin then pmin := p;
      if p > !pmax then pmax := p)
    prios;
  max 1 (((!pmax - !pmin) / 64) + 1)

(* Lay an id-ordered generation out as contiguous delta-stepping bucket
   runs: stable-sort by bucket (ties by position, i.e. id), group equal
   buckets, and spread-permute each run on its own — windows never
   straddle a bucket, so the permutation must not either. Returns the
   reordered tasks, the [(bucket, size)] run table and the delta used. *)
let bucketize ~mode ~spread ~priority generation =
  let n = Array.length generation in
  let prios = Array.map (fun t -> priority t.item) generation in
  let delta =
    match mode with
    | Policy.Prio_delta d -> d
    | Policy.Prio_auto -> auto_delta prios
    | Policy.Prio_off -> invalid_arg "Det_sched.bucketize: prio=off"
  in
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      let bi = bucket_of ~delta prios.(i) and bj = bucket_of ~delta prios.(j) in
      if bi <> bj then compare bi bj else compare i j)
    idx;
  let out = Array.map (fun i -> generation.(i)) idx in
  let runs = ref [] in
  let start = ref 0 in
  for i = 1 to n do
    if i = n || bucket_of ~delta prios.(idx.(i)) <> bucket_of ~delta prios.(idx.(!start))
    then begin
      let len = i - !start in
      runs := (bucket_of ~delta prios.(idx.(!start)), len) :: !runs;
      Array.blit (spread_permute spread (Array.sub out !start len)) 0 out !start len;
      start := i
    end
  done;
  (out, Array.of_list (List.rev !runs), delta)

(* Guided chunk size for dynamic parallel iteration: aim for several
   grabs per worker (cheap load balancing against uneven task costs)
   without letting tiny windows degenerate into per-index contention on
   the shared counter. *)
let chunk_for ~threads n = max 4 (min 1024 (n / (threads * 8)))

(* Chunked dynamic parallel iteration over [0, n). Assignment of indices
   to workers is timing-dependent; nothing the workers compute depends on
   it. Each grab bumps the grabbing worker's [chunks] counter. *)
let par_iter pool ~threads ~workers n f =
  let counter = Atomic.make 0 in
  let chunk = chunk_for ~threads n in
  Parallel.Domain_pool.run pool (fun w ->
      if w >= threads then ()
      else
      let continue_ = ref true in
      while !continue_ do
        let start = Atomic.fetch_and_add counter chunk in
        if start >= n then continue_ := false
        else begin
          workers.(w).Stats.chunks <- workers.(w).Stats.chunks + 1;
          for i = start to min (start + chunk) n - 1 do
            f w i
          done
        end
      done)

(* Round-boundary scheduler state (checkpoint/replay). Everything the
   main loop needs to restart at the exact round the boundary was taken
   after: the monotonic counters, the adaptive window, the digest
   prefix, the pending deque contents (in deque order — the spread
   permutation means this is *not* id order) and the child buffer of
   the current generation (children accumulate across rounds, so a
   mid-generation boundary must carry them). The six [b_*] counters are
   the deterministic subset of the worker counters, carried
   cumulatively; timing-dependent counters (atomics, chunks, spins,
   parks) and wall-clock restart from zero on resume. *)
type 'item boundary = {
  b_rounds : int;
  b_generations : int;
  b_next_id : int;
  b_gen_base : int;
  b_window : int;  (* the *next* round's window (already adapted) *)
  b_delta : int;
      (* bucket width of the current soft-priority generation; 0 when
         the generation is unordered (prio=off) or fully drained. Resume
         recomputes each pending task's bucket from its priority and
         this delta, so the run table does not need to be serialized. *)
  b_digest : Trace_digest.t;
  b_pending_ids : int array;  (* task ids, in pending-deque order *)
  b_pending_items : 'item array;
  b_todo_parents : int array;
  b_todo_births : int array;
  b_todo_items : 'item array;
  b_commits : int;
  b_aborts : int;
  b_acquired : int;
  b_work : int;
  b_created : int;
  b_inspected : int;
}

let run ?(record = false) ?(sink = Obs.null) ?audit ?checkpoint ?resume ?stop_after
    ?threads ?priority ~pool ~options ~static_id ~operator items =
  let { Policy.target_ratio; initial_window; spread; continuation; validate;
        priority = prio_mode } =
    options
  in
  (* Soft-priority mode without an application priority function still
     works: every task lands in bucket 0 (a single run per generation). *)
  let prio_of = match priority with Some f -> f | None -> fun _ -> 0 in
  (match checkpoint with
  | Some (every, _) when every < 1 ->
      invalid_arg "Det_sched.run: checkpoint cadence must be >= 1"
  | _ -> ());
  (match stop_after with
  | Some r when r < 1 -> invalid_arg "Det_sched.run: stop_after round must be >= 1"
  | _ -> ());
  (* All events are emitted from the sequential glue between parallel
     phases, so sinks never see concurrent calls. Every event field
     except the [Phase_time]/[Chunk_sized]/[Worker_counters] ones is
     deterministic — detcheck compares the rendered deterministic stream
     byte-for-byte across thread counts. *)
  let tracing = sink != Obs.null in
  (* detlint: allow wall-clock — Obs.at_s is an absolute wall-clock timestamp; durations use Clock *)
  let emit event = sink.Obs.emit { Obs.at_s = Unix.gettimeofday (); event } in
  let inspect_s = ref 0.0 and select_s = ref 0.0 in
  (* The policy's thread count rules; extra pool workers stay idle. *)
  let threads =
    match threads with
    | None -> Parallel.Domain_pool.size pool
    | Some t -> min t (Parallel.Domain_pool.size pool)
  in
  let workers = Array.init threads (fun _ -> Stats.make_worker ()) in
  let contexts =
    Array.init threads (fun w ->
        let ctx = Context.create () in
        Context.set_stats ctx workers.(w);
        (match audit with
        | None -> ()
        | Some a -> Context.set_tape ctx (Some (Audit.tape a w)));
        ctx)
  in
  let sync0 = Parallel.Domain_pool.sync_counters pool in
  let rounds = ref 0 and generations = ref 0 in
  let next_id = ref 1 in
  (* Defeat table: generation ids are dense in [gen_base, gen_base +
     count), so [id - gen_base] indexes a flat array. Slots are stamped
     with the round that registered them instead of being cleared —
     [rounds] only grows, so a stale stamp can never match. Reads during
     inspect race only with other reads; registration happens in the
     sequential window setup. *)
  let gen_base = ref 1 in
  let slot_task = ref ([||] : ('item, 'state) task array) in
  let slot_round = ref ([||] : int array) in
  let defeat id =
    let s = id - !gen_base in
    if s >= 0 && s < Array.length !slot_round && !slot_round.(s) = !rounds then
      !slot_task.(s).alive <- false
    else
      (* Each round marks under its own fresh lock epoch, so a displaced
         id must belong to the current window. *)
      assert false
  in
  let round_records = ref [] in
  (* Round-trace digest: every quantity folded below is deterministic by
     the argument in the header comment, so the digest is a pure function
     of the input and the scheduling options — any dependence on thread
     count or timing shows up as a digest mismatch. Task ids (not items)
     are folded: ids already encode the deterministic creation order.
     Lock/location ids are deliberately excluded — they come from a
     process-global counter and would differ between two runs in the same
     process. *)
  let digest = ref Trace_digest.seed in
  (* Per-worker flat buffers of (parent id, birth index, item) triples,
     drained into [todo] by the sequential glue each round. *)
  let child_buffers = Array.init threads (fun _ -> Child_buffer.create ()) in
  let todo = Child_buffer.create () in
  let pending = Pending.create () in
  let window = ref 0 in
  (* Bucket width of the current generation (0 = unordered) and the
     number of soft-priority runs opened so far. Opening a run folds its
     bucket index and size into the digest — the bucket layout is a pure
     function of (ids, priorities, delta), so this keeps the digest a
     schedule commitment under [prio] too. *)
  let cur_delta = ref 0 in
  let buckets_opened = ref 0 in
  let open_run () =
    match Pending.current_run pending with
    | None -> ()
    | Some (bucket, size) ->
        incr buckets_opened;
        digest := Trace_digest.fold_int !digest bucket;
        digest := Trace_digest.fold_int !digest size;
        if tracing then
          emit (Obs.Bucket_opened { generation = !generations; bucket; size })
  in
  (* Cumulative deterministic counters carried over from the run a
     resume boundary was captured in. *)
  let carry_commits = ref 0
  and carry_aborts = ref 0
  and carry_acquired = ref 0
  and carry_work = ref 0
  and carry_created = ref 0
  and carry_inspected = ref 0 in
  (match resume with
  | None -> Array.iteri (fun i item -> Child_buffer.push todo ~parent:0 ~birth:i item) items
  | Some b ->
      if b.b_gen_base > b.b_next_id || b.b_rounds < 0 || b.b_window < 0 then
        invalid_arg "Det_sched.run: inconsistent resume boundary";
      if Array.length b.b_pending_ids <> Array.length b.b_pending_items then
        invalid_arg "Det_sched.run: resume boundary id/item arrays disagree";
      rounds := b.b_rounds;
      generations := b.b_generations;
      next_id := b.b_next_id;
      gen_base := b.b_gen_base;
      window := b.b_window;
      digest := b.b_digest;
      carry_commits := b.b_commits;
      carry_aborts := b.b_aborts;
      carry_acquired := b.b_acquired;
      carry_work := b.b_work;
      carry_created := b.b_created;
      carry_inspected := b.b_inspected;
      Array.iteri
        (fun i item ->
          Child_buffer.push todo ~parent:b.b_todo_parents.(i) ~birth:b.b_todo_births.(i)
            item)
        b.b_todo_items;
      let n = Array.length b.b_pending_items in
      if n > 0 then begin
        Array.iter
          (fun id ->
            if id < !gen_base || id >= !next_id then
              invalid_arg "Det_sched.run: resume boundary pending id out of generation")
          b.b_pending_ids;
        (* Rebuild the current generation's pending suffix in captured
           deque order (spread-permuted, not id order). *)
        let generation =
          Array.init n (fun i -> make_task b.b_pending_ids.(i) b.b_pending_items.(i))
        in
        if b.b_delta > 0 then begin
          (* Soft-priority generation: the captured deque order is
             run-contiguous (windows never straddle runs), so grouping
             consecutive equal buckets reconstructs the run table. The
             current run was already opened (and digest-folded) before
             the boundary, so it is not re-opened here. *)
          let bucket i = bucket_of ~delta:b.b_delta (prio_of generation.(i).item) in
          let runs = ref [] in
          let start = ref 0 in
          for i = 1 to n do
            if i = n || bucket i <> bucket !start then begin
              runs := (bucket !start, i - !start) :: !runs;
              start := i
            end
          done;
          Pending.load_runs pending generation (Array.of_list (List.rev !runs));
          cur_delta := b.b_delta
        end
        else Pending.load pending generation;
        let need = !next_id - !gen_base in
        if need > Array.length !slot_round then begin
          slot_task := Array.make need generation.(0);
          slot_round := Array.make need 0
        end
      end;
      if tracing then
        emit (Obs.Resumed { round = b.b_rounds; digest = Trace_digest.to_hex b.b_digest }));
  (* Capture the state a resume needs to replay round [!rounds + 1]
     onward. Called from the sequential glue only, after compaction and
     window adaptation — [!window] is the next round's window. *)
  let capture () =
    let np = Pending.length pending in
    let nt = Child_buffer.length todo in
    let sum carry f = Array.fold_left (fun a w -> a + f w) carry workers in
    {
      b_rounds = !rounds;
      b_generations = !generations;
      b_next_id = !next_id;
      b_gen_base = !gen_base;
      b_window = !window;
      b_delta = (if np = 0 then 0 else !cur_delta);
      b_digest = !digest;
      b_pending_ids = Array.init np (fun i -> (Pending.get pending i).id);
      b_pending_items = Array.init np (fun i -> (Pending.get pending i).item);
      b_todo_parents = Array.init nt (Child_buffer.parent todo);
      b_todo_births = Array.init nt (Child_buffer.birth todo);
      b_todo_items = Array.init nt (Child_buffer.item todo);
      b_commits = sum !carry_commits (fun w -> w.Stats.committed);
      b_aborts = sum !carry_aborts (fun w -> w.Stats.aborted);
      b_acquired = sum !carry_acquired (fun w -> w.Stats.acquires);
      b_work = sum !carry_work (fun w -> w.Stats.work);
      b_created = sum !carry_created (fun w -> w.Stats.pushes);
      b_inspected = sum !carry_inspected (fun w -> w.Stats.inspections);
    }
  in
  let stop = ref false in
  let t0 = Clock.now_s () in
  (* One iteration per round. A generation boundary is just a round
     whose pending deque starts empty: the prologue then forms the next
     generation, exactly as the former nested loops did — the digest
     fold and event sequence of an uninterrupted run are bit-identical
     (test/test_digest_fixture.ml pins them). The flat shape is what
     lets a resume re-enter mid-generation. *)
  while (not !stop) && (Pending.length pending > 0 || Child_buffer.length todo > 0) do
    if Pending.length pending = 0 then begin
      incr generations;
      let generation = form_generation ~static_id ~next_id todo in
      Child_buffer.clear todo;
      let gen_len = Array.length generation in
      gen_base := !next_id - gen_len;
      if gen_len > Array.length !slot_round && gen_len > 0 then begin
        slot_task := Array.make gen_len generation.(0);
        slot_round := Array.make gen_len 0
      end;
      (match prio_mode with
      | Policy.Prio_off ->
          cur_delta := 0;
          Pending.load pending (spread_permute spread generation)
      | _ when gen_len = 0 ->
          cur_delta := 0;
          Pending.load pending generation
      | mode ->
          let laid_out, runs, delta = bucketize ~mode ~spread ~priority:prio_of generation in
          cur_delta := delta;
          Pending.load_runs pending laid_out runs);
      digest := Trace_digest.fold_int !digest gen_len;
      if !cur_delta > 0 then digest := Trace_digest.fold_int !digest !cur_delta;
      if tracing then
        emit (Obs.Generation_begin { generation = !generations; tasks = gen_len });
      (* The first run of a soft-priority generation opens (and is
         digest-folded) as part of generation formation; later runs open
         as their predecessors drain. *)
      open_run ();
      if !window = 0 then
        window :=
          (match initial_window with Some w -> max 1 w | None -> max 32 ((gen_len + 7) / 8))
    end;
    incr rounds;
    (* A fresh lock epoch per round: every mark the previous round
       left behind is stale — free by construction — for this round's
       claims, which is what lets selectAndExec skip releasing. *)
    let stamp = Lock.new_epoch () in
    (* --- calculateWindow / getWindowOfTasks ---------------------
       Under soft-priority scheduling the window is additionally capped
       at the current bucket run: rounds never mix buckets. *)
    let w_use = min !window (Pending.window_avail pending) in
    for i = 0 to w_use - 1 do
      let t = Pending.get pending i in
      t.alive <- true;
      t.pure <- false;
      t.n_pure_children <- 0;
      t.saved <- None;
      t.commit_work <- 0;
      let s = t.id - !gen_base in
      !slot_task.(s) <- t;
      !slot_round.(s) <- !rounds
    done;
    if tracing then begin
      emit (Obs.Round_begin { round = !rounds; window = w_use });
      emit
        (Obs.Chunk_sized
           { round = !rounds; tasks = w_use; chunk = chunk_for ~threads w_use })
    end;
    (* --- inspect ------------------------------------------------- *)
    let t_inspect = Clock.now_s () in
    par_iter pool ~threads ~workers w_use (fun w i ->
        let ctx = contexts.(w) in
        let t = Pending.get pending i in
        Context.reset ctx ~phase:Inspect ~task_id:t.id ~stamp ~saved:None;
        Context.set_on_defeat ctx defeat;
        workers.(w).inspections <- workers.(w).inspections + 1;
        (match operator ctx t.item with
        | () ->
            (* No failsafe point reached: a read-only task. Its whole
               execution — including pushes — happened now; commit just
               publishes the children if selected. *)
            t.pure <- true;
            t.pure_children <- Context.pushed_into ctx t.pure_children;
            t.n_pure_children <- Context.pushed_count ctx
        | exception Context.Failsafe_reached -> ());
        t.neighborhood <- Context.neighborhood_into ctx t.neighborhood;
        t.n_locks <- Context.neighborhood_count ctx;
        t.task_work <- Context.work_units ctx;
        if continuation then t.saved <- Context.saved ctx);
    let dt_inspect = Clock.elapsed_s t_inspect in
    inspect_s := !inspect_s +. dt_inspect;
    if tracing then begin
      let marked = ref 0 and saved = ref 0 in
      for i = 0 to w_use - 1 do
        let t = Pending.get pending i in
        marked := !marked + t.n_locks;
        if Option.is_some t.saved then incr saved
      done;
      emit
        (Obs.Inspect_done
           { round = !rounds; marked = !marked; saved_continuations = !saved });
      emit
        (Obs.Phase_time { round = !rounds; phase = Obs.Inspect; dt_s = dt_inspect })
    end;
    (* --- selectAndExec --------------------------------------------
       Surviving marks are NOT released: the next round's fresh epoch
       makes them stale wholesale, deleting one CAS per held lock per
       task per round from the former mark-clearing pass. *)
    let t_select = Clock.now_s () in
    par_iter pool ~threads ~workers w_use (fun w i ->
        let stats = workers.(w) in
        let ctx = contexts.(w) in
        let buf = child_buffers.(w) in
        let t = Pending.get pending i in
        let selected = t.alive in
        if validate then begin
          let marks_ok = ref true in
          for k = 0 to t.n_locks - 1 do
            if not (Lock.holds t.neighborhood.(k) ~stamp t.id) then
              marks_ok := false
          done;
          if selected <> !marks_ok then
            failwith "Det_sched: defeat flags disagree with neighborhood marks"
        end;
        if selected then begin
          if t.pure then begin
            for k = 0 to t.n_pure_children - 1 do
              Child_buffer.push buf ~parent:t.id ~birth:k t.pure_children.(k)
            done;
            stats.pushes <- stats.pushes + t.n_pure_children;
            stats.work <- stats.work + t.task_work
          end
          else begin
            Context.reset ctx ~phase:Commit ~task_id:t.id ~stamp ~saved:t.saved;
            operator ctx t.item;
            stats.work <- stats.work + Context.work_units ctx;
            t.commit_work <- Context.work_units ctx;
            let n = Context.pushed_count ctx in
            for k = 0 to n - 1 do
              Child_buffer.push buf ~parent:t.id ~birth:k (Context.pushed_get ctx k)
            done;
            stats.pushes <- stats.pushes + n
          end;
          stats.committed <- stats.committed + 1
        end
        else stats.aborted <- stats.aborted + 1);
    let dt_select = Clock.elapsed_s t_select in
    select_s := !select_s +. dt_select;
    (* --- sequential glue between rounds ---------------------------
       [alive] still says which tasks were selected: defeat flags only
       change during inspect. *)
    let n_committed = ref 0 in
    digest := Trace_digest.fold_int !digest w_use;
    for i = 0 to w_use - 1 do
      let t = Pending.get pending i in
      if t.alive then begin
        incr n_committed;
        digest := Trace_digest.fold_int !digest t.id
      end
    done;
    digest := Trace_digest.fold_int !digest !n_committed;
    (* Dynamic determinism audit: drain the access tapes and check
       cautiousness / containment / round-level races against the
       committed set, before the pending deque is compacted. *)
    (match audit with
    | None -> ()
    | Some a ->
        let ids = Array.make !n_committed 0 in
        let k = ref 0 in
        for i = 0 to w_use - 1 do
          let t = Pending.get pending i in
          if t.alive then begin
            ids.(!k) <- t.id;
            incr k
          end
        done;
        Array.sort compare ids;
        let fresh = Audit.end_round a ~round:!rounds ~inspected:w_use ~committed:ids in
        if tracing then
          List.iter
            (fun (f : Audit.finding) ->
              emit
                (Obs.Audit_finding
                   { round = f.Audit.round; rule = Audit.rule_name f.Audit.rule;
                     task = f.Audit.task; other = f.Audit.other; lid = f.Audit.lid }))
            fresh);
    let round_pushes = ref 0 in
    for w = 0 to threads - 1 do
      round_pushes := !round_pushes + Child_buffer.length child_buffers.(w);
      Child_buffer.transfer ~into:todo child_buffers.(w)
    done;
    if tracing then begin
      emit
        (Obs.Select_done
           { round = !rounds; committed = !n_committed;
             defeated = w_use - !n_committed });
      emit (Obs.Phase_time { round = !rounds; phase = Obs.Select; dt_s = dt_select });
      let exec_work = ref 0 in
      for i = 0 to w_use - 1 do
        let t = Pending.get pending i in
        if t.alive then
          exec_work := !exec_work + (if t.pure then t.task_work else t.commit_work)
      done;
      emit
        (Obs.Execute_done
           { round = !rounds; work = !exec_work; pushes = !round_pushes })
    end;
    if record then begin
      let round_rec =
        Array.init w_use (fun i ->
            let t = Pending.get pending i in
            {
              Schedule.acquires = t.n_locks;
              inspect_work = t.task_work;
              commit_work = t.commit_work;
              committed = t.alive;
              locks = Array.init t.n_locks (fun k -> Lock.id t.neighborhood.(k));
            })
      in
      round_records := round_rec :: !round_records
    end;
    (* Failed tasks precede the untried remainder: they came from the
       window prefix, so the in-place compaction keeps the pending
       sequence in id order. *)
    let dropped =
      Pending.compact pending ~w_use ~keep:(fun i ->
          not (Pending.get pending i).alive)
    in
    assert (dropped = !n_committed);
    (* Soft-priority run accounting: when the commits drained the
       current bucket run, open the next one — so every round boundary
       with pending tasks already has its run open, which is what lets a
       checkpoint carry just [b_delta]. *)
    (match Pending.note_dropped pending dropped with
    | None -> ()
    | Some bucket ->
        if tracing then emit (Obs.Bucket_drained { round = !rounds; bucket });
        open_run ());
    let old_w = !window in
    window := adapt_window ~target_ratio ~window:old_w ~committed:!n_committed ~w_use;
    if tracing && !window <> old_w then
      emit
        (Obs.Window_adapted
           { old_w; new_w = !window;
             ratio = float_of_int !n_committed /. float_of_int w_use });
    (* --- round boundary: checkpoint / replay stop ----------------- *)
    (match checkpoint with
    | Some (every, f) when !rounds mod every = 0 ->
        if tracing then
          emit
            (Obs.Checkpoint_taken
               { round = !rounds; digest = Trace_digest.to_hex !digest });
        f (capture ())
    | _ -> ());
    match stop_after with Some r when !rounds >= r -> stop := true | _ -> ()
  done;
  let time_s = Clock.elapsed_s t0 in
  (* Attribute the pool's spin/park deltas over this run to the workers
     the policy used (extra idle pool workers go unreported). *)
  let sync1 = Parallel.Domain_pool.sync_counters pool in
  for w = 0 to threads - 1 do
    let s0, p0 = sync0.(w) and s1, p1 = sync1.(w) in
    workers.(w).Stats.spins <- s1 - s0;
    workers.(w).Stats.parks <- p1 - p0
  done;
  if tracing then
    Array.iteri
      (fun w (st : Stats.worker) ->
        emit
          (Obs.Worker_counters
             { worker = w; committed = st.committed; aborted = st.aborted;
               acquires = st.acquires; atomics = st.atomic_updates;
               work = st.work; pushes = st.pushes;
               inspections = st.inspections; chunks = st.chunks;
               spins = st.spins; parks = st.parks }))
      workers;
  let stats =
    Stats.merge ~digest:!digest ~threads ~rounds:!rounds ~generations:!generations
      ~buckets:!buckets_opened ~time_s
      ~phases:(Stats.breakdown ~inspect_s:!inspect_s ~select_s:!select_s ~time_s)
      workers
  in
  (* Fold in the deterministic counters from before the resume boundary,
     so a resumed run reports run-so-far totals; rounds, generations and
     the digest are already cumulative through the seeded refs. All
     carries are zero on a fresh run. *)
  let stats =
    {
      stats with
      Stats.commits = stats.Stats.commits + !carry_commits;
      aborts = stats.Stats.aborts + !carry_aborts;
      acquired = stats.Stats.acquired + !carry_acquired;
      work_units = stats.Stats.work_units + !carry_work;
      created = stats.Stats.created + !carry_created;
      inspected = stats.Stats.inspected + !carry_inspected;
    }
  in
  let schedule = if record then Some (Schedule.Rounds (List.rev !round_records)) else None in
  (stats, schedule)
