(** Flat per-worker child buffers for the DIG scheduler.

    A growable structure-of-arrays of [(parent id, birth index, item)]
    triples. Capacity survives {!clear} and {!transfer}, so a warmed-up
    buffer accumulates children without allocating — the flat
    replacement for the scheduler's former per-push list consing. Not
    thread-safe: each buffer is owned by one worker during a parallel
    phase and drained by the sequential round glue. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val clear : 'a t -> unit
(** Forget the contents, keep the capacity. *)

val push : 'a t -> parent:int -> birth:int -> 'a -> unit
(** Append one child created by task [parent] as its [birth]-th push. *)

val parent : 'a t -> int -> int
val birth : 'a t -> int -> int
val item : 'a t -> int -> 'a
(** Column accessors for index [i < length t]; unchecked. *)

val transfer : into:'a t -> 'a t -> unit
(** [transfer ~into src] appends [src]'s triples to [into] and clears
    [src]; both keep their capacity. *)
