(* The long-lived worker pool behind [Galois.Run] and the service layer.

   [Parallel.Domain_pool] is the SPMD mechanism (spin-then-park workers,
   the calling domain participating as worker 0); this module is the
   facade that makes it a first-class, shareable resource: created once,
   injected into any number of runs via [Run.pool], and shut down
   exactly once. The paper's on-demand pitch extends to the pool itself:
   [create ()] is parameterless — it sizes the pool to the machine. *)

type t = {
  dp : Parallel.Domain_pool.t;
  mutable state : [ `Live | `Down ];
}

let create ?domains () =
  let domains =
    match domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some d ->
        if d <= 0 then invalid_arg "Galois.Pool.create: domains must be positive";
        d
  in
  { dp = Parallel.Domain_pool.create domains; state = `Live }

let size t = Parallel.Domain_pool.size t.dp
let is_shut_down t = t.state = `Down

let domain_pool t =
  match t.state with
  | `Live -> t.dp
  | `Down -> invalid_arg "Galois.Pool: pool is shut down"

let shutdown t =
  match t.state with
  | `Down -> ()
  | `Live ->
      (* Flip the state first: even if joining a worker raised, the pool
         must never be handed out again. *)
      t.state <- `Down;
      Parallel.Domain_pool.shutdown t.dp

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
