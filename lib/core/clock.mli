(** Monotonic clock for duration measurement.

    All scheduler phase timings and bench wall times are computed as
    differences of this clock, so they cannot go negative under NTP
    steps. Absolute timestamps ([Obs.at_s]) stay on
    [Unix.gettimeofday]; only durations are derived monotonically. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC; origin is arbitrary (comparable
    only within one process). *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is seconds since the [now_s] reading [t0], clamped
    to be non-negative. *)
