(* In-order sequential execution.

   Trivially deterministic; serves as the semantic reference that both
   parallel schedulers are tested against, and as the single-thread
   baseline of the evaluation. Observability events are emitted once at
   the end: there are no rounds, so the whole run is one Execute
   phase. *)

let run ?(record = false) ?(sink = Obs.null) ~operator items =
  let stats = Stats.make_worker () in
  let ctx = Context.create () in
  Context.set_stats ctx stats;
  let queue = Queue.create () in
  Array.iter (fun x -> Queue.add x queue) items;
  let records = ref [] in
  (* One lock epoch for the whole run; no pool, so spins/parks stay 0. *)
  let stamp = Lock.new_epoch () in
  let t0 = Clock.now_s () in
  while not (Queue.is_empty queue) do
    let item = Queue.pop queue in
    Context.reset ctx ~phase:Direct ~task_id:1 ~stamp ~saved:None;
    operator ctx item;
    (* No concurrency: Conflict cannot be raised, every task commits. *)
    let neighborhood = Context.neighborhood_count ctx in
    stats.atomic_updates <- stats.atomic_updates + neighborhood;
    if record then
      records :=
        {
          Schedule.acquires = neighborhood;
          inspect_work = 0;
          commit_work = Context.work_units ctx;
          committed = true;
          locks = Array.map Lock.id (Context.neighborhood_array ctx);
        }
        :: !records;
    Context.release_all ctx;
    List.iter (fun c -> Queue.add c queue) (Context.pushed_list ctx);
    stats.pushes <- stats.pushes + Context.pushed_count ctx;
    stats.work <- stats.work + Context.work_units ctx;
    stats.committed <- stats.committed + 1
  done;
  let time_s = Clock.elapsed_s t0 in
  (* detlint: allow wall-clock — Obs.at_s is an absolute wall-clock timestamp; durations use Clock *)
  let emit event = sink.Obs.emit { Obs.at_s = Unix.gettimeofday (); event } in
  emit (Obs.Phase_time { round = 0; phase = Obs.Execute; dt_s = time_s });
  emit
    (Obs.Worker_counters
       { worker = 0; committed = stats.committed; aborted = stats.aborted;
         acquires = stats.acquires; atomics = stats.atomic_updates;
         work = stats.work; pushes = stats.pushes;
         inspections = stats.inspections; chunks = stats.chunks;
         spins = stats.spins; parks = stats.parks });
  let stats =
    Stats.merge ~threads:1 ~rounds:0 ~generations:0 ~time_s
      ~phases:(Stats.breakdown ~inspect_s:0.0 ~select_s:time_s ~time_s)
      [| stats |]
  in
  let schedule = if record then Some (Schedule.Flat (List.rev !records)) else None in
  (stats, schedule)
