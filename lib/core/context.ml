(* The operator execution context (paper §2, §3.2).

   Application operators receive a context and use it to acquire abstract
   locations, declare the failsafe point, create new tasks and stash
   continuation state. The same operator code runs under all three
   execution phases; the phase changes only what [acquire] and
   [failsafe] do:

   - [Direct]    non-deterministic or serial execution (Fig. 1b):
                 acquire = exclusive claim, conflict raises.
   - [Inspect]   deterministic inspection (Fig. 2 line 14): acquire =
                 writeMarksMax; the failsafe point aborts the prefix.
   - [Commit]    deterministic select-and-execute (Fig. 3): acquire =
                 verify the mark still carries our id.

   A context is per-worker scratch state, reused across every task the
   worker runs: the neighborhood and push buffers are growable arrays
   whose capacity survives [reset], so a warmed-up context executes
   tasks without allocating. (The buffers keep references to the last
   task's locks/items until overwritten — bounded by one task's
   footprint, and the scheduler holds those objects anyway.) *)

exception Conflict
(* Raised to the scheduler when a task loses a location. *)

exception Not_cautious
(* The operator acquired a location after its failsafe point, violating
   the cautiousness contract (§2). *)

exception Failsafe_reached
(* Internal: terminates inspect-phase execution at the failsafe point. *)

type phase = Direct | Inspect | Commit

type ('item, 'state) t = {
  mutable phase : phase;
  mutable task_id : int;
  mutable stamp : int;  (* Lock epoch all claims run under *)
  mutable stats : Stats.worker;
  mutable neighborhood : Lock.t array;  (* first [neighborhood_size] valid *)
  mutable neighborhood_size : int;
  mutable past_failsafe : bool;
  mutable saved : 'state option;
  mutable pushed : 'item array;  (* first [pushed_count] valid, push order *)
  mutable pushed_count : int;
  mutable work_units : int;
  mutable on_defeat : int -> unit;
  (* Audit recorder tape, set once per run by the DIG scheduler when
     auditing is on. [None] (the default) keeps acquire/touch at one
     predictable branch — no recorder allocation on the hot path. *)
  mutable tape : Audit.tape option;
}

let no_defeat (_ : int) = ()

let create () =
  {
    phase = Direct;
    task_id = 1;
    stamp = 0;  (* claims before the first [reset] are a usage error *)
    stats = Stats.make_worker ();
    neighborhood = [||];
    neighborhood_size = 0;
    past_failsafe = false;
    saved = None;
    pushed = [||];
    pushed_count = 0;
    work_units = 0;
    on_defeat = no_defeat;
    tape = None;
  }

let reset t ~phase ~task_id ~stamp ~saved =
  t.phase <- phase;
  t.task_id <- task_id;
  t.stamp <- stamp;
  t.neighborhood_size <- 0;
  t.past_failsafe <- false;
  t.saved <- saved;
  t.pushed_count <- 0;
  t.work_units <- 0;
  t.on_defeat <- no_defeat

(* Append to the neighborhood scratch, doubling capacity as needed; the
   appended lock doubles as the [Array.make] filler so an empty buffer
   needs no dummy element. *)
let add_lock t lock =
  let n = t.neighborhood_size in
  if n = Array.length t.neighborhood then begin
    let fresh = Array.make (max 8 (2 * n)) lock in
    Array.blit t.neighborhood 0 fresh 0 n;
    t.neighborhood <- fresh
  end;
  t.neighborhood.(n) <- lock;
  t.neighborhood_size <- n + 1

let acquire t lock =
  if t.past_failsafe then raise Not_cautious;
  t.stats.acquires <- t.stats.acquires + 1;
  match t.phase with
  | Direct ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      if Lock.try_claim lock ~stamp:t.stamp t.task_id then add_lock t lock
      else raise Conflict
  | Inspect ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      (match t.tape with
      | None -> ()
      | Some tape ->
          (* The commit phase re-verifies the same prefix; recording
             only here keeps one event per acquisition per round. *)
          Audit.record tape ~task:t.task_id ~lid:(Lock.id lock) ~kind:Audit.Acquire
            ~pre:true);
      add_lock t lock;
      (match Lock.claim_max lock ~stamp:t.stamp t.task_id with
      | `Won 0 -> ()
      | `Won displaced -> t.on_defeat displaced
      | `Lost ->
          (* A higher-priority task already holds the mark, so it cannot
             know about us: flag ourselves instead (§3.3 protocol). *)
          t.on_defeat t.task_id)
  | Commit ->
      (* The inspect phase of this very round acquired the same prefix,
         so the mark must still be ours; anything else is a scheduler
         invariant violation. *)
      if not (Lock.holds lock ~stamp:t.stamp t.task_id) then raise Conflict

(* Integrate a location created by this task (e.g. a new mesh triangle).
   Under speculative execution the fresh lock is claimed immediately so
   concurrent tasks cannot touch the new object before we finish; it is
   released with the rest of the neighborhood. Deterministic commits need
   nothing: other committed tasks have disjoint, already-fixed
   neighborhoods, and later rounds start after the marks clear. *)
let register_new t lock =
  match t.phase with
  | Direct ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      (* Strictly fresh: a stale mark from an earlier epoch proves some
         other task saw this location, so it must not pass either. *)
      if not (Lock.claim_fresh lock ~stamp:t.stamp t.task_id) then
        invalid_arg "Context.register_new: lock is not fresh";
      add_lock t lock
  | Inspect ->
      (* Object creation is a write; writes may not precede the failsafe
         point. *)
      raise Not_cautious
  | Commit -> (
      match t.tape with
      | None -> ()
      | Some tape ->
          (* A freshly created location belongs to this task's
             neighborhood: record it as acquired so commit-phase
             touches on it pass the containment check. *)
          Audit.record tape ~task:t.task_id ~lid:(Lock.id lock) ~kind:Audit.Acquire
            ~pre:false)

let failsafe t =
  if not t.past_failsafe then begin
    t.past_failsafe <- true;
    match t.phase with Inspect -> raise Failsafe_reached | Direct | Commit -> ()
  end

let push t item =
  let n = t.pushed_count in
  if n = Array.length t.pushed then begin
    let fresh = Array.make (max 8 (2 * n)) item in
    Array.blit t.pushed 0 fresh 0 n;
    t.pushed <- fresh
  end;
  t.pushed.(n) <- item;
  t.pushed_count <- n + 1

let save t state = t.saved <- Some state

let saved t = t.saved

let work t units = t.work_units <- t.work_units + units

(* Declare a shared-state access for the dynamic audit (a no-op beyond
   one branch when auditing is off). The declaration does not
   synchronize anything — it feeds the per-round containment /
   cautiousness / race checks in [Audit]. *)
let touch ?(write = true) t lock =
  match t.tape with
  | None -> ()
  | Some tape ->
      Audit.record tape ~task:t.task_id ~lid:(Lock.id lock)
        ~kind:(if write then Audit.Write else Audit.Read)
        ~pre:(not t.past_failsafe)

let phase t = t.phase

let task_id t = t.task_id

let stamp t = t.stamp

(* Internal accessors for schedulers. *)

let neighborhood_array t =
  Array.init t.neighborhood_size (fun i -> t.neighborhood.(i))

(* Copy the neighborhood into [prev] when it fits, else into a fresh
   array: a retried task hands its previous round's array back in and
   steady-state rounds stop allocating. Slots beyond the count are
   stale; callers must use [neighborhood_count], not the array
   length. *)
let neighborhood_into t prev =
  let n = t.neighborhood_size in
  if n = 0 then prev
  else begin
    let dst =
      if Array.length prev >= n then prev
      else Array.make (max 8 n) t.neighborhood.(0)
    in
    Array.blit t.neighborhood 0 dst 0 n;
    dst
  end

let neighborhood_count t = t.neighborhood_size

let pushed_get t i =
  if i < 0 || i >= t.pushed_count then invalid_arg "Context.pushed_get";
  t.pushed.(i)

let pushed_list t = List.init t.pushed_count (fun i -> t.pushed.(i))

(* Same contract as [neighborhood_into], for the push buffer. *)
let pushed_into t prev =
  let n = t.pushed_count in
  if n = 0 then prev
  else begin
    let dst =
      if Array.length prev >= n then prev else Array.make (max 8 n) t.pushed.(0)
    in
    Array.blit t.pushed 0 dst 0 n;
    dst
  end

let pushed_count t = t.pushed_count
let work_units t = t.work_units
let reached_failsafe t = t.past_failsafe
let set_on_defeat t f = t.on_defeat <- f
let set_stats t stats = t.stats <- stats
let set_tape t tape = t.tape <- tape

let release_all t =
  for i = 0 to t.neighborhood_size - 1 do
    Lock.release t.neighborhood.(i) ~stamp:t.stamp t.task_id
  done
