(** Pending-task deque of the deterministic scheduler.

    Holds one generation's tasks in deterministic order; a round's
    window is the index range [\[0, w_use)] and finishing a round is an
    in-place compaction that drops the committed tasks while keeping
    the failed ones — in order — in front of the untried remainder.
    Steady-state rounds allocate nothing. *)

type 'a t

val create : unit -> 'a t

val load : 'a t -> 'a array -> unit
(** [load t arr] replaces the contents with [arr], which the deque
    takes ownership of (it is compacted in place). *)

val length : 'a t -> int
(** Number of pending tasks. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th pending task, [0 <= i < length t]. *)

val compact : 'a t -> w_use:int -> keep:(int -> bool) -> int
(** [compact t ~w_use ~keep] ends a round over the window
    [\[0, w_use)]: window slots with [keep i = false] are dropped, the
    kept ones stay (in order) in front of the remaining tasks. [keep]
    is called exactly once per window index, descending. Returns the
    number of dropped tasks. *)
