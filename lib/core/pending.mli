(** Pending-task deque of the deterministic scheduler.

    Holds one generation's tasks in deterministic order; a round's
    window is the index range [\[0, w_use)] and finishing a round is an
    in-place compaction that drops the committed tasks while keeping
    the failed ones — in order — in front of the untried remainder.
    Steady-state rounds allocate nothing. *)

type 'a t

val create : unit -> 'a t

val load : 'a t -> 'a array -> unit
(** [load t arr] replaces the contents with [arr], which the deque
    takes ownership of (it is compacted in place). The generation is
    unordered: {!window_avail} is the whole length. *)

val load_runs : 'a t -> 'a array -> (int * int) array -> unit
(** [load_runs t arr runs] is {!load} for a soft-priority generation:
    [arr] is a concatenation of contiguous bucket runs (ascending
    bucket order) and [runs] gives each run's [(bucket, size)]. Sizes
    must be positive and sum to [Array.length arr], or
    [Invalid_argument]. Windows ({!window_avail}) then never straddle a
    run; {!note_dropped} tracks run drain. *)

val length : 'a t -> int
(** Number of pending tasks. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th pending task, [0 <= i < length t]. *)

val current_run : 'a t -> (int * int) option
(** Bucket index and remaining task count of the current (lowest
    non-empty) run; [None] for unordered generations or once every run
    has drained. *)

val window_avail : 'a t -> int
(** Largest window a round may take: [length t] for unordered
    generations, the current run's remaining count otherwise. *)

val note_dropped : 'a t -> int -> int option
(** [note_dropped t n] records that [n] window tasks committed (were
    dropped by {!compact}). Returns [Some bucket] when that drains the
    current run — the caller should open the next one — and [None]
    otherwise. Always [None] for unordered generations. Raises
    [Invalid_argument] if [n] exceeds the current run's remainder. *)

val compact : 'a t -> w_use:int -> keep:(int -> bool) -> int
(** [compact t ~w_use ~keep] ends a round over the window
    [\[0, w_use)]: window slots with [keep i = false] are dropped, the
    kept ones stay (in order) in front of the remaining tasks. [keep]
    is called exactly once per window index, descending. Returns the
    number of dropped tasks. *)
