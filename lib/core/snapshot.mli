(** Versioned, checksummed round-boundary snapshots.

    The serialized form of a {!Det_sched.boundary} plus the run
    configuration it is valid for. A snapshot written by one process can
    resume in another — at any thread count; reproducing the
    uninterrupted run's digest under a different thread count is the
    determinism claim itself, so the thread count is deliberately not
    recorded.

    Scheduler state is encoded structurally (little-endian integers and
    the digest prefix); only the opaque item / application-state payload
    goes through [Marshal] (no closures — items must be plain data).
    The whole body is guarded by an FNV-1a checksum: decoding checks
    magic, then version, then checksum, then shape, and reports the
    first failure. *)

type 'item t = {
  app : string;
      (** Application tag ({!Run.app}); resume refuses a snapshot whose
          tag disagrees with the run description's. [""] = untagged. *)
  options : string;
      (** [Policy.Det_options.to_string] rendering of the scheduling
          options the boundary was captured under. Resuming under
          different options would change the schedule, so resume
          validates equality. *)
  static_id : bool;  (** whether the run used a static-id fast path *)
  boundary : 'item Det_sched.boundary;
  state : Obj.t option;
      (** Application world state captured by the {!Run.snapshot_state}
          hook, if the run description has one. [None] for hook-less
          descriptions (live in-process resume only). *)
}

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Bad_checksum
  | Corrupt of string  (** structurally invalid body (with detail) *)
  | Io of string

val error_to_string : error -> string

val version : int
(** Current format version (written by {!encode}, required by
    {!decode}). *)

val encode : 'item t -> string
(** Raises [Invalid_argument] (from [Marshal]) if the items or state
    contain closures or other unmarshallable values. *)

val decode : string -> ('item t, error) result
(** Not type-safe across applications — the ['item] the caller picks
    must match what was encoded; the [app] tag exists so callers can
    check provenance before touching the items. *)

val save : path:string -> 'item t -> (unit, error) result
(** Atomic: writes [path ^ ".tmp"], then renames over [path] — a crash
    mid-checkpoint never leaves a torn snapshot behind. *)

val load : path:string -> ('item t, error) result
