(** Deterministic interference-graph (DIG) scheduler — the paper's core
    contribution (§3).

    Executes an unordered Galois task pool in deterministic rounds:
    inspect a window of tasks up to their failsafe points with max-id
    marking, commit the unique resulting independent set, retry the rest.
    The output is a function of the input and the (fixed) scheduling
    constants only — never of the thread count or timing. *)

val spread_permute : int -> 'a array -> 'a array
(** The §3.3 locality-spread permutation: deal the array into [spread]
    strided piles, concatenated. A bijection on indices whenever
    [spread > 1 && length > spread]; the identity otherwise. Exposed for
    the property tests. *)

val adapt_window : target_ratio:float -> window:int -> committed:int -> w_use:int -> int
(** One step of the parameterless window controller (§3.1): the next
    window size after a round that committed [committed] of [w_use]
    tasks under the current [window]. Doubles (capped) at or above
    [target_ratio], shrinks proportionally (floor 32) below it. Exposed
    for the property tests; the scheduler calls exactly this. *)

val run :
  ?record:bool ->
  ?sink:Obs.sink ->
  ?threads:int ->
  pool:Parallel.Domain_pool.t ->
  options:Policy.det_options ->
  static_id:('item -> int) option ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
(** [static_id] enables the paper's §3.3 fast path for task pools drawn
    from a fixed universe: ids come from the application (and duplicate
    pushes of one task collapse) instead of lexicographic child
    sorting.

    [sink] receives the full round/phase event stream: per generation a
    [Generation_begin]; per round [Round_begin], [Inspect_done],
    [Select_done], [Execute_done] plus two [Phase_time]s, a
    [Chunk_sized] with the round's guided chunk size and a
    [Window_adapted] when the adaptive controller resizes; and final
    per-worker [Worker_counters]. Events are emitted from sequential
    sections only, and every field outside [Phase_time] / [Chunk_sized] /
    [Worker_counters] is deterministic. The sink is not closed. *)
