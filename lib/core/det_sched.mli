(** Deterministic interference-graph (DIG) scheduler — the paper's core
    contribution (§3).

    Executes an unordered Galois task pool in deterministic rounds:
    inspect a window of tasks up to their failsafe points with max-id
    marking, commit the unique resulting independent set, retry the rest.
    The output is a function of the input and the (fixed) scheduling
    constants only — never of the thread count or timing. *)

val run :
  ?record:bool ->
  ?sink:Obs.sink ->
  ?threads:int ->
  pool:Parallel.Domain_pool.t ->
  options:Policy.det_options ->
  static_id:('item -> int) option ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
(** [static_id] enables the paper's §3.3 fast path for task pools drawn
    from a fixed universe: ids come from the application (and duplicate
    pushes of one task collapse) instead of lexicographic child
    sorting.

    [sink] receives the full round/phase event stream: per generation a
    [Generation_begin]; per round [Round_begin], [Inspect_done],
    [Select_done], [Execute_done] plus two [Phase_time]s and a
    [Window_adapted] when the adaptive controller resizes; and final
    per-worker [Worker_counters]. Events are emitted from sequential
    sections only, and every field outside [Phase_time] /
    [Worker_counters] is deterministic. The sink is not closed. *)
