(** Deterministic interference-graph (DIG) scheduler — the paper's core
    contribution (§3).

    Executes an unordered Galois task pool in deterministic rounds:
    inspect a window of tasks up to their failsafe points with max-id
    marking, commit the unique resulting independent set, retry the rest.
    The output is a function of the input and the (fixed) scheduling
    constants only — never of the thread count or timing. *)

val spread_permute : int -> 'a array -> 'a array
(** The §3.3 locality-spread permutation: deal the array into [spread]
    strided piles, concatenated. A bijection on indices whenever
    [spread > 1 && length > spread]; the identity otherwise. Exposed for
    the property tests. *)

val adapt_window : target_ratio:float -> window:int -> committed:int -> w_use:int -> int
(** One step of the parameterless window controller (§3.1): the next
    window size after a round that committed [committed] of [w_use]
    tasks under the current [window]. Doubles (capped) at or above
    [target_ratio], shrinks proportionally (floor 32) below it. Exposed
    for the property tests; the scheduler calls exactly this. *)

type 'item boundary = {
  b_rounds : int;  (** rounds completed when the boundary was taken *)
  b_generations : int;
  b_next_id : int;
  b_gen_base : int;
  b_window : int;  (** the {e next} round's window (already adapted) *)
  b_delta : int;
      (** bucket width of the current soft-priority generation; 0 when
          unordered. Resume recomputes pending buckets from priorities
          and this delta. *)
  b_digest : Trace_digest.t;  (** digest prefix through round [b_rounds] *)
  b_pending_ids : int array;  (** task ids, in pending-deque order *)
  b_pending_items : 'item array;
  b_todo_parents : int array;
  b_todo_births : int array;
  b_todo_items : 'item array;
  b_commits : int;
  b_aborts : int;
  b_acquired : int;
  b_work : int;
  b_created : int;
  b_inspected : int;
}
(** Round-boundary scheduler state: everything [run] needs to resume at
    round [b_rounds + 1] and reproduce the uninterrupted run's schedule
    digest for digest. The pending deque is captured in deque order (the
    spread permutation means that is {e not} id order), and the current
    generation's undrained child buffer rides along — a mid-generation
    boundary owns children pushed by earlier rounds. The six counter
    fields are the deterministic subset of the worker counters,
    cumulative since the original round 1; timing-dependent counters
    (atomics, chunks, spins, parks) and wall-clock restart from zero on
    resume. *)

val run :
  ?record:bool ->
  ?sink:Obs.sink ->
  ?audit:Audit.t ->
  ?checkpoint:int * ('item boundary -> unit) ->
  ?resume:'item boundary ->
  ?stop_after:int ->
  ?threads:int ->
  ?priority:('item -> int) ->
  pool:Parallel.Domain_pool.t ->
  options:Policy.det_options ->
  static_id:('item -> int) option ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
(** [static_id] enables the paper's §3.3 fast path for task pools drawn
    from a fixed universe: ids come from the application (and duplicate
    pushes of one task collapse) instead of lexicographic child
    sorting.

    [priority] maps an item to its (lower-is-sooner) integer priority.
    It only matters under [options.priority <> Prio_off]: each
    generation is laid out as contiguous delta-stepping bucket runs
    (bucket = [priority / delta], floor division; id order within a
    bucket; the spread permutation applies per run) and rounds draw
    their windows from the lowest non-empty bucket, never straddling
    runs. The layout is a pure function of (ids, priorities, delta), so
    the schedule stays deterministic; bucket opens are folded into the
    digest and emitted as [Obs.Bucket_opened]/[Bucket_drained]. Omitting
    [priority] under a prio policy puts every task in bucket 0. With
    [Prio_off] (the default policy) the function is ignored and the
    schedule is byte-identical to the unordered scheduler.

    [sink] receives the full round/phase event stream: per generation a
    [Generation_begin]; per round [Round_begin], [Inspect_done],
    [Select_done], [Execute_done] plus two [Phase_time]s, a
    [Chunk_sized] with the round's guided chunk size and a
    [Window_adapted] when the adaptive controller resizes; and final
    per-worker [Worker_counters]. Events are emitted from sequential
    sections only, and every field outside [Phase_time] / [Chunk_sized] /
    [Worker_counters] is deterministic. The sink is not closed.

    [audit] attaches a dynamic determinism recorder ({!Audit}): worker
    contexts record acquire/touch footprints on per-worker tapes, and
    the sequential glue checks cautiousness, containment and
    intra-round races after every round's selectAndExec, emitting a
    deterministic [Obs.Audit_finding] per finding when tracing. Without
    it, no recorder exists and the hot path is unchanged.

    [checkpoint:(k, f)] calls [f] with a fresh {!boundary} after every
    [k]-th round (from the sequential glue — [f] may serialize the items
    but must not call back into the scheduler), preceded by a
    deterministic [Obs.Checkpoint_taken] event when tracing. Raises
    [Invalid_argument] if [k < 1].

    [resume] restarts from a boundary instead of [items] (which is then
    ignored): round numbering, id assignment, the adaptive window and
    the digest continue exactly where the boundary stopped, so a
    completed resumed run's digest equals the uninterrupted run's — at
    any thread count. Emits [Obs.Resumed] when tracing.

    [stop_after:r] stops after the first round boundary with
    [rounds >= r] (a no-op if the run finishes earlier) — the replay-to
    primitive. The returned stats cover the executed prefix. Raises
    [Invalid_argument] if [r < 1]. *)
