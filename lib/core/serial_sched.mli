(** Sequential in-order scheduler (reference semantics and single-thread
    baseline). *)

val run :
  ?record:bool ->
  ?sink:Obs.sink ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
(** [sink] receives one [Phase_time] ([Execute]) and one
    [Worker_counters] event at the end of the run; it is not closed. *)
