(* Run every benchmark in every variant once, with schedule recording,
   and keep the artifacts the figures need. Runs use a small real thread
   count (the container is single-core; deterministic schedules are
   thread-independent anyway), and the machine simulator projects the
   recorded schedules onto the paper's machines. *)

module Gen = Graphlib.Generators
module Point = Geometry.Point

type app = {
  name : string;
  serial : Galois.Runtime.report;  (* in-order execution, Flat schedule *)
  nondet : Galois.Runtime.report;
  det : Galois.Runtime.report;
  det_nocont : Galois.Runtime.report;  (* continuation optimization off *)
  pbbs : Detreserve.stats option;  (* handwritten deterministic variant *)
}

type kernel = { kname : string; profile : Apps.Kernel_profile.t }

type t = { apps : app list; kernels : kernel list; scale : Scale.t }

let run_threads = 2

(* The speculative variant is recorded single-threaded: at paper scale
   tasks outnumber threads by ~10^5 and abort ratios are essentially
   zero (§5.1); tiny inputs on two threads would instead record
   artificially inflated abort work. Parallel correctness of the
   speculative scheduler is exercised separately by the test suite. *)
let nondet_policy = Galois.Policy.nondet 1
let det_policy = Galois.Policy.det run_threads

let det_nocont_policy =
  Galois.Policy.det run_threads
    ~options:{ Galois.Policy.default_det with continuation = false }

let collect_bfs pool (s : Scale.t) =
  let g = Gen.kout ~seed:s.seed ~n:s.bfs_nodes ~k:s.bfs_degree () in
  let run policy =
    let _, report = Apps.Bfs.galois ~record:true ~policy ~pool g ~source:0 in
    report
  in
  let serial = run Galois.Policy.serial in
  let nondet = run nondet_policy in
  let det = run det_policy in
  let det_nocont = run det_nocont_policy in
  (* detBFS has no speculation; represent its rounds via level count. *)
  let _, _, levels = Apps.Bfs.pbbs ~pool:(Galois.Pool.domain_pool pool) g ~source:0 in
  let commits = s.bfs_nodes in
  let pbbs = Some { Detreserve.rounds = levels; commits; retries = 0; time_s = 0.0 } in
  { name = "bfs"; serial; nondet; det; det_nocont; pbbs }

let collect_mis pool (s : Scale.t) =
  let g = Graphlib.Csr.symmetrize (Gen.kout ~seed:(s.seed + 1) ~n:s.mis_nodes ~k:s.mis_degree ()) in
  let run policy =
    let _, report = Apps.Mis.galois ~record:true ~policy ~pool g in
    report
  in
  let serial = run Galois.Policy.serial in
  let nondet = run nondet_policy in
  let det = run det_policy in
  let det_nocont = run det_nocont_policy in
  let _, stats = Apps.Mis.pbbs ~granularity:(max 64 (s.mis_nodes / 20)) ~pool:(Galois.Pool.domain_pool pool) g in
  { name = "mis"; serial; nondet; det; det_nocont; pbbs = Some stats }

let collect_dt pool (s : Scale.t) =
  let pts = Point.random_unit_square ~seed:(s.seed + 2) s.dt_points in
  let run policy =
    let _, report = Apps.Dt.galois ~record:true ~policy ~pool pts in
    report
  in
  let serial = run Galois.Policy.serial in
  let nondet = run nondet_policy in
  let det = run det_policy in
  let det_nocont = run det_nocont_policy in
  let _, stats = Apps.Dt.pbbs ~granularity:(max 64 (s.dt_points / 20)) ~pool:(Galois.Pool.domain_pool pool) pts in
  { name = "dt"; serial; nondet; det; det_nocont; pbbs = Some stats }

let collect_dmr pool (s : Scale.t) =
  let fresh_mesh () =
    Apps.Dt.serial (Point.random_unit_square ~seed:(s.seed + 3) s.dmr_points)
  in
  let run policy = Apps.Dmr.galois ~record:true ~policy ~pool (fresh_mesh ()) in
  let serial = run Galois.Policy.serial in
  let nondet = run nondet_policy in
  let det = run det_policy in
  let det_nocont = run det_nocont_policy in
  let stats = Apps.Dmr.pbbs ~granularity:256 ~pool:(Galois.Pool.domain_pool pool) (fresh_mesh ()) in
  { name = "dmr"; serial; nondet; det; det_nocont; pbbs = Some stats }

let collect_pfp pool (s : Scale.t) =
  let instance () = Gen.flow_network ~seed:(s.seed + 4) ~n:s.pfp_nodes ~k:s.pfp_degree () in
  let run policy =
    let g, caps, source, sink = instance () in
    let net = Apps.Flow_network.of_graph g caps ~source ~sink in
    let result = Apps.Pfp.galois ~record:true ~policy ~pool net in
    { Galois.Runtime.stats = result.Apps.Pfp.stats;
      schedule = result.Apps.Pfp.schedule;
      trace = None;
      audit = None }
  in
  let serial = run Galois.Policy.serial in
  let nondet = run nondet_policy in
  let det = run det_policy in
  let det_nocont = run det_nocont_policy in
  (* The PBBS suite has no preflow-push program (paper §4.1). *)
  { name = "pfp"; serial; nondet; det; det_nocont; pbbs = None }

let collect_kernels pool (s : Scale.t) =
  let _, bs = Apps.Blackscholes.run ~pool:(Galois.Pool.domain_pool pool) (Apps.Blackscholes.generate ~seed:s.seed s.blackscholes_options) in
  let bt = (Apps.Bodytrack.run ~config:s.bodytrack ~pool:(Galois.Pool.domain_pool pool) ()).Apps.Bodytrack.profile in
  let _, fm = Apps.Freqmine.run ~config:s.freqmine ~pool:(Galois.Pool.domain_pool pool) () in
  [
    { kname = "blackscholes"; profile = bs };
    { kname = "bodytrack"; profile = bt };
    { kname = "freqmine"; profile = fm };
  ]

let collect (s : Scale.t) =
  Galois.Pool.with_pool ~domains:run_threads (fun pool ->
      let apps =
        [
          collect_bfs pool s;
          collect_mis pool s;
          collect_dt pool s;
          collect_dmr pool s;
          collect_pfp pool s;
        ]
      in
      let kernels = collect_kernels pool s in
      { apps; kernels; scale = s })

let find t name = List.find (fun a -> a.name = name) t.apps
