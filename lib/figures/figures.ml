(* Regenerate every table and figure of the paper's evaluation (§5) from
   a collected dataset. Each [figN] function prints the same rows/series
   the paper reports; EXPERIMENTS.md records the paper-vs-measured
   comparison. *)

module Scale = Scale
module Dataset = Dataset
(* re-exports: [figures.ml] is the library's root module *)

module Machine = Simmachine.Machine
module Exec_model = Simmachine.Exec_model
module Coredet_model = Simmachine.Coredet_model

let sched (r : Galois.Runtime.report) =
  match r.schedule with
  | Some s -> s
  | None -> invalid_arg "Figures: report has no recorded schedule"

type variant = GN | GD | GDnc | PBBS

let variant_name = function GN -> "g-n" | GD -> "g-d" | GDnc -> "g-d/nc" | PBBS -> "pbbs"

(* The recorded runs are small-scale (this container is single-core);
   [amplification] projects each schedule to the paper's input scale
   (~millions of tasks) so that barrier and window costs amortize as
   they do in the paper's measurements. *)
let amplification_target = 2_000_000

let amplification (app : Dataset.app) =
  max 1 (amplification_target / max 1 app.det.stats.Galois.Stats.commits)

(* The data-parallel PBBS mis is different in kind (paper §4.1): model
   it as bulk-synchronous rounds over the committed work. *)
let pbbs_mis_time machine ~threads (app : Dataset.app) rounds =
  let records = Galois.Schedule.committed_tasks (sched app.serial) in
  let task_costs =
    Array.of_list (List.map (fun r -> r.Galois.Schedule.commit_work) records)
  in
  let atomics = List.fold_left (fun a r -> a + r.Galois.Schedule.acquires) 0 records in
  Exec_model.time_kernel ~amplify:(amplification app) machine ~threads ~task_costs
    ~barriers:(2 * rounds) ~atomics

let time data machine ~threads (app : Dataset.app) variant =
  ignore data;
  let amplify = amplification app in
  match variant with
  | GN -> Exec_model.time_schedule ~amplify machine ~threads (sched app.nondet)
  | GD -> Exec_model.time_schedule ~amplify machine ~threads (sched app.det)
  | GDnc -> Exec_model.time_schedule ~amplify machine ~threads (sched app.det_nocont)
  | PBBS -> (
      match app.pbbs with
      | None -> invalid_arg (app.name ^ " has no PBBS variant")
      | Some stats -> (
          if app.name = "mis" then pbbs_mis_time machine ~threads app stats.Detreserve.rounds
          else
            match sched app.det with
            | Galois.Schedule.Rounds rounds ->
                Exec_model.time_rounds_pbbs ~amplify machine ~threads rounds
            | Galois.Schedule.Flat _ -> invalid_arg "det schedule should be rounds"))

(* Memoized timings: the figure set reuses the same (machine, threads,
   app, variant) cells many times and each evaluation replays a
   schedule. *)
type timings = {
  data : Dataset.t;
  memo : (string * int * string * variant, float) Hashtbl.t;
}

let timings data = { data; memo = Hashtbl.create 256 }

let cell t machine ~threads app variant =
  let key = (machine.Machine.name, threads, app.Dataset.name, variant) in
  match Hashtbl.find_opt t.memo key with
  | Some v -> v
  | None ->
      let v = time t.data machine ~threads app variant in
      Hashtbl.add t.memo key v;
      v

let baseline_time machine (app : Dataset.app) =
  match sched app.serial with
  | Galois.Schedule.Flat records ->
      Exec_model.time_serial_baseline ~amplify:(amplification app) machine records
  | Galois.Schedule.Rounds _ -> invalid_arg "serial schedule should be flat"

let speedup t machine ~threads app variant =
  baseline_time machine app /. cell t machine ~threads app variant

let app_variants (app : Dataset.app) =
  if app.pbbs = None then [ GN; GD ] else [ GN; GD; PBBS ]

let max_threads_of machine = Machine.max_threads machine

(* ------------------------------------------------------------------ *)
(* Fig. 4: task rates, abort ratios, rounds at 1 and max threads on
   m4x10. *)

let fig4 t =
  let m = Machine.m4x10 in
  let tmax = max_threads_of m in
  let rows =
    List.concat_map
      (fun (app : Dataset.app) ->
        List.map
          (fun v ->
            let stats =
              match v with
              | GN -> app.nondet.stats
              | GD | GDnc -> app.det.stats
              | PBBS -> app.det.stats
            in
            let commits = stats.Galois.Stats.commits * amplification app in
            let rate threads =
              float_of_int commits /. (cell t m ~threads app v *. 1e6)
            in
            let aborts, rounds =
              match v with
              | GN -> (Galois.Stats.abort_ratio app.nondet.stats, "-")
              | GD | GDnc ->
                  (Galois.Stats.abort_ratio app.det.stats, string_of_int app.det.stats.rounds)
              | PBBS -> (
                  match app.pbbs with
                  | Some s ->
                      let attempts = s.Detreserve.commits + s.Detreserve.retries in
                      ( (if attempts = 0 then 0.0
                         else float_of_int s.Detreserve.retries /. float_of_int attempts),
                        string_of_int s.Detreserve.rounds )
                  | None -> (0.0, "-"))
            in
            [
              app.name;
              variant_name v;
              Analysis.Table.f3 (rate 1);
              Analysis.Table.f3 (rate tmax);
              Analysis.Table.f4 aborts;
              rounds;
            ])
          (app_variants app))
      t.data.apps
  in
  Analysis.Table.make
    ~header:
      [ "app"; "variant"; "tasks/us @1"; Printf.sprintf "tasks/us @%d" tmax; "abort ratio"; "rounds" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 5: atomic update rates (adds the PARSEC kernels). *)

let fig5 t =
  let m = Machine.m4x10 in
  let tmax = max_threads_of m in
  let app_rows =
    List.concat_map
      (fun (app : Dataset.app) ->
        List.map
          (fun v ->
            let stats = match v with GN -> app.nondet.stats | _ -> app.det.stats in
            let atomics = stats.Galois.Stats.atomics * amplification app in
            let rate threads = float_of_int atomics /. (cell t m ~threads app v *. 1e6) in
            [
              app.name;
              variant_name v;
              Analysis.Table.f2 (rate 1);
              Analysis.Table.f2 (rate tmax);
            ])
          (app_variants app))
      t.data.apps
  in
  let kernel_rows =
    List.map
      (fun (k : Dataset.kernel) ->
        let p = k.profile in
        let time threads =
          Exec_model.time_kernel m ~threads ~task_costs:p.Apps.Kernel_profile.task_costs
            ~barriers:p.barriers ~atomics:p.atomics
        in
        [
          k.kname;
          "parsec";
          Analysis.Table.f2 (float_of_int p.Apps.Kernel_profile.atomics /. (time 1 *. 1e6));
          Analysis.Table.f2 (float_of_int p.Apps.Kernel_profile.atomics /. (time tmax *. 1e6));
        ])
      t.data.kernels
  in
  Analysis.Table.make
    ~header:[ "app"; "variant"; "atomics/us @1"; Printf.sprintf "atomics/us @%d" tmax ]
    (app_rows @ kernel_rows)

(* ------------------------------------------------------------------ *)
(* Fig. 6: CoreDet slowdowns vs threads (m4x10). *)

let fig6_workloads t =
  let kernels =
    List.map
      (fun (k : Dataset.kernel) ->
        ( k.kname,
          Apps.Kernel_profile.total_work k.profile + 1,
          k.profile.Apps.Kernel_profile.atomics ))
      t.data.kernels
  in
  let apps =
    List.filter_map
      (fun (app : Dataset.app) ->
        if app.name = "pfp" then None
        else
          let k = amplification app in
          Some
            ( app.name,
              k * (app.nondet.stats.Galois.Stats.work_units + app.nondet.stats.acquired + 1),
              k * app.nondet.stats.atomics ))
      t.data.apps
  in
  kernels @ apps

let fig6 t =
  let m = Machine.m4x10 in
  let sweep = [ 1; 2; 4; 8; 16; 32; 40 ] in
  let rows =
    List.map
      (fun (name, work, atomics) ->
        name
        :: List.map
             (fun threads ->
               Analysis.Table.xf (Coredet_model.slowdown m ~threads ~work ~atomics ()))
             sweep)
      (fig6_workloads t)
  in
  let summary =
    let at_max =
      List.map
        (fun (_, work, atomics) -> Coredet_model.slowdown m ~threads:40 ~work ~atomics ())
        (fig6_workloads t)
    in
    [
      "median (min..max) @40";
      Printf.sprintf "%s (%s..%s)"
        (Analysis.Table.xf (Analysis.Summary.median at_max))
        (Analysis.Table.xf (Analysis.Summary.minimum at_max))
        (Analysis.Table.xf (Analysis.Summary.maximum at_max));
      "";
      "";
      "";
      "";
      "";
      "";
    ]
  in
  Analysis.Table.make
    ~header:("coredet slowdown" :: List.map (fun p -> Printf.sprintf "@%d" p) sweep)
    (rows @ [ summary ])

(* ------------------------------------------------------------------ *)
(* Fig. 7: speedups over the best sequential baseline, per machine. *)

let fig7 ?(machine = Machine.m4x10) t =
  let sweep = Machine.thread_sweep machine in
  let rows =
    List.concat_map
      (fun (app : Dataset.app) ->
        List.map
          (fun v ->
            (app.name ^ " " ^ variant_name v)
            :: List.map
                 (fun threads -> Analysis.Table.f2 (speedup t machine ~threads app v))
                 sweep)
          (app_variants app))
      t.data.apps
  in
  Analysis.Table.make
    ~header:
      ((machine.Machine.name ^ " speedup")
      :: List.map (fun p -> Printf.sprintf "@%d" p) sweep)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: sequential baseline times. *)

let fig8 t =
  let rows =
    List.concat_map
      (fun (app : Dataset.app) ->
        List.map
          (fun m -> [ app.name; m.Machine.name; Analysis.Table.f4 (baseline_time m app) ])
          Machine.all)
      t.data.apps
    @ List.concat_map
        (fun (k : Dataset.kernel) ->
          List.map
            (fun m ->
              let p = k.profile in
              let time =
                Exec_model.time_kernel m ~threads:1 ~task_costs:p.Apps.Kernel_profile.task_costs
                  ~barriers:p.barriers ~atomics:p.atomics
              in
              [ k.kname; m.Machine.name; Analysis.Table.f4 time ])
            Machine.all)
        t.data.kernels
  in
  Analysis.Table.make ~header:[ "app"; "machine"; "baseline time (s)" ] rows

(* ------------------------------------------------------------------ *)
(* Fig. 9: performance relative to the PBBS variant (t_pbbs / t_var). *)

let relative_to_pbbs t machine ~threads app v =
  cell t machine ~threads app PBBS /. cell t machine ~threads app v

let fig9 t =
  let with_pbbs = List.filter (fun (a : Dataset.app) -> a.pbbs <> None) t.data.apps in
  let rows =
    List.concat_map
      (fun machine ->
        let tmax = max_threads_of machine in
        let sweep = Machine.thread_sweep machine in
        List.map
          (fun v ->
            let all_ratios =
              List.concat_map
                (fun app ->
                  List.map (fun threads -> relative_to_pbbs t machine ~threads app v) sweep)
                with_pbbs
            in
            let at threads =
              List.map (fun app -> relative_to_pbbs t machine ~threads app v) with_pbbs
            in
            [
              machine.Machine.name;
              variant_name v;
              Analysis.Table.f2 (Analysis.Summary.mean all_ratios);
              Analysis.Table.f2 (Analysis.Summary.maximum all_ratios);
              Analysis.Table.f2 (Analysis.Summary.median (at 1));
              Analysis.Table.f2 (Analysis.Summary.median (at tmax));
            ])
          [ GN; GD ])
      Machine.all
  in
  Analysis.Table.make ~header:[ "machine"; "variant"; "mean"; "max"; "I1"; "Imax" ] rows

(* The headline §5.3 medians: g-n vs pbbs, g-d vs pbbs, g-n vs g-d at
   max threads across machines and benchmarks. *)
let summary t =
  let with_pbbs = List.filter (fun (a : Dataset.app) -> a.pbbs <> None) t.data.apps in
  let ratios f =
    List.concat_map
      (fun machine ->
        let threads = max_threads_of machine in
        List.filter_map (fun app -> f machine threads app) with_pbbs)
      Machine.all
  in
  let gn_vs_pbbs =
    ratios (fun m threads app -> Some (relative_to_pbbs t m ~threads app GN))
  in
  let gd_vs_pbbs =
    ratios (fun m threads app -> Some (relative_to_pbbs t m ~threads app GD))
  in
  let gn_vs_gd =
    List.concat_map
      (fun machine ->
        let threads = max_threads_of machine in
        List.map
          (fun (app : Dataset.app) ->
            cell t machine ~threads app GD /. cell t machine ~threads app GN)
          t.data.apps)
      Machine.all
  in
  let gd_vs_pbbs_no_mis =
    List.concat_map
      (fun machine ->
        let threads = max_threads_of machine in
        List.filter_map
          (fun (app : Dataset.app) ->
            if app.name = "mis" || app.pbbs = None then None
            else Some (relative_to_pbbs t machine ~threads app GD))
          t.data.apps)
      Machine.all
  in
  Analysis.Table.make
    ~header:[ "headline result"; "paper"; "measured (median)" ]
    [
      [ "g-n vs pbbs at Imax"; "2.4X"; Analysis.Table.xf (Analysis.Summary.median gn_vs_pbbs) ];
      [ "g-d vs pbbs at Imax"; "0.62X"; Analysis.Table.xf (Analysis.Summary.median gd_vs_pbbs) ];
      [
        "g-d vs pbbs (no mis)";
        "0.70X";
        Analysis.Table.xf (Analysis.Summary.median gd_vs_pbbs_no_mis);
      ];
      [ "g-n vs g-d at Imax"; "4.2X"; Analysis.Table.xf (Analysis.Summary.median gn_vs_gd) ];
    ]

(* ------------------------------------------------------------------ *)
(* Fig. 10: ablation — deterministic scheduling without the
   continuation optimization, relative to PBBS; plus the median
   improvement the optimization brings. *)

let fig10 t =
  let with_pbbs = List.filter (fun (a : Dataset.app) -> a.pbbs <> None) t.data.apps in
  let m = Machine.m4x10 in
  let tmax = max_threads_of m in
  let rows =
    List.map
      (fun (app : Dataset.app) ->
        let nc = relative_to_pbbs t m ~threads:tmax app GDnc in
        let c = relative_to_pbbs t m ~threads:tmax app GD in
        [
          app.name;
          Analysis.Table.f2 nc;
          Analysis.Table.f2 c;
          Analysis.Table.xf
            (cell t m ~threads:tmax app GDnc /. cell t m ~threads:tmax app GD);
        ])
      with_pbbs
  in
  let improvements =
    List.map
      (fun (app : Dataset.app) ->
        cell t m ~threads:tmax app GDnc /. cell t m ~threads:tmax app GD)
      t.data.apps
  in
  let footer =
    [
      "median improvement";
      "";
      "";
      Analysis.Table.xf (Analysis.Summary.median improvements);
    ]
  in
  Analysis.Table.make
    ~header:[ "app (m4x10, Imax)"; "g-d/nc vs pbbs"; "g-d vs pbbs"; "continuation gain" ]
    (rows @ [ footer ])

(* ------------------------------------------------------------------ *)
(* Fig. 11: DRAM requests by variant (cache-hierarchy replay). *)

let dram ~threads (app : Dataset.app) v =
  let schedule =
    match v with
    | GN -> sched app.nondet
    | GD -> sched app.det
    | GDnc -> sched app.det_nocont
    | PBBS -> sched app.det
  in
  (* Cache sizes are scaled down with the inputs so that, as in the
     paper, the working set exceeds the last-level cache — otherwise
     every variant would only see cold misses. *)
  Cachesim.Hierarchy.dram_accesses
    (Cachesim.Hierarchy.replay ~l1_lines:64 ~l2_lines:256 ~l3_lines:1024 ~threads schedule)

let fig11 t =
  let threads_list = [ 1; 8; 40 ] in
  let rows =
    List.concat_map
      (fun (app : Dataset.app) ->
        List.map
          (fun v ->
            (app.name ^ " " ^ variant_name v)
            :: List.map (fun threads -> string_of_int (dram ~threads app v)) threads_list)
          [ GN; GD ])
      t.data.apps
  in
  Analysis.Table.make
    ~header:("dram requests" :: List.map (fun p -> Printf.sprintf "@%d" p) threads_list)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 12: how well efficiency differences are explained by the memory
   counter: fit eff_gd = B0 + B1 * (dram_gn / dram_gd) * eff_gn over the
   thread sweep and report R^2. *)

let fig12 t =
  let m = Machine.m4x10 in
  let sweep = List.filter (fun p -> p > 1) (Machine.thread_sweep m) in
  let rows =
    List.map
      (fun (app : Dataset.app) ->
        let points =
          List.map
            (fun threads ->
              let eff v = speedup t m ~threads app v /. float_of_int threads in
              let x =
                float_of_int (dram ~threads app GN)
                /. float_of_int (max 1 (dram ~threads app GD))
                *. eff GN
              in
              (x, eff GD))
            sweep
        in
        match Analysis.Regression.fit points with
        | fit ->
            [
              app.name;
              Analysis.Table.f3 fit.Analysis.Regression.b0;
              Analysis.Table.f3 fit.b1;
              Analysis.Table.f3 fit.r2;
              Analysis.Table.i fit.n;
            ]
        | exception Invalid_argument _ -> [ app.name; "-"; "-"; "-"; "-" ])
      t.data.apps
  in
  Analysis.Table.make ~header:[ "app"; "B0"; "B1"; "R^2"; "points" ] rows

(* ------------------------------------------------------------------ *)
(* Ablations of the §3.3 design choices (DESIGN.md §5): locality
   spread, adaptive vs fixed windows, static ids. Each runs the
   deterministic scheduler with one knob changed and reports rounds,
   failed selections and simulated time (m4x10, max threads). *)

let ablation t =
  let scale = t.data.scale in
  let m = Machine.m4x10 in
  let tmax = max_threads_of m in
  Galois.Pool.with_pool ~domains:Dataset.run_threads (fun pool ->
      let bfs_graph =
        Graphlib.Generators.kout ~seed:scale.Scale.seed ~n:scale.Scale.bfs_nodes
          ~k:scale.Scale.bfs_degree ()
      in
      let dmr_mesh () =
        Apps.Dt.serial (Geometry.Point.random_unit_square ~seed:(scale.Scale.seed + 3)
                          scale.Scale.dmr_points)
      in
      let run_bfs options =
        let policy = Galois.Policy.det Dataset.run_threads ~options in
        let _, report = Apps.Bfs.galois ~record:true ~policy ~pool bfs_graph ~source:0 in
        report
      in
      let run_dmr options =
        let policy = Galois.Policy.det Dataset.run_threads ~options in
        Apps.Dmr.galois ~record:true ~policy ~pool (dmr_mesh ())
      in
      let row name (report : Galois.Runtime.report) =
        let time =
          Exec_model.time_schedule ~amplify:(amplification_target / max 1 report.stats.commits)
            m ~threads:tmax (sched report)
        in
        [
          name;
          Analysis.Table.i report.stats.rounds;
          Analysis.Table.i report.stats.aborts;
          Analysis.Table.f4 time;
        ]
      in
      let base = Galois.Policy.default_det in
      let rows =
        [
          row "bfs: default (spread=16, adaptive)" (run_bfs base);
          row "bfs: no locality spread" (run_bfs { base with spread = 1 });
          row "bfs: fixed small window (256)"
            (run_bfs { base with initial_window = Some 256; target_ratio = 2.0 });
          row "bfs: no continuation" (run_bfs { base with continuation = false });
          row "dmr: default" (run_dmr base);
          row "dmr: no locality spread" (run_dmr { base with spread = 1 });
          row "dmr: fixed small window (256)"
            (run_dmr { base with initial_window = Some 256; target_ratio = 2.0 });
          row "dmr: no continuation" (run_dmr { base with continuation = false });
        ]
      in
      (* Static-id fast path (pfp): compare epochs/rounds with and
         without it by rerunning pfp without static ids. *)
      let pfp_rows =
        let g, caps, source, sink =
          Graphlib.Generators.flow_network ~seed:(scale.Scale.seed + 4) ~n:scale.Scale.pfp_nodes
            ~k:scale.Scale.pfp_degree ()
        in
        let net = Apps.Flow_network.of_graph g caps ~source ~sink in
        let result =
          Apps.Pfp.galois ~record:true ~policy:(Galois.Policy.det Dataset.run_threads) ~pool net
        in
        match result.Apps.Pfp.schedule with
        | Some schedule ->
            let time =
              Exec_model.time_schedule
                ~amplify:(amplification_target / max 1 result.Apps.Pfp.stats.Galois.Stats.commits)
                m ~threads:tmax schedule
            in
            [
              [
                "pfp: static ids (default)";
                Analysis.Table.i result.Apps.Pfp.stats.rounds;
                Analysis.Table.i result.Apps.Pfp.stats.aborts;
                Analysis.Table.f4 time;
              ];
            ]
        | None -> []
      in
      Analysis.Table.make
        ~header:[ "deterministic-scheduler ablation"; "rounds"; "failed"; "sim time @40 (s)" ]
        (rows @ pfp_rows))

(* ------------------------------------------------------------------ *)
(* Phase breakdown of an observability trace (lib/obs): where a run's
   wall-clock went per scheduler phase, plus round/window/commit-ratio
   structure. Consumes any stamped event stream — an in-memory capture
   or a JSONL trace written by `galois_run --trace` (figures_cli
   --phase-breakdown FILE). *)

let phase_breakdown (events : Obs.stamped list) =
  let inspect = ref 0.0
  and select = ref 0.0
  and execute = ref 0.0
  and inspect_n = ref 0
  and select_n = ref 0
  and execute_n = ref 0
  and rounds = ref 0
  and window_sum = ref 0
  and committed = ref 0
  and defeated = ref 0
  and adaptations = ref 0
  and spins = ref 0
  and parks = ref 0 in
  List.iter
    (fun { Obs.event; _ } ->
      match event with
      | Obs.Phase_time { phase = Obs.Inspect; dt_s; _ } ->
          inspect := !inspect +. dt_s;
          incr inspect_n
      | Obs.Phase_time { phase = Obs.Select; dt_s; _ } ->
          select := !select +. dt_s;
          incr select_n
      | Obs.Phase_time { phase = Obs.Execute; dt_s; _ } ->
          execute := !execute +. dt_s;
          incr execute_n
      | Obs.Round_begin { window; _ } ->
          incr rounds;
          window_sum := !window_sum + window
      | Obs.Select_done { committed = c; defeated = d; _ } ->
          committed := !committed + c;
          defeated := !defeated + d
      | Obs.Window_adapted _ -> incr adaptations
      | Obs.Worker_counters { spins = s; parks = p; _ } ->
          spins := !spins + s;
          parks := !parks + p
      | _ -> ())
    events;
  let wall =
    match events with
    | [] -> 0.0
    | first :: rest ->
        List.fold_left (fun _ (e : Obs.stamped) -> e.at_s) first.Obs.at_s rest
        -. first.Obs.at_s
  in
  let tracked = !inspect +. !select +. !execute in
  let other = Float.max 0.0 (wall -. tracked) in
  let share x =
    if wall <= 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. x /. wall)
  in
  let phase_row name time n =
    [ name; Analysis.Table.f4 time; share time; Analysis.Table.i n ]
  in
  let info_row name value = [ name; "-"; "-"; value ] in
  let attempts = !committed + !defeated in
  Analysis.Table.make
    ~header:[ "phase"; "time (s)"; "share"; "n" ]
    ([
       phase_row "inspect" !inspect !inspect_n;
       phase_row "select+execute" !select !select_n;
     ]
    @ (if !execute_n > 0 then [ phase_row "direct execute" !execute !execute_n ] else [])
    @ [
        [ "other (sort/select/glue)"; Analysis.Table.f4 other; share other; "-" ];
        [ "wall (first to last event)"; Analysis.Table.f4 wall; share wall; "-" ];
        info_row "rounds" (Analysis.Table.i !rounds);
        info_row "mean window"
          (if !rounds = 0 then "-"
           else Analysis.Table.f1 (float_of_int !window_sum /. float_of_int !rounds));
        info_row "commit ratio"
          (if attempts = 0 then "-"
           else Analysis.Table.f3 (float_of_int !committed /. float_of_int attempts));
        info_row "window adaptations" (Analysis.Table.i !adaptations);
        (* Pool sync split (non-deterministic, machine-load-sensitive):
           how many SPMD wakeups the bounded spin served vs. how many
           fell back to parking on the condvar. *)
        info_row "pool spins (fast wakeups)" (Analysis.Table.i !spins);
        info_row "pool parks (condvar waits)" (Analysis.Table.i !parks);
      ])

(* The traced-run figure: one deterministic bfs run with an in-memory
   sink, summarized by [phase_breakdown]. *)
let obs_phases t =
  let scale = t.data.Dataset.scale in
  Galois.Pool.with_pool ~domains:Dataset.run_threads (fun pool ->
      let g =
        Graphlib.Generators.kout ~seed:scale.Scale.seed ~n:scale.Scale.bfs_nodes
          ~k:scale.Scale.bfs_degree ()
      in
      let mem = Obs.Memory.create () in
      let _, _report =
        Apps.Bfs.galois ~sink:(Obs.Memory.sink mem)
          ~policy:(Galois.Policy.det Dataset.run_threads)
          ~pool g ~source:0
      in
      phase_breakdown (Obs.Memory.contents mem))

let all_figures t =
  [
    ("fig4", "Task rates, abort ratios and rounds (m4x10)", fun () -> fig4 t);
    ("fig5", "Atomic update rates (m4x10)", fun () -> fig5 t);
    ("fig6", "CoreDet-style deterministic thread scheduling slowdowns", fun () -> fig6 t);
    ("fig7-m4x10", "Speedups over best sequential (m4x10)", fun () -> fig7 ~machine:Machine.m4x10 t);
    ("fig7-m4x6", "Speedups over best sequential (m4x6)", fun () -> fig7 ~machine:Machine.m4x6 t);
    ( "fig7-numa8x4",
      "Speedups over best sequential (numa8x4)",
      fun () -> fig7 ~machine:Machine.numa8x4 t );
    ("fig8", "Sequential baseline times", fun () -> fig8 t);
    ("fig9", "Performance relative to PBBS", fun () -> fig9 t);
    ("fig10", "Continuation-optimization ablation", fun () -> fig10 t);
    ("fig11", "DRAM requests (cache simulation)", fun () -> fig11 t);
    ("fig12", "Efficiency vs memory-counter model fit", fun () -> fig12 t);
    ("summary", "Headline medians (paper §5.3)", fun () -> summary t);
    ("ablation", "Design-choice ablations (§3.3 optimizations)", fun () -> ablation t);
    ("obs-phases", "Per-phase time breakdown of a traced deterministic bfs run", fun () ->
      obs_phases t);
  ]

let print_figure ?(oc = Fmt.stdout) t name =
  match List.find_opt (fun (n, _, _) -> n = name) (all_figures t) with
  | None -> Error (Printf.sprintf "unknown figure %S" name)
  | Some (n, title, f) ->
      Fmt.pf oc "@.== %s: %s ==@." n title;
      Analysis.Table.pp oc (f ());
      Ok ()

let print_all ?(oc = Fmt.stdout) t =
  List.iter
    (fun (n, title, f) ->
      Fmt.pf oc "@.== %s: %s ==@." n title;
      Analysis.Table.pp oc (f ()))
    (all_figures t)
