(** The deterministic job server: concurrent bfs/sssp/cc queries
    against a shared {!Catalog}, executed on a shared {!Galois.Pool}.

    The admission queue batches submissions into rounds keyed only by
    (job id, arrival batch) — never wall-clock. {!drain} executes one
    arrival batch (everything pending) in job-id order; each job runs
    as one deterministic Galois run, its parallelism inside the run.
    Rendered responses exclude latency and batch number, so an
    identical submission sequence yields byte-identical responses — and
    an identical folded {!digest} — at any pool size and under any
    grouping of the submissions into batches (as long as nothing is
    rejected; rejections depend on batch boundaries by design).

    Backpressure is deterministic: a submission is rejected iff the
    queue already holds [max_pending] jobs. A rejection is itself a
    recorded response, so two identical submission/drain sequences
    agree byte-for-byte on the rejects too. *)

type outcome =
  | Done of {
      summary : string;  (** app-specific, e.g. [reached=812] *)
      output_digest : Galois.Trace_digest.t;
      sched_digest : Galois.Trace_digest.t;
      commits : int;
      rounds : int;
    }
  | Rejected of { reason : string }  (** deterministic backpressure *)
  | Failed of { reason : string }
      (** deterministic validation failure: unknown graph, missing
          weights, asymmetric graph, source out of range *)

type response = {
  job : int;  (** submission-order id *)
  query : Query.t;
  batch : int;  (** arrival batch it executed in; {e not} rendered *)
  outcome : outcome;
  latency_s : float;  (** submit-to-completion wall time; {e not} rendered *)
}

val render : response -> string
(** One line, e.g.
    [job=3 query=bfs:kout:7 ok reached=812 output=.. sched=.. commits=812 rounds=14].
    A function of (job id, query, outcome) only — byte-comparable
    across pool sizes and admission interleavings. *)

type t

val create :
  ?threads:int -> ?max_pending:int -> ?sink:Obs.sink -> catalog:Catalog.t ->
  Galois.Pool.t -> t
(** A server executing jobs on the given pool with [det:threads]
    (default: the pool size; must not exceed it), holding at most
    [max_pending] (default 1024) queued jobs, teeing every job's events
    into [sink] (default {!Obs.null}). The server does not own the
    pool; shutting the pool down is the creator's job, after the last
    {!drain}. *)

val submit : ?sink:Obs.sink -> t -> Query.t -> [ `Accepted of int | `Rejected of int ]
(** Enqueue a query; the id is the submission rank. [sink] receives
    this job's events (teed with the server's global sink) when it
    executes. Rejected submissions are recorded as {!Rejected}
    responses immediately. *)

val pending : t -> int

val drain : t -> response list
(** Execute every currently pending job — one arrival batch — in job-id
    order and return their responses (also recorded). Jobs submitted
    from a sink while draining join the next batch. *)

(** {2 Introspection} *)

type stats = {
  submitted : int;
  completed : int;
  rejected : int;
  failed : int;
  batches : int;
  pending : int;
  digest : Galois.Trace_digest.t;
}

val stats : t -> stats

val digest : t -> Galois.Trace_digest.t
(** FNV-1a fold of every recorded {!render} line, in record order — the
    service-level analogue of the scheduler's round-trace digest. *)

val responses : t -> response list
(** Every recorded response, in record order. *)

val latencies : t -> float array
(** Completed-job latencies, sorted ascending. *)

val percentile_latency_s : t -> float -> float
(** [percentile_latency_s t 99.0] is the p99 latency (nearest-rank);
    [0.0] when nothing completed. *)
