(* The deterministic job server.

   Determinism at the service boundary (Aviram & Ford): an identical
   sequence of submissions must produce byte-identical responses no
   matter how large the worker pool is or how the submissions were
   grouped into arrival batches. The mechanisms:

   - job ids are assigned in submission order and are the only ordering
     the server ever uses;
   - [drain] executes one arrival batch — everything pending — in job-id
     order, each job as one deterministic Galois run on the shared
     pool (jobs are serialized; parallelism lives *inside* each run,
     where the DIG scheduler makes it schedule-deterministic);
   - rendered responses exclude everything timing-dependent (latency,
     batch number), so the response stream and the digest folded over
     it are functions of the submission sequence alone;
   - backpressure is deterministic: a submission is rejected iff the
     queue already holds [max_pending] jobs — a function of queue
     occupancy, never of wall-clock.

   Across *different* interleavings (the same jobs grouped into
   different arrival batches) the responses are still byte-identical as
   long as nothing is rejected, because execution order is id order
   either way; detcheck's service case checks exactly that. *)

module D = Galois.Trace_digest

type outcome =
  | Done of {
      summary : string;
      output_digest : D.t;
      sched_digest : D.t;
      commits : int;
      rounds : int;
    }
  | Rejected of { reason : string }
  | Failed of { reason : string }

type response = {
  job : int;
  query : Query.t;
  batch : int;
  outcome : outcome;
  latency_s : float;
}

let render_outcome = function
  | Done { summary; output_digest; sched_digest; commits; rounds } ->
      Printf.sprintf "ok %s output=%s sched=%s commits=%d rounds=%d" summary
        (D.to_hex output_digest) (D.to_hex sched_digest) commits rounds
  | Rejected { reason } -> "rejected " ^ reason
  | Failed { reason } -> "failed " ^ reason

let render r =
  Printf.sprintf "job=%d query=%s %s" r.job (Query.to_string r.query)
    (render_outcome r.outcome)

type job = { id : int; query : Query.t; sink : Obs.sink; submitted_s : float }

type t = {
  pool : Galois.Pool.t;
  catalog : Catalog.t;
  threads : int;
  max_pending : int;
  global_sink : Obs.sink;
  queue : job Queue.t;
  mutable next_job : int;
  mutable batches : int;
  mutable digest : D.t;
  mutable completed : int;
  mutable rejected : int;
  mutable failed : int;
  mutable latencies_rev : float list;
  mutable responses_rev : response list;
}

let create ?threads ?(max_pending = 1024) ?(sink = Obs.null) ~catalog pool =
  let threads = match threads with Some t -> t | None -> Galois.Pool.size pool in
  if threads < 1 then invalid_arg "Server.create: threads must be positive";
  if threads > Galois.Pool.size pool then
    invalid_arg "Server.create: more threads than pool workers";
  if max_pending < 1 then invalid_arg "Server.create: max_pending must be positive";
  {
    pool;
    catalog;
    threads;
    max_pending;
    global_sink = sink;
    queue = Queue.create ();
    next_job = 0;
    batches = 0;
    digest = D.seed;
    completed = 0;
    rejected = 0;
    failed = 0;
    latencies_rev = [];
    responses_rev = [];
  }

let pending t = Queue.length t.queue

let record t r =
  t.digest <- D.fold_string t.digest (render r);
  t.responses_rev <- r :: t.responses_rev;
  match r.outcome with
  | Done _ ->
      t.completed <- t.completed + 1;
      t.latencies_rev <- r.latency_s :: t.latencies_rev
  | Rejected _ -> t.rejected <- t.rejected + 1
  | Failed _ ->
      t.failed <- t.failed + 1;
      t.latencies_rev <- r.latency_s :: t.latencies_rev

let submit ?(sink = Obs.null) t query =
  let id = t.next_job in
  t.next_job <- id + 1;
  if Queue.length t.queue >= t.max_pending then begin
    let r =
      {
        job = id;
        query;
        batch = t.batches;
        outcome =
          Rejected { reason = Printf.sprintf "queue-full(max=%d)" t.max_pending };
        latency_s = 0.0;
      }
    in
    record t r;
    `Rejected id
  end
  else begin
    Queue.add { id; query; sink; submitted_s = Galois.Clock.now_s () } t.queue;
    `Accepted id
  end

let digest_ints arr = Array.fold_left D.fold_int D.seed arr

(* One query = one deterministic Galois run on the shared pool. Every
   failure mode is detected from catalog metadata (never by catching
   timing-dependent exceptions), so failures render deterministically
   too. *)
let run_query t ~sink (q : Query.t) =
  match Catalog.find t.catalog (Query.graph q) with
  | None -> Failed { reason = "unknown-graph" }
  | Some entry -> (
      let g = entry.Catalog.graph in
      let n = Graphlib.Csr.nodes g in
      let policy = Galois.Policy.det t.threads in
      let done_ ~summary ~output_digest (report : Galois.Runtime.report) =
        Done
          {
            summary;
            output_digest;
            sched_digest = report.stats.digest;
            commits = report.stats.commits;
            rounds = report.stats.rounds;
          }
      in
      match q with
      | Query.Bfs { source; _ } ->
          if source < 0 || source >= n then Failed { reason = "source-out-of-range" }
          else
            let dist, report =
              Apps.Bfs.galois ~policy ~pool:t.pool ~sink g ~source
            in
            let reached =
              Array.fold_left
                (fun acc d -> if d = Apps.Bfs.unreached then acc else acc + 1)
                0 dist
            in
            done_
              ~summary:(Printf.sprintf "reached=%d" reached)
              ~output_digest:(digest_ints dist) report
      | Query.Sssp { source; _ } -> (
          if source < 0 || source >= n then Failed { reason = "source-out-of-range" }
          else
            (* Weights come from a catalog-side array or the graph's own
               off-heap weight plane (disk-loaded entries); the schedule
               depends on the values only, so the two sources answer
               identically. *)
            let run =
              match entry.Catalog.weights with
              | Some w -> Some (fun () -> Apps.Sssp.galois ~policy ~pool:t.pool ~sink g w ~source)
              | None when Graphlib.Csr.weighted g ->
                  Some (fun () -> Apps.Sssp.galois_weighted ~policy ~pool:t.pool ~sink g ~source)
              | None -> None
            in
            match run with
            | None -> Failed { reason = "graph-has-no-weights" }
            | Some run ->
                let dist, report = run () in
                let reached =
                  Array.fold_left
                    (fun acc d -> if d = Apps.Sssp.unreached then acc else acc + 1)
                    0 dist
                in
                done_
                  ~summary:(Printf.sprintf "reached=%d" reached)
                  ~output_digest:(digest_ints dist) report)
      | Query.Cc _ ->
          if not entry.Catalog.symmetric then
            Failed { reason = "graph-not-symmetric" }
          else
            let labels, report = Apps.Cc.galois ~policy ~pool:t.pool ~sink g in
            done_
              ~summary:
                (Printf.sprintf "components=%d" (Apps.Cc.count_components labels))
              ~output_digest:(digest_ints labels) report)

let execute t ~batch (j : job) =
  let sink = Obs.Sink.tee t.global_sink j.sink in
  let outcome = run_query t ~sink j.query in
  let latency_s = Galois.Clock.now_s () -. j.submitted_s in
  { job = j.id; query = j.query; batch; outcome; latency_s }

let drain t =
  if Queue.is_empty t.queue then []
  else begin
    let batch = t.batches in
    t.batches <- batch + 1;
    (* Snapshot the batch size first: jobs admitted while this batch
       executes belong to the next one. *)
    let count = Queue.length t.queue in
    let responses = ref [] in
    for _ = 1 to count do
      let j = Queue.pop t.queue in
      let r = execute t ~batch j in
      record t r;
      responses := r :: !responses
    done;
    List.rev !responses
  end

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  submitted : int;
  completed : int;
  rejected : int;
  failed : int;
  batches : int;
  pending : int;
  digest : D.t;
}

let stats t =
  {
    submitted = t.next_job;
    completed = t.completed;
    rejected = t.rejected;
    failed = t.failed;
    batches = t.batches;
    pending = pending t;
    digest = t.digest;
  }

let digest (t : t) = t.digest
let responses t = List.rev t.responses_rev

let latencies t =
  let a = Array.of_list t.latencies_rev in
  Array.sort compare a;
  a

let percentile_latency_s t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Server.percentile_latency_s";
  let l = latencies t in
  let n = Array.length l in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    l.(max 0 (min (n - 1) (rank - 1)))
