(* The in-memory graph catalog: load once, query many.

   Entries are immutable once added — a graph, optional per-edge
   weights, and a symmetry flag computed at load time so queries that
   need an undirected graph (cc) can be refused deterministically
   instead of looping. The catalog is the service's only shared mutable
   state besides the admission queue, and it is append-only. *)

type entry = {
  name : string;
  graph : Graphlib.Csr.t;
  weights : int array option;
  symmetric : bool;
}

type t = {
  by_name : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order *)
}

let create () = { by_name = Hashtbl.create 16; order = [] }

let add t ~name ?weights graph =
  if name = "" || String.contains name ':' then
    invalid_arg (Printf.sprintf "Catalog.add: invalid graph name %S" name);
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Catalog.add: duplicate graph %S" name);
  (match weights with
  | Some w when Array.length w <> Graphlib.Csr.edges graph ->
      invalid_arg
        (Printf.sprintf "Catalog.add: %S has %d edges but %d weights" name
           (Graphlib.Csr.edges graph) (Array.length w))
  | _ -> ());
  let entry =
    { name; graph; weights; symmetric = Graphlib.Csr.is_symmetric graph }
  in
  Hashtbl.replace t.by_name name entry;
  t.order <- name :: t.order;
  entry

(* Load-once-from-disk: binary GCSR (preferred — planes map straight
   into off-heap storage, weights stay in the graph's own plane) or
   text edge lists. Raises [Failure]/[Invalid_argument] on corrupt or
   unreadable files; the caller decides whether that is fatal. *)
let add_file t ~name path =
  let graph = Graphlib.Graph_io.load path in
  add t ~name graph

let find t name = Hashtbl.find_opt t.by_name name
let names t = List.rev t.order
let size t = Hashtbl.length t.by_name

let total_graph_bytes t =
  List.fold_left
    (fun acc name ->
      match Hashtbl.find_opt t.by_name name with
      | None -> acc
      | Some e -> acc + Graphlib.Csr.memory_bytes e.graph)
    0 (List.rev t.order)

(* The standard demo/bench catalog: a directed k-out graph with weights
   (bfs + sssp) and a symmetrized one (cc). Everything is a function of
   [seed] and [nodes]. *)
let synthetic ?(seed = 2014) ~nodes () =
  let t = create () in
  let kd = Graphlib.Generators.kout ~seed ~n:nodes ~k:5 () in
  let weights = Graphlib.Graph_io.random_weights ~seed:(seed + 1) kd in
  ignore (add t ~name:"kout" ~weights kd);
  let sym = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed:(seed + 2) ~n:nodes ~k:3 ()) in
  ignore (add t ~name:"sym" sym);
  t
