(** The service request language: a graph query against a named
    {!Catalog} entry. *)

type t =
  | Bfs of { graph : string; source : int }
  | Sssp of { graph : string; source : int }
  | Cc of { graph : string }

val graph : t -> string
(** The catalog name the query addresses. *)

val to_string : t -> string
(** [bfs:GRAPH:SRC], [sssp:GRAPH:SRC] or [cc:GRAPH]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; sources must be non-negative integers. *)
