(** The in-memory graph catalog: load graphs once, serve many queries.

    Append-only; entries are immutable. Symmetry is computed at load
    time so the server can refuse component queries on directed graphs
    deterministically. *)

type entry = {
  name : string;
  graph : Graphlib.Csr.t;
  weights : int array option;  (** per-edge, required by sssp queries *)
  symmetric : bool;  (** computed at {!add}; required by cc queries *)
}

type t

val create : unit -> t

val add : t -> name:string -> ?weights:int array -> Graphlib.Csr.t -> entry
(** Raises [Invalid_argument] on an empty name, a name containing [':']
    (reserved by the query grammar), a duplicate name, or a weight
    array that does not match the graph's edge count. *)

val add_file : t -> name:string -> string -> entry
(** Load a graph from disk (binary GCSR or text edge list, sniffed by
    magic) and {!add} it. Weights embedded in a binary file stay in the
    graph's off-heap weight plane. Raises [Failure] on a corrupt file,
    [Invalid_argument] as {!add} does. *)

val find : t -> string -> entry option
val names : t -> string list
(** Insertion order. *)

val size : t -> int

val total_graph_bytes : t -> int
(** Off-heap bytes held by all catalog graphs. *)

val synthetic : ?seed:int -> nodes:int -> unit -> t
(** The standard demo/bench catalog: ["kout"], a directed 5-out random
    graph with weights (serves bfs and sssp), and ["sym"], a
    symmetrized 3-out graph (serves cc). Deterministic in [seed]. *)
