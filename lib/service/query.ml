(* The service's request language: one line per query, referring to a
   catalog graph by name. The grammar is deliberately tiny — the point
   of the service layer is deterministic execution, not expressiveness —
   and round-trips through [to_string]/[of_string] so responses can
   echo the query they answered verbatim. *)

type t =
  | Bfs of { graph : string; source : int }
  | Sssp of { graph : string; source : int }
  | Cc of { graph : string }

let graph = function Bfs { graph; _ } | Sssp { graph; _ } | Cc { graph } -> graph

let to_string = function
  | Bfs { graph; source } -> Printf.sprintf "bfs:%s:%d" graph source
  | Sssp { graph; source } -> Printf.sprintf "sssp:%s:%d" graph source
  | Cc { graph } -> Printf.sprintf "cc:%s" graph

let of_string s =
  let source_of src k =
    match int_of_string_opt src with
    | Some source when source >= 0 -> Ok (k source)
    | _ -> Error (Printf.sprintf "query %S: bad source %S" s src)
  in
  match String.split_on_char ':' s with
  | [ "bfs"; graph; src ] when graph <> "" ->
      source_of src (fun source -> Bfs { graph; source })
  | [ "sssp"; graph; src ] when graph <> "" ->
      source_of src (fun source -> Sssp { graph; source })
  | [ "cc"; graph ] when graph <> "" -> Ok (Cc { graph })
  | _ ->
      Error
        (Printf.sprintf "query %S: expected bfs:GRAPH:SRC | sssp:GRAPH:SRC | cc:GRAPH" s)
