(* detlint — static determinism lint for the deterministic-path tree.

   The runtime can only guarantee that output is a function of the
   input if the code it hosts never consults an ambient source of
   nondeterminism. This linter parses every [.ml] under the directories
   it is given (compiler-libs [Parse] + an [Ast_iterator] walk over
   expression identifiers) and flags:

     random         Random.* — seedless ambient PRNG state
     hashtbl-order  Hashtbl.iter/fold/to_seq* — bucket-order dependent
     wall-clock     Unix.gettimeofday/Unix.time/Sys.time outside the
                    allowlist (Clock, bin/ and bench/ driver code)
     domain-self    Domain.self — control flow keyed on worker identity
     poly-hash      Hashtbl.hash/seeded_hash/hash_param — polymorphic
                    structural hashing (mutable structures hash by
                    current contents; ids are the deterministic key)

   Escapes: a comment

     (* detlint: allow <rule>[,<rule>...] — <reason> *)

   suppresses findings of those rules on the comment's own lines and
   the line after it; [allow-file] widens the scope to the whole file.
   The reason is mandatory — an allow without one (or naming an unknown
   rule) is itself a finding ([bad-allow]), so every suppression in the
   tree documents why it is safe. Files that fail to parse yield a
   [parse-error] finding rather than passing silently.

   Identifier matching is purely syntactic (an [Ast_iterator] over
   [Pexp_ident] paths, [Stdlib.] prefix normalized away): aliased
   modules ([module R = Random]) escape it, which is the documented
   first-cut limitation the dynamic audit (Galois.Audit) backstops. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rules =
  [
    ("random", "ambient PRNG state (Random.*) — seed-threaded Splitmix instead");
    ( "hashtbl-order",
      "Hashtbl.iter/fold/to_seq* — result depends on hash-bucket layout; \
       sort keys or keep an explicit order list" );
    ( "wall-clock",
      "Unix.gettimeofday/Unix.time/Sys.time outside Clock or driver code — \
       durations must use the monotonic Galois.Clock" );
    ("domain-self", "Domain.self — control flow keyed on worker identity");
    ( "poly-hash",
      "polymorphic structural hashing (Hashtbl.hash family) — mutable \
       structures hash by current contents; hash stable ids instead" );
  ]

let suppressible rule = List.mem_assoc rule rules

(* ------------------------------------------------------------------ *)
(* Rule matching on flattened identifier paths                         *)
(* ------------------------------------------------------------------ *)

let dotted comps = String.concat "." comps

(* Wall-clock allowlist: the monotonic-clock module itself (it wraps
   the only sanctioned absolute-time call sites) and driver code under
   bin/ or bench/, which reports wall-clock times to humans. *)
let wall_clock_exempt path =
  let segments = String.split_on_char '/' path in
  List.mem "bin" segments || List.mem "bench" segments
  || Filename.basename path = "clock.ml"

let rule_of_path ~path comps =
  let comps = match comps with "Stdlib" :: rest -> rest | c -> c in
  match comps with
  | "Random" :: _ -> Some ("random", dotted comps ^ " uses ambient PRNG state")
  | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ]
    ->
      Some
        ( "hashtbl-order",
          dotted comps ^ " visits bindings in hash-bucket order" )
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
      Some
        ( "poly-hash",
          dotted comps ^ " hashes structurally (mutable state leaks in)" )
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      if wall_clock_exempt path then None
      else
        Some
          ( "wall-clock",
            dotted comps ^ " reads the wall clock (use Galois.Clock)" )
  | [ "Domain"; "self" ] ->
      Some ("domain-self", dotted comps ^ " exposes worker identity")
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comment scanning (escape directives)                                *)
(* ------------------------------------------------------------------ *)

(* A hand-rolled scanner that understands just enough OCaml lexing to
   find comments: string literals (with escapes), quoted strings
   ({id|...|id}), char literals vs. type variables, nested comments. *)
let comments source =
  let n = String.length source in
  let line = ref 1 in
  let out = ref [] in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = source.[!i] in
    if c = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if source.[!i] = '(' && !i + 1 < n && source.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if source.[!i] = '*' && !i + 1 < n && source.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          bump source.[!i];
          Buffer.add_char buf source.[!i];
          incr i
        end
      done;
      out := (start_line, !line, Buffer.contents buf) :: !out
    end
    else if c = '"' then begin
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (match source.[!i] with
        | '\\' ->
            if !i + 1 < n then bump source.[!i + 1];
            incr i
        | '"' -> fin := true
        | ch -> bump ch);
        incr i
      done
    end
    else if c = '{' then begin
      (* quoted string literal {id|...|id}? *)
      let j = ref (!i + 1) in
      while
        !j < n && (match source.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
      do
        incr j
      done;
      if !j < n && source.[!j] = '|' then begin
        let id = String.sub source (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        i := !j + 1;
        let fin = ref false in
        while (not !fin) && !i < n do
          if !i + cl <= n && String.sub source !i cl = close then begin
            i := !i + cl;
            fin := true
          end
          else begin
            bump source.[!i];
            incr i
          end
        done
      end
      else incr i
    end
    else if c = '\'' then
      (* char literal ('x', '\n', '\123') vs. type variable ('a) *)
      if !i + 1 < n && source.[!i + 1] = '\\' then begin
        i := !i + 2;
        while !i < n && source.[!i] <> '\'' do
          bump source.[!i];
          incr i
        done;
        incr i
      end
      else if !i + 2 < n && source.[!i + 2] = '\'' then i := !i + 3
      else incr i
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

type allow = {
  a_rule : string;
  a_from : int;  (* first suppressed line *)
  a_to : int;  (* last suppressed line *)
  a_file_wide : bool;
}

let trim = String.trim

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Parse one comment body; returns the allows it grants plus any
   [bad-allow] findings it earns. *)
let parse_directive ~file ~from_line ~to_line body =
  let body = trim body in
  if not (starts_with ~prefix:"detlint:" body) then ([], [])
  else
    let rest = trim (String.sub body 8 (String.length body - 8)) in
    let bad message = ([], [ { file; line = from_line; col = 0; rule = "bad-allow"; message } ]) in
    let keyword, rest =
      match String.index_opt rest ' ' with
      | None -> (rest, "")
      | Some sp ->
          (String.sub rest 0 sp, trim (String.sub rest sp (String.length rest - sp)))
    in
    let file_wide =
      match keyword with
      | "allow" -> Some false
      | "allow-file" -> Some true
      | _ -> None
    in
    match file_wide with
    | None ->
        bad (Printf.sprintf "unknown detlint directive %S (expected allow or allow-file)" keyword)
    | Some a_file_wide -> (
        (* tokens up to a separator (— / - / -- / :) name rules; the
           rest is the mandatory reason. *)
        let tokens = List.filter (fun t -> t <> "") (String.split_on_char ' ' rest) in
        let rec split_rules acc = function
          | [] -> (List.rev acc, None)
          | ("\xe2\x80\x94" | "-" | "--" | ":") :: reason -> (List.rev acc, Some reason)
          | t :: ts -> split_rules (t :: acc) ts
        in
        let rule_toks, reason = split_rules [] tokens in
        let named_rules =
          List.concat_map
            (fun t -> List.filter (fun r -> r <> "") (String.split_on_char ',' t))
            rule_toks
        in
        match (named_rules, reason) with
        | [], _ -> bad "detlint allow names no rule"
        | _, (None | Some []) ->
            bad "detlint allow without a reason (write: allow <rule> — <why this is safe>)"
        | rules_named, Some _ -> (
            match List.find_opt (fun r -> not (suppressible r)) rules_named with
            | Some r -> bad (Printf.sprintf "detlint allow names unknown rule %S" r)
            | None ->
                ( List.map
                    (fun a_rule ->
                      { a_rule; a_from = from_line; a_to = to_line + 1; a_file_wide })
                    rules_named,
                  [] )))

(* ------------------------------------------------------------------ *)
(* AST scan                                                            *)
(* ------------------------------------------------------------------ *)

let ident_findings ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn ->
      Error
        [
          {
            file = path;
            line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum;
            col = 0;
            rule = "parse-error";
            message = Printexc.to_string exn;
          };
        ]
  | ast ->
      let acc = ref [] in
      let on_ident lid (loc : Location.t) =
        match rule_of_path ~path (Longident.flatten lid) with
        | None -> ()
        | Some (rule, message) ->
            let p = loc.Location.loc_start in
            acc :=
              {
                file = path;
                line = p.Lexing.pos_lnum;
                col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
                rule;
                message;
              }
              :: !acc
      in
      let iterator =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident l -> on_ident l.Location.txt l.Location.loc
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      iterator.Ast_iterator.structure iterator ast;
      Ok (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Putting a file together                                             *)
(* ------------------------------------------------------------------ *)

let compare_findings a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let scan_source ~path source =
  let allows, bad =
    List.fold_left
      (fun (allows, bad) (from_line, to_line, body) ->
        let a, b = parse_directive ~file:path ~from_line ~to_line body in
        (a @ allows, b @ bad))
      ([], []) (comments source)
  in
  let suppressed f =
    List.exists
      (fun a ->
        a.a_rule = f.rule && (a.a_file_wide || (f.line >= a.a_from && f.line <= a.a_to)))
      allows
  in
  let raw =
    match ident_findings ~path source with Ok fs -> fs | Error fs -> fs
  in
  List.sort compare_findings (bad @ List.filter (fun f -> not (suppressed f)) raw)

let read_file real_path =
  let ic = open_in_bin real_path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ?as_path real_path =
  let path = Option.value as_path ~default:real_path in
  scan_source ~path (read_file real_path)

let rec walk path acc =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc e ->
        if e = "" || e.[0] = '.' || e = "_build" then acc
        else walk (Filename.concat path e) acc)
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let scan_path path =
  if Sys.is_directory path then
    List.concat_map (fun f -> scan_file f) (List.rev (walk path []))
  else scan_file path

let scan_paths paths = List.concat_map scan_path paths

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_finding ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let to_json f =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"file\":\"";
  json_escape buf f.file;
  Buffer.add_string buf (Printf.sprintf "\",\"line\":%d,\"col\":%d,\"rule\":\"" f.line f.col);
  json_escape buf f.rule;
  Buffer.add_string buf "\",\"message\":\"";
  json_escape buf f.message;
  Buffer.add_string buf "\"}";
  Buffer.contents buf
