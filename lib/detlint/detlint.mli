(** Static determinism lint.

    Parses [.ml] files (compiler-libs) and flags identifier uses that
    undermine deterministic execution: ambient randomness, hash-bucket
    iteration order, wall-clock reads outside the allowlist, worker-id
    dependent control flow and polymorphic structural hashing.

    Escape hatch: a comment [(* detlint: allow <rule> — <reason> *)]
    suppresses the named rule(s) on its own lines and the line after
    it; [allow-file] covers the whole file. The reason is mandatory —
    reasonless or unknown-rule allows are reported as [bad-allow].
    Unparseable files are reported as [parse-error]. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

val rules : (string * string) list
(** Suppressible rule names with one-line descriptions ([bad-allow] and
    [parse-error] are linter self-diagnostics, not suppressible). *)

val scan_source : path:string -> string -> finding list
(** [scan_source ~path source] lints one compilation unit. [path] is
    used for reporting and for the wall-clock allowlist (paths with a
    [bin] or [bench] segment, and [clock.ml], may read the wall clock).
    Findings are sorted by (file, line, col, rule). *)

val scan_file : ?as_path:string -> string -> finding list
(** Read and lint one file. [as_path] overrides the path used for
    reporting/allowlisting (for tests linting temp files). *)

val scan_paths : string list -> finding list
(** Lint every [.ml] under the given files/directories (recursive,
    lexicographic order; skips dotfiles and [_build]). *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [rule] message] *)

val to_json : finding -> string
(** One-line JSON object: {"file":..,"line":..,"col":..,"rule":..,"message":..} *)
