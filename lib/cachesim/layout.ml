(* Graph-layout cache modelling: what the compact CSR buys.

   The paper's locality argument (Fig. 11/12) is about how a layout
   maps the runtime's access stream onto cache lines. This module
   replays a *recorded* schedule — the same streams [Hierarchy.replay]
   consumes, where each record's lock ids are the graph nodes a task
   touched — against a byte-accurate model of a CSR layout: reading
   node [u]'s adjacency touches the cache lines holding
   [offsets[u..u+1]] and [targets[lo..hi)], whose byte addresses depend
   on the element width. Replaying the identical stream at 8 bytes per
   entry (the old boxed [int array] substrate) and at the compact
   plane's own width (4 bytes below 2^31) isolates the layout effect:
   same accesses, same cache, different line footprint. *)

type summary = {
  label : string;
  entry_bytes : int;
  accesses : int;
  hits : int;
  misses : int;
  lines_touched : int;  (* distinct cache lines the graph spans in the stream *)
}

let hit_rate s =
  if s.accesses = 0 then 0.0 else float_of_int s.hits /. float_of_int s.accesses

let line_bytes = 64

(* Touch every line the traversal of [u]'s adjacency reads under the
   given element width. Offsets and targets occupy disjoint
   line-aligned regions, exactly like two separately allocated
   planes. *)
let touch_node ~entry_bytes g ~touch u =
  let n = Graphlib.Csr.nodes g in
  let targets_base = (((n + 1) * entry_bytes) + line_bytes - 1) / line_bytes in
  (* offsets[u] and offsets[u+1] *)
  touch (u * entry_bytes / line_bytes);
  touch ((u + 1) * entry_bytes / line_bytes);
  let lo, hi = Graphlib.Csr.edge_range g u in
  if hi > lo then begin
    let first = targets_base + (lo * entry_bytes / line_bytes) in
    let last = targets_base + ((hi - 1) * entry_bytes / line_bytes) in
    for line = first to last do
      touch line
    done
  end

(* Replay a recorded schedule's node stream through one cache per
   worker (round-robin worker assignment, like [Hierarchy.replay]). *)
let replay ?(lines = 512) ?(associativity = 8) ?(threads = 1) ~entry_bytes ~label g schedule =
  let caches = Array.init threads (fun _ -> Cache.create ~lines ~associativity) in
  let seen = Hashtbl.create 1024 in
  let accesses = ref 0 in
  let touch_with cache line =
    incr accesses;
    if not (Hashtbl.mem seen line) then Hashtbl.add seen line ();
    ignore (Cache.access cache line)
  in
  let replay_record worker (r : Galois.Schedule.task_record) =
    let cache = caches.(worker mod threads) in
    Array.iter
      (fun lid ->
        if lid >= 0 && lid < Graphlib.Csr.nodes g then
          touch_node ~entry_bytes g ~touch:(touch_with cache) lid)
      r.Galois.Schedule.locks
  in
  (match schedule with
  | Galois.Schedule.Flat records -> List.iteri replay_record records
  | Galois.Schedule.Rounds rounds ->
      List.iter
        (fun round ->
          Array.iteri replay_record round;
          Array.iteri
            (fun i r -> if r.Galois.Schedule.committed then replay_record i r)
            round)
        rounds);
  let hits = Array.fold_left (fun acc c -> acc + Cache.hits c) 0 caches in
  let misses = Array.fold_left (fun acc c -> acc + Cache.misses c) 0 caches in
  {
    label;
    entry_bytes;
    accesses = !accesses;
    hits;
    misses;
    lines_touched = Hashtbl.length seen;
  }

(* The headline comparison: the same recorded stream under the old
   8-byte boxed-array layout and under the graph's own compact plane
   width. *)
let compare_layouts ?lines ?associativity ?threads g schedule =
  let compact_bytes =
    Graphlib.Plane.bytes_per_value (Graphlib.Csr.targets_plane g)
  in
  let boxed = replay ?lines ?associativity ?threads ~entry_bytes:8 ~label:"boxed-8B" g schedule in
  let compact =
    replay ?lines ?associativity ?threads ~entry_bytes:compact_bytes
      ~label:(Printf.sprintf "compact-%dB" compact_bytes)
      g schedule
  in
  (boxed, compact)

let pp_summary ppf s =
  Format.fprintf ppf "%-12s entry=%dB accesses=%d hits=%d misses=%d hit-rate=%.4f lines=%d"
    s.label s.entry_bytes s.accesses s.hits s.misses (hit_rate s) s.lines_touched
