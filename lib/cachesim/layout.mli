(** Cache modelling of CSR layouts on recorded schedules.

    Replays the node stream of a recorded {!Galois.Schedule.t} against
    a byte-accurate model of the graph's CSR planes at a given element
    width, so the compact off-heap layout (4 bytes per entry below
    [2^31]) can be compared with the historical boxed [int array]
    substrate (8 bytes per entry) on the {e same} access stream —
    the Fig. 11/12-style locality isolation. *)

type summary = {
  label : string;
  entry_bytes : int;
  accesses : int;
  hits : int;
  misses : int;
  lines_touched : int;
      (** distinct 64-byte lines of the graph the stream touched —
          footprint, a layout-only quantity *)
}

val hit_rate : summary -> float

val replay :
  ?lines:int ->
  ?associativity:int ->
  ?threads:int ->
  entry_bytes:int ->
  label:string ->
  Graphlib.Csr.t ->
  Galois.Schedule.t ->
  summary
(** Replay the schedule's lock (node) stream: each task's node touches
    its offset entries and its adjacency range at [entry_bytes] per
    element, through one set-associative LRU cache per worker
    (round-robin assignment, as in {!Hierarchy.replay}). Defaults:
    512-line, 8-way, single worker. *)

val compare_layouts :
  ?lines:int ->
  ?associativity:int ->
  ?threads:int ->
  Graphlib.Csr.t ->
  Galois.Schedule.t ->
  summary * summary
(** [(boxed, compact)]: the stream replayed at 8 bytes per entry and at
    the graph's own plane width. *)

val pp_summary : Format.formatter -> summary -> unit
