(** Determinism audit: falsify the paper's central claim on demand.

    A {!case} is a runnable program whose results are summarized as three
    digests. {!check_invariance} sweeps it over a configuration lattice
    (thread counts × initial windows × locality spread × continuation ×
    static ids), asserting:

    - at a fixed configuration, the round-trace digest
      ({!Galois.Stats.t.digest}), the order-sensitive output digest and
      the rendered deterministic observability event stream
      ({!Obs.deterministic_lines}, timing events stripped) are identical
      across all thread counts — the paper's portability claim, checked
      in O(1) per comparison (byte-for-byte for the event stream);
    - across configurations, the case's canonical digest (its notion of
      "the answer") is identical — schedules may differ, answers may
      not.

    {!Gen} supplies property-based random cases (random conflict
    topologies, random operator shapes); {!App_cases} adapts the real
    benchmarks. {!seeds_distinguished} is the positive control proving
    the digests can diverge at all. *)

type run_result = {
  sched_digest : Galois.Trace_digest.t;
      (** {!Galois.Stats.t.digest} of the run; absent for serial/nondet *)
  output_digest : Galois.Trace_digest.t;
      (** order-sensitive digest of the final output; thread-invariant at
          a fixed configuration *)
  canonical_digest : Galois.Trace_digest.t;
      (** digest of the configuration-invariant answer *)
  commits : int;
  det_trace : string;
      (** rendered deterministic event stream of the run
          ({!Obs.deterministic_lines}): byte-identical across thread
          counts at a fixed configuration *)
}

type case = {
  name : string;
  static_id_capable : bool;
      (** whether running under [~static_id] preserves the case's
          semantics (task keys unique, duplicate collapsing a no-op) *)
  run :
    policy:Galois.Policy.t ->
    pool:Galois.Pool.t ->
    static_id:bool ->
    run_result;
}

type config = { label : string; options : Galois.Policy.det_options; static_id : bool }

val lattice : static_id_capable:bool -> config list
(** The default configuration lattice: adaptive and pinned initial
    windows, locality spread on/off, continuation on/off, mark
    validation, soft-priority bucketing ([prio=delta:8], [prio=auto],
    [prio=auto] with a pinned small window), and (when the case
    permits) static ids. *)

val default_threads : int list
(** [\[1; 2; 4; 8\]]. *)

type divergence = {
  case_name : string;
  config : string;
  threads : int;
  quantity : string;
  expected : Galois.Trace_digest.t;
  got : Galois.Trace_digest.t;
}

type report = { case_name : string; runs : int; divergences : divergence list }

val ok : report -> bool
val pp_divergence : Format.formatter -> divergence -> unit
val pp_report : Format.formatter -> report -> unit

val check_invariance : ?threads:int list -> ?configs:config list -> case -> report
(** Run the case at every (configuration, thread count) lattice point —
    one shared domain pool sized to the largest thread count — and
    collect every digest divergence. An empty divergence list is the
    audit passing. *)

val seeds_distinguished :
  ?threads:int -> gen:(int -> case) -> seed:int -> Galois.Policy.t -> bool
(** Positive control: cases generated from [seed] and [seed + 1] must
    have different canonical digests under the given policy. False means
    the digest pipeline cannot signal divergence — every green audit is
    then meaningless. *)

val prio_salt_distinguished : ?threads:int -> seed:int -> unit -> bool
(** Positive control for the soft-priority axis: with a forced
    non-trivial priority range, perturbing the bucket-assignment salt
    must change the [prio=delta:1] schedule digest (buckets are folded
    into it) while leaving the [prio=off] digest untouched. False means
    the bucket plumbing is inert and the prio lattice rows prove
    nothing. *)

(** Property-based random cases over {!Parallel.Splitmix}: random
    conflict-lock topologies and random synthetic operators (randomized
    acquire sets, failsafe placement, continuation saves, work reports
    and task pushes). Everything is a function of the seed. *)
module Gen : sig
  type topology = Ring | Clusters | Bipartite | Subsets | Star

  val topology_name : topology -> string

  type params = {
    seed : int;
    tasks : int;
    locks : int;
    topology : topology;
    max_neigh : int;
    push_prob : float;
    max_children : int;
    max_depth : int;
    pure_prob : float;
    save_prob : float;
    work_max : int;
    unique_children : bool;
    prio_salt : int;
        (** seeds the per-task priority hash; perturbing it moves tasks
            between delta-stepping buckets (see
            {!prio_salt_distinguished}) *)
    prio_range : int;  (** priorities span [\[0, prio_range)] *)
  }

  val random_params : seed:int -> params
  (** The priority draws are appended after every pre-existing draw, so
      names, schedules and digests of cases pinned before the
      soft-priority axis are unchanged. *)

  val name_of_params : params -> string
  (** The case name [case_of_params] would report. *)

  val priority_of : params -> int * int -> int
  (** The per-task priority hash: pure in (params, item), in
      [\[0, prio_range)] (0 when [prio_range <= 1]). Attached to every
      generated run via {!Galois.Run.priority} — inert under the
      default [prio=off] configurations. *)

  type instance = {
    run : (int * int, int) Galois.Run.t;
        (** the unexecuted description over this instance's fresh world,
            tagged [app "gen"] with a snapshot-state hook over the
            output cells *)
    output_digest : unit -> Galois.Trace_digest.t;
    canonical_digest : commits:int -> Galois.Trace_digest.t;
  }
  (** A fresh world plus its run description, not yet executed — the
      checkpoint/replay harness's entry point ([case_of_params] runs
      one instance per [run] call). *)

  val instance : ?static_id:bool -> params -> instance

  val case_of_params : params -> case

  val case : seed:int -> case
  (** [case_of_params (random_params ~seed)]. *)
end

(** The paper's benchmarks as auditable cases. Inputs are generated once
    at case construction; each [run] re-executes from a fresh state. *)
module App_cases : sig
  val bfs : n:int -> seed:int -> case
  val sssp : n:int -> seed:int -> case
  val boruvka : n:int -> seed:int -> case

  val dmr : points:int -> seed:int -> case
  (** Canonical digest is the refinement postcondition (mesh consistent
      and fully refined): the refined mesh itself is legitimately
      configuration-dependent, but must be thread-invariant at any fixed
      configuration (its canonical triangle list is the output
      digest). *)
end

(** Cases for the dynamic neighborhood/race audit ({!Galois.Run.audit}).

    {!Audit_cases.apps} runs every Run-based benchmark with auditing on:
    all are cautious by construction, so {!Galois.Audit.clean} must hold
    on each report (the race check also re-verifies the scheduler's
    disjoint-neighborhood invariant, since acquires count as writes).
    {!Audit_cases.controls} are deliberately broken operators — the
    audit's positive controls — each returning witness findings that
    must appear verbatim in its report. *)
module Audit_cases : sig
  type t = {
    name : string;
    run : policy:Galois.Policy.t -> pool:Galois.Pool.t -> Galois.Audit.report;
  }

  val apps : n:int -> points:int -> seed:int -> t list
  (** The ten Run-based benchmarks (bfs, sssp, cc, boruvka, mis,
      triangles, pagerank, dt, dmr, pfp), worlds rebuilt per run where
      the operator mutates them. *)

  type control = {
    cname : string;
    crun :
      policy:Galois.Policy.t ->
      pool:Galois.Pool.t ->
      Galois.Audit.report * Galois.Audit.finding list;
  }

  val non_cautious_bfs : n:int -> seed:int -> control
  (** BFS whose distance write precedes the failsafe point: flagged as
      (cautiousness, round 1, task 1) on the source node's location. *)

  val racy_sssp : unit -> control
  (** Two tasks with disjoint neighborhoods both writing an unacquired
      shared location: two containment findings plus one write/write
      race, all in round 1. *)

  val controls : n:int -> seed:int -> control list
end

(** Cases for the checkpoint/replay harness (lib/replay, test_replay):
    instead of executing internally, each case hands out its unexecuted
    run description so the harness can checkpoint / crash / resume it.
    [fresh] builds a brand-new world per call — crash/resume tests need
    one world for the uninterrupted reference and a separate one to
    crash. Names match the {!Gen} / {!App_cases} names for the same
    parameters, so pinned fixture entries can be cross-referenced. *)
module Replay_cases : sig
  type t =
    | Case : {
        name : string;
        static_id_capable : bool;
        snapshot_capable : bool;
            (** carries a snapshot-state hook: serialized cross-process
                resume works, not just live in-process resume *)
        fresh :
          static_id:bool ->
          unit ->
          ('i, 's) Galois.Run.t * (unit -> Galois.Trace_digest.t);
            (** a fresh world's description plus an output digest read
                off that world (call after executing) *)
      }
        -> t

  val name : t -> string
  val static_id_capable : t -> bool
  val snapshot_capable : t -> bool
  val gen : seed:int -> t
  val bfs : n:int -> seed:int -> t
  val sssp : n:int -> seed:int -> t
  val boruvka : n:int -> seed:int -> t
  val dmr : points:int -> seed:int -> t
end

(** The service lattice: determinism at the service boundary. An
    identical mixed bfs/sssp/cc query batch against a shared
    {!Service.Catalog} must yield byte-identical responses, per-job
    deterministic event streams, and service digests across pool sizes
    and across admission interleavings (the same submissions grouped
    into different arrival batches). *)
module Service_case : sig
  val queries : seed:int -> nodes:int -> count:int -> Service.Query.t list
  (** The deterministic workload: query [i] is a function of
      [(seed, i)] alone — bfs/sssp against ["kout"], cc against
      ["sym"], in the {!Service.Catalog.synthetic} catalog. *)

  val check :
    ?pool_sizes:int list -> ?count:int -> ?nodes:int -> seed:int -> unit -> report
  (** Run the [count]-query workload (default 120) once per
      (pool size × interleaving) lattice point — pool sizes default to
      {!default_threads}, interleavings are one-arrival-batch and
      uneven batches of 17 — and compare every point's response stream
      byte-for-byte (with each job's deterministic event-stream digest
      appended) against the first. *)
end
