(* Determinism audit.

   The paper's headline claim — DIG scheduling makes output a function of
   the input alone, never of thread count or timing — is exactly the kind
   of claim that silently rots as the runtime grows. This module exists
   to falsify it cheaply and continuously:

   - [check_invariance] sweeps a configuration lattice (thread counts ×
     initial windows × locality spread × continuation × static ids) and
     compares round-trace digests ([Stats.t.digest]) and output digests
     across the sweep in O(1) per comparison;

   - [Gen] generates random conflict topologies and random synthetic
     operators (randomized acquire sets, failsafe placement, continuation
     saves, task pushes) so the audit covers operator shapes no
     hand-written app exercises;

   - [seeds_distinguished] is the positive control: perturbing the case
     seed must change the digests, proving the machinery can actually
     signal divergence and is not vacuously green.

   Two invariance strengths are distinguished, because they are
   genuinely different claims:

   - across thread counts at a fixed configuration, the *schedule itself*
     is invariant: round-trace digest, output digest, and the rendered
     deterministic observability event stream (lib/obs, timing events
     stripped) byte for byte;

   - across configurations (window, spread, static ids), the schedule
     legitimately differs but the *answer* must not: only the
     case-defined canonical digest (final distances; the committed-task
     multiset; the refinement postcondition) is compared. *)

module D = Galois.Trace_digest
module Splitmix = Parallel.Splitmix

type run_result = {
  sched_digest : D.t;  (* Stats.t.digest: absent for serial/nondet *)
  output_digest : D.t;  (* order-sensitive digest of the final output *)
  canonical_digest : D.t;  (* configuration-invariant digest of the answer *)
  commits : int;
  det_trace : string;
      (* The rendered deterministic observability event stream
         ([Obs.deterministic_lines] of the run's trace, timing fields
         stripped): must be byte-identical across thread counts at a
         fixed configuration, like the schedule digest — but checked at
         the event level, so a divergence names the first differing
         round rather than just "digests differ". *)
}

type case = {
  name : string;
  static_id_capable : bool;
      (* true iff running the case with [Runtime.for_each ~static_id]
         preserves its semantics (task keys are unique, so duplicate
         collapsing is a no-op) *)
  run :
    policy:Galois.Policy.t ->
    pool:Galois.Pool.t ->
    static_id:bool ->
    run_result;
}

(* ------------------------------------------------------------------ *)
(* The configuration lattice                                           *)
(* ------------------------------------------------------------------ *)

type config = { label : string; options : Galois.Policy.det_options; static_id : bool }

let lattice ~static_id_capable =
  let base = Galois.Policy.default_det in
  let fixed =
    [
      { label = "default"; options = base; static_id = false };
      { label = "window=8"; options = { base with initial_window = Some 8 }; static_id = false };
      {
        label = "window=256";
        options = { base with initial_window = Some 256 };
        static_id = false;
      };
      { label = "spread=1"; options = { base with spread = 1 }; static_id = false };
      {
        label = "no-continuation";
        options = { base with continuation = false };
        static_id = false;
      };
      { label = "validate"; options = { base with validate = true }; static_id = false };
      {
        label = "prio=delta:8";
        options = { base with priority = Galois.Policy.Prio_delta 8 };
        static_id = false;
      };
      {
        label = "prio=auto";
        options = { base with priority = Galois.Policy.Prio_auto };
        static_id = false;
      };
      {
        label = "prio=auto+window=8";
        options =
          { base with priority = Galois.Policy.Prio_auto; initial_window = Some 8 };
        static_id = false;
      };
    ]
  in
  if static_id_capable then
    fixed
    @ [
        { label = "static-id"; options = base; static_id = true };
        {
          label = "static-id+window=8";
          options = { base with initial_window = Some 8 };
          static_id = true;
        };
      ]
  else fixed

let default_threads = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* The invariance checker                                              *)
(* ------------------------------------------------------------------ *)

type divergence = {
  case_name : string;
  config : string;
  threads : int;
  quantity : string;
      (* "sched-digest" | "output-digest" | "canonical-digest"
         | "trace-stream" (digests of the deterministic event stream) *)
  expected : D.t;
  got : D.t;
}

type report = { case_name : string; runs : int; divergences : divergence list }

let ok r = r.divergences = []

let pp_divergence ppf (d : divergence) =
  Fmt.pf ppf "%s [%s, %d threads]: %s %a, expected %a" d.case_name d.config d.threads
    d.quantity D.pp d.got D.pp d.expected

let pp_report ppf r =
  if ok r then Fmt.pf ppf "%s: invariant over %d runs" r.case_name r.runs
  else
    Fmt.pf ppf "@[<v>%s: %d divergence(s) in %d runs:@ %a@]" r.case_name
      (List.length r.divergences) r.runs
      (Fmt.list ~sep:Fmt.cut pp_divergence)
      r.divergences

let check_invariance ?(threads = default_threads) ?configs case =
  let configs =
    match configs with Some c -> c | None -> lattice ~static_id_capable:case.static_id_capable
  in
  let tmax = List.fold_left max 1 threads in
  Galois.Pool.with_pool ~domains:tmax (fun pool ->
      let runs = ref 0 and divergences = ref [] in
      let diverged ~config ~threads ~quantity ~expected ~got =
        divergences :=
          { case_name = case.name; config; threads; quantity; expected; got } :: !divergences
      in
      (* The canonical answer of the whole lattice is anchored at the
         first configuration's single-thread run. *)
      let canonical = ref None in
      List.iter
        (fun cfg ->
          let run t =
            incr runs;
            case.run
              ~policy:(Galois.Policy.det ~options:cfg.options t)
              ~pool ~static_id:cfg.static_id
          in
          match List.map (fun t -> (t, run t)) threads with
          | [] -> ()
          | (_, reference) :: rest ->
              (match !canonical with
              | None -> canonical := Some reference.canonical_digest
              | Some c ->
                  if not (D.equal c reference.canonical_digest) then
                    diverged ~config:cfg.label ~threads:(List.hd threads)
                      ~quantity:"canonical-digest" ~expected:c
                      ~got:reference.canonical_digest);
              List.iter
                (fun (t, r) ->
                  let check quantity expected got =
                    if not (D.equal expected got) then
                      diverged ~config:cfg.label ~threads:t ~quantity ~expected ~got
                  in
                  check "sched-digest" reference.sched_digest r.sched_digest;
                  check "output-digest" reference.output_digest r.output_digest;
                  check "canonical-digest" reference.canonical_digest r.canonical_digest;
                  (* Byte-compare the deterministic event streams; report
                     as digests (the strings are too long for a
                     divergence record). *)
                  if not (String.equal reference.det_trace r.det_trace) then
                    check "trace-stream"
                      (D.fold_string D.seed reference.det_trace)
                      (D.fold_string D.seed r.det_trace))
                rest)
        configs;
      { case_name = case.name; runs = !runs; divergences = List.rev !divergences })

(* Positive control: the audit must be able to see a difference. Two
   cases drawn from different seeds must produce different canonical
   digests under [policy]; if they ever agree, the digest pipeline has
   collapsed (and every invariance "pass" above is meaningless). *)
let seeds_distinguished ?(threads = 2) ~gen ~seed policy =
  Galois.Pool.with_pool ~domains:threads (fun pool ->
      let digest s = ((gen s).run ~policy ~pool ~static_id:false).canonical_digest in
      not (D.equal (digest seed) (digest (seed + 1))))

(* ------------------------------------------------------------------ *)
(* Property-based case generation                                      *)
(* ------------------------------------------------------------------ *)

module Gen = struct
  type topology =
    | Ring  (* task k locks a contiguous run starting at k mod L *)
    | Clusters  (* disjoint lock blocks plus an occasional global lock *)
    | Bipartite  (* even tasks lock the low half, odd tasks the high half *)
    | Subsets  (* independent random subsets *)
    | Star  (* everyone contends on lock 0: worst-case window shrink *)

  let topology_name = function
    | Ring -> "ring"
    | Clusters -> "clusters"
    | Bipartite -> "bipartite"
    | Subsets -> "subsets"
    | Star -> "star"

  type params = {
    seed : int;
    tasks : int;
    locks : int;
    topology : topology;
    max_neigh : int;  (* acquire-set size bound (topology-dependent use) *)
    push_prob : float;  (* chance a task creates children *)
    max_children : int;
    max_depth : int;  (* push generations: 0 = static task pool *)
    pure_prob : float;  (* chance a task never reaches its failsafe *)
    save_prob : float;  (* chance a task uses the continuation save *)
    work_max : int;  (* abstract work units bound *)
    unique_children : bool;  (* injective child keys: static_id-safe *)
    prio_salt : int;  (* perturbing it moves tasks between buckets *)
    prio_range : int;  (* priorities span [0, prio_range) *)
  }

  let random_params ~seed =
    let g = Splitmix.create ((seed * 2_654_435_761) + 97) in
    let topology =
      match Splitmix.int g 5 with
      | 0 -> Ring
      | 1 -> Clusters
      | 2 -> Bipartite
      | 3 -> Subsets
      | _ -> Star
    in
    let tasks =
      (* Star serializes into one commit per round; keep it small. *)
      match topology with Star -> 8 + Splitmix.int g 32 | _ -> 20 + Splitmix.int g 120
    in
    let p =
      {
        seed;
        tasks;
        locks = 4 + Splitmix.int g 40;
        topology;
        max_neigh = 1 + Splitmix.int g 4;
        push_prob = Splitmix.float g *. 0.6;
        max_children = 1 + Splitmix.int g 2;
        max_depth = Splitmix.int g 3;
        pure_prob = Splitmix.float g *. 0.5;
        save_prob = Splitmix.float g;
        work_max = 1 + Splitmix.int g 8;
        unique_children = Splitmix.bool g;
        prio_salt = 0;
        prio_range = 0;
      }
    in
    (* Priority draws are appended after every pre-existing draw so that
       case names, schedules and pinned digests from before the
       soft-priority axis stay byte-identical. *)
    let prio_salt = Splitmix.int g 1_000_000 in
    let prio_range = 1 + Splitmix.int g 64 in
    { p with prio_salt; prio_range }

  (* Per-item generator: every random choice a task makes is a function
     of (case seed, item) only, so re-executions of the task — inspect,
     retry after an abort, commit — replay identical decisions. *)
  let item_rng p (depth, key) = Splitmix.create ((((p.seed * 1_000_003) + depth) * 1_000_003) + key)

  let neighborhood p (depth, key) =
    let g = item_rng p (depth, key) in
    let l = p.locks in
    match p.topology with
    | Ring ->
        let deg = 1 + Splitmix.int g p.max_neigh in
        List.init deg (fun i -> (key + i) mod l)
    | Clusters ->
        let blocks = max 1 (l / 8) in
        let block = key mod blocks in
        let lo = block * (l / blocks) in
        let width = max 1 (l / blocks) in
        let deg = 1 + Splitmix.int g (min p.max_neigh width) in
        let inside = List.init deg (fun _ -> lo + Splitmix.int g width) in
        let hub = if Splitmix.float g < 0.2 then [ 0 ] else [] in
        List.sort_uniq compare (hub @ inside)
    | Bipartite ->
        let half = max 1 (l / 2) in
        let lo = if key mod 2 = 0 then 0 else half in
        let width = if key mod 2 = 0 then half else l - half in
        let deg = 1 + Splitmix.int g (min p.max_neigh (max 1 width)) in
        List.sort_uniq compare (List.init deg (fun _ -> lo + Splitmix.int g (max 1 width)))
    | Subsets ->
        let deg = 1 + Splitmix.int g p.max_neigh in
        List.sort_uniq compare (List.init deg (fun _ -> Splitmix.int g l))
    | Star ->
        if Splitmix.int g 4 = 0 && l > 1 then [ 0; 1 + Splitmix.int g (l - 1) ] else [ 0 ]

  let children p (depth, key) =
    if depth >= p.max_depth then []
    else
      let g = Splitmix.create ((((p.seed * 19_260_817) + depth) * 1_000_003) + key) in
      if Splitmix.float g >= p.push_prob then []
      else
        let n = 1 + Splitmix.int g p.max_children in
        List.init n (fun c ->
            if p.unique_children then (depth + 1, (key * (p.max_children + 1)) + c + 1)
            else (depth + 1, Splitmix.int g p.tasks))

  let token (depth, key) = (depth * 1_000_003) + key

  (* One splitmix64 step as a 64-bit mixer; canonical digests sum these
     per cell, making the per-cell combination order-insensitive (the
     committed-task multiset is lattice-invariant; the commit order is
     only thread-invariant). *)
  let mix i = Splitmix.next_int64 (Splitmix.create ((i * 2) + 1))

  let key_of (depth, key) = (depth * 10_000_019) + key

  (* Task priority: a SplitMix hash of (salt, item) folded into
     [0, prio_range). Pure in (params, item), so every re-execution and
     every configuration sees the same bucket assignment; perturbing
     [prio_salt] reshuffles the buckets (the positive control). *)
  let priority_of p item =
    if p.prio_range <= 1 then 0
    else Splitmix.int (Splitmix.create ((p.prio_salt * 1_000_003) + token item)) p.prio_range

  let name_of_params p =
    Printf.sprintf "gen(seed=%d,%s,tasks=%d,locks=%d,depth=%d)" p.seed
      (topology_name p.topology) p.tasks p.locks p.max_depth

  (* A fresh world (locks + output cells) and the unexecuted run
     description over it — the checkpoint/replay layer exercises the
     description directly (checkpoint it, crash it, resume it), so it is
     split out of [case_of_params]. The cell array is the world's entire
     state; the snapshot hook copies the lists in and out, making gen
     cases cross-process resumable. *)
  type instance = {
    run : (int * int, int) Galois.Run.t;
    output_digest : unit -> D.t;
    canonical_digest : commits:int -> D.t;
  }

  let instance ?(static_id = false) p =
    let locks = Galois.Lock.create_array p.locks in
    let cells = Array.init p.locks (fun _ -> ref []) in
    let operator ctx item =
      let g = item_rng p item in
      let neigh = neighborhood p item in
      List.iter (fun j -> Galois.Context.acquire ctx locks.(j)) neigh;
      Galois.Context.work ctx (1 + Splitmix.int g p.work_max);
      let pure = Splitmix.float g < p.pure_prob in
      if pure then
        (* Read-only task: no failsafe, no writes — but it may still
           create work (exercises the scheduler's pure-task path). *)
        List.iter (Galois.Context.push ctx) (children p item)
      else begin
        let value = token item * 31 in
        if Splitmix.float g < p.save_prob then Galois.Context.save ctx value;
        Galois.Context.failsafe ctx;
        (* The continuation must be an optimization, not a semantic
           switch: recomputation yields the same value. *)
        let v = match Galois.Context.saved ctx with Some v -> v | None -> value in
        List.iter (fun j -> cells.(j) := (token item + v) :: !(cells.(j))) neigh;
        List.iter (Galois.Context.push ctx) (children p item)
      end
    in
    let items = Array.init p.tasks (fun k -> (0, k)) in
    let run =
      Galois.Run.make ~operator items
      |> Galois.Run.app "gen"
      |> Galois.Run.priority (priority_of p)
      |> Galois.Run.snapshot_state
           ~save:(fun () -> Array.map (fun c -> !c) cells)
           ~restore:(fun saved -> Array.iteri (fun i v -> cells.(i) := v) saved)
      |> if static_id then Galois.Run.static_id key_of else Fun.id
    in
    let output_digest () =
      Array.fold_left
        (fun d cell ->
          List.fold_left D.fold_int (D.fold_int d (List.length !cell)) (List.rev !cell))
        D.seed cells
    in
    let canonical_digest ~commits =
      let d =
        Array.fold_left
          (fun d cell ->
            D.fold_int64 d (List.fold_left (fun s x -> Int64.add s (mix x)) 0L !cell))
          D.seed cells
      in
      D.fold_int d commits
    in
    { run; output_digest; canonical_digest }

  let case_of_params p =
    let run ~policy ~pool ~static_id =
      let inst = instance ~static_id p in
      let report =
        inst.run
        |> Galois.Run.policy policy
        |> Galois.Run.pool pool
        |> Galois.Run.trace
        |> Galois.Run.exec
      in
      {
        sched_digest = report.stats.digest;
        output_digest = inst.output_digest ();
        canonical_digest = inst.canonical_digest ~commits:report.stats.commits;
        commits = report.stats.commits;
        det_trace = Obs.deterministic_lines (Option.value ~default:[] report.trace);
      }
    in
    { name = name_of_params p; static_id_capable = p.unique_children; run }

  let case ~seed = case_of_params (random_params ~seed)
end

(* Positive control for the soft-priority axis: perturbing the bucket
   assignment (the priority salt) must change the ordered schedule
   digest — buckets are folded into it — while leaving the unordered
   (prio=off) schedule untouched, since that path never consults
   priorities. Failure on either side means the bucket plumbing is
   dead and the prio lattice rows above prove nothing. *)
let prio_salt_distinguished ?(threads = 2) ~seed () =
  Galois.Pool.with_pool ~domains:threads (fun pool ->
      (* Force a non-trivial priority range: a drawn range of 1 would
         make every salt equivalent. *)
      let p = { (Gen.random_params ~seed) with Gen.prio_range = 64 } in
      let digest ~salt policy =
        let case = Gen.case_of_params { p with Gen.prio_salt = salt } in
        (case.run ~policy ~pool ~static_id:false).sched_digest
      in
      let ordered =
        Galois.Policy.det
          ~options:{ Galois.Policy.default_det with priority = Galois.Policy.Prio_delta 1 }
          threads
      in
      let unordered = Galois.Policy.det threads in
      let s = p.Gen.prio_salt in
      (not (D.equal (digest ~salt:s ordered) (digest ~salt:(s + 1) ordered)))
      && D.equal (digest ~salt:s unordered) (digest ~salt:(s + 1) unordered))

(* ------------------------------------------------------------------ *)
(* Existing applications as auditable cases                            *)
(* ------------------------------------------------------------------ *)

module App_cases = struct
  let digest_ints arr = Array.fold_left D.fold_int D.seed arr

  (* BFS distances are the unique shortest hop counts: canonical across
     the whole lattice. *)
  let bfs ~n ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    let run ~policy ~pool ~static_id:_ =
      let mem = Obs.Memory.create () in
      let dist, report = Apps.Bfs.galois ~sink:(Obs.Memory.sink mem) ~policy ~pool g ~source:0 in
      let d = digest_ints dist in
      {
        sched_digest = report.stats.digest;
        output_digest = d;
        canonical_digest = d;
        commits = report.stats.commits;
        det_trace = Obs.deterministic_lines (Obs.Memory.contents mem);
      }
    in
    { name = Printf.sprintf "bfs(n=%d,seed=%d)" n seed; static_id_capable = false; run }

  let sssp ~n ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
    let run ~policy ~pool ~static_id:_ =
      let mem = Obs.Memory.create () in
      let dist, report = Apps.Sssp.galois ~sink:(Obs.Memory.sink mem) ~policy ~pool g w ~source:0 in
      let d = digest_ints dist in
      {
        sched_digest = report.stats.digest;
        output_digest = d;
        canonical_digest = d;
        commits = report.stats.commits;
        det_trace = Obs.deterministic_lines (Obs.Memory.contents mem);
      }
    in
    { name = Printf.sprintf "sssp(n=%d,seed=%d)" n seed; static_id_capable = false; run }

  (* The MSF weight and size are unique; the edge ids are not canonical
     across configurations (the same undirected edge carries two directed
     edge ids, and which one represents it depends on contraction order),
     so only (weight, size) goes into the canonical digest. The full edge
     list still must be thread-invariant at a fixed configuration. *)
  let boruvka ~n ~seed =
    let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n ~k:4 ()) in
    let w = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 1) g in
    let run ~policy ~pool ~static_id:_ =
      let mem = Obs.Memory.create () in
      let forest, report =
        Apps.Boruvka.galois ~sink:(Obs.Memory.sink mem) ~policy ~pool g w
      in
      let fold_edges d edges = List.fold_left D.fold_int d edges in
      let output_digest =
        D.fold_int (fold_edges D.seed forest.Apps.Boruvka.parent_edge)
          forest.Apps.Boruvka.total_weight
      in
      let canonical_digest =
        D.fold_int
          (D.fold_int D.seed (List.length forest.Apps.Boruvka.parent_edge))
          forest.Apps.Boruvka.total_weight
      in
      {
        sched_digest = report.stats.digest;
        output_digest;
        canonical_digest;
        commits = report.stats.commits;
        det_trace = Obs.deterministic_lines (Obs.Memory.contents mem);
      }
    in
    { name = Printf.sprintf "boruvka(n=%d,seed=%d)" n seed; static_id_capable = false; run }

  (* Refinement's full output (the refined mesh) is schedule-dependent
     across configurations — different insertion orders pick different
     Steiner points — so only the postcondition is canonical. At a fixed
     configuration the mesh itself must be thread-invariant, compared via
     its canonical triangle list. *)
  let dmr ~points ~seed =
    let pts = Geometry.Point.random_unit_square ~seed points in
    let run ~policy ~pool ~static_id:_ =
      let mesh = Apps.Dt.serial pts in
      let mem = Obs.Memory.create () in
      let report = Apps.Dmr.galois ~sink:(Obs.Memory.sink mem) ~policy ~pool mesh in
      let output_digest =
        List.fold_left
          (fun d tri ->
            List.fold_left (fun d (x, y) -> D.fold_float (D.fold_float d x) y) d tri)
          D.seed (Apps.Dt.canonical mesh)
      in
      let consistent = Result.is_ok (Mesh.check_consistency mesh) in
      let refined = Apps.Dmr.refined Apps.Dmr.default_config mesh in
      let canonical_digest = D.fold_bool (D.fold_bool D.seed consistent) refined in
      {
        sched_digest = report.stats.digest;
        output_digest;
        canonical_digest;
        commits = report.stats.commits;
        det_trace = Obs.deterministic_lines (Obs.Memory.contents mem);
      }
    in
    { name = Printf.sprintf "dmr(points=%d,seed=%d)" points seed; static_id_capable = false; run }
end

(* ------------------------------------------------------------------ *)
(* Cases for the dynamic neighborhood/race audit                       *)
(* ------------------------------------------------------------------ *)

module Audit_cases = struct
  type t = {
    name : string;
    run : policy:Galois.Policy.t -> pool:Galois.Pool.t -> Galois.Audit.report;
  }

  let need = function
    | Some a -> a
    | None -> invalid_arg "Detcheck.Audit_cases: run produced no audit report"

  (* Every Run-based benchmark under [Galois.Run.audit]. All of them are
     cautious by construction, so the audit must come back clean; the
     race check also re-verifies the scheduler's disjoint-neighborhood
     invariant (acquires count as writes), which bites even though the
     operators carry no [Context.touch] instrumentation. Worlds that the
     operator mutates (mesh, flow network) are rebuilt per run. *)
  let apps ~n ~points ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    let sym = Graphlib.Csr.symmetrize g in
    let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
    let uw = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 2) sym in
    let pts = Geometry.Point.random_unit_square ~seed (max 4 points) in
    let audit_of (report : Galois.Runtime.report) = need report.audit in
    [
      {
        name = "bfs";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Bfs.galois ~audit:true ~policy ~pool g ~source:0)));
      };
      {
        name = "sssp";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Sssp.galois ~audit:true ~policy ~pool g w ~source:0)));
      };
      {
        name = "cc";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Cc.galois ~audit:true ~policy ~pool sym)));
      };
      {
        name = "boruvka";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Boruvka.galois ~audit:true ~policy ~pool sym uw)));
      };
      {
        name = "mis";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Mis.galois ~audit:true ~policy ~pool sym)));
      };
      {
        name = "triangles";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Triangles.galois ~audit:true ~policy ~pool sym)));
      };
      {
        name = "pagerank";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Pagerank.galois ~audit:true ~policy ~pool g)));
      };
      {
        name = "dt";
        run =
          (fun ~policy ~pool ->
            audit_of (snd (Apps.Dt.galois ~audit:true ~policy ~pool pts)));
      };
      {
        name = "dmr";
        run =
          (fun ~policy ~pool ->
            let mesh = Apps.Dt.serial pts in
            audit_of (Apps.Dmr.galois ~audit:true ~policy ~pool mesh));
      };
      {
        name = "pfp";
        run =
          (fun ~policy ~pool ->
            let fg, caps, source, sink =
              Graphlib.Generators.flow_network ~seed:(seed + 3) ~n ~k:4 ()
            in
            let net = Apps.Flow_network.of_graph fg caps ~source ~sink in
            need (Apps.Pfp.galois ~audit:true ~policy ~pool net).Apps.Pfp.audit);
      };
    ]

  (* Positive controls: deliberately broken operators proving the audit
     can fail at all, with findings localized to (rule, round, task). *)

  type control = {
    cname : string;
    crun :
      policy:Galois.Policy.t ->
      pool:Galois.Pool.t ->
      Galois.Audit.report * Galois.Audit.finding list;
        (** (report, witnesses): every witness finding must appear
            verbatim in the report. *)
  }

  (* Pin the first-round window wide enough that all initial tasks of a
     control are inspected in round 1, independent of the adaptive
     task-count-derived default — the race control needs its two tasks
     in the same round to conflict. *)
  let widen policy =
    match policy with
    | Galois.Policy.Det { threads; options } ->
        Galois.Policy.Det
          {
            threads;
            options = Galois.Policy.Det_options.with_window (Some 8) options;
          }
    | p -> p

  (* BFS whose distance write lands while the neighborhood is still
     growing — before the failsafe point — violating cautiousness (§2):
     a defeated task would leave the write behind. The initial task is
     alone in round 1, so the audit must pin (cautiousness, round 1,
     task 1) on the source node's location. *)
  let non_cautious_bfs ~n ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:3 () in
    let crun ~policy ~pool =
      let nn = Graphlib.Csr.nodes g in
      let locks = Galois.Lock.create_array nn in
      let dist = Array.make nn max_int in
      let operator ctx (u, d) =
        Galois.Context.acquire ctx locks.(u);
        if dist.(u) <= d then ()
        else begin
          dist.(u) <- d;
          Galois.Context.touch ctx locks.(u);
          Graphlib.Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
          Galois.Context.failsafe ctx;
          Graphlib.Csr.iter_succ g u (fun v ->
              if dist.(v) > d + 1 then Galois.Context.push ctx (v, d + 1))
        end
      in
      let report =
        Galois.Run.make ~operator [| (0, 0) |]
        |> Galois.Run.policy (widen policy)
        |> Galois.Run.pool pool
        |> Galois.Run.audit
        |> Galois.Run.exec
      in
      ( need report.audit,
        [
          {
            Galois.Audit.rule = Galois.Audit.Cautiousness;
            round = 1;
            task = 1;
            other = 0;
            lid = Galois.Lock.id locks.(0);
          };
        ] )
    in
    { cname = Printf.sprintf "non-cautious-bfs(n=%d,seed=%d)" n seed; crun }

  (* Two relaxation tasks that each acquire only their own node and then
     both write the shared sink's label without ever acquiring it: a
     containment escape on each task and a write/write race between
     them, all in round 1 (neighborhoods are disjoint, so the scheduler
     happily commits both). *)
  let racy_sssp () =
    let crun ~policy ~pool =
      let g = Graphlib.Csr.of_edges ~n:3 [| (0, 2); (1, 2) |] in
      let locks = Galois.Lock.create_array 3 in
      let dist = Array.make 3 max_int in
      let operator ctx u =
        Galois.Context.acquire ctx locks.(u);
        Galois.Context.failsafe ctx;
        Graphlib.Csr.iter_succ g u (fun v ->
            dist.(v) <- min dist.(v) (u + 1);
            Galois.Context.touch ctx locks.(v))
      in
      let report =
        Galois.Run.make ~operator [| 0; 1 |]
        |> Galois.Run.policy (widen policy)
        |> Galois.Run.pool pool
        |> Galois.Run.audit
        |> Galois.Run.exec
      in
      let lid = Galois.Lock.id locks.(2) in
      ( need report.audit,
        [
          { Galois.Audit.rule = Galois.Audit.Containment; round = 1; task = 1; other = 0; lid };
          { Galois.Audit.rule = Galois.Audit.Containment; round = 1; task = 2; other = 0; lid };
          { Galois.Audit.rule = Galois.Audit.Race; round = 1; task = 2; other = 1; lid };
        ] )
    in
    { cname = "racy-sssp"; crun }

  let controls ~n ~seed = [ non_cautious_bfs ~n ~seed; racy_sssp () ]
end

(* ------------------------------------------------------------------ *)
(* Cases for the checkpoint/replay harness                             *)
(* ------------------------------------------------------------------ *)

(* Unlike [case] (which executes internally and reports digests), a
   replay case hands out the unexecuted run description itself, so the
   harness can checkpoint it, crash it and resume it. The item/state
   types differ per app, hence the existential. [fresh] builds a brand
   new world each call: crash/resume tests need one world for the
   uninterrupted reference run and a separate one to crash. *)
module Replay_cases = struct
  type t =
    | Case : {
        name : string;
        static_id_capable : bool;
        snapshot_capable : bool;
            (* the description carries a snapshot_state hook, so
               serialized (cross-process) resume is possible; without it
               only live in-process resume is *)
        fresh : static_id:bool -> unit -> ('i, 's) Galois.Run.t * (unit -> D.t);
      }
        -> t

  let name (Case c) = c.name
  let static_id_capable (Case c) = c.static_id_capable
  let snapshot_capable (Case c) = c.snapshot_capable

  let gen ~seed =
    let p = Gen.random_params ~seed in
    Case
      {
        name = Gen.name_of_params p;
        static_id_capable = p.Gen.unique_children;
        snapshot_capable = true;
        fresh =
          (fun ~static_id () ->
            let inst = Gen.instance ~static_id p in
            (inst.Gen.run, inst.Gen.output_digest));
      }

  let digest_ints arr = Array.fold_left D.fold_int D.seed arr

  let bfs ~n ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    Case
      {
        name = Printf.sprintf "bfs(n=%d,seed=%d)" n seed;
        static_id_capable = false;
        snapshot_capable = true;
        fresh =
          (fun ~static_id:_ () ->
            let run, dist = Apps.Bfs.plan g ~source:0 in
            (run, fun () -> digest_ints dist));
      }

  let sssp ~n ~seed =
    let g = Graphlib.Generators.kout ~seed ~n ~k:5 () in
    let w = Graphlib.Graph_io.random_weights ~seed:(seed + 1) g in
    Case
      {
        name = Printf.sprintf "sssp(n=%d,seed=%d)" n seed;
        static_id_capable = false;
        snapshot_capable = true;
        fresh =
          (fun ~static_id:_ () ->
            let run, dist = Apps.Sssp.plan g w ~source:0 in
            (run, fun () -> digest_ints dist));
      }

  let boruvka ~n ~seed =
    let g = Graphlib.Csr.symmetrize (Graphlib.Generators.kout ~seed ~n ~k:4 ()) in
    let w = Graphlib.Graph_io.undirected_random_weights ~seed:(seed + 1) g in
    Case
      {
        name = Printf.sprintf "boruvka(n=%d,seed=%d)" n seed;
        static_id_capable = false;
        snapshot_capable = false;
        fresh =
          (fun ~static_id:_ () ->
            let run, forest = Apps.Boruvka.plan g w in
            ( run,
              fun () ->
                let f = forest () in
                D.fold_int
                  (List.fold_left D.fold_int D.seed f.Apps.Boruvka.parent_edge)
                  f.Apps.Boruvka.total_weight ));
      }

  let dmr ~points ~seed =
    let pts = Geometry.Point.random_unit_square ~seed points in
    Case
      {
        name = Printf.sprintf "dmr(points=%d,seed=%d)" points seed;
        static_id_capable = false;
        snapshot_capable = false;
        fresh =
          (fun ~static_id:_ () ->
            let mesh = Apps.Dt.serial pts in
            ( Apps.Dmr.plan mesh,
              fun () ->
                List.fold_left
                  (fun d tri ->
                    List.fold_left (fun d (x, y) -> D.fold_float (D.fold_float d x) y) d tri)
                  D.seed (Apps.Dt.canonical mesh) ));
      }
end

(* ------------------------------------------------------------------ *)
(* The service lattice                                                 *)
(* ------------------------------------------------------------------ *)

(* Determinism at the service boundary: an identical batch of mixed
   bfs/sssp/cc queries against a shared catalog must yield byte-identical
   responses, per-job deterministic event streams and a byte-identical
   folded service digest across pool sizes and across admission
   interleavings (the same submissions grouped into different arrival
   batches). This is the [check_invariance] idea lifted one layer up:
   the lattice axes are (pool size x batching), the compared quantity is
   the rendered response stream. *)
module Service_case = struct
  (* Deterministic mixed workload: query [i] is a function of
     (seed, i) alone. Sources are drawn over the catalog's node range;
     an out-of-range source is never generated (those are exercised by
     unit tests — here every query must complete so the stream is
     maximally sensitive). *)
  let queries ~seed ~nodes ~count =
    List.init count (fun i ->
        let g = Splitmix.create ((((seed * 1_000_003) + i) * 2) + 1) in
        match Splitmix.int g 4 with
        | 0 | 1 -> Service.Query.Bfs { graph = "kout"; source = Splitmix.int g nodes }
        | 2 -> Service.Query.Sssp { graph = "kout"; source = Splitmix.int g nodes }
        | _ -> Service.Query.Cc { graph = "sym" })

  type observed = {
    lines : string list;
        (* one per job, in job-id order: the rendered response plus the
           digest of the job's own deterministic event stream *)
    service_digest : D.t;
  }

  (* One complete service session on a fresh pool: submit every query
     (each with its own memory sink), draining after every [chunk]
     submissions and once more at the end. *)
  let run_once ~pool_size ~chunk ~seed ~nodes ~count =
    Galois.Pool.with_pool ~domains:pool_size (fun pool ->
        let catalog = Service.Catalog.synthetic ~seed ~nodes () in
        let server = Service.Server.create ~catalog pool in
        let mems =
          List.map
            (fun q ->
              let mem = Obs.Memory.create () in
              (match Service.Server.submit ~sink:(Obs.Memory.sink mem) server q with
              | `Accepted _ -> ()
              | `Rejected id -> failwith (Printf.sprintf "job %d rejected" id));
              if (Service.Server.pending server) mod chunk = 0 then
                ignore (Service.Server.drain server);
              mem)
            (queries ~seed ~nodes ~count)
        in
        ignore (Service.Server.drain server);
        let lines =
          List.map2
            (fun r mem ->
              Service.Server.render r ^ "|"
              ^ D.to_hex
                  (D.fold_string D.seed
                     (Obs.deterministic_lines (Obs.Memory.contents mem))))
            (Service.Server.responses server)
            mems
        in
        { lines; service_digest = Service.Server.digest server })

  let default_pool_sizes = default_threads

  let check ?(pool_sizes = default_pool_sizes) ?(count = 120) ?(nodes = 400)
      ~seed () =
    let name = Printf.sprintf "service(count=%d,nodes=%d,seed=%d)" count nodes seed in
    (* Two admission interleavings: everything in one arrival batch, and
       uneven batches of 17. *)
    let interleavings = [ ("batch=all", count); ("batch=17", 17) ] in
    let runs = ref 0 and divergences = ref [] in
    let reference = ref None in
    List.iter
      (fun pool_size ->
        List.iter
          (fun (ilabel, chunk) ->
            incr runs;
            let got = run_once ~pool_size ~chunk ~seed ~nodes ~count in
            let config = Printf.sprintf "pool=%d,%s" pool_size ilabel in
            let diverged quantity expected gotd =
              divergences :=
                {
                  case_name = name;
                  config;
                  threads = pool_size;
                  quantity;
                  expected;
                  got = gotd;
                }
                :: !divergences
            in
            match !reference with
            | None -> reference := Some got
            | Some ref_ ->
                if not (D.equal ref_.service_digest got.service_digest) then
                  diverged "service-digest" ref_.service_digest got.service_digest;
                if not (List.equal String.equal ref_.lines got.lines) then
                  let fold ls = List.fold_left D.fold_string D.seed ls in
                  diverged "response-stream" (fold ref_.lines) (fold got.lines))
          interleavings)
      pool_sizes;
    { case_name = name; runs = !runs; divergences = List.rev !divergences }
end
