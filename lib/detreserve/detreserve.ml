(* Deterministic reservations (Blelloch et al., PPoPP 2012) — the
   technique behind PBBS's handwritten deterministic programs, which the
   paper uses as its determinism-by-construction baselines.

   [speculative_for] processes items 0..n-1 as if sequentially in index
   order, but speculates on a prefix each round: every item in the prefix
   runs its [reserve] phase (writing its index into priority cells with a
   min operation), then items whose reservations all survived [commit].
   The prefix size is the PBBS granularity parameter — exactly the kind
   of tunable knob the paper criticizes, so it is exposed here and fixed
   by callers. *)

module Cell = struct
  (* A priority-min reservation cell. [max_int] = free. *)
  type t = int Atomic.t

  let create () : t = Atomic.make max_int
  let create_array n = Array.init n (fun _ -> Atomic.make max_int)

  (* Deterministic: the surviving value is the min of all writers,
     independent of timing. *)
  let reserve (t : t) priority =
    let rec go () =
      let cur = Atomic.get t in
      if cur <= priority then ()
      else if not (Atomic.compare_and_set t cur priority) then go ()
    in
    go ()

  let holds (t : t) priority = Atomic.get t = priority

  let release (t : t) priority =
    let cur = Atomic.get t in
    if cur = priority then ignore (Atomic.compare_and_set t cur max_int)

  let reset (t : t) = Atomic.set t max_int
end

type stats = { rounds : int; commits : int; retries : int; time_s : float }

let speculative_for ?(granularity = 64) ~pool ~n ~reserve ~commit () =
  if granularity <= 0 then invalid_arg "Detreserve.speculative_for: granularity must be positive";
  let rounds = ref 0 and commits = ref 0 and retries = ref 0 in
  let t0 = Galois.Clock.now_s () in
  (* [remaining] holds unfinished item indices in priority order. *)
  let remaining = ref (Array.init n Fun.id) in
  while Array.length !remaining > 0 do
    incr rounds;
    let items = !remaining in
    let w = min granularity (Array.length items) in
    let keep = Array.make w false in
    (* Reserve phase: deterministic min-reservations. *)
    Parallel.Domain_pool.parallel_for pool 0 w (fun j -> reserve items.(j));
    (* Commit phase: an item commits iff its reservations survived. *)
    Parallel.Domain_pool.parallel_for pool 0 w (fun j ->
        keep.(j) <- not (commit items.(j)));
    let failed = ref [] in
    for j = w - 1 downto 0 do
      if keep.(j) then failed := items.(j) :: !failed
    done;
    let failed = Array.of_list !failed in
    commits := !commits + (w - Array.length failed);
    retries := !retries + Array.length failed;
    let rest = Array.sub items w (Array.length items - w) in
    remaining := Array.append failed rest
  done;
  { rounds = !rounds; commits = !commits; retries = !retries; time_s = Galois.Clock.elapsed_s t0 }

(* Variant with dynamically created work (PBBS dmr-style): committing an
   item may return children, which are appended behind all current work
   with priorities in deterministic (round slot) order. *)
let speculative_for_dynamic ?(granularity = 64) ~pool ~initial ~reserve ~commit () =
  if granularity <= 0 then
    invalid_arg "Detreserve.speculative_for_dynamic: granularity must be positive";
  let rounds = ref 0 and commits = ref 0 and retries = ref 0 in
  let t0 = Galois.Clock.now_s () in
  let next_priority = ref (Array.length initial) in
  let remaining = ref (Array.mapi (fun i x -> (i, x)) initial) in
  while Array.length !remaining > 0 do
    incr rounds;
    let items = !remaining in
    let w = min granularity (Array.length items) in
    let outcome = Array.make w None in
    Parallel.Domain_pool.parallel_for pool 0 w (fun j ->
        let prio, item = items.(j) in
        reserve prio item);
    Parallel.Domain_pool.parallel_for pool 0 w (fun j ->
        let prio, item = items.(j) in
        outcome.(j) <- commit prio item);
    let failed = ref [] and children = ref [] in
    for j = w - 1 downto 0 do
      match outcome.(j) with
      | None -> failed := items.(j) :: !failed
      | Some kids -> children := kids :: !children
    done;
    let failed = Array.of_list !failed in
    commits := !commits + (w - Array.length failed);
    retries := !retries + Array.length failed;
    (* Children priorities follow slot order within the round, so they
       are deterministic whenever commits are. *)
    let fresh =
      List.concat_map
        (fun kids ->
          List.map
            (fun kid ->
              let p = !next_priority in
              incr next_priority;
              (p, kid))
            kids)
        !children
    in
    let rest = Array.sub items w (Array.length items - w) in
    remaining := Array.concat [ failed; rest; Array.of_list fresh ]
  done;
  { rounds = !rounds; commits = !commits; retries = !retries; time_s = Galois.Clock.elapsed_s t0 }
