(* Machine-readable benchmark records (BENCH_<app>.json).

   One record per (app, input) pair: wall time, the scheduler's
   per-phase breakdown, round/commit counts, abstract work, and
   GC allocation deltas around the run. Records are written as a single
   flat JSON object so that any tooling can consume them, and parsed
   back by [of_json] (whitespace-tolerant, schema-validating) so the
   @bench-smoke alias can prove every emitted file is well-formed.

   Allocation metrics are measured on a single-domain run (det:1): in
   OCaml 5 the [Gc.quick_stat] allocation counters are dominated by the
   calling domain, so a 1-thread run is the configuration in which the
   "minor words per committed task" figure is exact. Determinism makes
   this representative: the det schedule (and thus the per-round
   bookkeeping being measured) is identical at every thread count. *)

type t = {
  app : string;
  policy : string;  (* policy of the timing run, e.g. "det:4" *)
  size : int;  (* input size (nodes / points, app-dependent) *)
  seed : int;
  build_s : float;  (* input-construction time (graph build); 0 when n/a *)
  graph_bytes : int;  (* off-heap bytes of the input graph; 0 when n/a *)
  wall_s : float;  (* wall time of the timing run *)
  inspect_s : float;  (* per-phase breakdown of the timing run *)
  select_s : float;
  other_s : float;
  commits : int;
  aborts : int;
  rounds : int;
  generations : int;
  work_units : int;  (* abstract (simmachine cost-model) work *)
  efficiency : float;  (* commits / work_units; 0 when no work recorded *)
  minor_words : float;  (* Gc.quick_stat deltas of the det:1 run *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  minor_words_per_commit : float;  (* minor_words / commits *)
  rounds_per_s : float;  (* rounds / wall_s of the timing run *)
  atomics_per_commit : float;  (* atomic mark updates / commits, timing run *)
  spins : int;  (* pool wakeups served by the spin fast path, timing run *)
  parks : int;  (* pool waits that fell back to the condvar, timing run *)
  queries_per_s : float;  (* service throughput; 0 for single-run apps *)
  p99_latency_s : float;  (* service p99 submit-to-done; 0 for single-run apps *)
  digest : string;  (* schedule digest (hex), "-" when absent *)
}

(* Scheduling efficiency: committed tasks per abstract work unit. A
   soft-priority policy that avoids wasted re-relaxations raises this
   figure on the same input without touching any timing metric. *)
let efficiency ~commits ~work_units =
  if work_units <= 0 then 0.0 else float_of_int commits /. float_of_int work_units

let minor_words_per_commit ~minor_words ~commits =
  if commits <= 0 then 0.0 else minor_words /. float_of_int commits

let rounds_per_s ~rounds ~wall_s =
  if wall_s <= 0.0 then 0.0 else float_of_int rounds /. wall_s

let atomics_per_commit ~atomics ~commits =
  if commits <= 0 then 0.0 else float_of_int atomics /. float_of_int commits

(* The three phase components must account for the whole wall time (the
   scheduler books everything outside inspect/select under other_s).
   Tolerance covers float noise only. *)
let phases_consistent t =
  let sum = t.inspect_s +. t.select_s +. t.other_s in
  Float.abs (sum -. t.wall_s) <= 1e-6 +. (1e-9 *. Float.abs t.wall_s)

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                       *)
(* ------------------------------------------------------------------ *)

type jv = S of string | I of int | F of float

let fields t =
  [
    ("app", S t.app);
    ("policy", S t.policy);
    ("size", I t.size);
    ("seed", I t.seed);
    ("build_s", F t.build_s);
    ("graph_bytes", I t.graph_bytes);
    ("wall_s", F t.wall_s);
    ("inspect_s", F t.inspect_s);
    ("select_s", F t.select_s);
    ("other_s", F t.other_s);
    ("commits", I t.commits);
    ("aborts", I t.aborts);
    ("rounds", I t.rounds);
    ("generations", I t.generations);
    ("work_units", I t.work_units);
    ("efficiency", F t.efficiency);
    ("minor_words", F t.minor_words);
    ("promoted_words", F t.promoted_words);
    ("major_words", F t.major_words);
    ("minor_collections", I t.minor_collections);
    ("major_collections", I t.major_collections);
    ("minor_words_per_commit", F t.minor_words_per_commit);
    ("rounds_per_s", F t.rounds_per_s);
    ("atomics_per_commit", F t.atomics_per_commit);
    ("spins", I t.spins);
    ("parks", I t.parks);
    ("queries_per_s", F t.queries_per_s);
    ("p99_latency_s", F t.p99_latency_s);
    ("digest", S t.digest);
  ]

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  \"";
      Buffer.add_string buf k;
      Buffer.add_string buf "\": ";
      match v with
      | S s ->
          Buffer.add_char buf '"';
          add_escaped buf s;
          Buffer.add_char buf '"'
      | I i -> Buffer.add_string buf (string_of_int i)
      | F f -> add_float buf f)
    (fields t);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON parsing (flat objects of strings and numbers only)             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse_flat text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c at offset %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match text.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let hex = String.sub text (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
                in
                if code > 0xff then fail "\\u escape beyond latin-1"
                else Buffer.add_char buf (Char.chr code);
                pos := !pos + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num text.[!pos] do
      incr pos
    done;
    if !pos = start then fail (Printf.sprintf "expected value at offset %d" start);
    let txt = String.sub text start (!pos - start) in
    match int_of_string_opt txt with
    | Some i -> I i
    | None -> (
        match float_of_string_opt txt with
        | Some f -> F f
        | None -> fail (Printf.sprintf "bad number %S" txt))
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> S (parse_string ())
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unsupported value starting with %c" c)
    | None -> fail "truncated input"
  in
  expect '{';
  let acc = ref [] in
  skip_ws ();
  (match peek () with
  | Some '}' -> incr pos
  | _ ->
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_value () in
        if List.mem_assoc k !acc then fail (Printf.sprintf "duplicate field %S" k);
        acc := (k, v) :: !acc;
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      members ());
  skip_ws ();
  if !pos <> n then fail "trailing characters after object";
  List.rev !acc

let get fs k =
  match List.assoc_opt k fs with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))

let get_int fs k =
  match get fs k with
  | I i -> i
  | _ -> raise (Bad (Printf.sprintf "field %S: expected integer" k))

let get_float fs k =
  match get fs k with
  | F f -> f
  | I i -> float_of_int i
  | _ -> raise (Bad (Printf.sprintf "field %S: expected number" k))

let get_string fs k =
  match get fs k with
  | S s -> s
  | _ -> raise (Bad (Printf.sprintf "field %S: expected string" k))

let of_json text =
  match
    let fs = parse_flat text in
    let t =
      {
        app = get_string fs "app";
        policy = get_string fs "policy";
        size = get_int fs "size";
        seed = get_int fs "seed";
        build_s = get_float fs "build_s";
        graph_bytes = get_int fs "graph_bytes";
        wall_s = get_float fs "wall_s";
        inspect_s = get_float fs "inspect_s";
        select_s = get_float fs "select_s";
        other_s = get_float fs "other_s";
        commits = get_int fs "commits";
        aborts = get_int fs "aborts";
        rounds = get_int fs "rounds";
        generations = get_int fs "generations";
        work_units = get_int fs "work_units";
        efficiency = get_float fs "efficiency";
        minor_words = get_float fs "minor_words";
        promoted_words = get_float fs "promoted_words";
        major_words = get_float fs "major_words";
        minor_collections = get_int fs "minor_collections";
        major_collections = get_int fs "major_collections";
        minor_words_per_commit = get_float fs "minor_words_per_commit";
        rounds_per_s = get_float fs "rounds_per_s";
        atomics_per_commit = get_float fs "atomics_per_commit";
        spins = get_int fs "spins";
        parks = get_int fs "parks";
        queries_per_s = get_float fs "queries_per_s";
        p99_latency_s = get_float fs "p99_latency_s";
        digest = get_string fs "digest";
      }
    in
    (* Schema check: no fields beyond the record's own. *)
    let expected = List.map fst (fields t) in
    List.iter
      (fun (k, _) ->
        if not (List.mem k expected) then
          raise (Bad (Printf.sprintf "unexpected field %S" k)))
      fs;
    t
  with
  | t -> Ok t
  | exception Bad msg -> Error msg

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match of_json text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let save path t = Out_channel.with_open_text path (fun oc -> output_string oc (to_json t))

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                 *)
(* ------------------------------------------------------------------ *)

type delta = {
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;  (* (current - baseline) / baseline * 100 *)
}

let pct ~baseline ~current =
  if baseline = 0.0 then 0.0 else (current -. baseline) /. baseline *. 100.0

let compare_to ~baseline current =
  let d metric baseline current = { metric; baseline; current; change_pct = pct ~baseline ~current } in
  [
    d "wall_s" baseline.wall_s current.wall_s;
    d "inspect_s" baseline.inspect_s current.inspect_s;
    d "select_s" baseline.select_s current.select_s;
    d "other_s" baseline.other_s current.other_s;
    d "minor_words" baseline.minor_words current.minor_words;
    d "minor_words_per_commit" baseline.minor_words_per_commit
      current.minor_words_per_commit;
    (* Report-only metrics (no gate: the sync-overhead figures are
       machine-load-sensitive, and work/efficiency legitimately move
       when a case switches scheduling policy). *)
    d "work_units" (float_of_int baseline.work_units) (float_of_int current.work_units);
    d "efficiency" baseline.efficiency current.efficiency;
    d "rounds_per_s" baseline.rounds_per_s current.rounds_per_s;
    d "atomics_per_commit" baseline.atomics_per_commit current.atomics_per_commit;
    d "queries_per_s" baseline.queries_per_s current.queries_per_s;
    d "p99_latency_s" baseline.p99_latency_s current.p99_latency_s;
    d "build_s" baseline.build_s current.build_s;
    d "graph_bytes" (float_of_int baseline.graph_bytes)
      (float_of_int current.graph_bytes);
  ]

let pp_delta ppf d =
  Fmt.pf ppf "%-24s %14.1f -> %14.1f  (%+.1f%%)" d.metric d.baseline d.current
    d.change_pct
