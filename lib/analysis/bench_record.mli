(** Machine-readable benchmark records ([BENCH_<app>.json]).

    One flat JSON object per (app, input) pair: wall time, the DIG
    scheduler's per-phase breakdown, commit/round counts, abstract
    work, and GC allocation deltas. The bench harness
    ([bench/bench_apps.ml]) emits these; the committed files under
    [bench/baseline/] anchor the performance trajectory and the
    comparison mode reports deltas against them. *)

type t = {
  app : string;
  policy : string;  (** policy of the timing run, e.g. ["det:4"] *)
  size : int;
  seed : int;
  build_s : float;
      (** time to construct the input (graph generation / symmetrization);
          [0.0] when the case has no graph build phase *)
  graph_bytes : int;
      (** off-heap bytes held by the input graph's CSR planes; [0] when
          the case has no graph input *)
  wall_s : float;
  inspect_s : float;
  select_s : float;
  other_s : float;
  commits : int;
  aborts : int;
  rounds : int;
  generations : int;
  work_units : int;  (** abstract (simmachine cost-model) work *)
  efficiency : float;
      (** committed tasks per abstract work unit
          ([commits /. work_units], [0.0] when no work was recorded) —
          the report-only figure the soft-priority scheduling sweep
          reads: better task ordering raises it on the same input *)
  minor_words : float;
      (** [Gc.quick_stat] delta of a single-domain ([det:1]) run, where
          the counters are exact for the whole pipeline *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  minor_words_per_commit : float;
  rounds_per_s : float;  (** [rounds /. wall_s] of the timing run *)
  atomics_per_commit : float;
      (** atomic mark-word updates per committed task of the timing run —
          the per-round synchronization overhead the round-stamped mark
          protocol cuts *)
  spins : int;  (** pool wakeups served by the spin fast path, timing run *)
  parks : int;  (** pool waits that fell back to the condvar, timing run *)
  queries_per_s : float;
      (** service throughput (completed queries / wall time) of the
          [serve] case; [0.0] for the single-run apps *)
  p99_latency_s : float;
      (** nearest-rank p99 submit-to-completion latency of the [serve]
          case; [0.0] for the single-run apps *)
  digest : string;  (** schedule digest (hex); ["-"] when absent *)
}

val efficiency : commits:int -> work_units:int -> float
(** [commits /. work_units], 0 when no work units were recorded. *)

val minor_words_per_commit : minor_words:float -> commits:int -> float
(** [minor_words /. commits], 0 when no commits. *)

val rounds_per_s : rounds:int -> wall_s:float -> float
(** [rounds /. wall_s], 0 when wall time is not positive. *)

val atomics_per_commit : atomics:int -> commits:int -> float
(** [atomics /. commits], 0 when no commits. *)

val phases_consistent : t -> bool
(** [inspect_s + select_s + other_s] equals [wall_s] up to float noise —
    the invariant @bench-smoke enforces on every emitted file. *)

val to_json : t -> string
(** Pretty-printed flat JSON object (trailing newline included). *)

val of_json : string -> (t, string) result
(** Validating parse of [to_json] output: every field present with the
    right type, nothing extra. *)

val load : string -> (t, string) result
val save : string -> t -> unit

(** {2 Baseline comparison} *)

type delta = {
  metric : string;
  baseline : float;
  current : float;
  change_pct : float;  (** [(current - baseline) / baseline * 100] *)
}

val compare_to : baseline:t -> t -> delta list
(** Deltas for the tracked metrics (wall time, phase times, minor
    allocation, minor words per committed task, work units, efficiency,
    rounds per second, atomics per commit, queries per second, p99
    latency, build time, graph bytes), in that order. Everything after
    minor words per commit is report-only: no regression gate keys off
    it. *)

val pp_delta : Format.formatter -> delta -> unit
