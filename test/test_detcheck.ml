(* The determinism audit, audited.

   - the invariance checker passes on genuinely deterministic cases
     (fuzz-generated and real apps) over a reduced lattice;
   - it *fails* on a deliberately nondeterministic case (detection is
     live, not vacuous);
   - the round-trace digest in Stats and the structural Schedule digest
     are thread-invariant and seed-sensitive;
   - generated cases are pure functions of their seed. *)

[@@@alert "-deprecated"] (* exercises the deprecated [Runtime.for_each] alias on purpose *)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module D = Galois.Trace_digest

let quick_threads = [ 1; 2; 3 ]

let test_fuzz_cases_invariant () =
  (* A handful of fixed seeds; the 25-case sweep runs under @detcheck. *)
  List.iter
    (fun seed ->
      let report = Detcheck.check_invariance ~threads:quick_threads (Detcheck.Gen.case ~seed) in
      if not (Detcheck.ok report) then Alcotest.failf "%a" Detcheck.pp_report report)
    [ 1; 2; 3; 4 ]

let test_bfs_case_invariant () =
  let report =
    Detcheck.check_invariance ~threads:quick_threads (Detcheck.App_cases.bfs ~n:150 ~seed:7)
  in
  if not (Detcheck.ok report) then Alcotest.failf "%a" Detcheck.pp_report report

let test_checker_detects_divergence () =
  (* A case that changes its answer on every run: the checker must
     report divergences on both axes (threads and configurations). *)
  let counter = ref 0 in
  let case =
    {
      Detcheck.name = "deliberately-nondeterministic";
      static_id_capable = false;
      run =
        (fun ~policy:_ ~pool:_ ~static_id:_ ->
          incr counter;
          let d = D.fold_int D.seed !counter in
          {
            Detcheck.sched_digest = d;
            output_digest = d;
            canonical_digest = d;
            det_trace = D.to_hex d;
            commits = 1;
          });
    }
  in
  let report = Detcheck.check_invariance ~threads:[ 1; 2 ] case in
  check_bool "divergence detected" false (Detcheck.ok report);
  (* Every non-reference run diverges in all three quantities, and the
     second configuration's anchor also diverges canonically. *)
  check_bool "multiple divergences" true (List.length report.Detcheck.divergences > 3)

let test_positive_control () =
  check_bool "seed perturbation diverges (det)" true
    (Detcheck.seeds_distinguished
       ~gen:(fun s -> Detcheck.Gen.case ~seed:s)
       ~seed:11 (Galois.Policy.det 2))

let test_gen_is_pure () =
  (* Same seed, fresh case values: identical digests run to run. *)
  let digest () =
    let case = Detcheck.Gen.case ~seed:42 in
    Galois.Pool.with_pool ~domains:2 (fun pool ->
        case.Detcheck.run ~policy:(Galois.Policy.det 2) ~pool ~static_id:false)
  in
  let a = digest () and b = digest () in
  check_bool "sched digest reproducible" true (D.equal a.Detcheck.sched_digest b.Detcheck.sched_digest);
  check_bool "output digest reproducible" true
    (D.equal a.Detcheck.output_digest b.Detcheck.output_digest);
  check_int "commits reproducible" a.Detcheck.commits b.Detcheck.commits;
  check_bool "det run has a digest" false (D.is_absent a.Detcheck.sched_digest)

let test_params_cover_topologies () =
  (* The random parameter space actually reaches every topology. *)
  let seen = Hashtbl.create 8 in
  for seed = 0 to 63 do
    let p = Detcheck.Gen.random_params ~seed in
    Hashtbl.replace seen (Detcheck.Gen.topology_name p.Detcheck.Gen.topology) ()
  done;
  check_int "all five topologies" 5 (Hashtbl.length seen)

(* --- digest plumbing in the runtime ---------------------------------- *)

let run_recorded ~policy ~threads:_ () =
  let locks = Galois.Lock.create_array 13 in
  let operator ctx i =
    Galois.Context.acquire ctx locks.(i mod 13);
    Galois.Context.acquire ctx locks.((i * 7) mod 13);
    Galois.Context.work ctx 2;
    Galois.Context.failsafe ctx
  in
  Galois.Runtime.for_each ~policy ~record:true ~operator (Array.init 90 Fun.id)

let test_stats_digest_thread_invariant () =
  let digest_at t = (run_recorded ~policy:(Galois.Policy.det t) ~threads:t ()).stats.digest in
  let d1 = digest_at 1 in
  check_bool "digest present" false (D.is_absent d1);
  List.iter
    (fun t ->
      if not (D.equal d1 (digest_at t)) then Alcotest.failf "stats digest differs at %d threads" t)
    [ 2; 4 ]

let test_schedule_digest_thread_invariant () =
  let digest_at t =
    match (run_recorded ~policy:(Galois.Policy.det t) ~threads:t ()).schedule with
    | Some s -> Galois.Schedule.digest s
    | None -> Alcotest.fail "no schedule recorded"
  in
  let d1 = digest_at 1 in
  List.iter
    (fun t ->
      if not (D.equal d1 (digest_at t)) then
        Alcotest.failf "schedule digest differs at %d threads" t)
    [ 2; 4 ]

let test_digests_distinguish_programs () =
  (* Different task counts must not collide (sanity, not cryptography). *)
  let digest_n n =
    let locks = Galois.Lock.create_array 5 in
    let operator ctx i =
      Galois.Context.acquire ctx locks.(i mod 5);
      Galois.Context.failsafe ctx
    in
    (Galois.Runtime.for_each ~policy:(Galois.Policy.det 2) ~operator (Array.init n Fun.id))
      .stats.digest
  in
  check_bool "different programs, different digests" false (D.equal (digest_n 40) (digest_n 41))

let test_serial_and_nondet_have_no_digest () =
  let run policy = (run_recorded ~policy ~threads:1 ()).stats.digest in
  check_bool "serial absent" true (D.is_absent (run Galois.Policy.serial));
  check_bool "nondet absent" true (D.is_absent (run (Galois.Policy.nondet 2)))

let suite =
  [
    Alcotest.test_case "fuzz cases invariant on reduced lattice" `Quick test_fuzz_cases_invariant;
    Alcotest.test_case "bfs case invariant on reduced lattice" `Quick test_bfs_case_invariant;
    Alcotest.test_case "checker detects a nondeterministic case" `Quick
      test_checker_detects_divergence;
    Alcotest.test_case "positive control: seeds distinguished" `Quick test_positive_control;
    Alcotest.test_case "generated cases are seed-pure" `Quick test_gen_is_pure;
    Alcotest.test_case "parameter space covers all topologies" `Quick
      test_params_cover_topologies;
    Alcotest.test_case "stats digest thread-invariant" `Quick test_stats_digest_thread_invariant;
    Alcotest.test_case "schedule digest thread-invariant" `Quick
      test_schedule_digest_thread_invariant;
    Alcotest.test_case "digests distinguish programs" `Quick test_digests_distinguish_programs;
    Alcotest.test_case "serial/nondet report no digest" `Quick
      test_serial_and_nondet_have_no_digest;
  ]
