(* The dynamic neighborhood/race audit, audited.

   - every Run-based benchmark audits clean across the detcheck
     configuration lattice (the apps are cautious by construction, and
     the race check doubles as an independent re-verification of the
     scheduler's disjoint-neighborhood invariant);
   - the two deliberately broken operators are flagged, localized to
     (rule, round, task) — detection is live, not vacuous;
   - finding localization is thread-invariant;
   - an operator instrumented with [Context.touch] on properly acquired
     locations stays clean (no false positives from instrumentation);
   - the builder refuses audit outside the det policy, and reports are
     absent unless requested. *)

module Audit = Galois.Audit

let seed = 2014
let small_n = 120
let small_points = 40

let apps () = Detcheck.Audit_cases.apps ~n:small_n ~points:small_points ~seed

(* Each app × each non-static-id lattice configuration × two thread
   counts: zero findings everywhere. *)
let test_apps_clean_on_lattice () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let configs =
        List.filter
          (fun (c : Detcheck.config) -> not c.static_id)
          (Detcheck.lattice ~static_id_capable:false)
      in
      List.iter
        (fun (case : Detcheck.Audit_cases.t) ->
          List.iter
            (fun (cfg : Detcheck.config) ->
              List.iter
                (fun t ->
                  let report =
                    case.run ~policy:(Galois.Policy.det t ~options:cfg.options) ~pool
                  in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s det:%d clean" case.name cfg.label t)
                    true (Audit.clean report);
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s det:%d saw rounds" case.name cfg.label t)
                    true (report.Audit.rounds > 0))
                [ 1; 2 ])
            configs)
        (apps ()))

let find_witnesses (report : Audit.report) witnesses =
  List.filter (fun w -> not (List.mem w report.Audit.findings)) witnesses

let test_controls_flagged () =
  Galois.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (c : Detcheck.Audit_cases.control) ->
          List.iter
            (fun t ->
              let report, witnesses = c.crun ~policy:(Galois.Policy.det t) ~pool in
              Alcotest.(check bool)
                (Printf.sprintf "%s det:%d not clean" c.cname t)
                false (Audit.clean report);
              Alcotest.(check int)
                (Printf.sprintf "%s det:%d all witnesses flagged" c.cname t)
                0
                (List.length (find_witnesses report witnesses)))
            [ 1; 2; 4 ])
        (Detcheck.Audit_cases.controls ~n:small_n ~seed))

(* The racy control's report is exactly its three witnesses — two
   containment escapes and one write/write race — in deterministic
   order. *)
let test_racy_sssp_exact () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let c = Detcheck.Audit_cases.racy_sssp () in
      let report, witnesses = c.crun ~policy:(Galois.Policy.det 2) ~pool in
      Alcotest.(check int) "exactly the witnesses" (List.length witnesses)
        (List.length report.Audit.findings);
      Alcotest.(check int) "all present" 0
        (List.length (find_witnesses report witnesses));
      match report.Audit.findings with
      | [ a; b; r ] ->
          Alcotest.(check string) "containment first" "containment"
            (Audit.rule_name a.Audit.rule);
          Alcotest.(check string) "containment second" "containment"
            (Audit.rule_name b.Audit.rule);
          Alcotest.(check string) "race last" "race" (Audit.rule_name r.Audit.rule);
          Alcotest.(check int) "race anchored at higher id" 2 r.Audit.task;
          Alcotest.(check int) "race partner is lower id" 1 r.Audit.other
      | _ -> Alcotest.fail "expected exactly three findings")

(* (rule, round, task, other) localization must not depend on the
   thread count — only lids are run-relative (fresh locks per run). *)
let test_localization_thread_invariant () =
  Galois.Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun (c : Detcheck.Audit_cases.control) ->
          let shape t =
            let report, _ = c.crun ~policy:(Galois.Policy.det t) ~pool in
            List.map
              (fun (f : Audit.finding) ->
                (Audit.rule_name f.Audit.rule, f.Audit.round, f.Audit.task, f.Audit.other))
              report.Audit.findings
          in
          let s1 = shape 1 in
          List.iter
            (fun t ->
              Alcotest.(check bool)
                (Printf.sprintf "%s findings shape det:1 = det:%d" c.cname t)
                true
                (s1 = shape t))
            [ 2; 4 ])
        (Detcheck.Audit_cases.controls ~n:small_n ~seed))

(* A correctly cautious operator that *does* declare its reads and
   writes through [Context.touch] must not be flagged: touches on
   acquired locations after the failsafe point are exactly the
   contract. *)
let test_instrumented_bfs_clean () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let g = Graphlib.Generators.kout ~seed ~n:small_n ~k:4 () in
      let n = Graphlib.Csr.nodes g in
      let locks = Galois.Lock.create_array n in
      let dist = Array.make n max_int in
      let operator ctx (u, d) =
        Galois.Context.acquire ctx locks.(u);
        Galois.Context.touch ~write:false ctx locks.(u);
        if dist.(u) <= d then ()
        else begin
          Graphlib.Csr.iter_succ g u (fun v -> Galois.Context.acquire ctx locks.(v));
          Galois.Context.failsafe ctx;
          dist.(u) <- d;
          Galois.Context.touch ctx locks.(u);
          Graphlib.Csr.iter_succ g u (fun v ->
              Galois.Context.touch ~write:false ctx locks.(v);
              if dist.(v) > d + 1 then Galois.Context.push ctx (v, d + 1))
        end
      in
      let report =
        Galois.Run.make ~operator [| (0, 0) |]
        |> Galois.Run.policy (Galois.Policy.det 2)
        |> Galois.Run.pool pool
        |> Galois.Run.audit
        |> Galois.Run.exec
      in
      match report.audit with
      | None -> Alcotest.fail "audit requested but no report"
      | Some a ->
          Alcotest.(check bool) "instrumented cautious bfs clean" true (Audit.clean a);
          Alcotest.(check bool) "tasks were audited" true (a.Audit.tasks > 0))

(* Reading before the failsafe point is fine (inspection *is* reading);
   only pre-failsafe writes violate cautiousness. *)
let test_pre_failsafe_read_ok () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let locks = Galois.Lock.create_array 4 in
      let cells = Array.make 4 0 in
      let operator ctx u =
        Galois.Context.acquire ctx locks.(u);
        Galois.Context.touch ~write:false ctx locks.(u);
        ignore cells.(u);
        Galois.Context.failsafe ctx;
        cells.(u) <- u;
        Galois.Context.touch ctx locks.(u)
      in
      let report =
        Galois.Run.make ~operator [| 0; 1; 2; 3 |]
        |> Galois.Run.policy (Galois.Policy.det 2)
        |> Galois.Run.pool pool
        |> Galois.Run.audit
        |> Galois.Run.exec
      in
      Alcotest.(check bool) "pre-failsafe reads clean" true
        (Audit.clean (Option.get report.audit)))

let test_audit_requires_det () =
  Alcotest.check_raises "serial + audit rejected"
    (Invalid_argument "Galois.Run: audit requires a det policy") (fun () ->
      ignore
        (Galois.Run.make ~operator:(fun _ _ -> ()) [| 0 |]
        |> Galois.Run.policy Galois.Policy.serial
        |> Galois.Run.audit
        |> Galois.Run.exec))

let test_no_report_unless_requested () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let report =
        Galois.Run.make ~operator:(fun _ _ -> ()) [| 0; 1 |]
        |> Galois.Run.policy (Galois.Policy.det 2)
        |> Galois.Run.pool pool
        |> Galois.Run.exec
      in
      Alcotest.(check bool) "no audit report by default" true (report.audit = None))

(* Findings surface as deterministic Obs events when tracing is on. *)
let test_findings_traced () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let g = Graphlib.Csr.of_edges ~n:3 [| (0, 2); (1, 2) |] in
      let locks = Galois.Lock.create_array 3 in
      let cells = Array.make 3 0 in
      let operator ctx u =
        Galois.Context.acquire ctx locks.(u);
        Galois.Context.failsafe ctx;
        Graphlib.Csr.iter_succ g u (fun v ->
            cells.(v) <- cells.(v) + 1;
            Galois.Context.touch ctx locks.(v))
      in
      let options = Galois.Policy.Det_options.make ~window:(Some 8) () in
      let report =
        Galois.Run.make ~operator [| 0; 1 |]
        |> Galois.Run.policy (Galois.Policy.det 2 ~options)
        |> Galois.Run.pool pool
        |> Galois.Run.audit
        |> Galois.Run.trace
        |> Galois.Run.exec
      in
      let audit_events =
        List.filter
          (fun (s : Obs.stamped) ->
            match s.Obs.event with Obs.Audit_finding _ -> true | _ -> false)
          (Option.get report.trace)
      in
      Alcotest.(check int) "one trace event per finding"
        (List.length (Option.get report.audit).Audit.findings)
        (List.length audit_events))

let suite =
  [
    Alcotest.test_case "apps audit clean across lattice" `Quick test_apps_clean_on_lattice;
    Alcotest.test_case "positive controls flagged" `Quick test_controls_flagged;
    Alcotest.test_case "racy-sssp report is exactly its witnesses" `Quick
      test_racy_sssp_exact;
    Alcotest.test_case "finding localization thread-invariant" `Quick
      test_localization_thread_invariant;
    Alcotest.test_case "instrumented cautious bfs has no false positives" `Quick
      test_instrumented_bfs_clean;
    Alcotest.test_case "pre-failsafe reads are not violations" `Quick
      test_pre_failsafe_read_ok;
    Alcotest.test_case "audit requires det policy" `Quick test_audit_requires_det;
    Alcotest.test_case "no audit report unless requested" `Quick
      test_no_report_unless_requested;
    Alcotest.test_case "findings emitted as trace events" `Quick test_findings_traced;
  ]
