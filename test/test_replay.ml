(* Checkpoint/replay equivalence: the paper's determinism claim extended
   across process boundaries. The core property, checked over the
   detcheck fuzz generator and all four benchmarks across the
   configuration lattice:

     digest (run p) = digest (resume (checkpoint_at r (run p)))

   for randomized crash rounds r — including resuming under a different
   thread count, which is exactly the portability claim. Plus: snapshot
   codec round-trip and corruption detection, cross-process (serialized)
   resume into a fresh world, checkpoint cadence, the perturbed-snapshot
   negative control, and the builder's validation errors. *)

module D = Galois.Trace_digest
module Sm = Parallel.Splitmix
module Snapshot = Galois.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_digest what a b =
  if not (D.equal a b) then
    Alcotest.failf "%s: digest %a <> %a" what D.pp a D.pp b

(* The deterministic halves of two reports must agree; the
   non-deterministic halves (spins, parks, atomics) legitimately may
   not and are not compared. *)
let check_reports what (full : Galois.Run.report) (resumed : Galois.Run.report) =
  check_digest (what ^ ": sched digest") full.stats.digest resumed.stats.digest;
  check_int (what ^ ": rounds") full.stats.rounds resumed.stats.rounds;
  check_int (what ^ ": generations") full.stats.generations resumed.stats.generations;
  check_int (what ^ ": commits") full.stats.commits resumed.stats.commits;
  check_int (what ^ ": aborts") full.stats.aborts resumed.stats.aborts;
  check_int (what ^ ": created") full.stats.created resumed.stats.created;
  check_int (what ^ ": work") full.stats.work_units resumed.stats.work_units

(* ------------------------------------------------------------------ *)
(* Crash/resume equivalence over the fuzz generator and the apps       *)
(* ------------------------------------------------------------------ *)

(* One crash/resume audit of a replay case: run the reference world to
   completion, crash a second world at round [at], resume it (under
   [resume_policy] if given), and require equal deterministic stats and
   equal output digests. *)
let audit_case ?resume_policy ~policy ~at (Detcheck.Replay_cases.Case c) =
  let full_run, full_out = c.fresh ~static_id:false () in
  let crash_run, crash_out = c.fresh ~static_id:false () in
  let outcome =
    Replay.crash_resume ?resume_policy ~at
      ~full:(full_run |> Galois.Run.policy policy)
      ~crash:(crash_run |> Galois.Run.policy policy)
      ()
  in
  let what = Printf.sprintf "%s at=%d" c.name at in
  check_reports what outcome.Replay.full outcome.Replay.resumed;
  check_digest (what ^ ": output") (full_out ()) (crash_out ());
  outcome.Replay.crash_round

let test_gen_crash_resume_lattice () =
  (* Fuzz cases x configuration lattice x randomized crash rounds. The
     resumed run uses a *different thread count* than the crashed one:
     determinism says the digest cannot care. *)
  let rng = Sm.create 0xc4a5 in
  let configs =
    [
      Galois.Policy.Det_options.default;
      Galois.Policy.Det_options.make ~window:(Some 8) ();
      Galois.Policy.Det_options.make ~spread:1 ~continuation:false ();
    ]
  in
  List.iter
    (fun seed ->
      List.iter
        (fun options ->
          let case = Detcheck.Replay_cases.gen ~seed in
          let at = 1 + Sm.int rng 12 in
          let policy = Galois.Policy.det ~options 2 in
          let resume_policy = Galois.Policy.det ~options 4 in
          ignore (audit_case ~resume_policy ~policy ~at case))
        configs)
    [ 2014; 2015; 2016 ]

let test_apps_crash_resume () =
  (* All four benchmarks, including the hook-less live-resume-only ones
     (boruvka's union-find, dmr's in-place mesh). *)
  let rng = Sm.create 0xbeef in
  List.iter
    (fun case ->
      let at = 2 + Sm.int rng 10 in
      let crash_round =
        ignore (audit_case ~policy:(Galois.Policy.det 2) ~at case);
        (* and again, resuming at a different thread count *)
        audit_case
          ~resume_policy:(Galois.Policy.det 3)
          ~policy:(Galois.Policy.det 2) ~at case
      in
      check_bool "crashed mid-run" true (crash_round >= 1))
    [
      Detcheck.Replay_cases.bfs ~n:300 ~seed:7;
      Detcheck.Replay_cases.sssp ~n:300 ~seed:7;
      Detcheck.Replay_cases.boruvka ~n:300 ~seed:7;
      Detcheck.Replay_cases.dmr ~points:90 ~seed:7;
    ]

let test_crash_past_end_degrades () =
  (* A crash round past the end of the run: the "crashed" run completes,
     the resume replays the final boundary, and the comparison still
     holds. *)
  ignore
    (audit_case ~policy:(Galois.Policy.det 2) ~at:100_000
       (Detcheck.Replay_cases.gen ~seed:2014))

(* ------------------------------------------------------------------ *)
(* Serialized (cross-process-shaped) resume                            *)
(* ------------------------------------------------------------------ *)

(* Run bfs with checkpoints, encode the midpoint snapshot to bytes,
   then resume from the bytes into a *fresh* world — the hook must
   restore the dist array, and the resumed run must reproduce the
   uninterrupted digest and output. *)
let test_bytes_resume_fresh_world () =
  let g = Graphlib.Generators.kout ~seed:11 ~n:400 ~k:5 () in
  let full_run, full_dist = Apps.Bfs.plan g ~source:0 in
  let full = full_run |> Galois.Run.policy (Galois.Policy.det 2) |> Galois.Run.exec in
  let crash_run, _ = Apps.Bfs.plan g ~source:0 in
  let crash_run = crash_run |> Galois.Run.policy (Galois.Policy.det 2) in
  let bytes = ref None in
  let at = max 1 (full.stats.rounds / 2) in
  let _ =
    crash_run
    |> Galois.Run.checkpoint_every 1
    |> Galois.Run.on_checkpoint (fun snap -> bytes := Some (Snapshot.encode snap))
    |> Galois.Run.stop_after at
    |> Galois.Run.exec
  in
  let bytes = match !bytes with Some b -> b | None -> Alcotest.fail "no snapshot taken" in
  (* Fresh world: new run description over a new dist array. *)
  let fresh_run, fresh_dist = Apps.Bfs.plan g ~source:0 in
  let resumed =
    fresh_run
    |> Galois.Run.policy (Galois.Policy.det 4)
    |> Galois.Run.resume_from_bytes bytes
    |> Galois.Run.exec
  in
  check_reports "bytes resume" full resumed;
  check_bool "dist restored and completed" true (full_dist = fresh_dist)

let test_checkpoint_file_roundtrip () =
  (* checkpoint_to writes a loadable file whose decoded snapshot resumes
     (via resume_from) to the uninterrupted digest. *)
  let g = Graphlib.Generators.kout ~seed:13 ~n:400 ~k:5 () in
  let full_run, _ = Apps.Bfs.plan g ~source:0 in
  let full = full_run |> Galois.Run.policy (Galois.Policy.det 2) |> Galois.Run.exec in
  let path = Filename.temp_file "galois_replay" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let crash_run, _ = Apps.Bfs.plan g ~source:0 in
      let _ =
        crash_run
        |> Galois.Run.policy (Galois.Policy.det 2)
        |> Galois.Run.checkpoint_every 2
        |> Galois.Run.checkpoint_to path
        |> Galois.Run.stop_after (max 2 (full.stats.rounds / 2))
        |> Galois.Run.exec
      in
      (* The file decodes, and its metadata describes the run. *)
      (match Snapshot.load ~path with
      | Ok snap ->
          Alcotest.(check string) "app tag" "bfs" snap.Snapshot.app;
          check_bool "carries state" true (Option.is_some snap.Snapshot.state)
      | Error e -> Alcotest.failf "load: %s" (Snapshot.error_to_string e));
      let fresh_run, _ = Apps.Bfs.plan g ~source:0 in
      let resumed =
        fresh_run
        |> Galois.Run.policy (Galois.Policy.det 2)
        |> Galois.Run.resume_from path
        |> Galois.Run.exec
      in
      check_reports "file resume" full resumed)

(* ------------------------------------------------------------------ *)
(* Snapshot codec                                                      *)
(* ------------------------------------------------------------------ *)

(* A small boundary with every field populated, for codec tests. *)
let sample_snapshot () =
  let b =
    {
      Galois.Det_sched.b_rounds = 7;
      b_generations = 2;
      b_next_id = 40;
      b_gen_base = 30;
      b_window = 16;
      b_delta = 4;
      b_digest = D.fold_int D.seed 12345;
      b_pending_ids = [| 31; 34; 33 |];
      b_pending_items = [| (31, 0); (34, 1); (33, 2) |];
      b_todo_parents = [| 31; 31 |];
      b_todo_births = [| 0; 1 |];
      b_todo_items = [| (100, 0); (101, 0) |];
      b_commits = 25;
      b_aborts = 5;
      b_acquired = 60;
      b_work = 75;
      b_created = 10;
      b_inspected = 30;
    }
  in
  {
    Snapshot.app = "codec-test";
    options = "window=8,spread=1";
    static_id = false;
    boundary = b;
    state = Some (Obj.repr [| 1; 2; 3 |]);
  }

let test_codec_roundtrip () =
  let snap = sample_snapshot () in
  let bytes = Snapshot.encode snap in
  match Snapshot.decode bytes with
  | Error e -> Alcotest.failf "decode: %s" (Snapshot.error_to_string e)
  | Ok (got : (int * int) Snapshot.t) ->
      Alcotest.(check string) "app" snap.Snapshot.app got.Snapshot.app;
      Alcotest.(check string) "options" snap.Snapshot.options got.Snapshot.options;
      check_bool "static_id" snap.Snapshot.static_id got.Snapshot.static_id;
      let b = snap.Snapshot.boundary and g = got.Snapshot.boundary in
      check_int "rounds" b.Galois.Det_sched.b_rounds g.Galois.Det_sched.b_rounds;
      check_int "generations" b.b_generations g.b_generations;
      check_int "next_id" b.b_next_id g.b_next_id;
      check_int "gen_base" b.b_gen_base g.b_gen_base;
      check_int "window" b.b_window g.b_window;
      check_digest "digest" b.b_digest g.b_digest;
      Alcotest.(check (array int)) "pending ids" b.b_pending_ids g.b_pending_ids;
      check_bool "pending items" true (b.b_pending_items = g.b_pending_items);
      Alcotest.(check (array int)) "todo parents" b.b_todo_parents g.b_todo_parents;
      Alcotest.(check (array int)) "todo births" b.b_todo_births g.b_todo_births;
      check_bool "todo items" true (b.b_todo_items = g.b_todo_items);
      check_int "commits" b.b_commits g.b_commits;
      check_int "inspected" b.b_inspected g.b_inspected;
      let st : int array = Obj.obj (Option.get got.Snapshot.state) in
      Alcotest.(check (array int)) "state payload" [| 1; 2; 3 |] st

let decode_error bytes =
  match Snapshot.decode bytes with
  | Ok (_ : (int * int) Snapshot.t) -> Alcotest.fail "decode accepted corrupt bytes"
  | Error e -> e

let test_codec_corruption () =
  let bytes = Snapshot.encode (sample_snapshot ()) in
  (* Flip one body byte: checksum must catch it. *)
  let flipped = Bytes.of_string bytes in
  let mid = (String.length bytes / 2) + 4 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  (match decode_error (Bytes.to_string flipped) with
  | Snapshot.Bad_checksum -> ()
  | e -> Alcotest.failf "flip: expected Bad_checksum, got %s" (Snapshot.error_to_string e));
  (* Truncate: a short header is Truncated; a truncated *body* fails
     the checksum first (the documented check order is magic, version,
     checksum, shape) — never an exception either way. *)
  List.iter
    (fun keep ->
      match decode_error (String.sub bytes 0 keep) with
      | Snapshot.Truncated -> ()
      | e ->
          Alcotest.failf "truncate %d: expected Truncated, got %s" keep
            (Snapshot.error_to_string e))
    [ 0; 3; 8 ];
  (match decode_error (String.sub bytes 0 (String.length bytes - 1)) with
  | Snapshot.Bad_checksum -> ()
  | e ->
      Alcotest.failf "body truncation: expected Bad_checksum, got %s"
        (Snapshot.error_to_string e));
  (* Wrong magic. *)
  let bad_magic = Bytes.of_string bytes in
  Bytes.set bad_magic 0 'X';
  (match decode_error (Bytes.to_string bad_magic) with
  | Snapshot.Bad_magic -> ()
  | e -> Alcotest.failf "magic: expected Bad_magic, got %s" (Snapshot.error_to_string e));
  (* Future version: reported before the checksum is even consulted. *)
  let future = Bytes.of_string bytes in
  Bytes.set future 5 (Char.chr 99);
  match decode_error (Bytes.to_string future) with
  | Snapshot.Bad_version 99 -> ()
  | e -> Alcotest.failf "version: expected Bad_version 99, got %s" (Snapshot.error_to_string e)

let test_save_load_atomic () =
  let path = Filename.temp_file "galois_snap" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () ->
      let snap = sample_snapshot () in
      (match Snapshot.save ~path snap with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" (Snapshot.error_to_string e));
      check_bool "no tmp litter" false (Sys.file_exists (path ^ ".tmp"));
      (match Snapshot.load ~path with
      | Ok (got : (int * int) Snapshot.t) ->
          check_digest "digest survives disk" snap.Snapshot.boundary.b_digest
            got.Snapshot.boundary.Galois.Det_sched.b_digest
      | Error e -> Alcotest.failf "load: %s" (Snapshot.error_to_string e));
      match Snapshot.load ~path:(path ^ ".does-not-exist") with
      | Error (Snapshot.Io _) -> ()
      | Error e -> Alcotest.failf "missing file: %s" (Snapshot.error_to_string e)
      | Ok (_ : (int * int) Snapshot.t) -> Alcotest.fail "loaded a missing file")

(* ------------------------------------------------------------------ *)
(* Cadence, stop_after, and the lockstep verifier                      *)
(* ------------------------------------------------------------------ *)

(* A conflict-free run (each task its own lock) with a pinned window:
   rounds and commits are exactly predictable, and every window slot
   commits — the workhorse for cadence and perturbation tests. *)
let no_conflict_run ?(n = 100) ?(window = 8) ?(threads = 2) () =
  let locks = Array.init n (fun _ -> Galois.Lock.create ()) in
  let options = Galois.Policy.Det_options.make ~window:(Some window) () in
  Galois.Run.make
    ~operator:(fun ctx i -> Galois.Context.acquire ctx locks.(i))
    (Array.init n (fun i -> i))
  |> Galois.Run.policy (Galois.Policy.det ~options threads)

let test_checkpoint_cadence () =
  (* Cadence k: boundaries at exactly the rounds divisible by k. *)
  List.iter
    (fun every ->
      let rounds = ref [] in
      let report =
        no_conflict_run ()
        |> Galois.Run.checkpoint_every every
        |> Galois.Run.on_checkpoint (fun snap ->
               rounds := snap.Snapshot.boundary.Galois.Det_sched.b_rounds :: !rounds)
        |> Galois.Run.exec
      in
      let expected =
        List.filter
          (fun r -> r mod every = 0)
          (List.init report.Galois.Run.stats.rounds (fun i -> i + 1))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "cadence %d" every)
        expected (List.rev !rounds))
    [ 1; 2; 3; 5 ]

let test_stop_after_prefix () =
  (* stop_after r executes exactly min r total rounds, and its digest is
     the digest prefix of the full run at that round (checked via the
     full run's checkpoint trail). *)
  let trail, full = Replay.Lockstep.collect ~every:1 (no_conflict_run ()) in
  check_int "trail covers the run" full.Galois.Run.stats.rounds (List.length trail);
  List.iter
    (fun r ->
      let report = no_conflict_run () |> Galois.Run.stop_after r |> Galois.Run.exec in
      let stopped_at = min r full.Galois.Run.stats.rounds in
      check_int (Printf.sprintf "rounds at stop %d" r) stopped_at
        report.Galois.Run.stats.rounds;
      check_digest
        (Printf.sprintf "digest prefix at %d" r)
        (List.assoc stopped_at trail)
        report.Galois.Run.stats.digest)
    [ 1; 2; 7; 1000 ]

let test_lockstep_verdicts () =
  (* Pure trail arithmetic: agreement, divergence localization, skipped
     rounds under different cadences, and disjoint trails. *)
  let d n = D.fold_int D.seed n in
  let open Replay.Lockstep in
  (match first_divergence [ (1, d 1); (2, d 2) ] [ (1, d 1); (2, d 2) ] with
  | Agree { compared } -> check_int "both compared" 2 compared
  | v -> Alcotest.failf "expected agree, got %a" pp_verdict v);
  (match first_divergence [ (1, d 1); (2, d 2); (3, d 3) ] [ (2, d 99); (3, d 3) ] with
  | Diverge { round; _ } -> check_int "localized" 2 round
  | v -> Alcotest.failf "expected diverge, got %a" pp_verdict v);
  (* Different cadences: only common rounds are compared. *)
  (match first_divergence [ (2, d 2); (4, d 4); (6, d 6) ] [ (3, d 30); (6, d 6) ] with
  | Agree { compared } -> check_int "only round 6 shared" 1 compared
  | v -> Alcotest.failf "expected agree, got %a" pp_verdict v);
  match first_divergence [ (1, d 1) ] [ (2, d 2) ] with
  | Disjoint -> ()
  | v -> Alcotest.failf "expected disjoint, got %a" pp_verdict v

let test_perturbed_snapshot_localized () =
  (* The negative control (ISSUE satellite): capture the round-2
     boundary of the conflict-free run, swap two pending entries, and
     resume — every window slot commits, so the swap is visible in the
     round-3 digest fold, and the lockstep verifier must localize the
     divergence to exactly round 3. *)
  let trail_ref, _ = Replay.Lockstep.collect ~every:1 (no_conflict_run ()) in
  let captured = ref None in
  let _ =
    no_conflict_run ()
    |> Galois.Run.checkpoint_every 1
    |> Galois.Run.on_checkpoint (fun snap ->
           let b = snap.Snapshot.boundary in
           if b.Galois.Det_sched.b_rounds = 2 then captured := Some b)
    |> Galois.Run.exec
  in
  let b = match !captured with Some b -> b | None -> Alcotest.fail "no round-2 boundary" in
  check_bool "enough pending to swap" true
    (Array.length b.Galois.Det_sched.b_pending_ids >= 2);
  let perturbed = Replay.swap_pending_ids 0 1 b in
  let trail_bad, _ =
    Replay.Lockstep.collect ~every:1 (no_conflict_run () |> Galois.Run.resume perturbed)
  in
  (match Replay.Lockstep.first_divergence trail_ref trail_bad with
  | Replay.Lockstep.Diverge { round; _ } -> check_int "localized to round 3" 3 round
  | v -> Alcotest.failf "perturbation not localized: %a" Replay.Lockstep.pp_verdict v);
  (* Control of the control: resuming from the *unperturbed* boundary
     agrees everywhere. *)
  let trail_good, _ =
    Replay.Lockstep.collect ~every:1 (no_conflict_run () |> Galois.Run.resume b)
  in
  match Replay.Lockstep.first_divergence trail_ref trail_good with
  | Replay.Lockstep.Agree _ -> ()
  | v -> Alcotest.failf "clean resume diverged: %a" Replay.Lockstep.pp_verdict v

let test_swap_bounds () =
  let b = (sample_snapshot ()).Snapshot.boundary in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Replay.swap_pending_ids: index out of bounds") (fun () ->
      ignore (Replay.swap_pending_ids 0 99 b))

(* ------------------------------------------------------------------ *)
(* Builder validation                                                  *)
(* ------------------------------------------------------------------ *)

let expect_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.failf "%s: accepted" what

let test_builder_validation () =
  let base () = no_conflict_run () in
  expect_invalid "cadence < 1" (fun () ->
      base () |> Galois.Run.checkpoint_every 0 |> Galois.Run.exec);
  expect_invalid "stop_after < 1" (fun () ->
      base () |> Galois.Run.stop_after 0 |> Galois.Run.exec);
  expect_invalid "cadence without destination" (fun () ->
      base () |> Galois.Run.checkpoint_every 2 |> Galois.Run.exec);
  expect_invalid "checkpoint under serial" (fun () ->
      Galois.Run.make ~operator:(fun _ _ -> ()) [| 0 |]
      |> Galois.Run.checkpoint_every 1
      |> Galois.Run.on_checkpoint ignore
      |> Galois.Run.exec);
  expect_invalid "checkpoint under nondet" (fun () ->
      Galois.Run.make ~operator:(fun _ _ -> ()) [| 0 |]
      |> Galois.Run.policy (Galois.Policy.nondet 2)
      |> Galois.Run.checkpoint_every 1
      |> Galois.Run.on_checkpoint ignore
      |> Galois.Run.exec)

let test_resume_validation () =
  (* A snapshot taken under one set of det options must be refused by a
     description running under another, and by a mismatched app tag. *)
  let snap_of run =
    let s = ref None in
    let _ =
      run
      |> Galois.Run.checkpoint_every 1
      |> Galois.Run.on_checkpoint (fun snap -> s := Some (Snapshot.encode snap))
      |> Galois.Run.stop_after 1
      |> Galois.Run.exec
    in
    Option.get !s
  in
  let bytes = snap_of (no_conflict_run ~window:8 ()) in
  expect_invalid "options mismatch" (fun () ->
      no_conflict_run ~window:16 ()
      |> Galois.Run.resume_from_bytes bytes
      |> Galois.Run.exec);
  (* App tags are validated only when both sides carry one (an untagged
     snapshot resumes anywhere), so mismatch needs a tagged snapshot. *)
  let tagged = snap_of (no_conflict_run ~window:8 () |> Galois.Run.app "control-a") in
  expect_invalid "app mismatch" (fun () ->
      no_conflict_run ~window:8 ()
      |> Galois.Run.app "control-b"
      |> Galois.Run.resume_from_bytes tagged
      |> Galois.Run.exec);
  (* Same options, same (empty) app: accepted and completes. *)
  let report =
    no_conflict_run ~window:8 ()
    |> Galois.Run.resume_from_bytes bytes
    |> Galois.Run.exec
  in
  check_int "resumed to completion" 100 report.Galois.Run.stats.commits

let suite =
  [
    Alcotest.test_case "gen: crash/resume over the lattice" `Quick
      test_gen_crash_resume_lattice;
    Alcotest.test_case "apps: crash/resume equivalence" `Quick test_apps_crash_resume;
    Alcotest.test_case "crash past end degrades to full run" `Quick
      test_crash_past_end_degrades;
    Alcotest.test_case "bytes resume into a fresh world" `Quick
      test_bytes_resume_fresh_world;
    Alcotest.test_case "checkpoint file round-trips" `Quick test_checkpoint_file_roundtrip;
    Alcotest.test_case "codec: round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: corruption detection" `Quick test_codec_corruption;
    Alcotest.test_case "codec: atomic save/load" `Quick test_save_load_atomic;
    Alcotest.test_case "checkpoint cadence" `Quick test_checkpoint_cadence;
    Alcotest.test_case "stop_after is a digest prefix" `Quick test_stop_after_prefix;
    Alcotest.test_case "lockstep verdict arithmetic" `Quick test_lockstep_verdicts;
    Alcotest.test_case "perturbed snapshot localized" `Quick
      test_perturbed_snapshot_localized;
    Alcotest.test_case "swap bounds checked" `Quick test_swap_bounds;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "resume validation" `Quick test_resume_validation;
  ]
