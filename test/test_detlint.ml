(* The static determinism lint, linted.

   Everything goes through [Detlint.scan_source ~path] on inline
   sources, so the tests pin the rule set, the wall-clock allowlist,
   the escape-comment grammar (including its failure modes) and the
   lexer's treatment of strings/comments without touching the real
   tree — `dune build @lint` covers that. *)

let rules fs = List.map (fun (f : Detlint.finding) -> f.Detlint.rule) fs

let scan ?(path = "lib/foo/bar.ml") src = Detlint.scan_source ~path src

let test_random_flagged () =
  Alcotest.(check (list string)) "Random.int" [ "random" ]
    (rules (scan "let x = Random.int 10\n"));
  Alcotest.(check (list string)) "Stdlib prefix normalized" [ "random" ]
    (rules (scan "let x = Stdlib.Random.int 10\n"));
  Alcotest.(check (list string)) "Random.self_init" [ "random" ]
    (rules (scan "let () = Random.self_init ()\n"))

let test_hashtbl_order () =
  Alcotest.(check (list string)) "iter" [ "hashtbl-order" ]
    (rules (scan "let f h = Hashtbl.iter (fun _ _ -> ()) h\n"));
  Alcotest.(check (list string)) "fold" [ "hashtbl-order" ]
    (rules (scan "let f h = Hashtbl.fold (fun _ _ a -> a) h 0\n"));
  Alcotest.(check (list string)) "to_seq" [ "hashtbl-order" ]
    (rules (scan "let f h = Hashtbl.to_seq h\n"));
  Alcotest.(check (list string)) "replace/find untouched" []
    (rules (scan "let f h = Hashtbl.replace h 1 2; Hashtbl.find_opt h 1\n"))

let test_poly_hash () =
  Alcotest.(check (list string)) "Hashtbl.hash" [ "poly-hash" ]
    (rules (scan "let f x = Hashtbl.hash x\n"));
  Alcotest.(check (list string)) "seeded" [ "poly-hash" ]
    (rules (scan "let f x = Hashtbl.seeded_hash 7 x\n"))

let test_domain_self () =
  Alcotest.(check (list string)) "Domain.self" [ "domain-self" ]
    (rules (scan "let w () = (Domain.self () :> int)\n"));
  Alcotest.(check (list string)) "Domain.spawn untouched" []
    (rules (scan "let d f = Domain.spawn f\n"))

let test_wall_clock_allowlist () =
  let src = "let t = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string)) "flagged under lib" [ "wall-clock" ]
    (rules (scan ~path:"lib/core/foo.ml" src));
  Alcotest.(check (list string)) "Sys.time flagged too" [ "wall-clock" ]
    (rules (scan ~path:"lib/core/foo.ml" "let t = Sys.time ()\n"));
  Alcotest.(check (list string)) "bin/ exempt" []
    (rules (scan ~path:"bin/foo_cli.ml" src));
  Alcotest.(check (list string)) "bench/ exempt" []
    (rules (scan ~path:"bench/bench_apps.ml" src));
  Alcotest.(check (list string)) "clock.ml exempt" []
    (rules (scan ~path:"lib/core/clock.ml" src));
  (* The exemption is per-segment, not substring. *)
  Alcotest.(check (list string)) "lib/binpack not exempt" [ "wall-clock" ]
    (rules (scan ~path:"lib/binpack/foo.ml" src))

let test_allow_comment () =
  Alcotest.(check (list string)) "same-line allow" []
    (rules
       (scan "let x = Random.int 10 (* detlint: allow random — test fixture *)\n"));
  Alcotest.(check (list string)) "line-above allow" []
    (rules
       (scan "(* detlint: allow random — test fixture *)\nlet x = Random.int 10\n"));
  Alcotest.(check (list string)) "allow does not leak further down" [ "random" ]
    (rules
       (scan
          "(* detlint: allow random — test fixture *)\nlet y = 1\nlet x = Random.int 10\n"));
  Alcotest.(check (list string)) "wrong rule does not suppress" [ "random" ]
    (rules
       (scan
          "(* detlint: allow wall-clock — test fixture *)\nlet x = Random.int 10\n"));
  Alcotest.(check (list string)) "allow-file covers everything" []
    (rules
       (scan
          "(* detlint: allow-file random — test fixture *)\nlet y = 1\nlet x = Random.int 10\n"));
  Alcotest.(check (list string)) "ascii separators accepted" []
    (rules (scan "let x = Random.int 10 (* detlint: allow random -- fixture *)\n"));
  Alcotest.(check (list string)) "multiple rules in one allow" []
    (rules
       (scan
          "(* detlint: allow random,poly-hash — fixture *)\n\
           let x = Hashtbl.hash (Random.int 10)\n"))

let test_bad_allow () =
  Alcotest.(check (list string)) "reasonless allow is a finding"
    [ "bad-allow"; "random" ]
    (rules (scan "(* detlint: allow random *)\nlet x = Random.int 10\n"));
  Alcotest.(check (list string)) "unknown rule is a finding" [ "bad-allow" ]
    (rules (scan "(* detlint: allow nonsense — because *)\nlet x = 1\n"));
  Alcotest.(check (list string)) "unknown directive is a finding" [ "bad-allow" ]
    (rules (scan "(* detlint: pardon random — please *)\nlet x = 1\n"))

let test_lexing () =
  Alcotest.(check (list string)) "identifier inside string untouched" []
    (rules (scan "let s = \"Random.int\"\n"));
  Alcotest.(check (list string)) "identifier inside comment untouched" []
    (rules (scan "(* Random.int would be bad here *)\nlet x = 1\n"));
  (* A directive must be its own comment: buried inside another comment
     it is prose, not a suppression. *)
  Alcotest.(check (list string)) "directive nested in another comment inert"
    [ "random" ]
    (rules
       (scan
          "(* outer (* detlint: allow random — nested fixture *) *)\n\
           let x = Random.int 10\n"));
  Alcotest.(check (list string)) "parse error reported" [ "parse-error" ]
    (rules (scan "let let let\n"))

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_positions_and_json () =
  match scan "let a = 1\nlet x = Random.int 10\n" with
  | [ f ] ->
      Alcotest.(check int) "line" 2 f.Detlint.line;
      Alcotest.(check string) "file" "lib/foo/bar.ml" f.Detlint.file;
      let j = Detlint.to_json f in
      Alcotest.(check bool) "json has rule" true
        (String.length j > 0 && j.[0] = '{' && contains ~sub:"\"rule\":\"random\"" j)
  | fs -> Alcotest.fail (Printf.sprintf "expected one finding, got %d" (List.length fs))

let suite =
  [
    Alcotest.test_case "random flagged" `Quick test_random_flagged;
    Alcotest.test_case "hashtbl order-sensitive iteration flagged" `Quick
      test_hashtbl_order;
    Alcotest.test_case "polymorphic hashing flagged" `Quick test_poly_hash;
    Alcotest.test_case "domain-self flagged" `Quick test_domain_self;
    Alcotest.test_case "wall-clock allowlist" `Quick test_wall_clock_allowlist;
    Alcotest.test_case "escape comments suppress" `Quick test_allow_comment;
    Alcotest.test_case "bad allows are findings" `Quick test_bad_allow;
    Alcotest.test_case "strings, comments, parse errors" `Quick test_lexing;
    Alcotest.test_case "positions and json" `Quick test_positions_and_json;
  ]
