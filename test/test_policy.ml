(* Policy string grammar and Det_options constructors: round-trips of
   the keyed det option block, reject cases, and setter validation. *)

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

module P = Galois.Policy
module O = Galois.Policy.Det_options

let roundtrip s =
  match P.of_string s with
  | Ok p -> P.to_string p
  | Error e -> Alcotest.failf "%S rejected: %s" s e

let test_roundtrips () =
  check_string "serial" "serial" (roundtrip "serial");
  check_string "nondet defaults to 1 thread" "nondet:1" (roundtrip "nondet");
  check_string "nondet:8" "nondet:8" (roundtrip "nondet:8");
  check_string "det defaults to 1 thread" "det:1" (roundtrip "det");
  check_string "det:4" "det:4" (roundtrip "det:4");
  check_string "default options collapse" "det:4" (roundtrip "det:4[]");
  check_string "window=auto is the default" "det:4" (roundtrip "det:4[window=auto]");
  check_string "full option block"
    "det:8[window=64,spread=1,ratio=0.95,cont=off]"
    (roundtrip "det:8[window=64,spread=1,ratio=0.95,cont=off]");
  (* Key order is normalized to window,spread,ratio,cont,validate,prio. *)
  check_string "key order normalized"
    "det:2[window=8,ratio=0.5,validate=on]"
    (roundtrip "det:2[validate=on,ratio=0.5,window=8]");
  check_string "prio=off is the default" "det:4" (roundtrip "det:4[prio=off]");
  check_string "prio=auto" "det:4[prio=auto]" (roundtrip "det:4[prio=auto]");
  check_string "prio=delta:16" "det:4[prio=delta:16]" (roundtrip "det:4[prio=delta:16]");
  check_string "prio normalized last" "det:2[window=8,prio=delta:4]"
    (roundtrip "det:2[prio=delta:4,window=8]");
  (* to_string output parses back to the same policy. *)
  let p = P.det 3 ~options:(O.make ~spread:4 ~continuation:false ()) in
  (match P.of_string (P.to_string p) with
  | Ok p' -> check_bool "of_string inverts to_string" true (p = p')
  | Error e -> Alcotest.fail e)

let reject s =
  match P.of_string s with
  | Error _ -> ()
  | Ok p -> Alcotest.failf "%S accepted as %s" s (P.to_string p)

let test_rejects () =
  reject "";
  reject "bogus";
  reject "det:0";
  reject "det:-1";
  reject "nondet:zero";
  reject "det:2[window=64";
  (* unterminated block *)
  reject "det:2[window=64]x";
  (* trailing garbage *)
  reject "det:2[window=0]";
  reject "det:2[window=sixty]";
  reject "det:2[spread=0]";
  reject "det:2[ratio=0]";
  reject "det:2[ratio=much]";
  reject "det:2[cont=maybe]";
  reject "det:2[pileup=3]";
  (* unknown key *)
  reject "det:2[window=8,window=8]";
  (* duplicate key *)
  reject "det:2[window=]";
  reject "det:2[window]";
  reject "det:2[prio=maybe]";
  reject "det:2[prio=delta]";
  (* delta needs a width *)
  reject "det:2[prio=delta:]";
  reject "det:2[prio=delta:0]";
  reject "det:2[prio=delta:-3]";
  reject "det:2[prio=delta:four]";
  reject "det:2[prio=auto,prio=auto]";
  (* duplicate key *)
  reject "serial[window=8]" (* options only make sense for det *)

let test_make_and_setters () =
  check_bool "make () is default" true (O.make () = O.default);
  let o = O.make ~ratio:0.5 ~window:(Some 32) ~spread:1 ~continuation:false ~validate:true () in
  check_bool "ratio" true (o.P.target_ratio = 0.5);
  check_bool "window" true (o.P.initial_window = Some 32);
  check_bool "spread" true (o.P.spread = 1);
  check_bool "continuation" true (not o.P.continuation);
  check_bool "validate" true o.P.validate;
  check_bool "setters compose" true
    (O.default |> O.with_ratio 0.5 |> O.with_window (Some 32) |> O.with_spread 1
    |> O.with_continuation false |> O.with_validate true
    = o);
  check_bool "with_window None restores auto" true
    ((o |> O.with_window None).P.initial_window = None);
  (* Ratios above 1 pin the window (ablation use) and are allowed. *)
  check_bool "ratio > 1 allowed" true ((O.with_ratio 2.0 O.default).P.target_ratio = 2.0);
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "ratio 0 rejected" true (raises (fun () -> O.with_ratio 0.0 O.default));
  check_bool "negative ratio rejected" true (raises (fun () -> O.with_ratio (-1.0) O.default));
  check_bool "window 0 rejected" true (raises (fun () -> O.with_window (Some 0) O.default));
  check_bool "spread 0 rejected" true (raises (fun () -> O.with_spread 0 O.default));
  check_bool "priority via make" true
    ((O.make ~priority:(P.Prio_delta 8) ()).P.priority = P.Prio_delta 8);
  check_bool "with_priority composes" true
    ((O.default |> O.with_priority P.Prio_auto).P.priority = P.Prio_auto);
  check_bool "delta 0 rejected" true
    (raises (fun () -> O.with_priority (P.Prio_delta 0) O.default));
  check_bool "negative delta rejected" true
    (raises (fun () -> O.with_priority (P.Prio_delta (-1)) O.default))

let test_options_to_string () =
  check_string "default is empty" "" (O.to_string O.default);
  check_string "single key" "spread=1" (O.to_string (O.with_spread 1 O.default));
  check_string "fixed order" "window=16,cont=off"
    (O.to_string (O.default |> O.with_continuation false |> O.with_window (Some 16)));
  (* Float ratios survive the 12-significant-digit rendering. *)
  let o = O.with_ratio 0.925 O.default in
  match O.of_string (O.to_string o) with
  | Ok o' -> check_bool "float round-trip" true (o'.P.target_ratio = 0.925)
  | Error e -> Alcotest.fail e

(* Property fuzz: to_string / of_string must be exact inverses over the
   full keyed grammar. Options are drawn at random — including ratios
   whose shortest 12-digit rendering is lossy and need the 17-digit
   fallback — rendered, reparsed and compared structurally; the
   rendering must also be a fixpoint (a second round-trip yields the
   same string). *)
let test_roundtrip_fuzz () =
  let module S = Parallel.Splitmix in
  let g = S.create 2014 in
  for i = 1 to 1000 do
    let ratio =
      match S.int g 5 with
      | 0 -> 0.95 (* the default: exercises key omission *)
      | 1 -> float_of_int (1 + S.int g 40) /. 20.0
      | 2 -> S.float g +. 1e-6 (* full-precision mantissas: %.17g fallback *)
      | 3 -> 1.0 /. float_of_int (3 + S.int g 97)
      | _ -> Float.succ (float_of_int (1 + S.int g 4) *. 0.1)
    in
    let window = if S.bool g then None else Some (1 + S.int g 1000) in
    let priority =
      match S.int g 3 with
      | 0 -> P.Prio_off
      | 1 -> P.Prio_auto
      | _ -> P.Prio_delta (1 + S.int g 1000)
    in
    let o =
      O.make ~ratio ~window ~spread:(1 + S.int g 8) ~continuation:(S.bool g)
        ~validate:(S.bool g) ~priority ()
    in
    let s = O.to_string o in
    (match O.of_string s with
    | Ok o' ->
        if o' <> o then Alcotest.failf "draw %d: %S reparsed to a different option set" i s;
        let s' = O.to_string o' in
        if not (String.equal s s') then
          Alcotest.failf "draw %d: rendering not a fixpoint (%S vs %S)" i s s'
    | Error e -> Alcotest.failf "draw %d: own rendering %S rejected: %s" i s e);
    (* And through the full policy grammar. *)
    let p = P.det ~options:o (1 + S.int g 16) in
    match P.of_string (P.to_string p) with
    | Ok p' ->
        if p' <> p then
          Alcotest.failf "draw %d: policy %S reparsed differently" i (P.to_string p)
    | Error e -> Alcotest.failf "draw %d: policy %S rejected: %s" i (P.to_string p) e
  done

let test_grammar_and_pp () =
  check_string "grammar string" "serial | nondet[:T] | det[:T][k=v,...]" P.grammar;
  check_string "pp agrees with to_string" (P.to_string (P.det 2)) (Fmt.str "%a" P.pp (P.det 2))

let suite =
  [
    Alcotest.test_case "policy string round-trips" `Quick test_roundtrips;
    Alcotest.test_case "policy string rejects" `Quick test_rejects;
    Alcotest.test_case "Det_options.make and setters" `Quick test_make_and_setters;
    Alcotest.test_case "Det_options.to_string" `Quick test_options_to_string;
    Alcotest.test_case "round-trip property fuzz" `Quick test_roundtrip_fuzz;
    Alcotest.test_case "grammar and pp" `Quick test_grammar_and_pp;
  ]
