(* End-to-end application tests: each benchmark's Galois program (under
   serial, non-deterministic and deterministic policies), its PBBS-style
   deterministic variant, and its sequential baseline must all agree on
   the problem's answer — and the deterministic variants must be
   thread-portable. *)

module Csr = Graphlib.Csr
module Gen = Graphlib.Generators
module Point = Geometry.Point

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let policies = [ ("serial", Galois.Policy.serial); ("nondet", Galois.Policy.nondet 3); ("det", Galois.Policy.det 3) ]

(* --- bfs -------------------------------------------------------------- *)

let bfs_graph () = Gen.kout ~seed:5 ~n:3000 ~k:5 ()

let test_bfs_all_variants_agree () =
  let g = bfs_graph () in
  let reference = Apps.Bfs.serial g ~source:0 in
  check_bool "serial result validates" true (Apps.Bfs.validate g ~source:0 reference);
  List.iter
    (fun (name, policy) ->
      let dist, report = Apps.Bfs.galois ~policy g ~source:0 in
      check_bool (name ^ " commits > 0") true (report.stats.commits > 0);
      if dist <> reference then Alcotest.failf "bfs %s differs from serial" name)
    policies;
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let dist, _, _ = Apps.Bfs.pbbs ~pool g ~source:0 in
      if dist <> reference then Alcotest.fail "pbbs bfs differs from serial")

let test_bfs_disconnected () =
  (* Nodes unreachable from the source stay at [unreached]. *)
  let g = Csr.of_edges ~n:5 [| (0, 1); (1, 2); (3, 4) |] in
  let dist = Apps.Bfs.serial g ~source:0 in
  check_int "reached" 2 dist.(2);
  check_bool "unreached" true (dist.(3) = Apps.Bfs.unreached && dist.(4) = Apps.Bfs.unreached);
  List.iter
    (fun (name, policy) ->
      let d, _ = Apps.Bfs.galois ~policy g ~source:0 in
      if d <> dist then Alcotest.failf "bfs %s differs on disconnected graph" name)
    policies

(* --- sssp ------------------------------------------------------------- *)

let test_sssp_weight_plane_equivalent () =
  (* Weights from a catalog-side array and the same values embedded in
     the graph's off-heap plane must produce identical distances AND
     identical schedules — the schedule depends on weight values only,
     not on where they are stored. *)
  let g = Gen.kout ~seed:7 ~n:2000 ~k:5 () in
  let w = Graphlib.Graph_io.random_weights ~seed:8 g in
  let gw = Graphlib.Graph_io.attach_random_weights ~seed:8 g in
  let policy = Galois.Policy.det 3 in
  let dist_arr, rep_arr = Apps.Sssp.galois ~policy g w ~source:0 in
  let dist_pl, rep_pl = Apps.Sssp.galois_weighted ~policy gw ~source:0 in
  if dist_arr <> dist_pl then Alcotest.fail "sssp distances differ by weight source";
  check_bool "schedule digests equal" true
    (Galois.Trace_digest.equal rep_arr.stats.digest rep_pl.stats.digest)

(* --- mis -------------------------------------------------------------- *)

let mis_graph () = Csr.symmetrize (Gen.kout ~seed:11 ~n:2000 ~k:4 ())

let test_mis_all_valid () =
  let g = mis_graph () in
  let serial_mis = Apps.Mis.serial g in
  check_bool "serial maximal independent" true (Apps.Mis.is_maximal_independent g serial_mis);
  List.iter
    (fun (name, policy) ->
      let in_mis, _ = Apps.Mis.galois ~policy g in
      check_bool (name ^ " maximal independent") true (Apps.Mis.is_maximal_independent g in_mis))
    policies

let test_mis_pbbs_lexicographic () =
  (* PBBS deterministic reservations = sequential greedy in index
     order. *)
  let g = mis_graph () in
  let serial_mis = Apps.Mis.serial g in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      let in_mis, _ = Apps.Mis.pbbs ~pool g in
      if in_mis <> serial_mis then Alcotest.fail "pbbs MIS differs from lexicographic greedy")

let test_mis_det_portable () =
  let g = mis_graph () in
  let ref_mis, _ = Apps.Mis.galois ~policy:(Galois.Policy.det 1) g in
  List.iter
    (fun t ->
      let m, _ = Apps.Mis.galois ~policy:(Galois.Policy.det t) g in
      if m <> ref_mis then Alcotest.failf "det MIS differs at %d threads" t)
    [ 2; 4 ]

(* --- pfp -------------------------------------------------------------- *)

let test_pfp_flow_value () =
  let g, caps, source, sink = Gen.flow_network ~seed:3 ~n:300 ~k:4 () in
  let reference =
    let net = Apps.Flow_network.of_graph g caps ~source ~sink in
    (Apps.Pfp.serial net).Apps.Pfp.flow_value
  in
  check_bool "positive flow" true (reference > 0);
  List.iter
    (fun (name, policy) ->
      let net = Apps.Flow_network.of_graph g caps ~source ~sink in
      let result = Apps.Pfp.galois ~policy net in
      check_int (Printf.sprintf "pfp %s flow value" name) reference result.Apps.Pfp.flow_value;
      let ok, sink_flow = Apps.Flow_network.check_flow net in
      check_bool (name ^ " conservation") true ok;
      check_int (name ^ " balance at sink") reference sink_flow)
    policies

let test_pfp_small_known () =
  (* s -> a -> t with caps 3, 2: max flow 2; plus s -> t cap 1: total 3. *)
  let g = Csr.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let caps = [| 3; 2; 1 |] in
  let net = Apps.Flow_network.of_graph g caps ~source:0 ~sink:2 in
  check_int "known max flow" 3 (Apps.Pfp.serial net).Apps.Pfp.flow_value

(* --- dt --------------------------------------------------------------- *)

let dt_points n = Point.random_unit_square ~seed:31 n

let assert_mesh_good name mesh npoints =
  (match Mesh.check_consistency mesh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e);
  check_int (name ^ ": no Delaunay violations") 0 (Mesh.delaunay_violations mesh);
  (* All real points appear. *)
  let seen = Hashtbl.create 64 in
  List.iter (fun tri -> Array.iter (fun v -> Hashtbl.replace seen v ()) tri.Mesh.v)
    (Mesh.triangles mesh);
  for pid = 0 to npoints - 1 do
    if not (Hashtbl.mem seen pid) then Alcotest.failf "%s: point %d missing" name pid
  done

let test_dt_variants () =
  let n = 300 in
  let pts = dt_points n in
  let serial_mesh = Apps.Dt.serial pts in
  assert_mesh_good "serial" serial_mesh n;
  let canon = Apps.Dt.canonical serial_mesh in
  List.iter
    (fun (name, policy) ->
      let mesh, _ = Apps.Dt.galois ~policy pts in
      assert_mesh_good name mesh n;
      (* The Delaunay triangulation of points in general position is
         unique, so every variant must produce the same triangles. *)
      if Apps.Dt.canonical mesh <> canon then Alcotest.failf "dt %s differs" name)
    policies;
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let mesh, _ = Apps.Dt.pbbs ~pool pts in
      assert_mesh_good "pbbs" mesh n;
      if Apps.Dt.canonical mesh <> canon then Alcotest.fail "dt pbbs differs")

(* --- dmr -------------------------------------------------------------- *)

let dmr_input () =
  let pts = Point.random_unit_square ~seed:41 150 in
  Apps.Dt.serial pts

let test_dmr_variants () =
  let cfg = Apps.Dmr.default_config in
  let run_one name runner =
    let mesh = dmr_input () in
    let before = Mesh.triangle_count mesh in
    runner mesh;
    (match Mesh.check_consistency mesh with
    | Ok () -> ()
    | Error e -> Alcotest.failf "dmr %s: %s" name e);
    check_bool (name ^ ": refined") true (Apps.Dmr.refined cfg mesh);
    check_bool (name ^ ": grew") true (Mesh.triangle_count mesh >= before)
  in
  List.iter
    (fun (name, policy) -> run_one name (fun mesh -> ignore (Apps.Dmr.galois ~policy mesh)))
    policies;
  run_one "pbbs" (fun mesh ->
      Parallel.Domain_pool.with_pool 3 (fun pool -> ignore (Apps.Dmr.pbbs ~pool mesh)))

let test_dmr_det_portable () =
  let canon_at threads =
    let mesh = dmr_input () in
    ignore (Apps.Dmr.galois ~policy:(Galois.Policy.det threads) mesh);
    Apps.Dt.canonical mesh
  in
  let reference = canon_at 1 in
  List.iter
    (fun t -> if canon_at t <> reference then Alcotest.failf "dmr det differs at %d threads" t)
    [ 2; 4 ]

(* --- PARSEC kernels --------------------------------------------------- *)

let test_blackscholes () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let options = Apps.Blackscholes.generate ~seed:2 5000 in
      let prices, profile = Apps.Blackscholes.run ~pool options in
      check_int "priced all" 5000 (Array.length prices);
      check_bool "prices finite and nonnegative" true
        (Array.for_all (fun p -> Float.is_finite p && p >= -1e-9) prices);
      check_int "tasks" 5000 profile.Apps.Kernel_profile.tasks;
      (* Defining characteristic: atomics orders of magnitude below
         tasks. *)
      check_bool "few atomics" true (profile.Apps.Kernel_profile.atomics * 100 < 5000))

let test_blackscholes_put_call_parity () =
  let base = Apps.Blackscholes.generate ~seed:4 1 in
  let o = base.(0) in
  let call = Apps.Blackscholes.price { o with call = true } in
  let put = Apps.Blackscholes.price { o with call = false } in
  let parity =
    call -. put
    -. (o.Apps.Blackscholes.spot
       -. (o.Apps.Blackscholes.strike *. exp (-.o.Apps.Blackscholes.rate *. o.Apps.Blackscholes.maturity)))
  in
  check_bool "put-call parity" true (Float.abs parity < 1e-6)

let test_bodytrack () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let result = Apps.Bodytrack.run ~pool () in
      check_bool "tracks the hidden state" true (result.Apps.Bodytrack.mean_error < 0.5);
      check_bool "coarse tasks, few atomics" true
        (result.Apps.Bodytrack.profile.Apps.Kernel_profile.atomics
         < result.Apps.Bodytrack.profile.Apps.Kernel_profile.tasks))

let test_freqmine () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let total, profile = Apps.Freqmine.run ~pool () in
      check_bool "found frequent itemsets" true (total > 0);
      check_bool "irregular task sizes" true
        (Array.length profile.Apps.Kernel_profile.task_costs > 0))

let test_freqmine_deterministic () =
  Parallel.Domain_pool.with_pool 1 (fun p1 ->
      Parallel.Domain_pool.with_pool 3 (fun p3 ->
          let a, _ = Apps.Freqmine.run ~pool:p1 () in
          let b, _ = Apps.Freqmine.run ~pool:p3 () in
          check_int "same itemset count across thread counts" a b))

(* Regression for the order-dependence bug detlint found: [mine] used to
   gather frequent items with [Hashtbl.fold], so the recursion order —
   and on another stdlib's bucket layout, potentially the count — hung
   off hash internals. The frequent list is now pinned by item id, and
   these exact totals pin it in place. *)
let test_freqmine_pinned_output () =
  Parallel.Domain_pool.with_pool 2 (fun pool ->
      let total, _ = Apps.Freqmine.run ~pool () in
      check_int "default-config itemset count pinned" 2878 total;
      let config =
        {
          Apps.Freqmine.default_config with
          transactions = 500;
          items = 60;
          min_support = 12;
          seed = 5;
        }
      in
      let small, _ = Apps.Freqmine.run ~config ~pool () in
      check_int "small-config itemset count pinned" 1845 small)

let suite =
  [
    Alcotest.test_case "bfs: all variants agree" `Quick test_bfs_all_variants_agree;
    Alcotest.test_case "bfs: disconnected graph" `Quick test_bfs_disconnected;
    Alcotest.test_case "sssp: weight plane = weight array" `Quick
      test_sssp_weight_plane_equivalent;
    Alcotest.test_case "mis: all variants valid" `Quick test_mis_all_valid;
    Alcotest.test_case "mis: pbbs is lexicographic greedy" `Quick test_mis_pbbs_lexicographic;
    Alcotest.test_case "mis: det portable" `Quick test_mis_det_portable;
    Alcotest.test_case "pfp: flow values agree" `Quick test_pfp_flow_value;
    Alcotest.test_case "pfp: known small instance" `Quick test_pfp_small_known;
    Alcotest.test_case "dt: all variants produce the Delaunay mesh" `Quick test_dt_variants;
    Alcotest.test_case "dmr: all variants refine" `Quick test_dmr_variants;
    Alcotest.test_case "dmr: det portable" `Quick test_dmr_det_portable;
    Alcotest.test_case "blackscholes" `Quick test_blackscholes;
    Alcotest.test_case "blackscholes put-call parity" `Quick test_blackscholes_put_call_parity;
    Alcotest.test_case "bodytrack particle filter" `Quick test_bodytrack;
    Alcotest.test_case "freqmine fp-growth" `Quick test_freqmine;
    Alcotest.test_case "freqmine deterministic" `Quick test_freqmine_deterministic;
    Alcotest.test_case "freqmine output pinned (order-independence)" `Quick
      test_freqmine_pinned_output;
  ]
