(* End-to-end tests of the runtime on small synthetic Galois programs. *)

[@@@alert "-deprecated"] (* keeps covering the deprecated [Runtime.for_each] alias alongside [Run] *)
let check_int = Alcotest.(check int)

(* --- Bucket-append program: n tasks, task i appends i to bucket
   (i mod k). Conflicts happen exactly between tasks sharing a bucket. *)

type buckets = { locks : Galois.Lock.t array; cells : int list ref array }

let make_buckets k =
  { locks = Galois.Lock.create_array k; cells = Array.init k (fun _ -> ref []) }

let bucket_operator b k ctx i =
  let j = i mod k in
  Galois.Context.acquire ctx b.locks.(j);
  Galois.Context.failsafe ctx;
  b.cells.(j) := i :: !(b.cells.(j))

let run_buckets policy n k =
  let b = make_buckets k in
  let report =
    Galois.Runtime.for_each ~policy
      ~operator:(bucket_operator b k)
      (Array.init n (fun i -> i))
  in
  (b, report)

let test_serial_buckets () =
  let n = 100 and k = 7 in
  let b, report = run_buckets Galois.Policy.serial n k in
  check_int "commits" n report.stats.commits;
  check_int "aborts" 0 report.stats.aborts;
  (* Serial executes in order, so each bucket holds its items in
     descending order (prepends). *)
  Array.iteri
    (fun j cell ->
      let expected = List.rev (List.filter (fun i -> i mod k = j) (List.init n Fun.id)) in
      Alcotest.(check (list int)) (Printf.sprintf "bucket %d" j) expected !cell)
    b.cells

let multiset l = List.sort compare l

let test_nondet_buckets_complete () =
  let n = 500 and k = 13 in
  let b, report = run_buckets (Galois.Policy.nondet 4) n k in
  check_int "commits" n report.stats.commits;
  let all = multiset (List.concat_map (fun c -> !c) (Array.to_list b.cells)) in
  Alcotest.(check (list int)) "every task ran exactly once" (List.init n Fun.id) all

let test_det_buckets_complete () =
  let n = 500 and k = 13 in
  let b, report = run_buckets (Galois.Policy.det 4) n k in
  check_int "commits" n report.stats.commits;
  Alcotest.(check bool) "rounds happened" true (report.stats.rounds > 0);
  let all = multiset (List.concat_map (fun c -> !c) (Array.to_list b.cells)) in
  Alcotest.(check (list int)) "every task ran exactly once" (List.init n Fun.id) all

let test_det_aborts_counted () =
  (* All tasks fight over a single lock: each round commits exactly one
     task, so aborts must be > 0 and commits = n. *)
  let n = 64 in
  let b, report = run_buckets (Galois.Policy.det 3) n 1 in
  check_int "commits" n report.stats.commits;
  Alcotest.(check bool) "high conflict causes failed selections" true (report.stats.aborts > 0);
  check_int "all in one bucket" n (List.length !(b.cells.(0)))

(* --- Task creation: item = depth; depth > 0 pushes two children.
   Exercises deterministic id assignment for dynamically created work. *)

let tree_operator counter_lock counter ctx depth =
  Galois.Context.acquire ctx counter_lock;
  Galois.Context.failsafe ctx;
  incr counter;
  if depth > 0 then begin
    Galois.Context.push ctx (depth - 1);
    Galois.Context.push ctx (depth - 1)
  end

let test_task_creation policy () =
  let depth = 5 in
  let lock = Galois.Lock.create () in
  let counter = ref 0 in
  let report =
    Galois.Runtime.for_each ~policy ~operator:(tree_operator lock counter) [| depth |]
  in
  let expected = (1 lsl (depth + 1)) - 1 in
  check_int "tree size" expected !counter;
  check_int "commits" expected report.stats.commits;
  check_int "created" (expected - 1) report.stats.created

(* --- Cautiousness enforcement. *)

let test_not_cautious_detected () =
  let l1 = Galois.Lock.create () and l2 = Galois.Lock.create () in
  let operator ctx () =
    Galois.Context.acquire ctx l1;
    Galois.Context.failsafe ctx;
    Galois.Context.acquire ctx l2
  in
  match Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator [| () |] with
  | _ -> Alcotest.fail "expected Not_cautious"
  | exception Galois.Context.Not_cautious -> ()

(* --- Continuation optimization: saved state must reappear at commit;
   and the final output must not depend on the optimization. *)

let test_continuation_state_reused () =
  let n = 200 in
  let locks = Galois.Lock.create_array n in
  let reused = Atomic.make 0 and computed = Atomic.make 0 in
  let out = Array.make n 0 in
  let operator ctx i =
    let v =
      match Galois.Context.saved ctx with
      | Some v ->
          Atomic.incr reused;
          v
      | None ->
          Galois.Context.acquire ctx locks.(i);
          Atomic.incr computed;
          let v = (i * 7) + 1 in
          Galois.Context.save ctx v;
          v
    in
    Galois.Context.failsafe ctx;
    out.(i) <- v
  in
  let policy =
    Galois.Policy.det 2
      ~options:{ Galois.Policy.default_det with continuation = true }
  in
  let report = Galois.Runtime.for_each ~policy ~operator (Array.init n Fun.id) in
  check_int "commits" n report.stats.commits;
  (* Disjoint neighborhoods: every task commits in its first round, and
     every commit reuses the state saved at inspection. *)
  check_int "every commit reused saved state" n (Atomic.get reused);
  Array.iteri (fun i v -> check_int (Printf.sprintf "out %d" i) ((i * 7) + 1) v) out

let test_continuation_does_not_change_output () =
  let run continuation =
    let k = 5 and n = 100 in
    let b = make_buckets k in
    let policy =
      Galois.Policy.det 3 ~options:{ Galois.Policy.default_det with continuation }
    in
    let _ =
      Galois.Runtime.for_each ~policy ~operator:(bucket_operator b k) (Array.init n Fun.id)
    in
    Array.map (fun c -> !c) b.cells
  in
  let with_cont = run true and without = run false in
  Array.iteri
    (fun j cell -> Alcotest.(check (list int)) (Printf.sprintf "bucket %d" j) cell without.(j))
    with_cont

(* --- validate mode: defeat flags must agree with mark re-verification. *)

let test_validate_mode () =
  let k = 3 and n = 200 in
  let b = make_buckets k in
  let policy =
    Galois.Policy.det 4 ~options:{ Galois.Policy.default_det with validate = true }
  in
  let report =
    Galois.Runtime.for_each ~policy ~operator:(bucket_operator b k) (Array.init n Fun.id)
  in
  check_int "commits under validation" n report.stats.commits

(* --- static ids: duplicate pushes within a generation collapse. *)

let test_static_id_dedup () =
  (* Initial tasks 0..9; every task pushes item 100 (same static id). The
     pushed task must execute exactly once (per generation). *)
  let executions = ref 0 and dup_executions = ref 0 in
  let lock = Galois.Lock.create () in
  let operator ctx i =
    Galois.Context.acquire ctx lock;
    Galois.Context.failsafe ctx;
    incr executions;
    if i < 100 then Galois.Context.push ctx 100 else incr dup_executions
  in
  let policy = Galois.Policy.det 2 in
  let report =
    Galois.Runtime.for_each ~policy ~static_id:Fun.id ~operator (Array.init 10 Fun.id)
  in
  check_int "initial + one deduplicated child" 11 !executions;
  check_int "task 100 ran once" 1 !dup_executions;
  check_int "commits" 11 report.stats.commits

(* --- schedule recording sanity. *)

let test_recording () =
  let k = 4 and n = 50 in
  let b = make_buckets k in
  let report =
    Galois.Runtime.for_each ~policy:(Galois.Policy.det 2) ~record:true
      ~operator:(bucket_operator b k)
      (Array.init n Fun.id)
  in
  match report.schedule with
  | Some (Galois.Schedule.Rounds rounds) ->
      check_int "recorded rounds match stats" report.stats.rounds (List.length rounds);
      let committed = List.length (Galois.Schedule.committed_tasks (Galois.Schedule.Rounds rounds)) in
      check_int "recorded commits" n committed
  | _ -> Alcotest.fail "expected round-structured schedule"

let test_recording_nondet () =
  let k = 4 and n = 50 in
  let b = make_buckets k in
  let report =
    Galois.Runtime.for_each ~policy:(Galois.Policy.nondet 2) ~record:true
      ~operator:(bucket_operator b k)
      (Array.init n Fun.id)
  in
  match report.schedule with
  | Some (Galois.Schedule.Flat attempts) ->
      let committed = List.length (List.filter (fun r -> r.Galois.Schedule.committed) attempts) in
      check_int "recorded commits" n committed
  | _ -> Alcotest.fail "expected flat schedule"

(* --- the Run builder facade and its trace capture. *)

let test_run_builder_equivalent () =
  (* The builder and the for_each alias run the same program the same
     way. *)
  let via_builder =
    let b = make_buckets 7 in
    Galois.Run.make ~operator:(bucket_operator b 7) (Array.init 100 Fun.id)
    |> Galois.Run.policy (Galois.Policy.det 2)
    |> Galois.Run.exec
  in
  let via_alias =
    let b = make_buckets 7 in
    Galois.Runtime.for_each ~policy:(Galois.Policy.det 2)
      ~operator:(bucket_operator b 7)
      (Array.init 100 Fun.id)
  in
  check_int "same commits" via_alias.stats.commits via_builder.stats.commits;
  check_int "same rounds" via_alias.stats.rounds via_builder.stats.rounds;
  Alcotest.(check bool)
    "same digest" true
    (Galois.Trace_digest.equal via_alias.stats.digest via_builder.stats.digest)

let test_run_trace_capture () =
  let b = make_buckets 5 in
  let report =
    Galois.Run.make ~operator:(bucket_operator b 5) (Array.init 80 Fun.id)
    |> Galois.Run.policy (Galois.Policy.det 3)
    |> Galois.Run.trace
    |> Galois.Run.exec
  in
  match report.trace with
  | None -> Alcotest.fail "trace requested but absent"
  | Some events ->
      Alcotest.(check bool) "events captured" true (List.length events > 4);
      (match List.hd events with
      | { Obs.event = Obs.Run_begin { threads; tasks; _ }; _ } ->
          check_int "run_begin threads" 3 threads;
          check_int "run_begin tasks" 80 tasks
      | _ -> Alcotest.fail "first event must be Run_begin");
      (match List.nth events (List.length events - 1) with
      | { Obs.event = Obs.Run_end { commits; rounds; _ }; _ } ->
          check_int "run_end commits" report.stats.commits commits;
          check_int "run_end rounds" report.stats.rounds rounds
      | _ -> Alcotest.fail "last event must be Run_end");
      (* Timestamps are monotone within a run. *)
      let rec monotone = function
        | a :: (b :: _ as rest) -> a.Obs.at_s <= b.Obs.at_s && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps monotone" true (monotone events)

let test_no_trace_by_default () =
  let b = make_buckets 5 in
  let report =
    Galois.Run.make ~operator:(bucket_operator b 5) (Array.init 20 Fun.id)
    |> Galois.Run.policy (Galois.Policy.det 2)
    |> Galois.Run.exec
  in
  Alcotest.(check bool) "no trace" true (report.trace = None);
  Alcotest.(check bool) "no schedule" true (report.schedule = None)

let test_phase_times_sum_to_wall_time () =
  List.iter
    (fun policy ->
      let b = make_buckets 7 in
      let report =
        Galois.Run.make ~operator:(bucket_operator b 7) (Array.init 300 Fun.id)
        |> Galois.Run.policy policy
        |> Galois.Run.exec
      in
      let total = Galois.Stats.phase_total report.stats.phases in
      Alcotest.(check (float 1e-6))
        (Fmt.str "phase total tracks time_s under %a" Galois.Policy.pp policy)
        report.stats.time_s total)
    [ Galois.Policy.serial; Galois.Policy.nondet 2; Galois.Policy.det 2 ]

let test_trace_stream_thread_invariant () =
  (* The deterministic subset of the event stream is byte-identical for
     any thread count — the per-run view of the paper's portability
     claim (detcheck sweeps the same property over its whole lattice). *)
  let trace_at t =
    let b = make_buckets 11 in
    let report =
      Galois.Run.make ~operator:(bucket_operator b 11) (Array.init 200 Fun.id)
      |> Galois.Run.policy (Galois.Policy.det t)
      |> Galois.Run.trace
      |> Galois.Run.exec
    in
    Obs.deterministic_lines (Option.value ~default:[] report.trace)
  in
  let reference = trace_at 1 in
  Alcotest.(check bool) "stream non-empty" true (String.length reference > 0);
  List.iter
    (fun t ->
      Alcotest.(check string)
        (Printf.sprintf "byte-identical at %d threads" t)
        reference (trace_at t))
    [ 2; 4; 8 ]

let test_sinks_receive_and_survive () =
  (* Two sinks both see the bracketed stream; exec never closes them. *)
  let closed = ref false in
  let mem = Obs.Memory.create () in
  let counting = ref 0 in
  let probe =
    { Obs.emit = (fun _ -> incr counting); close = (fun () -> closed := true) }
  in
  let b = make_buckets 5 in
  let _ =
    Galois.Run.make ~operator:(bucket_operator b 5) (Array.init 30 Fun.id)
    |> Galois.Run.policy (Galois.Policy.det 2)
    |> Galois.Run.sink (Obs.Memory.sink mem)
    |> Galois.Run.sink probe
    |> Galois.Run.exec
  in
  let n = List.length (Obs.Memory.contents mem) in
  Alcotest.(check bool) "memory sink saw events" true (n > 2);
  check_int "both sinks see every event" n !counting;
  Alcotest.(check bool) "user sinks not closed" false !closed

(* --- policy parsing round-trips. *)

let test_policy_parsing () =
  let roundtrip s =
    match Galois.Policy.of_string s with
    | Ok p -> Galois.Policy.to_string p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "serial" "serial" (roundtrip "serial");
  Alcotest.(check string) "nondet:8" "nondet:8" (roundtrip "nondet:8");
  Alcotest.(check string) "det:4" "det:4" (roundtrip "det:4");
  (match Galois.Policy.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus policy accepted");
  match Galois.Policy.of_string "det:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative threads accepted"

let suite =
  [
    Alcotest.test_case "serial buckets in order" `Quick test_serial_buckets;
    Alcotest.test_case "nondet completes all tasks" `Quick test_nondet_buckets_complete;
    Alcotest.test_case "det completes all tasks" `Quick test_det_buckets_complete;
    Alcotest.test_case "det counts failed selections" `Quick test_det_aborts_counted;
    Alcotest.test_case "serial task creation" `Quick (test_task_creation Galois.Policy.serial);
    Alcotest.test_case "nondet task creation" `Quick
      (test_task_creation (Galois.Policy.nondet 4));
    Alcotest.test_case "det task creation" `Quick (test_task_creation (Galois.Policy.det 4));
    Alcotest.test_case "cautiousness violations detected" `Quick test_not_cautious_detected;
    Alcotest.test_case "continuation state reused at commit" `Quick
      test_continuation_state_reused;
    Alcotest.test_case "continuation does not change output" `Quick
      test_continuation_does_not_change_output;
    Alcotest.test_case "validate mode agrees with flags" `Quick test_validate_mode;
    Alcotest.test_case "static ids deduplicate pushes" `Quick test_static_id_dedup;
    Alcotest.test_case "det schedule recording" `Quick test_recording;
    Alcotest.test_case "nondet schedule recording" `Quick test_recording_nondet;
    Alcotest.test_case "Run builder matches for_each" `Quick test_run_builder_equivalent;
    Alcotest.test_case "Run trace capture brackets the run" `Quick test_run_trace_capture;
    Alcotest.test_case "no trace or schedule by default" `Quick test_no_trace_by_default;
    Alcotest.test_case "phase times sum to wall time" `Quick test_phase_times_sum_to_wall_time;
    Alcotest.test_case "deterministic trace stream thread-invariant" `Quick
      test_trace_stream_thread_invariant;
    Alcotest.test_case "sinks receive events and are not closed" `Quick
      test_sinks_receive_and_survive;
    Alcotest.test_case "policy parsing" `Quick test_policy_parsing;
  ]
