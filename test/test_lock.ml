let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fresh_lock_free () =
  let l = Galois.Lock.create () in
  check_int "mark is 0" 0 (Galois.Lock.mark l);
  check_int "raw word is 0" 0 (Galois.Lock.raw l)

let test_ids_unique () =
  let locks = Galois.Lock.create_array 100 in
  let ids = Array.map Galois.Lock.id locks in
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  for i = 1 to 99 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate lock id"
  done

let test_try_claim () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  check_bool "first claim wins" true (Galois.Lock.try_claim l ~stamp 3);
  check_bool "re-claim by owner" true (Galois.Lock.try_claim l ~stamp 3);
  check_bool "other task loses" false (Galois.Lock.try_claim l ~stamp 4);
  Galois.Lock.release l ~stamp 3;
  check_bool "free after release" true (Galois.Lock.try_claim l ~stamp 4)

let test_release_only_owner () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l ~stamp 5);
  Galois.Lock.release l ~stamp 9;
  check_int "non-owner release is a no-op" 5 (Galois.Lock.mark l);
  Galois.Lock.release l ~stamp 5;
  check_int "owner release frees" 0 (Galois.Lock.mark l)

let test_claim_max_monotone () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  (match Galois.Lock.claim_max l ~stamp 5 with
  | `Won 0 -> ()
  | _ -> Alcotest.fail "claiming a free lock should win with no victim");
  (match Galois.Lock.claim_max l ~stamp 9 with
  | `Won 5 -> ()
  | _ -> Alcotest.fail "higher id should displace 5");
  (match Galois.Lock.claim_max l ~stamp 7 with
  | `Lost -> ()
  | _ -> Alcotest.fail "lower id must lose");
  check_int "mark is max" 9 (Galois.Lock.mark l);
  match Galois.Lock.claim_max l ~stamp 9 with
  | `Won 0 -> ()
  | _ -> Alcotest.fail "re-claim by current owner wins without victim"

let test_claim_max_concurrent_is_max () =
  (* The paper's determinism hinges on writeMarksMax being
     order-insensitive: the final mark is the max id no matter the
     interleaving. Hammer one lock from several domains. *)
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  let ids = Array.init 64 (fun i -> i + 1) in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      Parallel.Domain_pool.parallel_for pool 0 64 (fun i ->
          ignore (Galois.Lock.claim_max l ~stamp ids.(i))));
  check_int "final mark is the max id" 64 (Galois.Lock.mark l)

let test_claim_max_loser_reported_exactly_once () =
  (* Every displaced id is reported exactly once across all claimants,
     and `Lost happens exactly for claims that observe a higher mark.
     With sequential claims in random order, the set of reported victims
     must be all ids except the max. *)
  let stamp = Galois.Lock.new_epoch () in
  let ids = [ 13; 2; 40; 7; 21; 40000; 5 ] in
  let l = Galois.Lock.create () in
  let victims = ref [] and losses = ref 0 in
  List.iter
    (fun id ->
      match Galois.Lock.claim_max l ~stamp id with
      | `Won 0 -> ()
      | `Won v -> victims := v :: !victims
      | `Lost -> incr losses)
    ids;
  let expected_victims = List.sort compare [ 13; 2; 7; 21 ] in
  (* 2 displaced by 13? order: 13 free->Won 0; 2 -> Lost; 40 -> Won 13;
     7 -> Lost; 21 -> Lost; 40000 -> Won 40; 5 -> Lost. *)
  ignore expected_victims;
  Alcotest.(check (list int)) "victims" [ 40; 13 ] !victims;
  check_int "losses" 4 !losses;
  check_int "final mark" 40000 (Galois.Lock.mark l)

let test_force_clear () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l ~stamp 77);
  Galois.Lock.force_clear l;
  check_int "cleared" 0 (Galois.Lock.mark l)

let test_holds () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  check_bool "nobody holds fresh lock" false (Galois.Lock.holds l ~stamp 1);
  ignore (Galois.Lock.try_claim l ~stamp 1);
  check_bool "owner holds" true (Galois.Lock.holds l ~stamp 1);
  check_bool "other does not" false (Galois.Lock.holds l ~stamp 2)

(* --- round-stamp staleness: the release-free protocol ------------- *)

let test_stale_mark_is_free () =
  (* A mark from an earlier epoch is free by construction for every
     stamped operation under a later epoch — the invariant that lets the
     scheduler skip the end-of-round release pass entirely. *)
  let old_stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l ~stamp:old_stamp 5);
  check_bool "mark held under its own epoch" true
    (Galois.Lock.holds l ~stamp:old_stamp 5);
  let stamp = Galois.Lock.new_epoch () in
  check_bool "stale mark not held under new epoch" false
    (Galois.Lock.holds l ~stamp 5);
  check_bool "try_claim treats stale mark as free" true
    (Galois.Lock.try_claim l ~stamp 3);
  check_int "new claim owns the word" 3 (Galois.Lock.mark l);
  check_bool "old epoch no longer holds" false
    (Galois.Lock.holds l ~stamp:old_stamp 5)

let test_claim_max_over_stale_mark () =
  (* claim_max over a stale mark wins with no victim and even a LOWER id
     than the stale one — stale owners are never reported displaced. *)
  let old_stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.claim_max l ~stamp:old_stamp 1000);
  let stamp = Galois.Lock.new_epoch () in
  (match Galois.Lock.claim_max l ~stamp 2 with
  | `Won 0 -> ()
  | `Won v -> Alcotest.failf "stale owner %d reported as victim" v
  | `Lost -> Alcotest.fail "lower id must beat a stale mark");
  check_int "fresh epoch owns with the lower id" 2 (Galois.Lock.mark l)

let test_stale_release_is_noop () =
  (* Releasing under a newer epoch never frees an older epoch's mark:
     the packed words differ, so the CAS fails. *)
  let old_stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim l ~stamp:old_stamp 5);
  let stamp = Galois.Lock.new_epoch () in
  Galois.Lock.release l ~stamp 5;
  check_int "stale mark survives mismatched release" 5 (Galois.Lock.mark l);
  Galois.Lock.release l ~stamp:old_stamp 5;
  check_int "matching epoch releases" 0 (Galois.Lock.mark l)

let test_pack_bounds () =
  let stamp = Galois.Lock.new_epoch () in
  let l = Galois.Lock.create () in
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "id 0 rejected" true
    (invalid (fun () -> Galois.Lock.try_claim l ~stamp 0));
  check_bool "negative id rejected" true
    (invalid (fun () -> Galois.Lock.try_claim l ~stamp (-3)));
  check_bool "id above max_task_id rejected" true
    (invalid (fun () -> Galois.Lock.try_claim l ~stamp (Galois.Lock.max_task_id + 1)));
  check_bool "stamp 0 rejected" true
    (invalid (fun () -> Galois.Lock.try_claim l ~stamp:0 1));
  check_bool "max_task_id itself packs" true
    (Galois.Lock.try_claim l ~stamp Galois.Lock.max_task_id);
  check_int "mark decodes the full-width id" Galois.Lock.max_task_id
    (Galois.Lock.mark l)

(* Property: for any sequence of claim_max operations, the final mark is
   the maximum id claimed. *)
let prop_claim_max_commutes =
  QCheck.Test.make ~name:"claim_max final mark = max of ids" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 1 1_000_000))
    (fun ids ->
      QCheck.assume (ids <> []);
      let stamp = Galois.Lock.new_epoch () in
      let l = Galois.Lock.create () in
      List.iter (fun id -> ignore (Galois.Lock.claim_max l ~stamp id)) ids;
      Galois.Lock.mark l = List.fold_left max 0 ids)

(* Property: interleaving claims from two epochs, the final mark is the
   max of the ids claimed under the LAST epoch only — earlier-epoch
   claims are invisible once a later epoch touches the word. *)
let prop_claim_max_epochs_isolate =
  QCheck.Test.make ~name:"claim_max: later epoch shadows earlier" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (int_range 1 1_000_000))
        (list_of_size Gen.(int_range 1 20) (int_range 1 1_000_000)))
    (fun (old_ids, new_ids) ->
      let old_stamp = Galois.Lock.new_epoch () in
      let l = Galois.Lock.create () in
      List.iter (fun id -> ignore (Galois.Lock.claim_max l ~stamp:old_stamp id)) old_ids;
      let stamp = Galois.Lock.new_epoch () in
      List.iter (fun id -> ignore (Galois.Lock.claim_max l ~stamp id)) new_ids;
      Galois.Lock.mark l = List.fold_left max 0 new_ids)

let suite =
  [
    Alcotest.test_case "fresh lock is free" `Quick test_fresh_lock_free;
    Alcotest.test_case "lock ids unique" `Quick test_ids_unique;
    Alcotest.test_case "try_claim semantics" `Quick test_try_claim;
    Alcotest.test_case "release only by owner" `Quick test_release_only_owner;
    Alcotest.test_case "claim_max is monotone max" `Quick test_claim_max_monotone;
    Alcotest.test_case "claim_max under contention yields max" `Quick
      test_claim_max_concurrent_is_max;
    Alcotest.test_case "claim_max reports victims once" `Quick
      test_claim_max_loser_reported_exactly_once;
    Alcotest.test_case "force_clear" `Quick test_force_clear;
    Alcotest.test_case "holds" `Quick test_holds;
    Alcotest.test_case "stale mark is free" `Quick test_stale_mark_is_free;
    Alcotest.test_case "claim_max over stale mark" `Quick test_claim_max_over_stale_mark;
    Alcotest.test_case "stale release is a no-op" `Quick test_stale_release_is_noop;
    Alcotest.test_case "pack bounds" `Quick test_pack_bounds;
    QCheck_alcotest.to_alcotest prop_claim_max_commutes;
    QCheck_alcotest.to_alcotest prop_claim_max_epochs_isolate;
  ]
