(* k-core decomposition: the serial Matula–Beck peeling against known
   answers, the h-index update rule, and the Galois h-index fixpoint
   agreeing with the peeling under every policy — ordered and not —
   at several thread counts. *)

module Csr = Graphlib.Csr
module K = Apps.Kcore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_cores = Alcotest.(check (array int))

(* Symmetric adjacency builder for hand-made graphs. *)
let sym_graph edges n =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  Csr.of_adjacency (Array.map List.rev adj)

let test_serial_known () =
  (* Triangle {0,1,2} with a pendant 3 hanging off 0: the triangle is
     the 2-core, the pendant is 1-core. *)
  let g = sym_graph [ (0, 1); (1, 2); (0, 2); (0, 3) ] 4 in
  check_cores "triangle+pendant" [| 2; 2; 2; 1 |] (K.serial g);
  (* A 4-clique: everyone has coreness 3. *)
  let clique =
    sym_graph [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] 4
  in
  check_cores "4-clique" [| 3; 3; 3; 3 |] (K.serial clique);
  (* A path: every vertex peels at degree <= 1. *)
  let path = sym_graph [ (0, 1); (1, 2); (2, 3) ] 4 in
  check_cores "path" [| 1; 1; 1; 1 |] (K.serial path);
  (* Isolated vertices have coreness 0; the empty graph works. *)
  check_cores "isolated" [| 0; 0 |] (K.serial (Csr.of_adjacency [| []; [] |]));
  check_cores "empty" [||] (K.serial (Csr.of_adjacency [||]))

let test_h_index () =
  (* Star: center sees 4 leaves with estimate 1 -> h-index 1. *)
  let g = sym_graph [ (0, 1); (0, 2); (0, 3); (0, 4) ] 5 in
  let counts = Array.make 8 0 in
  let est = [| 4; 1; 1; 1; 1 |] in
  check_int "star center" 1 (K.h_index ~counts g est 0);
  check_int "leaf" 1 (K.h_index ~counts g est 1);
  (* Estimates above the degree are capped by it. *)
  let est = [| 4; 9; 9; 9; 9 |] in
  check_int "capped at degree" 4 (K.h_index ~counts g est 0);
  (* Scratch is re-zeroed between calls. *)
  check_int "scratch reusable" 4 (K.h_index ~counts g est 0)

let policies =
  let det ?(priority = Galois.Policy.Prio_off) t =
    Galois.Policy.det ~options:(Galois.Policy.Det_options.make ~priority ()) t
  in
  [
    ("det:1", det 1);
    ("det:4", det 4);
    ("det:4[prio=auto]", det ~priority:Galois.Policy.Prio_auto 4);
    ("det:1[prio=auto]", det ~priority:Galois.Policy.Prio_auto 1);
    ("det:2[prio=delta:2]", det ~priority:(Galois.Policy.Prio_delta 2) 2);
    ("nondet:4", Galois.Policy.nondet 4);
  ]

let test_galois_matches_serial () =
  let g = Csr.symmetrize (Graphlib.Generators.kout ~seed:11 ~n:1500 ~k:5 ()) in
  let reference = K.serial g in
  List.iter
    (fun (name, policy) ->
      let core, _ = K.galois ~policy g in
      check_cores (name ^ " equals peeling") reference core)
    policies;
  check_bool "validate agrees" true (K.validate g reference)

let test_ordered_digests_thread_invariant () =
  let g = Csr.symmetrize (Graphlib.Generators.kout ~seed:13 ~n:800 ~k:4 ()) in
  let digest t =
    let _, report =
      K.galois
        ~policy:
          (Galois.Policy.det
             ~options:
               (Galois.Policy.Det_options.make ~priority:Galois.Policy.Prio_auto ())
             t)
        g
    in
    (report.Galois.Runtime.stats.digest, report.Galois.Runtime.stats.buckets)
  in
  let d1, b1 = digest 1 and d2, b2 = digest 2 and d4, b4 = digest 4 in
  check_bool "digest 1=2" true (Galois.Trace_digest.equal d1 d2);
  check_bool "digest 1=4" true (Galois.Trace_digest.equal d1 d4);
  check_bool "buckets opened" true (b1 > 0);
  check_int "bucket count invariant" b1 b2;
  check_int "bucket count invariant (4)" b1 b4

let suite =
  [
    Alcotest.test_case "serial peeling on known graphs" `Quick test_serial_known;
    Alcotest.test_case "h-index update rule" `Quick test_h_index;
    Alcotest.test_case "galois fixpoint equals peeling" `Quick test_galois_matches_serial;
    Alcotest.test_case "ordered digests thread-invariant" `Quick
      test_ordered_digests_thread_invariant;
  ]
