(* Edge cases of the core runtime: empty pools, single tasks, scheduler
   option matrices, pool handling, stats algebra, schedule accessors. *)

[@@@alert "-deprecated"] (* exercises the deprecated [Runtime.for_each] alias on purpose *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_policies =
  [
    ("serial", Galois.Policy.serial);
    ("nondet1", Galois.Policy.nondet 1);
    ("nondet3", Galois.Policy.nondet 3);
    ("det1", Galois.Policy.det 1);
    ("det3", Galois.Policy.det 3);
  ]

let noop_operator ctx () = Galois.Context.failsafe ctx

let test_empty_pool () =
  List.iter
    (fun (name, policy) ->
      let report = Galois.Runtime.for_each ~policy ~operator:noop_operator [||] in
      check_int (name ^ " commits") 0 report.stats.commits;
      check_int (name ^ " aborts") 0 report.stats.aborts)
    all_policies

let test_single_task () =
  List.iter
    (fun (name, policy) ->
      let hit = ref 0 in
      let operator ctx () =
        Galois.Context.failsafe ctx;
        incr hit
      in
      let report = Galois.Runtime.for_each ~policy ~operator [| () |] in
      check_int (name ^ " ran once") 1 !hit;
      check_int (name ^ " commits") 1 report.stats.commits)
    all_policies

let test_task_without_failsafe () =
  (* A fully pure task (no failsafe at all) must commit under every
     policy. *)
  List.iter
    (fun (name, policy) ->
      let l = Galois.Lock.create () in
      let operator ctx () = Galois.Context.acquire ctx l in
      let report = Galois.Runtime.for_each ~policy ~operator [| (); (); () |] in
      check_int (name ^ " pure tasks commit") 3 report.stats.commits)
    all_policies

let bucket_run ~options threads n k =
  let locks = Galois.Lock.create_array k in
  let cells = Array.init k (fun _ -> ref []) in
  let operator ctx i =
    Galois.Context.acquire ctx locks.(i mod k);
    Galois.Context.failsafe ctx;
    cells.(i mod k) := i :: !(cells.(i mod k))
  in
  let policy = Galois.Policy.det threads ~options in
  let report = Galois.Runtime.for_each ~policy ~operator (Array.init n Fun.id) in
  (Array.map (fun c -> List.rev !c) cells, report)

let det_option_matrix =
  [
    ("defaults", Galois.Policy.default_det);
    ("no spread", { Galois.Policy.default_det with spread = 1 });
    ("window 1", { Galois.Policy.default_det with initial_window = Some 1 });
    ("window 7", { Galois.Policy.default_det with initial_window = Some 7 });
    ("low target", { Galois.Policy.default_det with target_ratio = 0.25 });
    ("validate", { Galois.Policy.default_det with validate = true });
    ("no continuation", { Galois.Policy.default_det with continuation = false });
    ( "everything off",
      {
        Galois.Policy.target_ratio = 0.5;
        initial_window = Some 3;
        spread = 1;
        continuation = false;
        validate = true;
        priority = Galois.Policy.Prio_off;
      } );
  ]

let test_det_option_matrix_portable () =
  (* For EVERY option combination, the output must still be
     thread-portable (options may change the schedule, but never make it
     timing-dependent). *)
  List.iter
    (fun (name, options) ->
      let ref_out, ref_report = bucket_run ~options 1 150 7 in
      let out3, report3 = bucket_run ~options 3 150 7 in
      check_int (name ^ ": commits") 150 report3.stats.commits;
      check_int (name ^ ": rounds equal") ref_report.stats.rounds report3.stats.rounds;
      if ref_out <> out3 then Alcotest.failf "%s: output differs across threads" name)
    det_option_matrix

let test_det_window_floor () =
  (* An unreachable target ratio keeps shrinking the window, which is
     floored at the scheduler's minimum (32): the run degrades to many
     small rounds but still completes every task exactly once. *)
  let out, report =
    bucket_run ~options:{ Galois.Policy.default_det with initial_window = Some 1; target_ratio = 2.0 }
      2 40 3
  in
  check_int "commits" 40 report.stats.commits;
  check_bool "small windows mean many rounds" true (report.stats.rounds >= 2);
  check_int "every task appears once" 40 (Array.fold_left (fun a c -> a + List.length c) 0 out)

let test_runtime_rejects_small_pool () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "pool too small"
        (Invalid_argument "Galois.Run: pool smaller than policy thread count") (fun () ->
          ignore
            (Galois.Runtime.for_each ~policy:(Galois.Policy.nondet 4) ~pool
               ~operator:noop_operator [| () |])))

let test_policy_threads_and_determinism () =
  check_int "serial threads" 1 (Galois.Policy.threads Galois.Policy.serial);
  check_int "nondet threads" 8 (Galois.Policy.threads (Galois.Policy.nondet 8));
  check_int "det threads" 5 (Galois.Policy.threads (Galois.Policy.det 5));
  check_bool "serial deterministic" true (Galois.Policy.is_deterministic Galois.Policy.serial);
  check_bool "det deterministic" true (Galois.Policy.is_deterministic (Galois.Policy.det 2));
  check_bool "nondet not" false (Galois.Policy.is_deterministic (Galois.Policy.nondet 2))

let test_stats_algebra () =
  let z = Galois.Stats.zero 4 in
  check_int "zero commits" 0 z.commits;
  Alcotest.(check (float 0.0)) "abort ratio of zero" 0.0 (Galois.Stats.abort_ratio z);
  let locks = Galois.Lock.create_array 1 in
  let operator ctx i =
    Galois.Context.acquire ctx locks.(0);
    Galois.Context.failsafe ctx;
    ignore i
  in
  let a = (Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator (Array.init 5 Fun.id)).stats in
  let b = (Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator (Array.init 7 Fun.id)).stats in
  let s = Galois.Stats.add a b in
  check_int "summed commits" 12 s.commits;
  check_int "summed acquires" (a.acquired + b.acquired) s.acquired;
  check_bool "summed time" true (s.time_s >= a.time_s && s.time_s >= b.time_s)

let test_schedule_accessors () =
  let record committed =
    { Galois.Schedule.acquires = 2; inspect_work = 3; commit_work = 4; committed; locks = [| 0; 1 |] }
  in
  let rounds = Galois.Schedule.Rounds [ [| record true; record false |]; [| record true |] ] in
  check_int "rounds count" 2 (Galois.Schedule.rounds_count rounds);
  check_int "all tasks" 3 (List.length (Galois.Schedule.tasks rounds));
  check_int "committed" 2 (List.length (Galois.Schedule.committed_tasks rounds));
  check_int "task cost" 9 (Galois.Schedule.task_cost (record true));
  check_int "total work" 18 (Galois.Schedule.total_work rounds);
  let flat = Galois.Schedule.Flat [ record true; record true ] in
  check_int "flat has no rounds" 0 (Galois.Schedule.rounds_count flat)

let test_register_new_semantics () =
  (* Direct mode: a fresh lock is claimed and auto-released with the
     neighborhood; registering a non-fresh lock is a programming error. *)
  let fresh = Galois.Lock.create () in
  let taken = Galois.Lock.create () in
  ignore (Galois.Lock.try_claim taken ~stamp:(Galois.Lock.new_epoch ()) 99);
  let operator ctx () =
    Galois.Context.failsafe ctx;
    Galois.Context.register_new ctx fresh;
    check_bool "claimed during task" true (Galois.Lock.mark fresh <> 0)
  in
  let _ = Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator [| () |] in
  check_int "released after task" 0 (Galois.Lock.mark fresh);
  let bad_operator ctx () =
    Galois.Context.failsafe ctx;
    Galois.Context.register_new ctx taken
  in
  match Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator:bad_operator [| () |] with
  | _ -> Alcotest.fail "non-fresh lock accepted"
  | exception Invalid_argument _ -> ()

let test_push_order_preserved_serial () =
  (* Children run in push order under the serial policy (FIFO). *)
  let log = ref [] in
  let operator ctx i =
    Galois.Context.failsafe ctx;
    log := i :: !log;
    if i = 0 then List.iter (fun c -> Galois.Context.push ctx c) [ 10; 20; 30 ]
  in
  let _ = Galois.Runtime.for_each ~policy:Galois.Policy.serial ~operator [| 0; 1 |] in
  Alcotest.(check (list int)) "fifo with children appended" [ 0; 1; 10; 20; 30 ]
    (List.rev !log)

let test_det_children_ordering () =
  (* Deterministic child ids follow (parent id, push index): with one
     lock forcing serialization, generation 2 must run children sorted
     by parent then push order, independent of threads. *)
  let run threads =
    let l = Galois.Lock.create () in
    let log = ref [] in
    let operator ctx (tag, i) =
      Galois.Context.acquire ctx l;
      Galois.Context.failsafe ctx;
      log := (tag, i) :: !log;
      if tag = 0 then begin
        Galois.Context.push ctx (1, (i * 10) + 1);
        Galois.Context.push ctx (1, (i * 10) + 2)
      end
    in
    let _ =
      Galois.Runtime.for_each ~policy:(Galois.Policy.det threads) ~operator
        (Array.init 4 (fun i -> (0, i)))
    in
    List.rev !log
  in
  let a = run 1 and b = run 3 in
  if a <> b then Alcotest.fail "child execution order differs across threads";
  (* All 8 children ran. *)
  check_int "total executions" 12 (List.length a)

let test_lock_ids_monotone () =
  let a = Galois.Lock.create () in
  let b = Galois.Lock.create () in
  check_bool "ids increase" true (Galois.Lock.id b > Galois.Lock.id a)

let suite =
  [
    Alcotest.test_case "empty task pool" `Quick test_empty_pool;
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "task without failsafe commits" `Quick test_task_without_failsafe;
    Alcotest.test_case "det option matrix stays portable" `Quick test_det_option_matrix_portable;
    Alcotest.test_case "window shrink floors at minimum" `Quick test_det_window_floor;
    Alcotest.test_case "runtime rejects undersized pool" `Quick test_runtime_rejects_small_pool;
    Alcotest.test_case "policy accessors" `Quick test_policy_threads_and_determinism;
    Alcotest.test_case "stats algebra" `Quick test_stats_algebra;
    Alcotest.test_case "schedule accessors" `Quick test_schedule_accessors;
    Alcotest.test_case "register_new semantics" `Quick test_register_new_semantics;
    Alcotest.test_case "serial push order" `Quick test_push_order_preserved_serial;
    Alcotest.test_case "det child ordering portable" `Quick test_det_children_ordering;
    Alcotest.test_case "lock ids monotone" `Quick test_lock_ids_monotone;
  ]
