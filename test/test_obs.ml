(* The observability layer in isolation: the memory ring, the JSONL
   round-trip (every event kind), the validating parser's reject cases,
   and the deterministic-subset rendering that detcheck compares. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let stamp ?(at_s = 1.25) event = { Obs.at_s; event }

(* One exemplar per constructor, with non-default field values so a
   field swap or rename cannot round-trip by accident. *)
let exemplars =
  [
    Obs.Run_begin { policy = "det:4[spread=1]"; threads = 4; tasks = 1000 };
    Obs.Generation_begin { generation = 2; tasks = 513 };
    Obs.Round_begin { round = 7; window = 64 };
    Obs.Inspect_done { round = 7; marked = 130; saved_continuations = 61 };
    Obs.Select_done { round = 7; committed = 59; defeated = 5 };
    Obs.Execute_done { round = 7; work = 222; pushes = 13 };
    Obs.Window_adapted { old_w = 64; new_w = 128; ratio = 0.921875 };
    Obs.Phase_time { round = 7; phase = Obs.Inspect; dt_s = 0.003125 };
    Obs.Chunk_sized { round = 7; tasks = 64; chunk = 4 };
    Obs.Worker_counters
      {
        worker = 3;
        committed = 10;
        aborted = 2;
        acquires = 25;
        atomics = 40;
        work = 17;
        pushes = 4;
        inspections = 12;
        chunks = 6;
        spins = 9;
        parks = 1;
      };
    Obs.Checkpoint_taken { round = 8; digest = "04aeef9adef32405" };
    Obs.Resumed { round = 8; digest = "04aeef9adef32405" };
    Obs.Run_end { commits = 1000; rounds = 19; generations = 3 };
  ]

let test_jsonl_roundtrip () =
  List.iteri
    (fun i event ->
      let s = stamp ~at_s:(0.5 +. float_of_int i) event in
      let line = Obs.Jsonl.to_line s in
      match Obs.Jsonl.of_line line with
      | Error e -> Alcotest.failf "event %d: %s (line %S)" i e line
      | Ok s' ->
          check_string
            (Printf.sprintf "event %d round-trips" i)
            line (Obs.Jsonl.to_line s'))
    exemplars

let test_jsonl_phase_names () =
  List.iter
    (fun phase ->
      let s = stamp (Obs.Phase_time { round = 1; phase; dt_s = 0.5 }) in
      match Obs.Jsonl.of_line (Obs.Jsonl.to_line s) with
      | Ok { Obs.event = Obs.Phase_time { phase = p; _ }; _ } ->
          check_string "phase survives" (Obs.phase_name phase) (Obs.phase_name p)
      | Ok _ -> Alcotest.fail "wrong event back"
      | Error e -> Alcotest.fail e)
    [ Obs.Inspect; Obs.Select; Obs.Execute ];
  check_bool "unknown phase name" true (Obs.phase_of_name "commit" = None)

let test_jsonl_rejects () =
  let reject label line =
    match Obs.Jsonl.validate_line line with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: accepted %S" label line
  in
  reject "empty" "";
  reject "not an object" "42";
  reject "unterminated" {|{"at_s":1.0,"ev":"round_begin","round":1,"window":2|};
  reject "trailing garbage" {|{"at_s":1.0,"ev":"round_begin","round":1,"window":2} x|};
  reject "unknown event" {|{"at_s":1.0,"ev":"round_start","round":1,"window":2}|};
  reject "missing ev" {|{"at_s":1.0,"round":1,"window":2}|};
  reject "missing at_s" {|{"ev":"round_begin","round":1,"window":2}|};
  reject "missing field" {|{"at_s":1.0,"ev":"round_begin","round":1}|};
  reject "extra field" {|{"at_s":1.0,"ev":"round_begin","round":1,"window":2,"bogus":3}|};
  reject "duplicate field" {|{"at_s":1.0,"ev":"round_begin","round":1,"round":1,"window":2}|};
  reject "string for int" {|{"at_s":1.0,"ev":"round_begin","round":"1","window":2}|};
  reject "bad phase" {|{"at_s":1.0,"ev":"phase_time","round":1,"phase":"commit","dt_s":0.5}|};
  reject "nested object" {|{"at_s":1.0,"ev":"round_begin","round":{},"window":2}|}

let test_deterministic_classification () =
  let det = List.filter Obs.deterministic exemplars in
  (* Everything except Run_begin, Phase_time, Chunk_sized and
     Worker_counters. *)
  check_int "deterministic subset size" (List.length exemplars - 4) (List.length det);
  check_bool "run_begin excluded" false
    (Obs.deterministic (Obs.Run_begin { policy = "p"; threads = 1; tasks = 1 }));
  check_bool "phase_time excluded" false
    (Obs.deterministic (Obs.Phase_time { round = 0; phase = Obs.Select; dt_s = 0.0 }));
  check_bool "run_end included" true
    (Obs.deterministic (Obs.Run_end { commits = 0; rounds = 0; generations = 0 }))

let test_deterministic_lines_strip_timing () =
  let trace = List.mapi (fun i e -> stamp ~at_s:(float_of_int i) e) exemplars in
  let lines = Obs.deterministic_lines trace in
  (* Timestamps differ between the two traces; the rendering must not. *)
  let trace' = List.map (fun s -> { s with Obs.at_s = s.Obs.at_s +. 100.0 }) trace in
  check_string "timestamp-independent" lines (Obs.deterministic_lines trace');
  check_bool "no timing events rendered" false
    (let lowered = String.lowercase_ascii lines in
     let contains sub =
       let n = String.length lowered and m = String.length sub in
       let rec go i = i + m <= n && (String.sub lowered i m = sub || go (i + 1)) in
       go 0
     in
     contains "phase-time" || contains "worker" || contains "run-begin"
     || contains "chunk")

let test_memory_ring () =
  let mem = Obs.Memory.create ~capacity:4 () in
  let sink = Obs.Memory.sink mem in
  for i = 1 to 6 do
    sink.Obs.emit (stamp (Obs.Round_begin { round = i; window = i }))
  done;
  let rounds =
    List.map
      (function { Obs.event = Obs.Round_begin { round; _ }; _ } -> round | _ -> -1)
      (Obs.Memory.contents mem)
  in
  Alcotest.(check (list int)) "keeps the most recent, oldest first" [ 3; 4; 5; 6 ] rounds;
  check_int "dropped" 2 (Obs.Memory.dropped mem);
  Obs.close sink;
  check_int "close keeps contents" 4 (List.length (Obs.Memory.contents mem));
  Obs.Memory.clear mem;
  check_int "clear empties" 0 (List.length (Obs.Memory.contents mem));
  check_int "clear resets dropped" 0 (Obs.Memory.dropped mem)

let test_tee_and_null () =
  let a = Obs.Memory.create () and b = Obs.Memory.create () in
  let t = Obs.tee (Obs.Memory.sink a) (Obs.tee Obs.null (Obs.Memory.sink b)) in
  t.Obs.emit (stamp (Obs.Run_end { commits = 1; rounds = 1; generations = 1 }));
  Obs.close t;
  check_int "left arm" 1 (List.length (Obs.Memory.contents a));
  check_int "right arm" 1 (List.length (Obs.Memory.contents b))

let test_file_sink_roundtrip () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Jsonl.file path in
      List.iter (fun e -> sink.Obs.emit (stamp e)) exemplars;
      Obs.close sink;
      Obs.close sink (* idempotent *);
      match Obs.Jsonl.load path with
      | Error e -> Alcotest.fail e
      | Ok events ->
          check_int "all lines back" (List.length exemplars) (List.length events));
  match Obs.Jsonl.load "/nonexistent/obs_test.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"

let suite =
  [
    Alcotest.test_case "jsonl round-trips every event" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl phase names" `Quick test_jsonl_phase_names;
    Alcotest.test_case "jsonl parser rejects bad lines" `Quick test_jsonl_rejects;
    Alcotest.test_case "deterministic classification" `Quick test_deterministic_classification;
    Alcotest.test_case "deterministic lines strip timing" `Quick
      test_deterministic_lines_strip_timing;
    Alcotest.test_case "memory ring capacity" `Quick test_memory_ring;
    Alcotest.test_case "tee and null sinks" `Quick test_tee_and_null;
    Alcotest.test_case "file sink round-trip" `Quick test_file_sink_roundtrip;
  ]
