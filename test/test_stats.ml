(* Stats algebra edge cases: the zero element, heterogeneous merges,
   abort-ratio corner cases, and the digest field's monoid behavior. *)

[@@@alert "-deprecated"] (* exercises the deprecated [Runtime.for_each] alias on purpose *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

module Stats = Galois.Stats
module D = Galois.Trace_digest

let test_zero_is_empty () =
  let z = Stats.zero 3 in
  check_int "threads" 3 z.threads;
  check_int "commits" 0 z.commits;
  check_int "aborts" 0 z.aborts;
  check_int "acquired" 0 z.acquired;
  check_int "atomics" 0 z.atomics;
  check_int "work" 0 z.work_units;
  check_int "created" 0 z.created;
  check_int "inspected" 0 z.inspected;
  check_int "rounds" 0 z.rounds;
  check_int "generations" 0 z.generations;
  check_bool "digest absent" true (D.is_absent z.digest);
  check_float "time" 0.0 z.time_s;
  check_float "no phase time" 0.0 (Stats.phase_total z.phases)

let test_zero_commit_abort_ratio () =
  (* No attempts at all: the ratio must be 0, not NaN. *)
  check_float "no attempts" 0.0 (Stats.abort_ratio (Stats.zero 1));
  (* Aborts but no commits (a run that never succeeded): ratio 1. *)
  let only_aborts = { (Stats.zero 2) with aborts = 7 } in
  check_float "all aborts" 1.0 (Stats.abort_ratio only_aborts);
  (* Commits but no aborts. *)
  let only_commits = { (Stats.zero 2) with commits = 9 } in
  check_float "no aborts" 0.0 (Stats.abort_ratio only_commits)

let test_zero_time_rates () =
  let s = { (Stats.zero 1) with commits = 100; atomics = 50 } in
  (* time_s = 0: rates must degrade to 0, not infinity. *)
  check_float "commit rate" 0.0 (Stats.commits_per_us s);
  check_float "atomics rate" 0.0 (Stats.atomics_per_us s)

let test_zero_is_neutral_for_add () =
  let worker = Stats.make_worker () in
  worker.committed <- 5;
  worker.aborted <- 2;
  worker.work <- 11;
  let s =
    Stats.merge ~digest:(D.fold_int D.seed 42) ~threads:4 ~rounds:3 ~generations:1 ~time_s:0.5
      [| worker |]
  in
  check_bool "right zero" true (Stats.add s (Stats.zero 4) = s);
  check_bool "left zero" true (Stats.add (Stats.zero 4) s = s)

let test_add_heterogeneous_threads () =
  (* Combining a 1-thread epoch with a 4-thread epoch (preflow-push
     style): counters sum, thread count is the max, times add. *)
  let mk ~threads ~commits ~time_s =
    let w = Stats.make_worker () in
    w.committed <- commits;
    Stats.merge ~threads ~rounds:1 ~generations:1 ~time_s [| w |]
  in
  let a = mk ~threads:1 ~commits:10 ~time_s:0.25 in
  let b = mk ~threads:4 ~commits:30 ~time_s:0.5 in
  let s = Stats.add a b in
  check_int "threads is max" 4 s.threads;
  check_int "commits sum" 40 s.commits;
  check_int "rounds sum" 2 s.rounds;
  check_float "times add" 0.75 s.time_s;
  check_int "order-insensitive counters" 40 (Stats.add b a).commits

let test_merge_sums_workers () =
  let mk c a =
    let w = Stats.make_worker () in
    w.committed <- c;
    w.aborted <- a;
    w.acquires <- c + a;
    w
  in
  let s =
    Stats.merge ~threads:3 ~rounds:5 ~generations:2 ~time_s:1.0 [| mk 1 2; mk 3 4; mk 5 6 |]
  in
  check_int "commits" 9 s.commits;
  check_int "aborts" 12 s.aborts;
  check_int "acquires" 21 s.acquired;
  check_int "threads as given" 3 s.threads;
  check_bool "digest defaults to absent" true (D.is_absent s.digest)

let test_digest_monoid () =
  let d1 = D.fold_int D.seed 1 and d2 = D.fold_int D.seed 2 in
  check_bool "absent neutral left" true (D.equal (D.combine D.absent d1) d1);
  check_bool "absent neutral right" true (D.equal (D.combine d1 D.absent) d1);
  check_bool "combine mixes" false (D.equal (D.combine d1 d2) d1);
  check_bool "fold is order-sensitive" false
    (D.equal (D.fold_int (D.fold_int D.seed 1) 2) (D.fold_int (D.fold_int D.seed 2) 1));
  check_bool "seed not absent" false (D.is_absent D.seed);
  Alcotest.(check string) "hex format" "cbf29ce484222325" (D.to_hex D.seed)

let test_phase_breakdown () =
  (* The common case: inspect + select measured, the remainder booked
     under other; the three slices sum to the wall time exactly. *)
  let p = Stats.breakdown ~inspect_s:0.3 ~select_s:0.5 ~time_s:1.0 in
  check_float "inspect" 0.3 p.Stats.inspect_s;
  check_float "select" 0.5 p.Stats.select_s;
  check_float "other" 0.2 p.Stats.other_s;
  check_float "sums to wall time" 1.0 (Stats.phase_total p);
  (* Measured phases can overshoot a coarse wall time by timer skew; the
     remainder clamps at 0 rather than going negative. *)
  let over = Stats.breakdown ~inspect_s:0.8 ~select_s:0.5 ~time_s:1.0 in
  check_float "other clamps" 0.0 over.Stats.other_s;
  (* Negative inputs are clamped away. *)
  let neg = Stats.breakdown ~inspect_s:(-1.0) ~select_s:0.25 ~time_s:0.5 in
  check_float "negative inspect clamps" 0.0 neg.Stats.inspect_s;
  check_float "remainder still non-negative" 0.25 neg.Stats.other_s

let test_phases_add_and_merge () =
  let mk phases time_s =
    Stats.merge ~phases ~threads:1 ~rounds:1 ~generations:1 ~time_s [| Stats.make_worker () |]
  in
  let a = mk (Stats.breakdown ~inspect_s:0.1 ~select_s:0.2 ~time_s:0.4) 0.4 in
  let b = mk (Stats.breakdown ~inspect_s:0.3 ~select_s:0.1 ~time_s:0.6) 0.6 in
  let s = Stats.add a b in
  check_float "inspect sums" 0.4 s.phases.Stats.inspect_s;
  check_float "select sums" 0.3 s.phases.Stats.select_s;
  check_float "phase total tracks time" s.time_s (Stats.phase_total s.phases);
  (* merge without ~phases books everything under other, keeping the
     total consistent. *)
  let plain =
    Stats.merge ~threads:1 ~rounds:1 ~generations:1 ~time_s:0.7 [| Stats.make_worker () |]
  in
  check_float "default books under other" 0.7 plain.phases.Stats.other_s;
  check_float "default total" 0.7 (Stats.phase_total plain.phases)

let test_add_chains_digests () =
  let mk d =
    Stats.merge ~digest:d ~threads:1 ~rounds:1 ~generations:1 ~time_s:0.0
      [| Stats.make_worker () |]
  in
  let a = mk (D.fold_int D.seed 7) and b = mk (D.fold_int D.seed 8) in
  let s = Stats.add a b in
  check_bool "chained digest" true (D.equal s.digest (D.combine a.digest b.digest));
  check_bool "not absent" false (D.is_absent s.digest);
  (* Adding a digest-less run (serial epoch between det epochs) keeps the
     digest. *)
  check_bool "absent passthrough" true (D.equal (Stats.add a (Stats.zero 1)).digest a.digest)

(* --- digest edge cases: empty runs, single rounds, text round-trips -- *)

let det_run ?(record = false) items =
  Galois.Runtime.for_each ~policy:(Galois.Policy.det 2) ~record
    ~operator:(fun ctx _ -> Galois.Context.failsafe ctx)
    items

let test_of_hex_roundtrip () =
  (* Every digest round-trips through its hex rendering, including the
     absent digest's "-". *)
  List.iter
    (fun d ->
      match D.of_hex (D.to_hex d) with
      | Some got -> check_bool "round-trips" true (D.equal d got)
      | None -> Alcotest.failf "of_hex rejected %s" (D.to_hex d))
    [ D.seed; D.absent; D.fold_int D.seed 0; D.fold_int D.seed max_int;
      D.fold_string D.seed "x" ];
  (* The full unsigned 64-bit range parses (high-bit digests are
     negative as Int64). *)
  check_bool "high bit" true (Option.is_some (D.of_hex "ffffffffffffffff"));
  List.iter
    (fun s -> check_bool ("rejects " ^ s) true (D.of_hex s = None))
    [ ""; "123"; "cbf29ce48422232"; "cbf29ce4842223255"; "xbf29ce484222325";
      "CBF29CE484222325"; "0x29ce484222325aa" ]

let test_empty_run_digest () =
  (* Zero tasks: no generation is ever formed, so the digest is the bare
     FNV seed (present — a det run happened — but foldless), and the
     round/generation counters stay zero. *)
  let r = det_run ~record:true [||] in
  check_bool "digest is seed" true (D.equal D.seed r.stats.digest);
  check_bool "present" false (D.is_absent r.stats.digest);
  check_int "rounds" 0 r.stats.rounds;
  check_int "generations" 0 r.stats.generations;
  (* The recorded (empty) schedule digests consistently. *)
  match r.schedule with
  | Some s ->
      check_bool "empty schedule digest stable" true
        (D.equal (Galois.Schedule.digest s) (Galois.Schedule.digest s))
  | None -> Alcotest.fail "no schedule recorded"

let test_single_round_digest () =
  (* One conflict-free task: one generation of length 1, one round of
     window 1 committing id 1 (ids are 1-based). The digest is exactly
     that fold sequence — pinning the fold order (gen_len, then w_use,
     committed ids, n_committed). *)
  let r = det_run ~record:true [| 42 |] in
  check_int "rounds" 1 r.stats.rounds;
  check_int "generations" 1 r.stats.generations;
  let by_hand =
    D.fold_int (D.fold_int (D.fold_int (D.fold_int D.seed 1) 1) 1) 1
  in
  check_bool "hand-folded digest" true (D.equal by_hand r.stats.digest);
  (* And the structural schedule digest distinguishes it from empty. *)
  match (r.schedule, (det_run ~record:true [||]).schedule) with
  | Some one, Some zero ->
      check_bool "schedule digest distinguishes" false
        (D.equal (Galois.Schedule.digest one) (Galois.Schedule.digest zero))
  | _ -> Alcotest.fail "no schedule recorded"

let test_digest_survives_pp_roundtrip () =
  (* Stats.pp prints the digest in hex; extracting and re-parsing it
     must give back the identical digest — the contract behind pinned
     fixtures and the galois-run schedule dumps. *)
  let r = det_run (Array.init 50 Fun.id) in
  let rendered = Format.asprintf "%a" Stats.pp r.stats in
  let hex =
    let rec find i =
      if i + 7 > String.length rendered then None
      else if String.sub rendered i 7 = "digest=" then Some (i + 7)
      else find (i + 1)
    in
    match find 0 with
    | Some i -> String.sub rendered i 16
    | None -> Alcotest.fail "Stats.pp prints no digest"
  in
  match D.of_hex hex with
  | Some d -> check_bool "pp round-trips" true (D.equal d r.stats.digest)
  | None -> Alcotest.failf "unparseable digest %S in %S" hex rendered

let suite =
  [
    Alcotest.test_case "zero is the empty report" `Quick test_zero_is_empty;
    Alcotest.test_case "abort ratio without commits" `Quick test_zero_commit_abort_ratio;
    Alcotest.test_case "rates at zero time" `Quick test_zero_time_rates;
    Alcotest.test_case "zero neutral for add" `Quick test_zero_is_neutral_for_add;
    Alcotest.test_case "add across thread counts" `Quick test_add_heterogeneous_threads;
    Alcotest.test_case "merge sums worker counters" `Quick test_merge_sums_workers;
    Alcotest.test_case "phase breakdown clamps and sums" `Quick test_phase_breakdown;
    Alcotest.test_case "phases add and merge" `Quick test_phases_add_and_merge;
    Alcotest.test_case "trace digest monoid" `Quick test_digest_monoid;
    Alcotest.test_case "add chains digests" `Quick test_add_chains_digests;
    Alcotest.test_case "of_hex round-trips" `Quick test_of_hex_roundtrip;
    Alcotest.test_case "empty run digest" `Quick test_empty_run_digest;
    Alcotest.test_case "single-round digest by hand" `Quick test_single_round_digest;
    Alcotest.test_case "digest survives pp round-trip" `Quick
      test_digest_survives_pp_roundtrip;
  ]
