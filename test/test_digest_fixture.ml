(* Schedule-neutrality fixture.

   Scheduler *performance* work must not perturb the deterministic
   schedule: detcheck proves invariance across thread counts and
   configurations within one build, but only a pinned fixture can prove
   invariance across *versions of the scheduler itself*. This table was
   captured from the DIG scheduler before the allocation-free round
   pipeline rework and must stay byte-identical forever after; any
   optimization that changes a single window decision, commit choice or
   deterministic event shows up as a digest mismatch here.

   Each entry is one (case, lattice configuration) point run at 2
   threads (thread-count invariance is detcheck's job): the round-trace
   digest [Stats.t.digest] and an FNV digest of the rendered
   deterministic event stream [Obs.deterministic_lines].

   To regenerate after an *intentional* schedule change (a new
   scheduling feature, never a perf PR):

     FIXTURE_PRINT=1 dune exec test/test_main.exe -- test digest-fixture \
       | grep '|' > new_table  *)

module D = Galois.Trace_digest

let cases () =
  [
    Detcheck.Gen.case ~seed:1;
    Detcheck.Gen.case ~seed:2;
    Detcheck.Gen.case ~seed:3;
    Detcheck.Gen.case ~seed:42;
    Detcheck.App_cases.bfs ~n:300 ~seed:7;
    Detcheck.App_cases.sssp ~n:300 ~seed:7;
    Detcheck.App_cases.boruvka ~n:300 ~seed:7;
    Detcheck.App_cases.dmr ~points:90 ~seed:7;
  ]

let observe_configs configs pool =
  List.concat_map
    (fun (case : Detcheck.case) ->
      List.map
        (fun (cfg : Detcheck.config) ->
          let r =
            case.run
              ~policy:(Galois.Policy.det ~options:cfg.options 2)
              ~pool ~static_id:cfg.static_id
          in
          Printf.sprintf "%s|%s|%s|%s" case.name cfg.label
            (D.to_hex r.sched_digest)
            (D.to_hex (D.fold_string D.seed r.det_trace)))
        (configs ~static_id_capable:case.static_id_capable))
    (cases ())

(* The pinned pre-rework table covers the unordered configurations
   only: the soft-priority axis landed later and has its own table
   below, so the lattice's prio rows are filtered out here — those
   configurations did not exist when this table was captured, and
   prio=off runs must still hit it byte-for-byte. *)
let observed =
  observe_configs (fun ~static_id_capable ->
      List.filter
        (fun (cfg : Detcheck.config) ->
          cfg.options.Galois.Policy.priority = Galois.Policy.Prio_off)
        (Detcheck.lattice ~static_id_capable))

(* case|config|sched-digest|det-event-stream-digest — pre-rework DIG
   scheduler, captured 2026-08-06. *)
let expected =
  [
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|default|4713742fae67d9b2|49c169993e2bf383";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|window=8|8bacec0e712b55b6|cb5f005ae0ed4364";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|window=256|a0d52c870fd2d9b4|b6950b08b27b2e6c";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|spread=1|edf0792a151de7b0|2cbccc90c5bb302d";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|no-continuation|4713742fae67d9b2|4cfd1237f282b939";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|validate|4713742fae67d9b2|49c169993e2bf383";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|default|7507e48417b075cc|42d6ade20ec4d46c";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|window=8|0ab7c1b717740884|fc3ecc0f2f41ab20";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|window=256|70cd092f3a691e5f|102a96cb9257d928";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|spread=1|974ae2dadaeb2450|6e14eafdf790df96";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|no-continuation|7507e48417b075cc|c614939a40eeefde";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|validate|7507e48417b075cc|42d6ade20ec4d46c";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|static-id|7507e48417b075cc|42d6ade20ec4d46c";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|static-id+window=8|0ab7c1b717740884|fc3ecc0f2f41ab20";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|default|9a056e191473d8ad|47a903ac7374bd8c";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|window=8|d6fdbd96301080b4|882921d7d4e26baa";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|window=256|dcb93a15b0753078|d870e70b34ce08cb";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|spread=1|904b0c44aee593d0|2046a7718b7178b6";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|no-continuation|9a056e191473d8ad|1341c0b56f8c448c";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|validate|9a056e191473d8ad|47a903ac7374bd8c";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|default|33640c7159be1df0|6df41b6bd259e140";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|window=8|c8c4fa30118cfc07|148ae677c784c9ce";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|window=256|8bd2a12607251ea7|6a9e7680ef76649f";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|spread=1|b0ce4b3b0d6e675f|a420b1aaf23327fa";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|no-continuation|33640c7159be1df0|6f5eb748d3c9175d";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|validate|33640c7159be1df0|6df41b6bd259e140";
    "bfs(n=300,seed=7)|default|a1e8a3c10e1caa1d|4d42c65407005f57";
    "bfs(n=300,seed=7)|window=8|a1e8a3c10e1caa1d|57b6a64854164d4f";
    "bfs(n=300,seed=7)|window=256|a1e8a3c10e1caa1d|140e0d62dd5c6d53";
    "bfs(n=300,seed=7)|spread=1|a7271300f28d9a28|ca99bfd838b40432";
    "bfs(n=300,seed=7)|no-continuation|a1e8a3c10e1caa1d|4d42c65407005f57";
    "bfs(n=300,seed=7)|validate|a1e8a3c10e1caa1d|4d42c65407005f57";
    "sssp(n=300,seed=7)|default|11cf4248a6dce69b|95376b1da0779e7a";
    "sssp(n=300,seed=7)|window=8|11cf4248a6dce69b|234d1cd07929b0b2";
    "sssp(n=300,seed=7)|window=256|11cf4248a6dce69b|42e38457289be63e";
    "sssp(n=300,seed=7)|spread=1|d6f566bb11be7e2e|a73d1ec346c85032";
    "sssp(n=300,seed=7)|no-continuation|11cf4248a6dce69b|95376b1da0779e7a";
    "sssp(n=300,seed=7)|validate|11cf4248a6dce69b|95376b1da0779e7a";
    "boruvka(n=300,seed=7)|default|351c85fadb57e54e|8de8ee9b75bf829d";
    "boruvka(n=300,seed=7)|window=8|d66ef19aa3347ef3|83a7ff39dd222ddb";
    "boruvka(n=300,seed=7)|window=256|457bdd4bf3aa44c0|306744cf584a2dc4";
    "boruvka(n=300,seed=7)|spread=1|413411f9914cada4|a33da8e417a518af";
    "boruvka(n=300,seed=7)|no-continuation|351c85fadb57e54e|8de8ee9b75bf829d";
    "boruvka(n=300,seed=7)|validate|351c85fadb57e54e|8de8ee9b75bf829d";
    "dmr(points=90,seed=7)|default|df2dc57ff39641cc|cc296e6baaf6240b";
    "dmr(points=90,seed=7)|window=8|142f26b97ef73de2|7e9d6ff1e7a5adc3";
    "dmr(points=90,seed=7)|window=256|cf0f2dbba119ac53|11551373798df3de";
    "dmr(points=90,seed=7)|spread=1|deb013b85dce85e3|4ebb15a24af73102";
    "dmr(points=90,seed=7)|no-continuation|df2dc57ff39641cc|314ebb6f0e8248de";
    "dmr(points=90,seed=7)|validate|df2dc57ff39641cc|cc296e6baaf6240b";
  ]

let test_fixture () =
  let got = Galois.Pool.with_pool ~domains:2 observed in
  if Sys.getenv_opt "FIXTURE_PRINT" <> None then
    List.iter print_endline got
  else begin
    Alcotest.(check int) "fixture size" (List.length expected) (List.length got);
    List.iter2
      (fun e g -> Alcotest.(check string) "schedule digest pinned" e g)
      expected got
  end

(* Soft-priority fixture: the same eight cases under ordered
   configurations, captured when the delta-stepping bucket axis landed.
   Pins the bucket layout (floor-division bucketing, id order within a
   bucket, per-run spread), the digest folds (generation length, delta,
   per-run (bucket, size) at each open) and the Bucket_opened /
   Bucket_drained event stream. Regenerate like the table above — only
   for an intentional change to ordered scheduling. *)
let prio_configs ~static_id_capable:_ =
  let base = Galois.Policy.default_det in
  let prio p = { base with Galois.Policy.priority = p } in
  [
    {
      Detcheck.label = "prio=delta:1";
      options = prio (Galois.Policy.Prio_delta 1);
      static_id = false;
    };
    {
      Detcheck.label = "prio=delta:8";
      options = prio (Galois.Policy.Prio_delta 8);
      static_id = false;
    };
    { Detcheck.label = "prio=auto"; options = prio Galois.Policy.Prio_auto; static_id = false };
    {
      Detcheck.label = "prio=auto+window=8";
      options = { (prio Galois.Policy.Prio_auto) with initial_window = Some 8 };
      static_id = false;
    };
    {
      Detcheck.label = "prio=delta:2+spread=1";
      options = { (prio (Galois.Policy.Prio_delta 2)) with spread = 1 };
      static_id = false;
    };
  ]

let observed_prio = observe_configs prio_configs

(* case|config|sched-digest|det-event-stream-digest — soft-priority
   scheduler, captured 2026-08-07. Apps without a priority hint (bfs,
   boruvka, dmr) land in a single bucket 0: their event streams agree
   across deltas (bucket events carry no delta) while their schedule
   digests still pin the folded delta value. *)
let expected_prio =
  [
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|prio=delta:1|fb31015e13d95772|729c1065baadcf24";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|prio=delta:8|5e058afff5366a75|5ff722e77492d6bd";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|prio=auto|fb31015e13d95772|729c1065baadcf24";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|prio=auto+window=8|fb31015e13d95772|1e77c32e9c583528";
    "gen(seed=1,subsets,tasks=42,locks=16,depth=1)|prio=delta:2+spread=1|3db1031494af8738|41e88c848ef813d5";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|prio=delta:1|2b050644a963eeaf|df93a2c510b79677";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|prio=delta:8|9aedb8ed9e2f6925|fe42f98fb75d005d";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|prio=auto|2b050644a963eeaf|df93a2c510b79677";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|prio=auto+window=8|2b050644a963eeaf|fa44c866aeda49ee";
    "gen(seed=2,subsets,tasks=125,locks=31,depth=2)|prio=delta:2+spread=1|70157c6bdd664815|177a2cc6856b86d7";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|prio=delta:1|e3eb338cf31609c5|c7b307499664544d";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|prio=delta:8|0186b66193afa72b|dfcd229c5b1cd4c8";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|prio=auto|e3eb338cf31609c5|c7b307499664544d";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|prio=auto+window=8|8bf9e5e447e2a1c6|c30061a6934d2070";
    "gen(seed=3,bipartite,tasks=63,locks=36,depth=2)|prio=delta:2+spread=1|14c90f140053b26d|61f7b36e35f96285";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|prio=delta:1|98a212eafe61274d|3c2c42cfdf3e8d85";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|prio=delta:8|fa018174693e2f79|08d45f47d6501129";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|prio=auto|98a212eafe61274d|3c2c42cfdf3e8d85";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|prio=auto+window=8|98a212eafe61274d|042c18ec296ee6e6";
    "gen(seed=42,clusters,tasks=43,locks=31,depth=0)|prio=delta:2+spread=1|5ef7f6a634265fed|8d3aa302a6bec787";
    "bfs(n=300,seed=7)|prio=delta:1|850a65242c4c2ba3|fc835cfe3ed25906";
    "bfs(n=300,seed=7)|prio=delta:8|71c48038a55c3c22|fc835cfe3ed25906";
    "bfs(n=300,seed=7)|prio=auto|850a65242c4c2ba3|fc835cfe3ed25906";
    "bfs(n=300,seed=7)|prio=auto+window=8|850a65242c4c2ba3|c0968f15ae5abbec";
    "bfs(n=300,seed=7)|prio=delta:2+spread=1|a66da4595ee8966d|36bd548e847590e8";
    "sssp(n=300,seed=7)|prio=delta:1|d032ff75ff89f6a4|f0bae2ef9fbce847";
    "sssp(n=300,seed=7)|prio=delta:8|d871d9320d980897|b54ac63a5511973b";
    "sssp(n=300,seed=7)|prio=auto|4ecb54fd2c873f30|f6d4a9c5e3bb46c5";
    "sssp(n=300,seed=7)|prio=auto+window=8|4ecb54fd2c873f30|76563fef8540f536";
    "sssp(n=300,seed=7)|prio=delta:2+spread=1|8bd80ba80b009414|efd8875034d0f387";
    "boruvka(n=300,seed=7)|prio=delta:1|00e525b936d90cf9|70e6bfd73bf89c6b";
    "boruvka(n=300,seed=7)|prio=delta:8|faca16a9a09a7f65|70e6bfd73bf89c6b";
    "boruvka(n=300,seed=7)|prio=auto|00e525b936d90cf9|70e6bfd73bf89c6b";
    "boruvka(n=300,seed=7)|prio=auto+window=8|ea8f82713dfa0f80|5342c5b7736fdb6d";
    "boruvka(n=300,seed=7)|prio=delta:2+spread=1|8702a85bf164ee2f|d21941e6f9de9ca9";
    "dmr(points=90,seed=7)|prio=delta:1|989e48e31d625f8d|624586512e584fef";
    "dmr(points=90,seed=7)|prio=delta:8|085035d6c3e2e424|624586512e584fef";
    "dmr(points=90,seed=7)|prio=auto|989e48e31d625f8d|624586512e584fef";
    "dmr(points=90,seed=7)|prio=auto+window=8|ef7007f1208d2c42|c785d7f04971a50a";
    "dmr(points=90,seed=7)|prio=delta:2+spread=1|5ee435d52c143cce|983a38ecd21c2088";
  ]

let test_prio_fixture () =
  let got = Galois.Pool.with_pool ~domains:2 observed_prio in
  if Sys.getenv_opt "FIXTURE_PRINT" <> None then
    List.iter print_endline got
  else begin
    Alcotest.(check int) "prio fixture size" (List.length expected_prio)
      (List.length got);
    List.iter2
      (fun e g -> Alcotest.(check string) "ordered schedule digest pinned" e g)
      expected_prio got
  end

(* Pool-reuse determinism: the whole 50-point fixture run twice on one
   shared long-lived pool must byte-match itself *and* the pinned table
   — a reused pool (warm workers, accumulated sync counters) is
   schedule-neutral. *)
let test_pool_reuse () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let first = observed pool in
      let second = observed pool in
      Alcotest.(check int) "same size" (List.length first) (List.length second);
      List.iter2
        (fun a b -> Alcotest.(check string) "reused pool is schedule-neutral" a b)
        first second;
      List.iter2
        (fun e g -> Alcotest.(check string) "reused pool hits the pinned table" e g)
        expected first)

(* Checkpoint/resume against the same table: crash each fixture case at
   its midpoint round, resume live, and require the *pinned* digest —
   resume equivalence anchored to a cross-version constant, not merely
   to this build's own uninterrupted run. *)
let pinned_default name =
  List.find_map
    (fun line ->
      match String.split_on_char '|' line with
      | [ n; "default"; sched; _ ] when n = name -> D.of_hex sched
      | _ -> None)
    expected

let test_resume_reproduces_pinned () =
  List.iter
    (fun (Detcheck.Replay_cases.Case c) ->
      let pinned =
        match pinned_default c.name with
        | Some d -> d
        | None -> Alcotest.failf "no pinned default entry for %s" c.name
      in
      let full_run, _ = c.fresh ~static_id:false () in
      let full =
        full_run |> Galois.Run.policy (Galois.Policy.det 2) |> Galois.Run.exec
      in
      if not (D.equal pinned full.Galois.Run.stats.digest) then
        Alcotest.failf "%s: uninterrupted run missed the pinned digest" c.name;
      let at = max 1 (full.Galois.Run.stats.rounds / 2) in
      let crash_run, _ = c.fresh ~static_id:false () in
      let crash_run = crash_run |> Galois.Run.policy (Galois.Policy.det 2) in
      let last = ref None in
      let _ =
        crash_run
        |> Galois.Run.checkpoint_every 1
        |> Galois.Run.on_checkpoint (fun snap ->
               last := Some snap.Galois.Snapshot.boundary)
        |> Galois.Run.stop_after at
        |> Galois.Run.exec
      in
      match !last with
      | None -> Alcotest.failf "%s: no boundary captured by round %d" c.name at
      | Some b ->
          let resumed = crash_run |> Galois.Run.resume b |> Galois.Run.exec in
          if not (D.equal pinned resumed.Galois.Run.stats.digest) then
            Alcotest.failf "%s: resume from round %d missed the pinned digest"
              c.name b.Galois.Det_sched.b_rounds)
    [
      Detcheck.Replay_cases.gen ~seed:1;
      Detcheck.Replay_cases.gen ~seed:2;
      Detcheck.Replay_cases.gen ~seed:3;
      Detcheck.Replay_cases.gen ~seed:42;
      Detcheck.Replay_cases.bfs ~n:300 ~seed:7;
      Detcheck.Replay_cases.sssp ~n:300 ~seed:7;
      Detcheck.Replay_cases.boruvka ~n:300 ~seed:7;
      Detcheck.Replay_cases.dmr ~points:90 ~seed:7;
    ]

let suite =
  [
    Alcotest.test_case "pre-rework schedule digests" `Slow test_fixture;
    Alcotest.test_case "soft-priority schedule digests" `Slow test_prio_fixture;
    Alcotest.test_case "pool reuse is schedule-neutral" `Slow test_pool_reuse;
    Alcotest.test_case "midpoint resume hits pinned digests" `Slow
      test_resume_reproduces_pinned;
  ]
