(* The service layer: the first-class pool (lifecycle, reuse,
   park/idle/wake), the sink combinators it leans on, the query grammar,
   the catalog, and the deterministic job server — byte-identical
   response streams across pool sizes, admission interleavings, and
   (for backpressure) identical submission sequences. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_lines = Alcotest.(check (list string))

let seed = 2014

(* ------------------------------------------------------------------ *)
(* Galois.Pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_lifecycle () =
  let p = Galois.Pool.create ~domains:2 () in
  check_int "size" 2 (Galois.Pool.size p);
  check_bool "live" false (Galois.Pool.is_shut_down p);
  Galois.Pool.shutdown p;
  check_bool "down" true (Galois.Pool.is_shut_down p);
  (* Idempotent: a second shutdown is a no-op, not an error. *)
  Galois.Pool.shutdown p;
  check_bool "still down" true (Galois.Pool.is_shut_down p)

let test_pool_use_after_shutdown () =
  let p = Galois.Pool.create ~domains:2 () in
  Galois.Pool.shutdown p;
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Galois.Pool: pool is shut down") (fun () ->
      ignore (Galois.Pool.domain_pool p));
  let g = Graphlib.Generators.kout ~seed ~n:50 ~k:3 () in
  Alcotest.check_raises "run on a dead pool"
    (Invalid_argument "Galois.Pool: pool is shut down") (fun () ->
      ignore (Apps.Bfs.galois ~pool:p ~policy:(Galois.Policy.det 2) g ~source:0))

let test_pool_bad_domains () =
  Alcotest.check_raises "domains=0"
    (Invalid_argument "Galois.Pool.create: domains must be positive") (fun () ->
      ignore (Galois.Pool.create ~domains:0 ()))

let test_with_pool () =
  let size =
    Galois.Pool.with_pool ~domains:3 (fun p ->
        check_bool "live inside" false (Galois.Pool.is_shut_down p);
        Galois.Pool.size p)
  in
  check_int "returns the body's value" 3 size

(* A pool left idle between jobs parks its workers; each new job must
   wake them and produce the same deterministic answer. This is the
   serve-loop usage pattern: bursts separated by dead time. *)
let test_pool_idle_wake_stress () =
  let g = Graphlib.Generators.kout ~seed ~n:300 ~k:4 () in
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let run () =
        let dist, report =
          Apps.Bfs.galois ~pool ~policy:(Galois.Policy.det 2) g ~source:0
        in
        (Array.to_list dist, Galois.Trace_digest.to_hex report.stats.digest)
      in
      let first = run () in
      for i = 1 to 5 do
        (* Long enough for the spin phase to give up and park. *)
        Unix.sleepf 0.03;
        let again = run () in
        check_bool (Printf.sprintf "wake %d identical" i) true (first = again)
      done)

(* ------------------------------------------------------------------ *)
(* Obs.Sink combinators                                                *)
(* ------------------------------------------------------------------ *)

let stamp event = { Obs.at_s = 0.0; event }
let round_begin r = stamp (Obs.Round_begin { round = r; window = 8 })

let test_sink_tee () =
  let a = Obs.Memory.create () and b = Obs.Memory.create () in
  let s = Obs.Sink.tee (Obs.Memory.sink a) (Obs.Memory.sink b) in
  s.emit (round_begin 1);
  s.emit (round_begin 2);
  Obs.close s;
  check_int "a sees both" 2 (List.length (Obs.Memory.contents a));
  check_int "b sees both" 2 (List.length (Obs.Memory.contents b))

let test_sink_null_collapse () =
  let m = Obs.Memory.create () in
  let s = Obs.Memory.sink m in
  check_bool "tee null left" true (Obs.Sink.tee Obs.Sink.null s == s);
  check_bool "tee null right" true (Obs.Sink.tee s Obs.Sink.null == s);
  check_bool "tee null null" true
    (Obs.Sink.is_null (Obs.Sink.tee Obs.Sink.null Obs.Sink.null));
  check_bool "of_list []" true (Obs.Sink.is_null (Obs.Sink.of_list []));
  check_bool "of_list [null; s]" true (Obs.Sink.of_list [ Obs.Sink.null; s ] == s);
  (* The null sink swallows everything without error. *)
  Obs.Sink.null.emit (round_begin 1);
  Obs.close Obs.Sink.null

let test_sink_of_list_fanout () =
  let ms = [ Obs.Memory.create (); Obs.Memory.create (); Obs.Memory.create () ] in
  let s = Obs.Sink.of_list (List.map Obs.Memory.sink ms) in
  s.emit (round_begin 1);
  List.iter (fun m -> check_int "each sees it" 1 (List.length (Obs.Memory.contents m))) ms

(* ------------------------------------------------------------------ *)
(* Service.Query                                                       *)
(* ------------------------------------------------------------------ *)

let test_query_round_trip () =
  let qs =
    [
      Service.Query.Bfs { graph = "kout"; source = 7 };
      Service.Query.Sssp { graph = "kout"; source = 0 };
      Service.Query.Cc { graph = "sym" };
    ]
  in
  List.iter
    (fun q ->
      let s = Service.Query.to_string q in
      match Service.Query.of_string s with
      | Ok q' -> check_bool s true (q = q')
      | Error e -> Alcotest.failf "%s did not parse back: %s" s e)
    qs;
  check_string "spelling" "bfs:kout:7"
    (Service.Query.to_string (Service.Query.Bfs { graph = "kout"; source = 7 }))

let test_query_parse_errors () =
  List.iter
    (fun s ->
      match Service.Query.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "bfs"; "bfs:"; "bfs::3"; "bfs:g:x"; "bfs:g:-1"; "walk:g:0"; "cc:" ]

(* ------------------------------------------------------------------ *)
(* Service.Catalog                                                     *)
(* ------------------------------------------------------------------ *)

let test_catalog_add_find () =
  let t = Service.Catalog.create () in
  let g = Graphlib.Generators.kout ~seed ~n:40 ~k:3 () in
  let e = Service.Catalog.add t ~name:"g" g in
  check_bool "kout is directed" false e.Service.Catalog.symmetric;
  check_bool "found" true (Service.Catalog.find t "g" <> None);
  check_bool "missing" true (Service.Catalog.find t "nope" = None);
  let sym = Graphlib.Csr.symmetrize g in
  let e2 = Service.Catalog.add t ~name:"s" sym in
  check_bool "symmetrized is symmetric" true e2.Service.Catalog.symmetric;
  check_lines "insertion order" [ "g"; "s" ] (Service.Catalog.names t);
  check_int "size" 2 (Service.Catalog.size t)

let test_catalog_rejects () =
  let t = Service.Catalog.create () in
  let g = Graphlib.Generators.kout ~seed ~n:40 ~k:3 () in
  ignore (Service.Catalog.add t ~name:"g" g);
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should raise" name
  in
  raises "duplicate" (fun () -> Service.Catalog.add t ~name:"g" g);
  raises "empty name" (fun () -> Service.Catalog.add t ~name:"" g);
  raises "colon in name" (fun () -> Service.Catalog.add t ~name:"a:b" g);
  raises "weight mismatch" (fun () ->
      Service.Catalog.add t ~name:"w" ~weights:[| 1; 2; 3 |] g)

(* ------------------------------------------------------------------ *)
(* Service.Server                                                      *)
(* ------------------------------------------------------------------ *)

let mixed_queries ~count = Detcheck.Service_case.queries ~seed ~nodes:200 ~count

(* Run [count] queries on a fresh pool of [domains] workers, draining
   after every [chunk] submissions; return the rendered response stream
   and the service digest. *)
let serve_session ~domains ~chunk ~count =
  Galois.Pool.with_pool ~domains (fun pool ->
      let catalog = Service.Catalog.synthetic ~seed ~nodes:200 () in
      let server = Service.Server.create ~catalog pool in
      List.iteri
        (fun i q ->
          (match Service.Server.submit server q with
          | `Accepted _ -> ()
          | `Rejected id -> Alcotest.failf "job %d rejected" id);
          if (i + 1) mod chunk = 0 then ignore (Service.Server.drain server))
        (mixed_queries ~count);
      ignore (Service.Server.drain server);
      ( List.map Service.Server.render (Service.Server.responses server),
        Galois.Trace_digest.to_hex (Service.Server.digest server) ))

let test_server_pool_size_invariance () =
  let lines1, d1 = serve_session ~domains:1 ~chunk:6 ~count:18 in
  let lines2, d2 = serve_session ~domains:2 ~chunk:6 ~count:18 in
  check_lines "responses byte-identical across pool sizes" lines1 lines2;
  check_string "service digest" d1 d2

let test_server_interleaving_invariance () =
  let all, d_all = serve_session ~domains:2 ~chunk:18 ~count:18 in
  let chunked, d_chunked = serve_session ~domains:2 ~chunk:5 ~count:18 in
  check_lines "responses byte-identical across batchings" all chunked;
  check_string "service digest" d_all d_chunked

(* Backpressure is a function of queue occupancy only: two identical
   submission sequences agree on which jobs get rejected, and the
   rejections are part of the recorded (and digested) stream. *)
let test_server_backpressure_deterministic () =
  let session () =
    Galois.Pool.with_pool ~domains:1 (fun pool ->
        let catalog = Service.Catalog.synthetic ~seed ~nodes:200 () in
        let server = Service.Server.create ~max_pending:3 ~catalog pool in
        let verdicts =
          List.map
            (fun q ->
              match Service.Server.submit server q with
              | `Accepted _ -> "a"
              | `Rejected _ -> "r")
            (mixed_queries ~count:8)
        in
        ignore (Service.Server.drain server);
        let stats = Service.Server.stats server in
        check_int "rejected" 5 stats.rejected;
        check_int "completed" 3 stats.completed;
        ( String.concat "" verdicts,
          List.map Service.Server.render (Service.Server.responses server),
          Galois.Trace_digest.to_hex (Service.Server.digest server) ))
  in
  let v1, lines1, d1 = session () in
  let v2, lines2, d2 = session () in
  check_string "admission pattern" "aaarrrrr" v1;
  check_string "identical patterns" v1 v2;
  check_lines "identical streams (rejects included)" lines1 lines2;
  check_string "identical digests" d1 d2

let test_server_per_job_sinks () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let catalog = Service.Catalog.synthetic ~seed ~nodes:150 () in
      let global = Obs.Memory.create () in
      let server =
        Service.Server.create ~sink:(Obs.Memory.sink global) ~catalog pool
      in
      let ma = Obs.Memory.create () and mb = Obs.Memory.create () in
      ignore
        (Service.Server.submit ~sink:(Obs.Memory.sink ma) server
           (Service.Query.Bfs { graph = "kout"; source = 0 }));
      ignore
        (Service.Server.submit ~sink:(Obs.Memory.sink mb) server
           (Service.Query.Cc { graph = "sym" }));
      ignore (Service.Server.drain server);
      let ca = List.length (Obs.Memory.contents ma)
      and cb = List.length (Obs.Memory.contents mb) in
      check_bool "job A traced" true (ca > 0);
      check_bool "job B traced" true (cb > 0);
      (* Isolation: each job sink saw only its own run; the global sink
         saw both. *)
      check_int "global = A + B" (ca + cb)
        (List.length (Obs.Memory.contents global));
      check_bool "different runs, different streams" true
        (Obs.deterministic_lines (Obs.Memory.contents ma)
        <> Obs.deterministic_lines (Obs.Memory.contents mb)))

let test_server_failed_outcomes () =
  Galois.Pool.with_pool ~domains:1 (fun pool ->
      let catalog = Service.Catalog.synthetic ~seed ~nodes:100 () in
      let server = Service.Server.create ~catalog pool in
      List.iter
        (fun q -> ignore (Service.Server.submit server q))
        [
          Service.Query.Bfs { graph = "nope"; source = 0 };
          Service.Query.Bfs { graph = "kout"; source = 100 };
          Service.Query.Sssp { graph = "sym"; source = 0 };
          Service.Query.Cc { graph = "kout" };
        ];
      let rs = Service.Server.drain server in
      let reasons =
        List.map
          (fun (r : Service.Server.response) ->
            match r.outcome with
            | Service.Server.Failed { reason } -> reason
            | _ -> Alcotest.failf "job %d should have failed" r.job)
          rs
      in
      check_lines "deterministic validation failures"
        [
          "unknown-graph"; "source-out-of-range"; "graph-has-no-weights";
          "graph-not-symmetric";
        ]
        reasons;
      let stats = Service.Server.stats server in
      check_int "failed" 4 stats.failed;
      check_int "completed" 0 stats.completed)

let test_server_create_rejects () =
  Galois.Pool.with_pool ~domains:2 (fun pool ->
      let catalog = Service.Catalog.synthetic ~seed ~nodes:50 () in
      let raises name f =
        match f () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.failf "%s should raise" name
      in
      raises "threads=0" (fun () ->
          Service.Server.create ~threads:0 ~catalog pool);
      raises "threads > pool" (fun () ->
          Service.Server.create ~threads:3 ~catalog pool);
      raises "max_pending=0" (fun () ->
          Service.Server.create ~max_pending:0 ~catalog pool))

let suite =
  [
    Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
    Alcotest.test_case "pool use after shutdown raises" `Quick
      test_pool_use_after_shutdown;
    Alcotest.test_case "pool rejects bad domain counts" `Quick
      test_pool_bad_domains;
    Alcotest.test_case "with_pool" `Quick test_with_pool;
    Alcotest.test_case "idle pool wakes deterministically" `Slow
      test_pool_idle_wake_stress;
    Alcotest.test_case "sink tee fans out" `Quick test_sink_tee;
    Alcotest.test_case "sink null collapses" `Quick test_sink_null_collapse;
    Alcotest.test_case "sink of_list fans out" `Quick test_sink_of_list_fanout;
    Alcotest.test_case "query round-trips" `Quick test_query_round_trip;
    Alcotest.test_case "query parse errors" `Quick test_query_parse_errors;
    Alcotest.test_case "catalog add/find" `Quick test_catalog_add_find;
    Alcotest.test_case "catalog rejects bad entries" `Quick test_catalog_rejects;
    Alcotest.test_case "server is pool-size invariant" `Slow
      test_server_pool_size_invariance;
    Alcotest.test_case "server is interleaving invariant" `Slow
      test_server_interleaving_invariance;
    Alcotest.test_case "backpressure is deterministic" `Quick
      test_server_backpressure_deterministic;
    Alcotest.test_case "per-job sinks are isolated" `Quick
      test_server_per_job_sinks;
    Alcotest.test_case "failed outcomes are deterministic" `Quick
      test_server_failed_outcomes;
    Alcotest.test_case "server create rejects bad configs" `Quick
      test_server_create_rejects;
  ]
