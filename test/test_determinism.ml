(* The paper's central claims, as executable properties:

   - portability: the deterministic scheduler produces identical output
     for every thread count;
   - the non-deterministic scheduler produces *a* serializable outcome
     (all tasks execute exactly once; effects of conflicting tasks are
     consistent);
   - determinism holds for arbitrary (randomly generated) conflict
     structures, including dynamically created tasks. *)

[@@@alert "-deprecated"] (* exercises the deprecated [Runtime.for_each] alias on purpose *)
let check_int = Alcotest.(check int)

(* A task universe with random neighborhoods: task i acquires a set of
   bucket locks determined by [neigh i] and appends itself to every
   bucket it locked. The final bucket contents are the output. *)
let run_random_app ~policy ~n ~k ~neigh =
  let locks = Galois.Lock.create_array k in
  let cells = Array.init k (fun _ -> ref []) in
  let operator ctx i =
    let ns = neigh i in
    List.iter (fun j -> Galois.Context.acquire ctx locks.(j)) ns;
    Galois.Context.failsafe ctx;
    List.iter (fun j -> cells.(j) := i :: !(cells.(j))) ns
  in
  let report = Galois.Runtime.for_each ~policy ~operator (Array.init n Fun.id) in
  (Array.map (fun c -> List.rev !c) cells, report)

let neigh_of_seed seed k i =
  (* 1-3 pseudo-random buckets per task, deterministic in (seed, i). *)
  let g = Parallel.Splitmix.create ((seed * 1_000_003) + i) in
  let count = 1 + Parallel.Splitmix.int g 3 in
  List.sort_uniq compare (List.init count (fun _ -> Parallel.Splitmix.int g k))

let output_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

let test_det_portable_across_threads () =
  let n = 400 and k = 37 and seed = 17 in
  let neigh = neigh_of_seed seed k in
  let reference, _ = run_random_app ~policy:(Galois.Policy.det 1) ~n ~k ~neigh in
  List.iter
    (fun threads ->
      let out, report = run_random_app ~policy:(Galois.Policy.det threads) ~n ~k ~neigh in
      check_int (Printf.sprintf "commits at %d threads" threads) n report.stats.commits;
      if not (output_equal reference out) then
        Alcotest.failf "deterministic output differs at %d threads" threads)
    [ 2; 3; 4; 7 ]

let test_det_rounds_identical_across_threads () =
  (* Not just the output: the round structure itself (window contents,
     commit decisions) must be thread-independent. *)
  let n = 300 and k = 11 and seed = 99 in
  let neigh = neigh_of_seed seed k in
  let shape threads =
    let _, report =
      run_random_app ~policy:(Galois.Policy.det threads) ~n ~k ~neigh
    in
    (report.stats.rounds, report.stats.generations, report.stats.aborts)
  in
  let show (r, g, a) = Printf.sprintf "(rounds=%d, generations=%d, aborts=%d)" r g a in
  let r1 = shape 1 in
  List.iter
    (fun t ->
      let rt = shape t in
      if rt <> r1 then
        Alcotest.failf "round structure differs at %d threads: %s vs %s" t (show rt) (show r1))
    [ 2; 4 ]

let test_nondet_executes_exactly_once () =
  let n = 400 and k = 5 and seed = 3 in
  let neigh = neigh_of_seed seed k in
  let out, report = run_random_app ~policy:(Galois.Policy.nondet 4) ~n ~k ~neigh in
  check_int "commits" n report.stats.commits;
  (* Every task appears exactly once per bucket it selected. *)
  let counts = Hashtbl.create 64 in
  Array.iteri
    (fun j items ->
      List.iter
        (fun i ->
          let key = (i, j) in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        items)
    out;
  Hashtbl.iter
    (fun (i, j) c -> if c <> 1 then Alcotest.failf "task %d appended %d times to bucket %d" i c j)
    counts

(* MIS on a cycle: the classic test that committed tasks in one round are
   truly independent. Output checked for independence and maximality —
   and for thread-portability under det. *)
let run_mis ~policy n =
  let locks = Galois.Lock.create_array n in
  let in_mis = Array.make n false in
  let removed = Array.make n false in
  let operator ctx i =
    let l = (i + n - 1) mod n and r = (i + 1) mod n in
    Galois.Context.acquire ctx locks.(i);
    Galois.Context.acquire ctx locks.(l);
    Galois.Context.acquire ctx locks.(r);
    Galois.Context.failsafe ctx;
    if (not removed.(i)) && (not in_mis.(l)) && not in_mis.(r) then begin
      in_mis.(i) <- true;
      removed.(l) <- true;
      removed.(r) <- true
    end
  in
  let _ = Galois.Runtime.for_each ~policy ~operator (Array.init n Fun.id) in
  (Array.copy in_mis, Array.copy removed)

let assert_valid_mis n in_mis =
  for i = 0 to n - 1 do
    let r = (i + 1) mod n in
    if in_mis.(i) && in_mis.(r) then Alcotest.failf "adjacent nodes %d,%d both in MIS" i r
  done;
  for i = 0 to n - 1 do
    let l = (i + n - 1) mod n and r = (i + 1) mod n in
    if (not in_mis.(i)) && (not in_mis.(l)) && not in_mis.(r) then
      Alcotest.failf "node %d could be added: not maximal" i
  done

let test_mis_valid_all_policies () =
  let n = 257 in
  List.iter
    (fun policy ->
      let in_mis, _ = run_mis ~policy n in
      assert_valid_mis n in_mis)
    [ Galois.Policy.serial; Galois.Policy.nondet 4; Galois.Policy.det 4 ]

let test_mis_det_portable () =
  let n = 257 in
  let ref_mis, _ = run_mis ~policy:(Galois.Policy.det 1) n in
  List.iter
    (fun t ->
      let mis, _ = run_mis ~policy:(Galois.Policy.det t) n in
      if mis <> ref_mis then Alcotest.failf "MIS differs at %d threads" t)
    [ 2; 3; 5 ]

(* Dynamic task creation determinism: tasks push children whose effects
   land in a shared log; the log contents (per bucket) must be
   thread-independent under det. *)
let run_dynamic ~policy n k =
  let locks = Galois.Lock.create_array k in
  let cells = Array.init k (fun _ -> ref []) in
  let operator ctx (gen, i) =
    let j = (i * 31) mod k in
    Galois.Context.acquire ctx locks.(j);
    Galois.Context.failsafe ctx;
    cells.(j) := ((gen * 10_000) + i) :: !(cells.(j));
    if gen < 2 then begin
      Galois.Context.push ctx (gen + 1, (i * 2) mod n);
      if i mod 3 = 0 then Galois.Context.push ctx (gen + 1, ((i * 2) + 1) mod n)
    end
  in
  let _ =
    Galois.Runtime.for_each ~policy ~operator (Array.init n (fun i -> (0, i)))
  in
  Array.map (fun c -> List.rev !c) cells

let test_dynamic_det_portable () =
  let n = 120 and k = 17 in
  let reference = run_dynamic ~policy:(Galois.Policy.det 1) n k in
  List.iter
    (fun t ->
      let out = run_dynamic ~policy:(Galois.Policy.det t) n k in
      if not (output_equal reference out) then
        Alcotest.failf "dynamic-task output differs at %d threads" t)
    [ 2; 4 ]

(* Property: for random seeds and sizes, det output at 3 threads equals
   det output at 1 thread. *)
let prop_det_portable =
  QCheck.Test.make ~name:"det output thread-independent (random apps)" ~count:25
    QCheck.(triple (int_range 1 200) (int_range 1 40) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let neigh = neigh_of_seed seed k in
      let a, _ = run_random_app ~policy:(Galois.Policy.det 1) ~n ~k ~neigh in
      let b, _ = run_random_app ~policy:(Galois.Policy.det 3) ~n ~k ~neigh in
      output_equal a b)

(* Property: nondet executes every task exactly once for random apps. *)
let prop_nondet_complete =
  QCheck.Test.make ~name:"nondet executes all tasks (random apps)" ~count:25
    QCheck.(triple (int_range 1 200) (int_range 1 40) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let neigh = neigh_of_seed seed k in
      let _, report = run_random_app ~policy:(Galois.Policy.nondet 3) ~n ~k ~neigh in
      report.stats.commits = n)

(* §3.3 static-id fast path: duplicate pushes of one task id must
   collapse to a single committed task. Six parents (disjoint locks, so
   they commit in the same round) each push the same child key; with
   [static_id] the child runs once, without it six times. Verified at 1
   and 4 threads — collapsing happens in the sequential generation sort,
   so it must not depend on which worker pushed first. *)
let run_duplicate_push ~threads ~use_static_id =
  let parents = 6 and child_key = 7 in
  let locks = Galois.Lock.create_array 8 in
  let cells = Array.init 8 (fun _ -> ref []) in
  let operator ctx (kind, k) =
    Galois.Context.acquire ctx locks.(k);
    Galois.Context.failsafe ctx;
    cells.(k) := ((kind * 100) + k) :: !(cells.(k));
    if kind = 0 then Galois.Context.push ctx (1, child_key)
  in
  let static_id = if use_static_id then Some (fun (kind, k) -> (kind * 1000) + k) else None in
  let report =
    Galois.Runtime.for_each
      ~policy:(Galois.Policy.det threads)
      ?static_id ~operator
      (Array.init parents (fun i -> (0, i)))
  in
  (report.stats.commits, List.length !(cells.(child_key)))

let test_static_id_collapses_duplicate_pushes () =
  List.iter
    (fun threads ->
      let commits, child_runs = run_duplicate_push ~threads ~use_static_id:true in
      check_int (Printf.sprintf "child committed once at %d threads" threads) 1 child_runs;
      check_int (Printf.sprintf "commits at %d threads" threads) 7 commits;
      (* Contrast: without static ids, each push is a distinct task. *)
      let commits', child_runs' = run_duplicate_push ~threads ~use_static_id:false in
      check_int (Printf.sprintf "children without static ids at %d threads" threads) 6
        child_runs';
      check_int (Printf.sprintf "commits without static ids at %d threads" threads) 12 commits')
    [ 1; 4 ]

let test_static_id_collapses_duplicate_seeds () =
  (* Duplicates already in the initial pool collapse the same way. *)
  let locks = Galois.Lock.create_array 4 in
  let hits = ref 0 in
  let operator ctx k =
    Galois.Context.acquire ctx locks.(k);
    Galois.Context.failsafe ctx;
    incr hits
  in
  let report =
    Galois.Runtime.for_each
      ~policy:(Galois.Policy.det 1)
      ~static_id:Fun.id ~operator [| 3; 3; 3; 1 |]
  in
  check_int "distinct keys commit" 2 report.stats.commits;
  check_int "operator ran once per key" 2 !hits

let suite =
  [
    Alcotest.test_case "det output portable across threads" `Quick
      test_det_portable_across_threads;
    Alcotest.test_case "det round structure portable" `Quick
      test_det_rounds_identical_across_threads;
    Alcotest.test_case "nondet executes exactly once" `Quick test_nondet_executes_exactly_once;
    Alcotest.test_case "MIS valid under all policies" `Quick test_mis_valid_all_policies;
    Alcotest.test_case "MIS portable under det" `Quick test_mis_det_portable;
    Alcotest.test_case "dynamic tasks portable under det" `Quick test_dynamic_det_portable;
    Alcotest.test_case "static ids collapse duplicate pushes" `Quick
      test_static_id_collapses_duplicate_pushes;
    Alcotest.test_case "static ids collapse duplicate seeds" `Quick
      test_static_id_collapses_duplicate_seeds;
    QCheck_alcotest.to_alcotest prop_det_portable;
    QCheck_alcotest.to_alcotest prop_nondet_complete;
  ]
