let () =
  Alcotest.run "deterministic_galois"
    [
      ("splitmix", Test_splitmix.suite);
      ("parallel", Test_parallel.suite);
      ("lock", Test_lock.suite);
      ("workset", Test_workset.suite);
      ("runtime", Test_runtime.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("policy", Test_policy.suite);
      ("determinism", Test_determinism.suite);
      ("detcheck", Test_detcheck.suite);
      ("replay", Test_replay.suite);
      ("digest-fixture", Test_digest_fixture.suite);
      ("det-sched-props", Test_det_sched_props.suite);
      ("core-edge", Test_core_edge.suite);
      ("graph", Test_graph.suite);
      ("geometry", Test_geometry.suite);
      ("mesh", Test_mesh.suite);
      ("detreserve", Test_detreserve.suite);
      ("apps", Test_apps.suite);
      ("apps2", Test_apps2.suite);
      ("kcore", Test_kcore.suite);
      ("audit", Test_audit.suite);
      ("detlint", Test_detlint.suite);
      ("simmachine", Test_simmachine.suite);
      ("analysis", Test_analysis.suite);
      ("figures", Test_figures.suite);
      ("service", Test_service.suite);
    ]
