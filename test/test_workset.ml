let check_int = Alcotest.(check int)

let test_drain_sequential () =
  let ws = Galois.Workset.create [| 1; 2; 3 |] in
  let seen = ref [] in
  let rec go () =
    match Galois.Workset.take ws with
    | Some x ->
        seen := x :: !seen;
        Galois.Workset.complete ws;
        go ()
    | None -> ()
  in
  go ();
  Alcotest.(check (list int)) "FIFO order" [ 3; 2; 1 ] !seen

let test_empty_terminates () =
  let ws = Galois.Workset.create [||] in
  (match Galois.Workset.take ws with
  | None -> ()
  | Some _ -> Alcotest.fail "empty workset should terminate immediately")

let test_push_new_extends () =
  let ws = Galois.Workset.create [| 0 |] in
  (match Galois.Workset.take ws with
  | Some 0 ->
      Galois.Workset.push_new ws [ 10; 11 ];
      Galois.Workset.complete ws
  | _ -> Alcotest.fail "expected 0");
  let count = ref 0 in
  let rec go () =
    match Galois.Workset.take ws with
    | Some _ ->
        incr count;
        Galois.Workset.complete ws;
        go ()
    | None -> ()
  in
  go ();
  check_int "two new tasks" 2 !count

let test_requeue_keeps_pending () =
  let ws = Galois.Workset.create [| 7 |] in
  (match Galois.Workset.take ws with
  | Some 7 -> Galois.Workset.requeue ws 7
  | _ -> Alcotest.fail "expected 7");
  (match Galois.Workset.take ws with
  | Some 7 -> Galois.Workset.complete ws
  | _ -> Alcotest.fail "expected requeued 7");
  match Galois.Workset.take ws with
  | None -> ()
  | Some _ -> Alcotest.fail "should be terminated"

let test_concurrent_producers_consumers () =
  (* Each initial task spawns children down to a depth; total consumed
     count must equal the tree size regardless of interleaving. *)
  let depth = 6 in
  let ws = Galois.Workset.create [| depth |] in
  let consumed = Atomic.make 0 in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      Parallel.Domain_pool.run pool (fun _ ->
          let rec go () =
            match Galois.Workset.take ws with
            | None -> ()
            | Some d ->
                Atomic.incr consumed;
                if d > 0 then Galois.Workset.push_new ws [ d - 1; d - 1 ];
                Galois.Workset.complete ws;
                go ()
          in
          go ()));
  (* A full binary tree of height [depth] has 2^(depth+1) - 1 nodes. *)
  check_int "all tasks consumed" ((1 lsl (depth + 1)) - 1) (Atomic.get consumed)

let test_blocking_take_wakes_on_push () =
  (* One worker holds the only pending task while the others block in
     take; pushing children must wake them rather than deadlock. Any
     worker may win the race for task 0 (on a loaded or single-core
     machine it need not be worker 0), so the winner plays the producer
     role and the rest block. *)
  let ws = Galois.Workset.create [| 0 |] in
  let consumed = Atomic.make 0 in
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      Parallel.Domain_pool.run pool (fun _ ->
          let rec go () =
            match Galois.Workset.take ws with
            | Some 0 ->
                (* Let the other workers reach their blocking take. *)
                Unix.sleepf 0.05;
                Galois.Workset.push_new ws [ 1; 2 ];
                Galois.Workset.complete ws;
                go ()
            | Some _ ->
                Atomic.incr consumed;
                Galois.Workset.complete ws;
                go ()
            | None -> ()
          in
          go ()));
  (* Termination itself proves the wake-up: blocked takers returned
     [None] only after the pushed tasks were drained. *)
  check_int "pushed tasks processed" 2 (Atomic.get consumed)

let test_requeue_wakes_blocked_takers () =
  (* Regression for requeue waking with [Condition.signal]: with
     several workers blocked in [take], a single signal can be consumed
     by a waiter that loses the race for the requeued item and goes
     straight back to sleep, stranding the worker that would have taken
     it. Both tasks abort and requeue many times while the spare
     workers sit blocked; every retry must be re-taken by someone and
     the run must terminate (a lost wake-up hangs this test). *)
  let ws = Galois.Workset.create [| 0; 1 |] in
  let retries = [| Atomic.make 0; Atomic.make 0 |] in
  let consumed = Atomic.make 0 in
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      Parallel.Domain_pool.run pool (fun _ ->
          let rec go () =
            match Galois.Workset.take ws with
            | None -> ()
            | Some x ->
                if Atomic.fetch_and_add retries.(x) 1 < 50 then begin
                  (* Abort path: occasionally pause so the other
                     workers reach their blocking take first. *)
                  if Atomic.get retries.(x) mod 10 = 0 then Unix.sleepf 0.001;
                  Galois.Workset.requeue ws x
                end
                else begin
                  Atomic.incr consumed;
                  Galois.Workset.complete ws
                end;
                go ()
          in
          go ()));
  check_int "both tasks eventually commit" 2 (Atomic.get consumed)

let suite =
  [
    Alcotest.test_case "sequential drain in FIFO order" `Quick test_drain_sequential;
    Alcotest.test_case "empty workset terminates" `Quick test_empty_terminates;
    Alcotest.test_case "push_new extends pending work" `Quick test_push_new_extends;
    Alcotest.test_case "requeue keeps task pending" `Quick test_requeue_keeps_pending;
    Alcotest.test_case "concurrent producers and consumers" `Quick
      test_concurrent_producers_consumers;
    Alcotest.test_case "blocked take wakes on push" `Quick test_blocking_take_wakes_on_push;
    Alcotest.test_case "requeue wakes blocked takers" `Quick test_requeue_wakes_blocked_takers;
  ]
