(* Property tests for the deterministic scheduler's pure scheduling
   arithmetic: the §3.3 locality-spread permutation, the §3.1
   parameterless window controller, and the Pending deque's in-place
   round compaction. All randomness comes from Splitmix with fixed
   seeds, so the properties are reproducible everywhere. *)

module D = Galois.Det_sched
module P = Galois.Pending
module Sm = Parallel.Splitmix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))

(* Reference implementation of the spread permutation: build the strided
   piles as lists and concatenate. *)
let spread_reference spread arr =
  let n = Array.length arr in
  if spread <= 1 || n <= spread then Array.copy arr
  else
    Array.of_list
      (List.concat_map
         (fun pile ->
           let rec go i = if i >= n then [] else arr.(i) :: go (i + spread) in
           go pile)
         (List.init spread (fun p -> p)))

let test_spread_identity_cases () =
  let arr = Array.init 10 (fun i -> i) in
  (* spread = 1 is a no-op... *)
  Alcotest.(check bool) "spread=1 returns the array" true (D.spread_permute 1 arr == arr);
  (* ...and so is any spread >= length (nothing to deal apart). *)
  Alcotest.(check bool) "n <= spread returns the array" true
    (D.spread_permute 10 arr == arr && D.spread_permute 64 arr == arr);
  check_int_list "untouched" (List.init 10 (fun i -> i)) (Array.to_list arr)

let test_spread_exact_multiple () =
  (* n = spread * k: pile [p] is exactly [p; p+spread; ...], each of
     length [k]. *)
  let arr = Array.init 12 (fun i -> i) in
  check_int_list "3 piles of 4"
    [ 0; 3; 6; 9; 1; 4; 7; 10; 2; 5; 8; 11 ]
    (Array.to_list (D.spread_permute 3 arr))

let test_spread_remainder () =
  (* n = 10, spread = 4: the first two piles carry the remainder. *)
  let arr = Array.init 10 (fun i -> i) in
  check_int_list "uneven piles"
    [ 0; 4; 8; 1; 5; 9; 2; 6; 3; 7 ]
    (Array.to_list (D.spread_permute 4 arr))

let test_spread_bijection () =
  (* Random sizes and spreads: the output is always a permutation of the
     input (sorting both sides must agree), and it matches the list
     reference exactly. *)
  let rng = Sm.create 0x5eed in
  for _ = 1 to 200 do
    let n = 1 + Sm.int rng 200 in
    let spread = 1 + Sm.int rng 20 in
    let arr = Array.init n (fun i -> i * 7 + 3) in
    let out = D.spread_permute spread arr in
    check_int "same length" n (Array.length out);
    check_int_list "matches reference"
      (Array.to_list (spread_reference spread arr))
      (Array.to_list out);
    let sorted = Array.copy out in
    Array.sort compare sorted;
    check_int_list "bijection" (Array.to_list arr) (Array.to_list sorted)
  done

let target = 0.9
let cap = 1 lsl 22

let test_window_doubles_to_cap () =
  (* A run of all-commit rounds doubles the window every time until the
     cap, then pins it there. *)
  let w = ref 32 and steps = ref 0 in
  while !w < cap && !steps < 100 do
    let next = D.adapt_window ~target_ratio:target ~window:!w ~committed:!w ~w_use:!w in
    check_int "doubles" (min (2 * !w) cap) next;
    w := next;
    incr steps
  done;
  check_int "reached the cap" cap !w;
  check_bool "in at most log2(cap) steps" true (!steps <= 22);
  check_int "pinned at the cap" cap
    (D.adapt_window ~target_ratio:target ~window:cap ~committed:cap ~w_use:cap)

let test_window_collapse_on_zero_commits () =
  (* A fully defeated round collapses any window straight to the floor. *)
  List.iter
    (fun w ->
      check_int "floor after zero commits" 32
        (D.adapt_window ~target_ratio:target ~window:w ~committed:0 ~w_use:(max 1 (w / 2))))
    [ 32; 33; 100; 4096; cap ]

let test_window_bounds_random_walk () =
  (* Whatever commit ratios a workload forces, the controller stays
     inside [32, cap] and never more than doubles: 500 random walks of
     the recurrence with uniformly random commit counts. *)
  let rng = Sm.create 2014 in
  for _ = 1 to 500 do
    let w = ref (32 + Sm.int rng 8192) in
    for _ = 1 to 50 do
      let w_use = 1 + Sm.int rng !w in
      let committed = Sm.int rng (w_use + 1) in
      let next = D.adapt_window ~target_ratio:target ~window:!w ~committed ~w_use in
      check_bool "floor" true (next >= 32);
      check_bool "cap" true (next <= cap);
      check_bool "at most doubles" true (next <= max 32 (2 * !w));
      (let ratio = float_of_int committed /. float_of_int w_use in
       if ratio >= target then
         check_int "good round doubles" (min (2 * !w) cap) next);
      w := next
    done
  done

let test_window_shrink_proportional () =
  (* Below target, the shrink is proportional: committing half the
     target ratio roughly halves the window (within the +1 rounding). *)
  let w = 10_000 in
  let w_use = 1_000 in
  let committed = int_of_float (target *. 0.5 *. float_of_int w_use) in
  let next = D.adapt_window ~target_ratio:target ~window:w ~committed ~w_use in
  check_bool "about half" true (abs (next - (w / 2)) <= w / 100)

(* --- Pending deque ---------------------------------------------------- *)

let pending_of_list l =
  let p = P.create () in
  P.load p (Array.of_list l);
  p

let to_list p = List.init (P.length p) (P.get p)

let test_pending_compact_cases () =
  let p = pending_of_list [ 1; 2; 3; 4; 5 ] in
  (* Drop the committed (even) window entries; failed ones keep their
     order in front of the untried remainder. *)
  let dropped = P.compact p ~w_use:4 ~keep:(fun i -> P.get p i mod 2 = 1) in
  check_int "dropped" 2 dropped;
  check_int_list "failed before remainder" [ 1; 3; 5 ] (to_list p);
  (* Keep-all is a no-op. *)
  check_int "keep all drops none" 0 (P.compact p ~w_use:3 ~keep:(fun _ -> true));
  check_int_list "unchanged" [ 1; 3; 5 ] (to_list p);
  (* Drop-all empties the window. *)
  check_int "drop all" 3 (P.compact p ~w_use:3 ~keep:(fun _ -> false));
  check_int "empty" 0 (P.length p)

let test_pending_compact_random () =
  (* Against a list reference: repeatedly take a random window, keep a
     random subset, and compare with filter + append semantics. *)
  let rng = Sm.create 0xbeef in
  for _ = 1 to 200 do
    let n = 1 + Sm.int rng 60 in
    let items = List.init n (fun i -> i) in
    let p = pending_of_list items in
    let model = ref items in
    while P.length p > 0 do
      let w_use = 1 + Sm.int rng (P.length p) in
      let keep_set = Array.init w_use (fun _ -> Sm.bool rng) in
      (* Force progress so the loop terminates. *)
      keep_set.(Sm.int rng w_use) <- false;
      let dropped = P.compact p ~w_use ~keep:(fun i -> keep_set.(i)) in
      let window, rest =
        (List.filteri (fun i _ -> i < w_use) !model,
         List.filteri (fun i _ -> i >= w_use) !model)
      in
      model := List.filteri (fun i _ -> keep_set.(i)) window @ rest;
      check_int "dropped count" (w_use - List.length (List.filter Fun.id (Array.to_list keep_set))) dropped;
      check_int_list "matches model" !model (to_list p)
    done
  done

(* --- Pending bucket runs (soft-priority generations) ------------------ *)

let test_pending_runs_cases () =
  let p = P.create () in
  (* Unordered load: no runs, the whole deque is available. *)
  P.load p [| 1; 2; 3 |];
  check_int "unordered avail" 3 (P.window_avail p);
  Alcotest.(check bool) "unordered has no run" true (P.current_run p = None);
  Alcotest.(check bool) "unordered never drains" true (P.note_dropped p 2 = None);
  (* Three runs: windows are capped at the current run, drains are
     reported exactly when a run empties, in order. *)
  P.load_runs p [| 10; 11; 20; 30; 31; 32 |] [| (1, 2); (4, 1); (9, 3) |];
  Alcotest.(check bool) "first run" true (P.current_run p = Some (1, 2));
  check_int "avail is run remainder" 2 (P.window_avail p);
  Alcotest.(check bool) "partial drop keeps run" true (P.note_dropped p 1 = None);
  Alcotest.(check bool) "run shrank" true (P.current_run p = Some (1, 1));
  Alcotest.(check bool) "draining reports bucket" true (P.note_dropped p 1 = Some 1);
  Alcotest.(check bool) "second run" true (P.current_run p = Some (4, 1));
  check_int "avail follows" 1 (P.window_avail p);
  Alcotest.(check bool) "second drains" true (P.note_dropped p 1 = Some 4);
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "overdrop rejected" true (raises (fun () -> P.note_dropped p 4));
  Alcotest.(check bool) "third drains" true (P.note_dropped p 3 = Some 9);
  Alcotest.(check bool) "all runs spent" true (P.current_run p = None);
  (* A zero-count drop is a no-op even on a live run. *)
  P.load_runs p [| 7 |] [| (0, 1) |];
  Alcotest.(check bool) "zero drop is a no-op" true (P.note_dropped p 0 = None);
  (* load_runs validation. *)
  Alcotest.(check bool) "sizes must sum" true
    (raises (fun () -> P.load_runs p [| 1; 2 |] [| (0, 1) |]));
  Alcotest.(check bool) "sizes must be positive" true
    (raises (fun () -> P.load_runs p [| 1 |] [| (0, 1); (1, 0) |]))

let test_pending_runs_random () =
  (* Drive the deque exactly as the scheduler does — window capped at
     window_avail, compact, note_dropped — and require that every
     bucket drains exactly once, in ascending order, with the window
     never straddling a run. *)
  let rng = Sm.create 0xfeed in
  for _ = 1 to 200 do
    let nruns = 1 + Sm.int rng 6 in
    let bucket = ref (-5) in
    let runs =
      Array.init nruns (fun _ ->
          bucket := !bucket + 1 + Sm.int rng 3;
          (!bucket, 1 + Sm.int rng 8))
    in
    let total = Array.fold_left (fun a (_, c) -> a + c) 0 runs in
    let p = P.create () in
    P.load_runs p (Array.init total Fun.id) runs;
    let drained = ref [] in
    while P.length p > 0 do
      let avail = P.window_avail p in
      (match P.current_run p with
      | Some (_, c) -> check_int "avail equals run remainder" c avail
      | None -> Alcotest.fail "live deque without a current run");
      let w_use = 1 + Sm.int rng avail in
      let keep_set = Array.init w_use (fun _ -> Sm.bool rng) in
      keep_set.(Sm.int rng w_use) <- false;
      let dropped = P.compact p ~w_use ~keep:(fun i -> keep_set.(i)) in
      match P.note_dropped p dropped with
      | Some b -> drained := b :: !drained
      | None -> ()
    done;
    Alcotest.(check (list int))
      "buckets drain once each, ascending"
      (Array.to_list (Array.map fst runs))
      (List.rev !drained);
    Alcotest.(check bool) "no run left" true (P.current_run p = None)
  done

(* --- round-stamped marks: the release-free protocol ------------------- *)

let test_stale_marks_across_rounds () =
  (* Simulate the scheduler's round structure directly: each round opens
     a fresh epoch and runs writeMarksMax claims WITHOUT ever releasing,
     exactly as selectAndExec now does. A per-round model (all locks
     free) must predict every outcome — i.e. marks left by earlier
     rounds are invisible. *)
  let rng = Sm.create 0xac5 in
  let n = 16 in
  let locks = Galois.Lock.create_array n in
  for _round = 1 to 100 do
    let stamp = Galois.Lock.new_epoch () in
    let model = Array.make n 0 in
    for _op = 1 to 40 do
      let j = Sm.int rng n in
      let id = 1 + Sm.int rng 1000 in
      let m = model.(j) in
      (match Galois.Lock.claim_max locks.(j) ~stamp id with
      | `Won 0 ->
          check_bool "Won 0 only when free/stale or re-claim" true (m = 0 || m = id);
          model.(j) <- id
      | `Won v ->
          check_int "victim is this round's mark, never a stale one" m v;
          check_bool "displacement raises" true (id > m);
          model.(j) <- id
      | `Lost -> check_bool "Lost only to a same-round higher id" true (m > id));
      check_bool "holds agrees with round-local model" true
        (Galois.Lock.holds locks.(j) ~stamp model.(j) = (model.(j) <> 0))
    done;
    (* End of round: no releases. The marks now become stale garbage the
       next epoch must treat as free. *)
    Array.iteri
      (fun j m -> if m <> 0 then check_int "mark decodes last writer" m (Galois.Lock.mark locks.(j)))
      model
  done

let test_epochs_monotone () =
  let a = Galois.Lock.new_epoch () in
  let b = Galois.Lock.new_epoch () in
  let c = Galois.Lock.new_epoch () in
  check_bool "strictly increasing" true (a < b && b < c);
  check_bool "within stamp range" true (a >= 1 && c <= Galois.Lock.max_stamp)

(* --- spin-then-park pool/barrier under oversubscription ---------------- *)

let test_pool_spin_hammer () =
  (* More domains than this container has cores, tiny spin budget: every
     dispatch exercises both the spin fast path and the park fallback.
     Each worker's wakeups must be fully accounted as spins + parks, and
     the jobs must all run exactly once. *)
  let domains = 6 and jobs = 40 in
  Parallel.Domain_pool.with_pool ~spin:8 domains (fun pool ->
      let cells = Array.make domains 0 in
      for _ = 1 to jobs do
        Parallel.Domain_pool.run pool (fun w -> cells.(w) <- cells.(w) + 1)
      done;
      Array.iteri (fun w c -> check_int (Printf.sprintf "worker %d ran every job" w) jobs c) cells;
      let sync = Parallel.Domain_pool.sync_counters pool in
      check_int "one counter pair per worker" domains (Array.length sync);
      Array.iteri
        (fun w (s, p) ->
          check_bool "counters non-negative" true (s >= 0 && p >= 0);
          (* One await per dispatch (workers) / join (caller). *)
          check_int (Printf.sprintf "worker %d wakeups accounted" w) jobs (s + p))
        sync)

let test_pool_park_only () =
  (* spin = 0 recovers the pure condvar pool; it must still be correct
     and account every wakeup. *)
  Parallel.Domain_pool.with_pool ~spin:0 4 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 20 do
        Parallel.Domain_pool.run pool (fun _ -> Atomic.incr total)
      done;
      check_int "all jobs ran" 80 (Atomic.get total);
      Array.iter (fun (s, p) -> check_int "accounted" 20 (s + p))
        (Parallel.Domain_pool.sync_counters pool))

let test_barrier_spin_hammer () =
  (* Oversubscribed reusable barrier with a small spin budget: parties
     cycle many rounds; after each crossing every cell is within one
     round of our own (nobody passed a barrier early, nobody got
     stuck). *)
  let parties = 5 and rounds = 100 in
  let b = Parallel.Barrier.create ~spin:8 parties in
  let cells = Array.make parties 0 in
  let body me () =
    for r = 1 to rounds do
      cells.(me) <- cells.(me) + 1;
      Parallel.Barrier.wait b;
      for o = 0 to parties - 1 do
        let v = cells.(o) in
        if v < r || v > r + 1 then
          Alcotest.failf "party %d saw cell %d = %d in round %d" me o v r
      done
    done
  in
  let ds = List.init (parties - 1) (fun i -> Domain.spawn (body (i + 1))) in
  body 0 ();
  List.iter Domain.join ds;
  Array.iteri (fun i c -> check_int (Printf.sprintf "party %d rounds" i) rounds c) cells

let suite =
  [
    Alcotest.test_case "spread: identity cases" `Quick test_spread_identity_cases;
    Alcotest.test_case "spread: exact-multiple piles" `Quick test_spread_exact_multiple;
    Alcotest.test_case "spread: remainder piles" `Quick test_spread_remainder;
    Alcotest.test_case "spread: random bijection" `Quick test_spread_bijection;
    Alcotest.test_case "window: doubles to cap" `Quick test_window_doubles_to_cap;
    Alcotest.test_case "window: zero commits collapse" `Quick
      test_window_collapse_on_zero_commits;
    Alcotest.test_case "window: bounded random walk" `Quick test_window_bounds_random_walk;
    Alcotest.test_case "window: proportional shrink" `Quick test_window_shrink_proportional;
    Alcotest.test_case "pending: compact cases" `Quick test_pending_compact_cases;
    Alcotest.test_case "pending: compact random model" `Quick test_pending_compact_random;
    Alcotest.test_case "pending: bucket-run cases" `Quick test_pending_runs_cases;
    Alcotest.test_case "pending: bucket-run random model" `Quick test_pending_runs_random;
    Alcotest.test_case "stamps: stale marks invisible across rounds" `Quick
      test_stale_marks_across_rounds;
    Alcotest.test_case "stamps: epochs monotone" `Quick test_epochs_monotone;
    Alcotest.test_case "pool: oversubscribed spin-then-park hammer" `Quick
      test_pool_spin_hammer;
    Alcotest.test_case "pool: park-only (spin=0)" `Quick test_pool_park_only;
    Alcotest.test_case "barrier: oversubscribed spin hammer" `Quick
      test_barrier_spin_hammer;
  ]
