module Machine = Simmachine.Machine
module Exec_model = Simmachine.Exec_model
module Coredet = Simmachine.Coredet_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let task ~acquires ~inspect ~commit ~committed =
  {
    Galois.Schedule.acquires;
    inspect_work = inspect;
    commit_work = commit;
    committed;
    locks = [||];
  }

let test_machine_shapes () =
  check_int "m4x10 cores" 40 (Machine.max_threads Machine.m4x10);
  check_int "m4x6 cores" 24 (Machine.max_threads Machine.m4x6);
  check_int "numa8x4 cores" 32 (Machine.max_threads Machine.numa8x4);
  check_int "one node at 8 threads" 1 (Machine.nodes_used Machine.numa8x4 ~threads:8);
  check_int "two nodes at 9 threads" 2 (Machine.nodes_used Machine.numa8x4 ~threads:9);
  Alcotest.(check (float 1e-9)) "no remote on one node" 0.0
    (Machine.remote_fraction Machine.numa8x4 ~threads:8);
  check_bool "remote fraction grows" true
    (Machine.remote_fraction Machine.numa8x4 ~threads:32
    > Machine.remote_fraction Machine.numa8x4 ~threads:9)

let test_thread_sweep () =
  let sweep = Machine.thread_sweep Machine.m4x10 in
  check_bool "starts at 1" true (List.hd sweep = 1);
  check_bool "ends at max" true (List.exists (fun p -> p = 40) sweep);
  check_bool "ascending" true (List.sort compare sweep = sweep)

let test_makespan () =
  (* 4 unit tasks on 2 workers: makespan 2. *)
  Alcotest.(check (float 1e-9)) "balanced" 2.0
    (Exec_model.makespan ~threads:2 [ 1.0; 1.0; 1.0; 1.0 ]);
  (* One giant task dominates. *)
  Alcotest.(check (float 1e-9)) "critical path" 10.0
    (Exec_model.makespan ~threads:4 [ 10.0; 1.0; 1.0 ]);
  (* Amplified: balanced bound. *)
  Alcotest.(check (float 1e-9)) "amplified" 20.0
    (Exec_model.makespan ~amplify:10 ~threads:2 [ 1.0; 1.0; 1.0; 1.0 ])

let test_flat_scaling () =
  let records = List.init 1000 (fun _ -> task ~acquires:4 ~inspect:0 ~commit:10 ~committed:true) in
  let t1 = Exec_model.time_flat Machine.m4x10 ~threads:1 records in
  let t8 = Exec_model.time_flat Machine.m4x10 ~threads:8 records in
  check_bool "parallel is faster" true (t8 < t1);
  check_bool "speedup is sublinear-or-linear" true (t1 /. t8 <= 8.000001)

let test_rounds_cost_more_than_flat () =
  (* The same tasks in many small deterministic rounds must cost more
     than asynchronous execution (barriers + double touch). *)
  let tasks = List.init 256 (fun _ -> task ~acquires:4 ~inspect:5 ~commit:5 ~committed:true) in
  let rounds = List.map (fun t -> [| t |]) tasks in
  let flat = Exec_model.time_flat Machine.m4x10 ~threads:8 tasks in
  let det = Exec_model.time_rounds Machine.m4x10 ~threads:8 rounds in
  check_bool "deterministic rounds slower" true (det > flat)

let test_pbbs_between_flat_and_det () =
  let round =
    Array.init 64 (fun _ -> task ~acquires:6 ~inspect:5 ~commit:10 ~committed:true)
  in
  let det = Exec_model.time_rounds Machine.m4x10 ~threads:8 [ round ] in
  let pbbs = Exec_model.time_rounds_pbbs Machine.m4x10 ~threads:8 [ round ] in
  check_bool "handwritten deterministic faster than generic" true (pbbs < det)

let test_numa_cliff () =
  (* numa8x4: efficiency per thread drops sharply crossing one blade. *)
  let records = List.init 2000 (fun _ -> task ~acquires:6 ~inspect:0 ~commit:5 ~committed:true) in
  let m = Machine.numa8x4 in
  let t8 = Exec_model.time_flat ~amplify:100 m ~threads:8 records in
  let t9 = Exec_model.time_flat ~amplify:100 m ~threads:9 records in
  (* 9 threads cross the NUMA boundary: time should NOT improve by the
     thread ratio; per-thread efficiency drops. *)
  let eff8 = 1.0 /. (t8 *. 8.0) and eff9 = 1.0 /. (t9 *. 9.0) in
  check_bool "efficiency drops across the blade boundary" true (eff9 < eff8)

let test_serial_baseline_cheapest () =
  let records = List.init 500 (fun _ -> task ~acquires:6 ~inspect:0 ~commit:5 ~committed:true) in
  let baseline = Exec_model.time_serial_baseline Machine.m4x10 records in
  let galois1 = Exec_model.time_flat Machine.m4x10 ~threads:1 records in
  check_bool "baseline beats 1-thread runtime" true (baseline < galois1)

let test_coredet_contrast () =
  let m = Machine.m4x10 in
  (* Coarse-grain, almost no atomics: CoreDet cost is modest. *)
  let coarse = Coredet.slowdown m ~threads:40 ~work:1_000_000 ~atomics:100 () in
  (* Fine-grain with an atomic every few work units: catastrophic. *)
  let fine = Coredet.slowdown m ~threads:40 ~work:1_000_000 ~atomics:500_000 () in
  check_bool "coarse-grain is mildly slowed" true (coarse < 4.0);
  check_bool "fine-grain collapses" true (fine > 20.0);
  check_bool "slowdowns exceed 1" true (coarse > 1.0)

let test_coredet_monotone_in_threads () =
  let m = Machine.m4x10 in
  let s t = Coredet.slowdown m ~threads:t ~work:1_000_000 ~atomics:200_000 () in
  check_bool "slowdown grows with threads" true (s 40 > s 2)

let test_cache_basics () =
  let c = Cachesim.Cache.create ~lines:64 ~associativity:4 in
  check_bool "first access misses" false (Cachesim.Cache.access c 1);
  check_bool "second access hits" true (Cachesim.Cache.access c 1);
  check_int "hits" 1 (Cachesim.Cache.hits c);
  check_int "misses" 1 (Cachesim.Cache.misses c)

let test_cache_lru_eviction () =
  (* Fill one set beyond associativity; the oldest line must leave. With
     a 1-set cache, ids map to the same set. *)
  let c = Cachesim.Cache.create ~lines:4 ~associativity:4 in
  List.iter (fun i -> ignore (Cachesim.Cache.access c i)) [ 1; 2; 3; 4; 5 ];
  check_bool "evicted line misses again" false (Cachesim.Cache.access c 1)

let test_cache_validation () =
  Alcotest.check_raises "bad geometry"
    (Invalid_argument "Cache.create: lines must be a positive multiple of associativity")
    (fun () -> ignore (Cachesim.Cache.create ~lines:10 ~associativity:4))

let test_hierarchy_locality_effect () =
  (* The same tasks executed as rounds (inspect + commit far apart) must
     produce at least as many DRAM accesses as flat execution. *)
  let n = 4096 in
  let mk i =
    {
      Galois.Schedule.acquires = 4;
      inspect_work = 0;
      commit_work = 1;
      committed = true;
      locks = Array.init 4 (fun j -> ((i * 4) + j) mod (2 * n));
    }
  in
  let tasks = List.init n mk in
  let flat = Galois.Schedule.Flat tasks in
  let rounds = Galois.Schedule.Rounds [ Array.of_list tasks ] in
  let d_flat =
    Cachesim.Hierarchy.dram_accesses
      (Cachesim.Hierarchy.replay ~l1_lines:64 ~l2_lines:256 ~l3_lines:1024 ~threads:4 flat)
  in
  let d_rounds =
    Cachesim.Hierarchy.dram_accesses
      (Cachesim.Hierarchy.replay ~l1_lines:64 ~l2_lines:256 ~l3_lines:1024 ~threads:4 rounds)
  in
  check_bool "round execution touches DRAM more" true (d_rounds > d_flat)

let test_layout_compact_wins () =
  (* A recorded deterministic bfs replayed against the layout model:
     the compact 4-byte substrate must hit at least as often as the old
     boxed 8-byte one, and touch at most as many distinct lines — same
     access stream, narrower footprint. *)
  let g = Graphlib.Generators.kout ~seed:9 ~n:3000 ~k:5 () in
  Galois.Lock.reset_lids ();
  let _, report =
    Apps.Bfs.galois ~record:true ~policy:(Galois.Policy.det 2) g ~source:0
  in
  match report.Galois.Runtime.schedule with
  | None -> Alcotest.fail "no schedule recorded"
  | Some sched ->
      let boxed, compact = Cachesim.Layout.compare_layouts g sched in
      check_bool "model saw the stream" true (boxed.Cachesim.Layout.accesses > 0);
      check_bool "compact hit rate >= boxed" true
        (Cachesim.Layout.hit_rate compact >= Cachesim.Layout.hit_rate boxed);
      check_bool "compact spans fewer lines" true
        (compact.Cachesim.Layout.lines_touched <= boxed.Cachesim.Layout.lines_touched)

let suite =
  [
    Alcotest.test_case "machine descriptions" `Quick test_machine_shapes;
    Alcotest.test_case "thread sweeps" `Quick test_thread_sweep;
    Alcotest.test_case "makespan" `Quick test_makespan;
    Alcotest.test_case "flat schedule scales" `Quick test_flat_scaling;
    Alcotest.test_case "rounds cost more than flat" `Quick test_rounds_cost_more_than_flat;
    Alcotest.test_case "pbbs model beats generic det" `Quick test_pbbs_between_flat_and_det;
    Alcotest.test_case "NUMA cliff at blade boundary" `Quick test_numa_cliff;
    Alcotest.test_case "serial baseline cheapest" `Quick test_serial_baseline_cheapest;
    Alcotest.test_case "coredet coarse vs fine grain" `Quick test_coredet_contrast;
    Alcotest.test_case "coredet slowdown grows with threads" `Quick
      test_coredet_monotone_in_threads;
    Alcotest.test_case "cache hit/miss accounting" `Quick test_cache_basics;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache geometry validation" `Quick test_cache_validation;
    Alcotest.test_case "hierarchy shows det locality loss" `Quick test_hierarchy_locality_effect;
    Alcotest.test_case "layout: compact CSR beats boxed" `Quick test_layout_compact_wins;
  ]
