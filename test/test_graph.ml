module Csr = Graphlib.Csr
module Gen = Graphlib.Generators

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_of_adjacency () =
  let g = Csr.of_adjacency [| [ 1; 2 ]; [ 2 ]; [] |] in
  check_int "nodes" 3 (Csr.nodes g);
  check_int "edges" 3 (Csr.edges g);
  check_int "deg 0" 2 (Csr.out_degree g 0);
  check_int "deg 2" 0 (Csr.out_degree g 2);
  let succ = Csr.fold_succ g 0 (fun acc v -> v :: acc) [] in
  Alcotest.(check (list int)) "succ of 0" [ 2; 1 ] succ

let test_of_edges () =
  let g = Csr.of_edges ~n:4 [| (0, 1); (2, 3); (0, 3); (1, 0) |] in
  check_int "edges" 4 (Csr.edges g);
  check_int "deg 0" 2 (Csr.out_degree g 0);
  check_bool "0 -> 3" true (Csr.exists_succ g 0 (fun v -> v = 3));
  check_bool "3 has no succ" false (Csr.exists_succ g 3 (fun _ -> true))

let test_of_edges_rejects_bad () =
  Alcotest.check_raises "out of range" (Invalid_argument "Csr.of_edges: node out of range")
    (fun () -> ignore (Csr.of_edges ~n:2 [| (0, 5) |]))

let test_transpose () =
  let g = Csr.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let t = Csr.transpose g in
  check_bool "1 -> 0 in transpose" true (Csr.exists_succ t 1 (fun v -> v = 0));
  check_bool "2 -> 1 in transpose" true (Csr.exists_succ t 2 (fun v -> v = 1));
  check_int "edge count preserved" (Csr.edges g) (Csr.edges t)

let test_symmetrize () =
  let g = Csr.of_edges ~n:4 [| (0, 1); (1, 0); (2, 2); (1, 3) |] in
  let s = Csr.symmetrize g in
  check_bool "symmetric" true (Csr.is_symmetric s);
  check_bool "self loop dropped" false (Csr.exists_succ s 2 (fun v -> v = 2));
  check_bool "0-1 single edge each way" true (Csr.out_degree s 0 = 1);
  check_bool "3 -> 1 added" true (Csr.exists_succ s 3 (fun v -> v = 1))

let test_edge_range_targets () =
  let g = Csr.of_adjacency [| [ 2; 1 ]; []; [ 0 ] |] in
  let lo, hi = Csr.edge_range g 0 in
  check_int "range width" 2 (hi - lo);
  check_int "first target" 2 (Csr.edge_target g lo)

let test_kout_degrees () =
  let g = Gen.kout ~seed:3 ~n:100 ~k:5 () in
  check_int "nodes" 100 (Csr.nodes g);
  check_int "edges" 500 (Csr.edges g);
  for u = 0 to 99 do
    check_int "degree" 5 (Csr.out_degree g u);
    check_bool "no self loop" false (Csr.exists_succ g u (fun v -> v = u));
    (* distinct targets *)
    let succ = List.sort compare (Csr.fold_succ g u (fun acc v -> v :: acc) []) in
    check_int "distinct" 5 (List.length (List.sort_uniq compare succ))
  done

let test_kout_deterministic () =
  let a = Gen.kout ~seed:42 ~n:50 ~k:3 () and b = Gen.kout ~seed:42 ~n:50 ~k:3 () in
  for u = 0 to 49 do
    let sa = Csr.fold_succ a u (fun acc v -> v :: acc) [] in
    let sb = Csr.fold_succ b u (fun acc v -> v :: acc) [] in
    if sa <> sb then Alcotest.failf "kout differs at node %d" u
  done

let test_kout_rejects_bad () =
  Alcotest.check_raises "k >= n" (Invalid_argument "Generators.kout: need 0 <= k < n") (fun () ->
      ignore (Gen.kout ~n:3 ~k:3 ()))

let test_grid () =
  let g = Gen.grid2d ~rows:3 ~cols:4 in
  check_int "nodes" 12 (Csr.nodes g);
  check_bool "symmetric" true (Csr.is_symmetric g);
  (* Corner has degree 2, interior 4. *)
  check_int "corner degree" 2 (Csr.out_degree g 0);
  check_int "interior degree" 4 (Csr.out_degree g 5)

let test_rmat () =
  let g = Gen.rmat ~seed:5 ~scale:8 ~edge_factor:4 () in
  check_int "nodes" 256 (Csr.nodes g);
  check_int "edges" 1024 (Csr.edges g)

let test_flow_network_gen () =
  let g, caps, s, t = Gen.flow_network ~seed:1 ~n:20 ~k:3 () in
  check_int "caps size" (Csr.edges g) (Array.length caps);
  check_bool "caps positive" true (Array.for_all (fun c -> c > 0) caps);
  check_int "source" 0 s;
  check_int "sink" 19 t

(* Property: symmetrize is idempotent. *)
let prop_symmetrize_idempotent =
  QCheck.Test.make ~name:"symmetrize idempotent" ~count:50
    QCheck.(pair (int_range 2 30) (int_range 0 60))
    (fun (n, m) ->
      let g = Parallel.Splitmix.create (n + (m * 1000)) in
      let edges =
        Array.init m (fun _ -> (Parallel.Splitmix.int g n, Parallel.Splitmix.int g n))
      in
      let s = Csr.symmetrize (Csr.of_edges ~n edges) in
      let s2 = Csr.symmetrize s in
      Csr.edges s = Csr.edges s2 && Csr.is_symmetric s)

(* ------------------------------------------------------------------ *)
(* Off-heap substrate: planes, builders, binary format                 *)
(* ------------------------------------------------------------------ *)

module Plane = Graphlib.Plane
module Io = Graphlib.Graph_io

let test_plane_sizing () =
  (* Width selection flips exactly at the 31-bit boundary. *)
  let small = Plane.create ~max_value:Plane.i32_max 4 in
  check_int "4B below boundary" 4 (Plane.bytes_per_value small);
  let big = Plane.create ~max_value:(Plane.i32_max + 1) 4 in
  check_int "8B above boundary" 8 (Plane.bytes_per_value big);
  (* Values round-trip at both widths, including the extremes. *)
  let vals = [| 0; 1; 0xFFFF; 0x10000; Plane.i32_max |] in
  let p = Plane.of_array vals in
  check_int "of_array stays 4B" 4 (Plane.bytes_per_value p);
  Alcotest.(check (array int)) "4B round-trip" vals (Plane.to_array p);
  let wide = [| 0; Plane.i32_max + 1; max_int |] in
  let q = Plane.of_array wide in
  check_int "of_array widens" 8 (Plane.bytes_per_value q);
  Alcotest.(check (array int)) "8B round-trip" wide (Plane.to_array q);
  Alcotest.check_raises "4B set rejects overflow"
    (Invalid_argument "Plane.set: value exceeds 32-bit plane")
    (fun () -> Plane.set small 0 (Plane.i32_max + 1))

let test_builder_matches_of_adjacency () =
  (* The streaming builder must reproduce of_adjacency's adjacency
     order exactly when fed the same edges in the same order. *)
  let n = 37 in
  let rng = Parallel.Splitmix.create 90125 in
  let m = 300 in
  let edges =
    Array.init m (fun _ ->
        (Parallel.Splitmix.int rng n, Parallel.Splitmix.int rng n))
  in
  let adj = Array.make n [] in
  Array.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  let adj = Array.map List.rev adj in
  let via_adj = Csr.of_adjacency adj in
  let via_edges = Csr.of_edges ~n edges in
  let b = Csr.Builder.create ~n () in
  Array.iter (fun (u, v) -> Csr.Builder.add_edge b u v) edges;
  let via_builder = Csr.Builder.build b in
  check_bool "of_edges = of_adjacency" true (Csr.equal via_adj via_edges);
  check_bool "builder = of_adjacency" true (Csr.equal via_adj via_builder)

let prop_builder_matches_of_adjacency =
  QCheck.Test.make ~name:"builder adjacency order = of_adjacency" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 120))
    (fun (n, m) ->
      let rng = Parallel.Splitmix.create ((n * 1009) + m) in
      let edges =
        Array.init m (fun _ ->
            (Parallel.Splitmix.int rng n, Parallel.Splitmix.int rng n))
      in
      let adj = Array.make n [] in
      Array.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
      let via_adj = Csr.of_adjacency (Array.map List.rev adj) in
      let b = Csr.Builder.create ~n () in
      Array.iter (fun (u, v) -> Csr.Builder.add_edge b u v) edges;
      Csr.equal via_adj (Csr.Builder.build b))

let with_temp f =
  let path = Filename.temp_file "test_graph" ".gcsr" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_binary_roundtrip () =
  with_temp (fun path ->
      let g = Gen.kout ~seed:11 ~n:300 ~k:4 () in
      Io.save_binary path g;
      check_bool "unweighted round-trip" true (Csr.equal g (Io.load path));
      let w = Io.attach_random_weights ~seed:12 ~max_weight:77 g in
      Io.save_binary path w;
      let w' = Io.load path in
      check_bool "weighted round-trip" true (Csr.equal w w');
      check_bool "weights survive" true (Csr.weighted w'))

let test_binary_rejects_corruption () =
  with_temp (fun path ->
      let g = Gen.kout ~seed:13 ~n:200 ~k:3 () in
      Io.save_binary path g;
      let bytes =
        In_channel.with_open_bin path In_channel.input_all |> Bytes.of_string
      in
      let expect_corrupt label bytes =
        with_temp (fun path' ->
            Out_channel.with_open_bin path' (fun oc ->
                Out_channel.output_bytes oc bytes);
            match Io.load_binary path' with
            | _ -> Alcotest.failf "%s: corrupt file accepted" label
            | exception Failure msg ->
                check_bool
                  (label ^ ": error is tagged")
                  true
                  (String.length msg >= 7 && String.sub msg 0 8 = "Graph_io"))
      in
      (* Flip one payload bit. *)
      let flipped = Bytes.copy bytes in
      let mid = Bytes.length flipped / 2 in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
      expect_corrupt "bit flip" flipped;
      (* Truncate. *)
      expect_corrupt "truncation" (Bytes.sub bytes 0 (Bytes.length bytes - 9));
      (* Wrong magic. *)
      let bad_magic = Bytes.copy bytes in
      Bytes.set bad_magic 0 'X';
      expect_corrupt "bad magic" bad_magic)

let test_text_weighted_roundtrip () =
  with_temp (fun path ->
      let g =
        Io.attach_random_weights ~seed:21 ~max_weight:9 (Gen.kout ~seed:20 ~n:60 ~k:3 ())
      in
      Io.save_edges path g;
      let g' = Io.load path in
      check_bool "weighted text round-trip" true (Csr.equal g g'))

let test_attach_matches_random_weights () =
  let g = Gen.kout ~seed:31 ~n:120 ~k:4 () in
  let arr = Io.random_weights ~seed:32 ~max_weight:50 g in
  let att = Io.attach_random_weights ~seed:32 ~max_weight:50 g in
  match Csr.weights_array att with
  | None -> Alcotest.fail "attach_random_weights left the graph unweighted"
  | Some w -> Alcotest.(check (array int)) "same weight sequence" arr w

let test_mem_edge () =
  let g = Csr.symmetrize (Gen.kout ~seed:41 ~n:150 ~k:4 ()) in
  (* Symmetrized adjacency is sorted: mem_edge takes the binary-search
     path. Cross-check every pair against a linear scan. *)
  for u = 0 to Csr.nodes g - 1 do
    for v = 0 to Csr.nodes g - 1 do
      let linear = Csr.exists_succ g u (fun w -> w = v) in
      if Csr.mem_edge g u v <> linear then
        Alcotest.failf "mem_edge disagrees with scan at (%d, %d)" u v
    done
  done

let test_uniform_generator () =
  let g = Gen.uniform ~seed:51 ~n:500 ~m:2500 () in
  check_int "nodes" 500 (Csr.nodes g);
  check_int "edges" 2500 (Csr.edges g);
  Csr.iter_edges g (fun u v ->
      if u = v then Alcotest.failf "self loop at %d" u);
  let g' = Gen.uniform ~seed:51 ~n:500 ~m:2500 () in
  check_bool "deterministic" true (Csr.equal g g')

let test_graph_off_heap () =
  let g = Gen.kout ~seed:61 ~n:10_000 ~k:5 () in
  check_bool "planes are 4B here" true
    (Plane.bytes_per_value (Csr.targets_plane g) = 4);
  (* (n+1) offsets + m targets at 4 bytes. *)
  check_int "payload bytes" ((10_001 * 4) + (50_000 * 4)) (Csr.memory_bytes g)

let suite =
  [
    Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
    Alcotest.test_case "of_edges" `Quick test_of_edges;
    Alcotest.test_case "of_edges range check" `Quick test_of_edges_rejects_bad;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "symmetrize" `Quick test_symmetrize;
    Alcotest.test_case "edge ranges" `Quick test_edge_range_targets;
    Alcotest.test_case "kout degrees/self-loops/distinctness" `Quick test_kout_degrees;
    Alcotest.test_case "kout deterministic" `Quick test_kout_deterministic;
    Alcotest.test_case "kout argument check" `Quick test_kout_rejects_bad;
    Alcotest.test_case "grid2d" `Quick test_grid;
    Alcotest.test_case "rmat sizes" `Quick test_rmat;
    Alcotest.test_case "flow network generator" `Quick test_flow_network_gen;
    QCheck_alcotest.to_alcotest prop_symmetrize_idempotent;
    Alcotest.test_case "plane width selection" `Quick test_plane_sizing;
    Alcotest.test_case "builder = of_adjacency" `Quick test_builder_matches_of_adjacency;
    QCheck_alcotest.to_alcotest prop_builder_matches_of_adjacency;
    Alcotest.test_case "binary round-trip" `Quick test_binary_roundtrip;
    Alcotest.test_case "binary corruption rejected" `Quick test_binary_rejects_corruption;
    Alcotest.test_case "weighted text round-trip" `Quick test_text_weighted_roundtrip;
    Alcotest.test_case "attach_random_weights sequence" `Quick test_attach_matches_random_weights;
    Alcotest.test_case "mem_edge binary search" `Quick test_mem_edge;
    Alcotest.test_case "uniform generator" `Quick test_uniform_generator;
    Alcotest.test_case "graph lives off-heap" `Quick test_graph_off_heap;
  ]
