(* Regenerate the paper's tables and figures:

     galois-figures                 # everything, small scale
     galois-figures fig7-m4x10      # one figure
     galois-figures --scale tiny    # quick smoke run *)

open Cmdliner

let run figure scale_name =
  match Figures.Scale.by_name scale_name with
  | None -> `Error (false, Printf.sprintf "unknown scale %S (tiny | small | paper)" scale_name)
  | Some scale -> (
      Fmt.pr "Collecting dataset at scale %s (this runs every benchmark variant)...@."
        scale.Figures.Scale.name;
      let data = Figures.Dataset.collect scale in
      let t = Figures.timings data in
      match figure with
      | None ->
          Figures.print_all t;
          `Ok ()
      | Some name -> (
          match Figures.print_figure t name with
          | Ok () -> `Ok ()
          | Error e -> `Error (false, e)))

let figure_arg =
  let doc =
    "Figure to regenerate (fig4, fig5, fig6, fig7-m4x10, fig7-m4x6, fig7-numa8x4, fig8, fig9, \
     fig10, fig11, fig12, summary). Omit to print all."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)

let scale_arg =
  let doc = "Input scale: tiny | small | paper." in
  Arg.(value & opt string "small" & info [ "scale" ] ~docv:"SCALE" ~doc)

let cmd =
  let doc = "regenerate the evaluation tables/figures of the Deterministic Galois paper" in
  Cmd.v
    (Cmd.info "galois-figures" ~version:"1.0.0" ~doc)
    Term.(ret (const run $ figure_arg $ scale_arg))

let () = exit (Cmd.eval cmd)
