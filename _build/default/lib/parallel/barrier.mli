(** Reusable sense-reversing barrier for a fixed set of participants. *)

type t

val create : int -> t
(** [create parties] makes a barrier that releases once [parties] domains
    have called {!wait}. Raises [Invalid_argument] on a non-positive
    count. *)

val parties : t -> int

val wait : t -> unit
(** Block until all parties arrive. The barrier resets automatically and
    can be reused for any number of rounds. *)
