(* SplitMix64: a small, fast, splittable PRNG with a fixed algorithm, so
   random choices made through it are reproducible across machines and
   OCaml versions (unlike [Stdlib.Random], whose algorithm may change). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

(* A non-negative int uniform in [0, bound). Uses the high bits, which are
   the best-distributed bits of SplitMix64, and rejection sampling to avoid
   modulo bias. Keeping 62 bits guarantees the value fits OCaml's 63-bit
   signed int without wrapping negative. *)
let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  let rec go () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = r mod bound in
    (* Reject the tail of the range that would bias small values. *)
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L
