(* A fixed pool of domains executing SPMD jobs.

   Workers block on a condition variable between jobs rather than
   spinning, so the pool behaves sensibly even when domains outnumber
   cores (the common case in the reproduction container). The caller
   participates as worker 0, so a pool of size [n] spawns [n - 1]
   domains. *)

type job = int -> unit

type t = {
  size : int;
  mutex : Mutex.t;
  job_ready : Condition.t;
  job_done : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable remaining : int;
  mutable stop : bool;
  mutable failure : exn option;
  mutable domains : unit Domain.t list;
}

let record_failure t exn =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.mutex

let worker_loop t index =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.generation = !seen && not t.stop do
      Condition.wait t.job_ready t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      (try job index with exn -> record_failure t exn);
      Mutex.lock t.mutex;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.job_done;
      Mutex.unlock t.mutex
    end
  done

let create size =
  if size <= 0 then invalid_arg "Domain_pool.create: size must be positive";
  let t =
    {
      size;
      mutex = Mutex.create ();
      job_ready = Condition.create ();
      job_done = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      stop = false;
      failure = None;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.size

let run t job =
  if t.stop then invalid_arg "Domain_pool.run: pool is shut down";
  Mutex.lock t.mutex;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  t.remaining <- t.size - 1;
  t.failure <- None;
  Condition.broadcast t.job_ready;
  Mutex.unlock t.mutex;
  (try job 0 with exn -> record_failure t exn);
  Mutex.lock t.mutex;
  while t.remaining > 0 do
    Condition.wait t.job_done t.mutex
  done;
  let failure = t.failure in
  t.job <- None;
  Mutex.unlock t.mutex;
  match failure with None -> () | Some exn -> raise exn

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.job_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Dynamic chunk size: small enough for balance, large enough to keep the
   shared counter off the critical path. *)
let default_chunk lo hi size =
  let n = hi - lo in
  max 1 (min 1024 (n / (size * 8)))

let parallel_for ?chunk t lo hi body =
  if hi > lo then begin
    let chunk = match chunk with Some c -> max 1 c | None -> default_chunk lo hi t.size in
    let next = Atomic.make lo in
    run t (fun _worker ->
        let continue_ = ref true in
        while !continue_ do
          let start = Atomic.fetch_and_add next chunk in
          if start >= hi then continue_ := false
          else
            for i = start to min (start + chunk) hi - 1 do
              body i
            done
        done)
  end

let parallel_for_workers t lo hi body =
  if hi > lo then
    run t (fun worker ->
        (* Contiguous static split: worker w gets one slice, preserving
           spatial locality of the index range. *)
        let n = hi - lo in
        let per = n / t.size and rem = n mod t.size in
        let start = lo + (worker * per) + min worker rem in
        let len = per + if worker < rem then 1 else 0 in
        if len > 0 then body worker start (start + len))
