(* A reusable sense-reversing barrier.

   The container this reproduction runs in may have fewer cores than
   participating domains, so the barrier blocks on a condition variable
   instead of spinning; spinning with oversubscribed domains serializes
   horribly. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable sense : bool;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { mutex = Mutex.create (); cond = Condition.create (); parties; arrived = 0; sense = false }

let parties t = t.parties

let wait t =
  Mutex.lock t.mutex;
  let my_sense = t.sense in
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    (* Last arriver releases everyone and flips the sense for reuse. *)
    t.arrived <- 0;
    t.sense <- not t.sense;
    Condition.broadcast t.cond
  end
  else
    while t.sense = my_sense do
      Condition.wait t.cond t.mutex
    done;
  Mutex.unlock t.mutex
