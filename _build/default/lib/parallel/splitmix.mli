(** SplitMix64 pseudo-random number generator.

    Deterministic, splittable and portable: the same seed yields the same
    stream on every machine, which the reproduction needs for generating
    identical synthetic inputs everywhere. *)

type t

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next_int64 : t -> int64
(** Next 64 raw bits. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator; used to give each parallel worker its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
