(** A fixed pool of OCaml domains executing SPMD-style jobs.

    The calling domain participates as worker [0]; a pool of size [n]
    spawns [n - 1] additional domains that sleep between jobs. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] workers. Raises [Invalid_argument]
    when [n <= 0]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job w] on every worker [w] (0 to [size t - 1])
    concurrently and returns when all have finished. If any worker
    raises, one of the raised exceptions is re-raised in the caller after
    all workers have completed. *)

val shutdown : t -> unit
(** Join all worker domains. The pool cannot be used afterwards.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool, shutting it down
    afterwards even if [f] raises. *)

val parallel_for : ?chunk:int -> t -> int -> int -> (int -> unit) -> unit
(** [parallel_for t lo hi body] runs [body i] for [lo <= i < hi] with
    dynamic chunked load balancing. *)

val parallel_for_workers : t -> int -> int -> (int -> int -> int -> unit) -> unit
(** [parallel_for_workers t lo hi body] statically splits [\[lo, hi)] into
    contiguous slices and calls [body worker slice_lo slice_hi] once per
    worker that received a non-empty slice. *)
