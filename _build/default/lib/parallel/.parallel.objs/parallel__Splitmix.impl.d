lib/parallel/splitmix.ml: Int64
