lib/parallel/splitmix.mli:
