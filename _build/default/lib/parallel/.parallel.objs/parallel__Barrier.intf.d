lib/parallel/barrier.mli:
