lib/parallel/barrier.ml: Condition Mutex
