lib/parallel/domain_pool.ml: Atomic Condition Domain Fun List Mutex Option
