(* Input scales for the reproduction harness.

   The paper's inputs (§4.2) are 10M-node graphs and 2.5M-point meshes
   run on 40-core machines; this container has one core, so the default
   scale keeps the same input *distributions* at sizes that execute in
   seconds. The relative behaviour the figures report (abort ratios,
   round counts, scheduling overhead ratios, atomic rates per work unit)
   is scale-stable; absolute rates are reported from the machine
   simulator either way. *)

type t = {
  name : string;
  bfs_nodes : int;
  bfs_degree : int;
  mis_nodes : int;
  mis_degree : int;
  dt_points : int;
  dmr_points : int;
  pfp_nodes : int;
  pfp_degree : int;
  blackscholes_options : int;
  bodytrack : Apps.Bodytrack.config;
  freqmine : Apps.Freqmine.config;
  seed : int;
}

let small =
  {
    name = "small";
    bfs_nodes = 30_000;
    bfs_degree = 5;
    mis_nodes = 20_000;
    mis_degree = 5;
    dt_points = 4_000;
    dmr_points = 2_000;
    pfp_nodes = 1 lsl 12;
    pfp_degree = 4;
    blackscholes_options = 50_000;
    bodytrack = Apps.Bodytrack.default_config;
    freqmine = Apps.Freqmine.default_config;
    seed = 2014;
  }

let tiny =
  {
    small with
    name = "tiny";
    bfs_nodes = 4_000;
    mis_nodes = 3_000;
    dt_points = 800;
    dmr_points = 500;
    pfp_nodes = 1 lsl 9;
    blackscholes_options = 5_000;
    bodytrack = { Apps.Bodytrack.default_config with particles = 128; frames = 3 };
    freqmine = { Apps.Freqmine.default_config with transactions = 500 };
  }

(* The paper's §4.2 sizes. Only practical on a large-memory machine; the
   CLI exposes it for completeness. *)
let paper =
  {
    name = "paper";
    bfs_nodes = 10_000_000;
    bfs_degree = 5;
    mis_nodes = 10_000_000;
    mis_degree = 5;
    dt_points = 10_000_000;
    dmr_points = 2_500_000;
    pfp_nodes = 1 lsl 23;
    pfp_degree = 4;
    blackscholes_options = 10_000_000;
    bodytrack = { Apps.Bodytrack.default_config with particles = 4000; frames = 261 };
    freqmine = { Apps.Freqmine.default_config with transactions = 250_000; items = 1000 };
    seed = 2014;
  }

let by_name = function
  | "tiny" -> Some tiny
  | "small" -> Some small
  | "paper" -> Some paper
  | _ -> None
