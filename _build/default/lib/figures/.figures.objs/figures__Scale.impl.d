lib/figures/scale.ml: Apps
