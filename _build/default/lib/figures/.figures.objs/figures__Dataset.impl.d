lib/figures/dataset.ml: Apps Detreserve Galois Geometry Graphlib List Parallel Scale
