lib/figures/figures.ml: Analysis Apps Array Cachesim Dataset Detreserve Fmt Galois Geometry Graphlib Hashtbl List Parallel Printf Scale Simmachine
