(* A concurrently growable append-only store of points.

   Mesh refinement allocates new points from inside committing tasks, so
   allocation must be thread-safe. Ids come from an atomic counter;
   storage is chunked so readers never observe a relocation: a chunk,
   once published, is never moved. Readers index without locks — the
   scheduler's synchronization (task ordering through mark words and
   barriers) guarantees a reader only asks for ids already published. *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  mutable chunks : Geometry.Point.t array array;
  next : int Atomic.t;
  grow : Mutex.t;
}

let dummy = Geometry.Point.make nan nan

let create ?(capacity = chunk_size) () =
  let nchunks = max 1 ((capacity + chunk_size - 1) / chunk_size) in
  {
    chunks = Array.init nchunks (fun _ -> Array.make chunk_size dummy);
    next = Atomic.make 0;
    grow = Mutex.create ();
  }

let count t = Atomic.get t.next

let ensure_chunk t chunk_index =
  if chunk_index >= Array.length t.chunks then begin
    Mutex.lock t.grow;
    if chunk_index >= Array.length t.chunks then begin
      let n = Array.length t.chunks in
      let bigger = Array.init (max (chunk_index + 1) (2 * n)) (fun i ->
          if i < n then t.chunks.(i) else Array.make chunk_size dummy)
      in
      t.chunks <- bigger
    end;
    Mutex.unlock t.grow
  end

let add t p =
  let id = Atomic.fetch_and_add t.next 1 in
  let c = id lsr chunk_bits in
  ensure_chunk t c;
  t.chunks.(c).(id land (chunk_size - 1)) <- p;
  id

let get t id =
  if id < 0 || id >= Atomic.get t.next then invalid_arg "Pointstore.get: id out of range";
  t.chunks.(id lsr chunk_bits).(id land (chunk_size - 1))

let add_all t points = Array.map (fun p -> add t p) points
