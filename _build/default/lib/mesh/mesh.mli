(** Mutable triangle mesh with neighbor adjacency and per-triangle
    abstract locks.

    The shared substrate of the Delaunay triangulation (dt) and Delaunay
    mesh refinement (dmr) benchmarks.

    {b Synchronization contract}: acquire [tri.lock] through the operator
    context before reading or writing any field of [tri]. The cavity
    helpers take an [acquire] callback and honor this for every triangle
    they touch. *)

module Pointstore = Pointstore

type triangle = {
  tid : int;  (** internal id; not deterministic across runs *)
  v : int array;  (** 3 point ids, counter-clockwise *)
  nbr : triangle option array;
      (** [nbr.(i)] shares the edge opposite [v.(i)]; [None] = border *)
  mutable alive : bool;
  lock : Galois.Lock.t;
  mutable bucket : int list;  (** uninserted points inside (dt only) *)
}

type t

val create : ?capacity:int -> unit -> t
val points : t -> Pointstore.t
val point : t -> int -> Geometry.Point.t
val add_point : t -> Geometry.Point.t -> int
val triangle_point : t -> triangle -> int -> Geometry.Point.t

val new_triangle : t -> int -> int -> int -> triangle
(** Fresh alive triangle with the given CCW vertices and no neighbors. *)

val triangles : t -> triangle list
(** All alive triangles. Call only in quiescent states. *)

val triangle_count : t -> int

val facing_index : triangle -> int -> int -> int
(** [facing_index tri a b] is the slot (0..2) of the neighbor across
    edge [{a, b}]. Raises [Invalid_argument] if the triangle lacks that
    edge. *)

type boundary_edge = {
  a : int;
  b : int;
  outer : triangle option;
  inner : triangle;  (** the cavity triangle this edge belongs to *)
}
type cavity = { old_tris : triangle list; boundary : boundary_edge list }

exception Blocked of int * int * triangle
(** [Blocked (a, b, tri)]: the cavity hit border edge (a, b) of [tri]
    with the insertion point outside the domain; refinement splits that
    edge instead. *)

val collect_cavity :
  ?ignore_border:int * int ->
  t ->
  acquire:(triangle -> unit) ->
  start:triangle ->
  Geometry.Point.t ->
  cavity
(** The Bowyer–Watson cavity of a point: all triangles reachable from
    [start] whose open circumdisk contains it, plus the boundary edge
    cycle. [acquire] is called before each triangle (cavity members and
    boundary outers) is first read. [ignore_border] names the border
    segment being split, whose midpoint may round to just outside the
    domain; it is exempt from the [Blocked] check. *)

val retriangulate :
  ?split:int * int -> t -> register:(Galois.Lock.t -> unit) -> cavity -> int -> triangle list
(** [retriangulate t ~register cavity q] kills the cavity and stars [q]
    to the boundary edges, restoring all adjacency (including the outer
    triangles' back pointers, which the caller must have acquired —
    [collect_cavity] did). [register] receives each new triangle's lock
    (see {!Galois.Context.register_new}). [split] names the border
    segment whose midpoint [q] is; that edge is not starred, which
    splits it in two. Returns the new triangles. *)

val circumcircle_contains : t -> triangle -> Geometry.Point.t -> bool
val contains_point : t -> triangle -> Geometry.Point.t -> bool
val min_angle : t -> triangle -> float
val circumcenter : t -> triangle -> Geometry.Point.t option

val bounding_triangle : ?span:float -> t -> triangle * int list
(** A far-away enclosing triangle; returns it and its three synthetic
    vertex ids (to strip later). *)

val strip_vertices : t -> int list -> unit
(** Kill all triangles touching the given vertex ids, turning the
    revealed edges into borders. Sequential. *)

val check_consistency : t -> (unit, string) result
(** Adjacency symmetry, orientation, liveness — test support. *)

val delaunay_violations : ?exclude:(int -> bool) -> t -> int
(** Internal edges violating the local Delaunay property, optionally
    ignoring triangles touching excluded vertex ids. *)
