lib/mesh/mesh.mli: Galois Geometry Pointstore
