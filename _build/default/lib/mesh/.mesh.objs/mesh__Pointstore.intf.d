lib/mesh/pointstore.mli: Geometry
