lib/mesh/pointstore.ml: Array Atomic Geometry Mutex
