lib/mesh/mesh.ml: Array Atomic Galois Geometry Hashtbl List Mutex Option Pointstore Printf String
