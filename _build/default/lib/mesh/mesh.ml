(* A mutable triangle mesh with neighbor adjacency and per-triangle
   abstract locks — the shared-memory data structure under both Delaunay
   triangulation (Bowyer–Watson cavities) and Delaunay mesh refinement
   (Chew cavities), used through the Galois runtime.

   Synchronization contract: a task must acquire a triangle's lock
   (through its operator context) before reading or writing any field of
   that triangle. The cavity helpers below take an [acquire] callback and
   call it before first touching each triangle. *)

module Pointstore = Pointstore
(* re-export: [mesh.ml] is the library's root module *)

module Point = Geometry.Point
module Predicates = Geometry.Predicates

type triangle = {
  tid : int;
  v : int array;  (* 3 vertex ids, counter-clockwise *)
  nbr : triangle option array;  (* nbr.(i) shares the edge opposite v.(i); None = domain border *)
  mutable alive : bool;
  lock : Galois.Lock.t;
  mutable bucket : int list;  (* uninserted points located in this triangle (dt) *)
}

type t = {
  points : Pointstore.t;
  tid_counter : int Atomic.t;
  registry : triangle list ref;
  registry_lock : Mutex.t;
}

let create ?capacity () =
  let capacity = Option.value ~default:65536 capacity in
  {
    points = Pointstore.create ~capacity ();
    tid_counter = Atomic.make 0;
    registry = ref [];
    registry_lock = Mutex.create ();
  }

let points t = t.points
let point t id = Pointstore.get t.points id
let add_point t p = Pointstore.add t.points p

let triangle_point t tri i = point t tri.v.(i)

let new_triangle t a b c =
  let tri =
    {
      tid = Atomic.fetch_and_add t.tid_counter 1;
      v = [| a; b; c |];
      nbr = [| None; None; None |];
      alive = true;
      lock = Galois.Lock.create ();
      bucket = [];
    }
  in
  Mutex.lock t.registry_lock;
  t.registry := tri :: !(t.registry);
  Mutex.unlock t.registry_lock;
  tri

(* All currently alive triangles. Only meaningful in quiescent (not
   mid-parallel-section) states. *)
let triangles t = List.filter (fun tri -> tri.alive) !(t.registry)

let triangle_count t = List.length (triangles t)

(* The index (0..2) of the neighbor slot of [outer] that faces the edge
   {a, b}: the slot whose vertex is neither a nor b. *)
let facing_index outer a b =
  let has x = outer.v.(0) = x || outer.v.(1) = x || outer.v.(2) = x in
  if a = b || (not (has a)) || not (has b) then
    invalid_arg "Mesh.facing_index: triangles do not share edge {a,b}";
  let rec go i = if outer.v.(i) <> a && outer.v.(i) <> b then i else go (i + 1) in
  go 0

type boundary_edge = { a : int; b : int; outer : triangle option; inner : triangle }
type cavity = { old_tris : triangle list; boundary : boundary_edge list }

exception Blocked of int * int * triangle
(* The cavity reached a domain border edge (a, b) of the given triangle
   with the insertion point strictly beyond it (outside the domain);
   refinement must split the border edge instead. *)

(* Grow the cavity of triangles whose open circumdisk contains [p],
   starting from [start] (which must contain p in its circumdisk).
   [acquire] is called on every triangle read — cavity members and
   boundary outers alike — so the caller's neighborhood covers exactly
   what this function touches. *)
let same_edge (a, b) (c, d) = (a = c && b = d) || (a = d && b = c)

let collect_cavity ?ignore_border t ~acquire ~start p =
  let is_ignored ea eb =
    match ignore_border with Some e -> same_edge e (ea, eb) | None -> false
  in
  acquire start;
  if not start.alive then invalid_arg "Mesh.collect_cavity: dead start triangle";
  let visited = Hashtbl.create 16 in
  Hashtbl.add visited start.tid ();
  let cavity = ref [] and boundary = ref [] in
  let stack = ref [ start ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | tri :: rest ->
        stack := rest;
        cavity := tri :: !cavity;
        for i = 0 to 2 do
          let ea = tri.v.((i + 1) mod 3) and eb = tri.v.((i + 2) mod 3) in
          match tri.nbr.(i) with
          | None ->
              (* Domain border. If p lies strictly beyond it, the cavity
                 would leave the domain. *)
              (* [ignore_border] marks the segment currently being
                 split: its midpoint may fall a rounding error outside
                 the domain, which must not abort the split. *)
              if (not (is_ignored ea eb))
                 && Predicates.orient2d (point t ea) (point t eb) p < 0
              then raise (Blocked (ea, eb, tri));
              boundary := { a = ea; b = eb; outer = None; inner = tri } :: !boundary
          | Some u ->
              (* A visited neighbor is a cavity member: internal edge.
                 Unvisited neighbors are tested; rejected ones may be
                 re-tested through another edge — each rejection is a
                 distinct boundary edge, as required. *)
              if not (Hashtbl.mem visited u.tid) then begin
                acquire u;
                let pa = point t u.v.(0) and pb = point t u.v.(1) and pc = point t u.v.(2) in
                if Predicates.incircle pa pb pc p > 0 then begin
                  Hashtbl.add visited u.tid ();
                  stack := u :: !stack
                end
                else boundary := { a = ea; b = eb; outer = Some u; inner = tri } :: !boundary
              end
        done
  done;
  { old_tris = !cavity; boundary = !boundary }

(* Replace the cavity by the star of [q] over the boundary edges.
   [register] is called with each new triangle's lock so the scheduler
   can integrate freshly created locations (claimed immediately under
   speculative execution, nothing under deterministic commit).
   Returns the new triangles. *)
let retriangulate ?split t ~register cavity q =
  List.iter (fun tri -> tri.alive <- false) cavity.old_tris;
  (* [split] names a border segment whose midpoint [q] is: that edge is
     not starred (the triangle would be degenerate — q lies on it). Its
     two halves (a,q) and (q,b) become border edges of the adjacent star
     triangles automatically, splitting the segment. The exclusion is
     structural (by vertex ids), because a floating-point midpoint need
     not be exactly collinear with its segment. *)
  let is_split a b = match split with Some e -> same_edge e (a, b) | None -> false in
  let starrable = List.filter (fun { a; b; _ } -> not (is_split a b)) cavity.boundary in
  let by_first = Hashtbl.create 8 and by_second = Hashtbl.create 8 in
  let fresh =
    List.map
      (fun { a; b; outer; inner = _ } ->
        let nt = new_triangle t a b q in
        register nt.lock;
        Hashtbl.replace by_first a nt;
        Hashtbl.replace by_second b nt;
        (nt, outer))
      starrable
  in
  List.iter
    (fun (nt, outer) ->
      let a = nt.v.(0) and b = nt.v.(1) in
      (* Slot 2 (opposite q) faces the old boundary edge. *)
      nt.nbr.(2) <- outer;
      (match outer with
      | None -> ()
      | Some o -> o.nbr.(facing_index o a b) <- Some nt);
      (* Slot 0 (opposite a) faces edge (b, q): the star triangle whose
         boundary edge starts at b. Slot 1 (opposite b) faces (q, a). *)
      nt.nbr.(0) <- Hashtbl.find_opt by_first b;
      nt.nbr.(1) <- Hashtbl.find_opt by_second a)
    fresh;
  List.map fst fresh

(* --- cavity-free helpers -------------------------------------------- *)

let circumcircle_contains t tri p =
  Predicates.incircle (triangle_point t tri 0) (triangle_point t tri 1) (triangle_point t tri 2) p
  > 0

let contains_point t tri p =
  Predicates.in_triangle (triangle_point t tri 0) (triangle_point t tri 1) (triangle_point t tri 2)
    p

let min_angle t tri =
  Predicates.min_angle_deg (triangle_point t tri 0) (triangle_point t tri 1)
    (triangle_point t tri 2)

let circumcenter t tri =
  Predicates.circumcenter (triangle_point t tri 0) (triangle_point t tri 1)
    (triangle_point t tri 2)

(* --- initial meshes -------------------------------------------------- *)

(* A triangle with far-away corners enclosing the working region; its
   three synthetic vertices are returned so callers can strip them
   later. *)
let bounding_triangle ?(span = 1.0e4) t =
  let f1 = add_point t (Point.make (-.span) (-.span)) in
  let f2 = add_point t (Point.make span (-.span)) in
  let f3 = add_point t (Point.make 0.0 span) in
  let tri = new_triangle t f1 f2 f3 in
  (tri, [ f1; f2; f3 ])

(* Remove every triangle touching one of the given (synthetic) vertex
   ids; surviving neighbors get border edges. Sequential; used between
   phases. *)
let strip_vertices t fake_ids =
  let fake = Hashtbl.create 4 in
  List.iter (fun id -> Hashtbl.add fake id ()) fake_ids;
  let is_fake tri = Array.exists (fun id -> Hashtbl.mem fake id) tri.v in
  List.iter
    (fun tri ->
      if tri.alive && is_fake tri then begin
        tri.alive <- false;
        Array.iter
          (function
            | Some u when u.alive && not (is_fake u) ->
                (* u's slot facing tri becomes a border. *)
                for i = 0 to 2 do
                  match u.nbr.(i) with
                  | Some w when w == tri -> u.nbr.(i) <- None
                  | _ -> ()
                done
            | _ -> ())
          tri.nbr
      end)
    !(t.registry)

(* --- validation (tests) ---------------------------------------------- *)

let check_consistency t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let alive = triangles t in
  List.iter
    (fun tri ->
      let pa = triangle_point t tri 0
      and pb = triangle_point t tri 1
      and pc = triangle_point t tri 2 in
      if Predicates.orient2d pa pb pc <= 0 then
        note "triangle %d not counter-clockwise" tri.tid;
      for i = 0 to 2 do
        let ea = tri.v.((i + 1) mod 3) and eb = tri.v.((i + 2) mod 3) in
        match tri.nbr.(i) with
        | None -> ()
        | Some u ->
            if not u.alive then note "triangle %d has dead neighbor %d" tri.tid u.tid;
            (* Neighbor must share the edge and point back. *)
            let shares = Array.exists (fun x -> x = ea) u.v && Array.exists (fun x -> x = eb) u.v in
            if not shares then note "triangles %d and %d disagree on shared edge" tri.tid u.tid;
            let back = Array.exists (function Some w -> w == tri | None -> false) u.nbr in
            if not back then note "neighbor link %d -> %d not symmetric" tri.tid u.tid
      done)
    alive;
  match !problems with [] -> Ok () | l -> Error (String.concat "; " l)

(* Count of internal edges violating the local Delaunay property
   (opposite vertex strictly inside circumcircle). Zero for a Delaunay
   triangulation; used in tests. *)
let delaunay_violations ?(exclude = fun _ -> false) t =
  let count = ref 0 in
  List.iter
    (fun tri ->
      if not (Array.exists exclude tri.v) then
        for i = 0 to 2 do
          match tri.nbr.(i) with
          | Some u when not (Array.exists exclude u.v) ->
              (* Opposite vertex of u across the shared edge. *)
              let ea = tri.v.((i + 1) mod 3) and eb = tri.v.((i + 2) mod 3) in
              let w = u.v.(facing_index u ea eb) in
              if circumcircle_contains t tri (point t w) then incr count
          | _ -> ()
        done)
    (triangles t);
  !count
