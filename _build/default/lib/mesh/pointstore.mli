(** Concurrently growable append-only point store.

    Refinement tasks allocate points from inside parallel commits; ids
    are dense ints usable as array keys. *)

type t

val create : ?capacity:int -> unit -> t
val count : t -> int

val add : t -> Geometry.Point.t -> int
(** Thread-safe append; returns the new point's id. *)

val get : t -> int -> Geometry.Point.t
(** Raises [Invalid_argument] for ids never allocated. *)

val add_all : t -> Geometry.Point.t array -> int array
