(* Descriptions of the paper's three evaluation machines (§4.3), as cost
   models for the discrete-event execution simulator.

   The reproduction container has one core, so scaling curves cannot be
   measured natively; instead, recorded schedules are replayed under
   these models. Parameters are order-of-magnitude hardware estimates —
   the figures care about *shape* (who wins, where the knees are), which
   is driven by structure (barriers, NUMA node crossings, serialization),
   not by the absolute constants. *)

type t = {
  name : string;
  numa_nodes : int;
  cores_per_node : int;
  ghz : float;
  work_cycles : float;  (* cycles per abstract work unit *)
  atomic_cycles : float;  (* uncontended local atomic operation *)
  remote_multiplier : float;  (* extra cost factor for cross-node access *)
  acquire_overhead_cycles : float;
      (* generic-runtime bookkeeping per mark operation (lock-table
         indirection, conflict logging); hand-written code avoids most
         of it *)
  reread_miss_cycles : float;
      (* per-location memory penalty when a deterministic commit phase
         re-touches data whose inspect-phase access was a whole window
         ago — the paper's §5.4 locality cost, quantified by Fig. 11 *)
  barrier_base_cycles : float;
  barrier_per_thread_cycles : float;
  task_overhead_cycles : float;  (* per-task scheduling cost (queues, marks) *)
}

let max_threads t = t.numa_nodes * t.cores_per_node

(* Threads fill NUMA nodes in order (as the paper describes for
   numa8x4); the number of nodes in use determines remote-access
   probability. *)
let nodes_used t ~threads = min t.numa_nodes (((threads - 1) / t.cores_per_node) + 1)

let remote_fraction t ~threads =
  let nodes = nodes_used t ~threads in
  if nodes <= 1 then 0.0 else float_of_int (nodes - 1) /. float_of_int nodes

(* m4x10: four ten-core Xeon E7-4860, 2.27 GHz. Glueless QPI: remote
   access moderately more expensive. *)
let m4x10 =
  {
    name = "m4x10";
    numa_nodes = 4;
    cores_per_node = 10;
    ghz = 2.27;
    work_cycles = 60.0;
    atomic_cycles = 40.0;
    remote_multiplier = 2.0;
    acquire_overhead_cycles = 30.0;
    reread_miss_cycles = 300.0;
    barrier_base_cycles = 2000.0;
    barrier_per_thread_cycles = 250.0;
    task_overhead_cycles = 150.0;
  }

(* m4x6: four six-core Xeon E7540, 2.0 GHz. *)
let m4x6 =
  {
    name = "m4x6";
    numa_nodes = 4;
    cores_per_node = 6;
    ghz = 2.0;
    work_cycles = 60.0;
    atomic_cycles = 40.0;
    remote_multiplier = 2.0;
    acquire_overhead_cycles = 30.0;
    reread_miss_cycles = 300.0;
    barrier_base_cycles = 2000.0;
    barrier_per_thread_cycles = 250.0;
    task_overhead_cycles = 150.0;
  }

(* numa8x4: SGI UV, eight four-core E7520 at 1.87 GHz, two processors
   per blade; inter-blade traffic crosses NUMALink — remote accesses are
   much more expensive, producing the paper's sharp drop past one blade
   (8 threads). *)
let numa8x4 =
  {
    name = "numa8x4";
    numa_nodes = 4;
    cores_per_node = 8;
    ghz = 1.87;
    work_cycles = 60.0;
    atomic_cycles = 45.0;
    remote_multiplier = 6.0;
    acquire_overhead_cycles = 30.0;
    reread_miss_cycles = 400.0;
    barrier_base_cycles = 4000.0;
    barrier_per_thread_cycles = 600.0;
    task_overhead_cycles = 150.0;
  }

let all = [ m4x10; m4x6; numa8x4 ]

let by_name name = List.find_opt (fun m -> m.name = name) all

(* The thread counts the paper sweeps on each machine. *)
let thread_sweep t =
  let rec go acc p = if p > max_threads t then List.rev acc else go (p :: acc) (p * 2) in
  let powers = go [] 1 in
  if List.mem (max_threads t) powers then powers else powers @ [ max_threads t ]
