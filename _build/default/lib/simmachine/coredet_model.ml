(* A model of CoreDet-style deterministic thread scheduling (DMP-O/B,
   Bergan et al. ASPLOS 2010), for the paper's §5.2 comparison.

   CoreDet executes threads in rounds of fixed instruction quanta. A
   thread runs its quantum in parallel mode, but a shared-memory atomic
   (or any potentially communicating operation) ends parallel mode
   early; the round then finishes with a serial phase in which threads
   take a deterministic token in turn to perform their communication.

   Consequence — and the point of Fig. 6: per round, each thread
   advances min(quantum, distance-to-next-atomic) work units. Programs
   with rare atomics (blackscholes) advance full quanta and scale;
   irregular programs whose tasks perform atomics every few hundred
   instructions advance only that far per round and then serialize,
   so threads buy almost nothing. *)

type config = {
  quantum_cycles : float;  (* parallel-mode quantum (~1000 instructions) *)
  token_cycles : float;  (* serialized commit per thread per round *)
  round_barrier_cycles : float;
}

let default_config = { quantum_cycles = 1000.0; token_cycles = 30.0; round_barrier_cycles = 600.0 }

(* [work] total work units, [atomics] shared atomic updates performed,
   spread through the work. All arithmetic is in cycles. *)
let time (m : Machine.t) ?(config = default_config) ~threads ~work ~atomics () =
  let work_cycles = float_of_int work *. m.Machine.work_cycles in
  let remote = Machine.remote_fraction m ~threads in
  let atomic_cycles =
    m.Machine.atomic_cycles *. (1.0 +. (remote *. (m.Machine.remote_multiplier -. 1.0)))
  in
  (* Mean distance between atomics, in cycles of useful work. *)
  let distance = if atomics = 0 then work_cycles else work_cycles /. float_of_int atomics in
  let advance = Float.min config.quantum_cycles distance in
  (* Rounds needed: total work split across threads advancing [advance]
     cycles per round each. *)
  let per_round_parallel = advance *. float_of_int threads in
  let rounds = Float.max 1.0 (work_cycles /. per_round_parallel) in
  (* Per round: parallel part + serial token phase: threads that ended
     on an atomic commit serially. *)
  let enders = if distance <= config.quantum_cycles then float_of_int threads else 0.0 in
  let serial = enders *. (config.token_cycles +. atomic_cycles) in
  let round_cycles = advance +. serial +. config.round_barrier_cycles in
  Exec_model.seconds m (rounds *. round_cycles)

(* Baseline (no CoreDet): plain parallel execution of the same work. *)
let baseline_time (m : Machine.t) ~threads ~work ~atomics () =
  let remote = Machine.remote_fraction m ~threads in
  let atomic_cycles =
    m.Machine.atomic_cycles *. (1.0 +. (remote *. (m.Machine.remote_multiplier -. 1.0)))
  in
  let cycles =
    (float_of_int work *. m.Machine.work_cycles /. float_of_int threads)
    +. (float_of_int atomics /. float_of_int threads *. atomic_cycles)
  in
  Exec_model.seconds m cycles

let slowdown m ?config ~threads ~work ~atomics () =
  time m ?config ~threads ~work ~atomics () /. baseline_time m ~threads ~work ~atomics ()
