(** Replay recorded schedules under machine cost models to obtain
    simulated execution times at arbitrary thread counts — the engine
    behind the reproduction's scaling figures (Figs. 6, 7, 9, 10). *)

val cycles_of_task :
  ?tuning:float -> ?miss:float -> Machine.t -> remote:float -> work:int -> acquires:int -> float
(** [tuning] scales the per-task scheduling overhead (1.0 = the generic
    Galois runtime; ~0.3 models PBBS's hand-optimized code paths).
    [miss] adds a per-acquire memory penalty (the deterministic
    schedulers' inspect/commit locality loss, §5.4). *)

val barrier_cycles : Machine.t -> threads:int -> float

val makespan : ?amplify:int -> threads:int -> float list -> float
(** Greedy list-scheduling makespan. [amplify] models the same schedule
    at K times the input size (balanced bound, clamped by the longest
    task). *)

val seconds : Machine.t -> float -> float

val time_flat :
  ?tuning:float ->
  ?amplify:int ->
  Machine.t ->
  threads:int ->
  Galois.Schedule.task_record list ->
  float

val time_rounds :
  ?tuning:float ->
  ?amplify:int ->
  Machine.t ->
  threads:int ->
  Galois.Schedule.task_record array list ->
  float

val time_rounds_pbbs :
  ?tuning:float ->
  ?amplify:int ->
  Machine.t ->
  threads:int ->
  Galois.Schedule.task_record array list ->
  float
(** Handwritten-DIG cost model (the PBBS variants, paper §5.3): bare
    reservations, hand-coded task resume, tuned constants. *)

val time_schedule :
  ?tuning:float -> ?amplify:int -> Machine.t -> threads:int -> Galois.Schedule.t -> float

val time_serial_baseline : ?amplify:int -> Machine.t -> Galois.Schedule.task_record list -> float
(** Best-sequential-implementation model: committed work only, no
    synchronization cost (the Fig. 8 baselines). *)

val time_kernel :
  ?amplify:int ->
  Machine.t ->
  threads:int ->
  task_costs:int array ->
  barriers:int ->
  atomics:int ->
  float
