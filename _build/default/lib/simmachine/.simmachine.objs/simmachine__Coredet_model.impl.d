lib/simmachine/coredet_model.ml: Exec_model Float Machine
