lib/simmachine/exec_model.mli: Galois Machine
