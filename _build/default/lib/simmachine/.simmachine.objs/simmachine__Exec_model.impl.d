lib/simmachine/exec_model.ml: Array Float Galois List Machine Option
