lib/simmachine/machine.mli:
