lib/simmachine/machine.ml: List
