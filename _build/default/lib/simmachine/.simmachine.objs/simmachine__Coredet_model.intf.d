lib/simmachine/coredet_model.mli: Machine
