(** Cost models of the paper's three evaluation machines (§4.3). *)

type t = {
  name : string;
  numa_nodes : int;
  cores_per_node : int;
  ghz : float;
  work_cycles : float;
  atomic_cycles : float;
  remote_multiplier : float;
  acquire_overhead_cycles : float;
  reread_miss_cycles : float;
  barrier_base_cycles : float;
  barrier_per_thread_cycles : float;
  task_overhead_cycles : float;
}

val max_threads : t -> int

val nodes_used : t -> threads:int -> int
(** NUMA nodes touched when threads fill nodes in order. *)

val remote_fraction : t -> threads:int -> float
(** Probability that a shared access crosses nodes. *)

val m4x10 : t
val m4x6 : t
val numa8x4 : t
val all : t list
val by_name : string -> t option

val thread_sweep : t -> int list
(** Powers of two up to the machine's core count (plus the max). *)
