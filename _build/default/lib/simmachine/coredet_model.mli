(** Model of CoreDet-style deterministic thread scheduling (quantum
    rounds with serialized communication), for the Fig. 6 comparison. *)

type config = {
  quantum_cycles : float;
  token_cycles : float;
  round_barrier_cycles : float;
}

val default_config : config

val time : Machine.t -> ?config:config -> threads:int -> work:int -> atomics:int -> unit -> float
(** Simulated CoreDet execution time of a workload with the given total
    work and atomic-update count. *)

val baseline_time : Machine.t -> threads:int -> work:int -> atomics:int -> unit -> float
(** The same workload under plain parallel execution. *)

val slowdown : Machine.t -> ?config:config -> threads:int -> work:int -> atomics:int -> unit -> float
