(* Discrete execution simulation: replay a recorded schedule under a
   machine cost model at a given thread count.

   Asynchronous (non-deterministic / serial) schedules are
   list-scheduled greedily: each task goes to the least-loaded worker;
   the simulated time is the makespan. Deterministic round schedules
   replay the paper's structure exactly: per round, an inspect phase and
   a commit phase, each a parallel makespan, separated by barriers — so
   the critical-path cost of rounds (§3.4) emerges naturally rather than
   being assumed.

   Sharing costs use the machine's NUMA remote fraction: every mark
   operation is a shared-memory access that crosses nodes with the
   probability induced by how many nodes the threads span. *)

let cycles_of_task ?(tuning = 1.0) ?(miss = 0.0) (m : Machine.t) ~remote ~work ~acquires =
  let atomic = m.atomic_cycles *. (1.0 +. (remote *. (m.remote_multiplier -. 1.0))) in
  (float_of_int work *. m.work_cycles)
  +. (float_of_int acquires *. (atomic +. (tuning *. m.acquire_overhead_cycles) +. miss))
  +. (tuning *. m.task_overhead_cycles)

let barrier_cycles (m : Machine.t) ~threads =
  m.barrier_base_cycles +. (m.barrier_per_thread_cycles *. float_of_int threads)

(* Greedy list scheduling; returns the makespan in cycles. The worker
   loads live in a binary min-heap so each assignment is O(log threads). *)
let makespan_exact ~threads costs =
  let heap = Array.make threads 0.0 in
  let sift_down i =
    let x = heap.(i) in
    let i = ref i in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let smallest = ref !i in
      if l < threads && heap.(l) < (if !smallest = !i then x else heap.(!smallest)) then
        smallest := l;
      if r < threads && heap.(r) < (if !smallest = !i then x else heap.(!smallest)) then
        smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- x;
        i := !smallest
      end
    done
  in
  List.iter
    (fun c ->
      heap.(0) <- heap.(0) +. c;
      sift_down 0)
    costs;
  Array.fold_left Float.max 0.0 heap

(* [amplify] models running the same schedule structure at K times the
   input size: each phase holds K times the tasks. Replication smooths
   load imbalance, so the amplified makespan is the balanced bound
   clamped below by the longest single task. The figures use this to
   evaluate scaling at the paper's input scale without materializing
   10M-task recordings. *)
let makespan ?(amplify = 1) ~threads costs =
  if amplify <= 1 then makespan_exact ~threads costs
  else begin
    let total = List.fold_left ( +. ) 0.0 costs in
    let longest = List.fold_left Float.max 0.0 costs in
    Float.max longest (float_of_int amplify *. total /. float_of_int threads)
  end

let seconds (m : Machine.t) cycles = cycles /. (m.ghz *. 1e9)

(* Asynchronous schedule: tasks (including aborted attempts, whose work
   was also burned) flow through the workers. *)
let time_flat ?tuning ?amplify (m : Machine.t) ~threads records =
  let remote = Machine.remote_fraction m ~threads in
  let costs =
    List.map
      (fun r ->
        cycles_of_task ?tuning m ~remote
          ~work:(r.Galois.Schedule.inspect_work + r.Galois.Schedule.commit_work)
          ~acquires:r.Galois.Schedule.acquires)
      records
  in
  seconds m (makespan ?amplify ~threads costs)

(* Deterministic rounds: inspect-phase makespan + barrier + commit-phase
   makespan + barrier, per round. The deterministic scheduler touches
   every mark twice more than the speculative one (mark, verify, clear),
   and pays the window glue; fold that into the per-phase costs. *)
let time_rounds ?tuning ?amplify (m : Machine.t) ~threads rounds =
  let remote = Machine.remote_fraction m ~threads in
  let barrier = barrier_cycles m ~threads in
  let total = ref 0.0 in
  List.iter
    (fun round ->
      let inspect_costs =
        Array.to_list
          (Array.map
             (fun r ->
               cycles_of_task ?tuning m ~remote ~work:r.Galois.Schedule.inspect_work
                 ~acquires:r.Galois.Schedule.acquires)
             round)
      in
      let commit_costs =
        Array.to_list
          (Array.map
             (fun r ->
               if r.Galois.Schedule.committed then
                 (* verify + clear, plus the §5.4 locality cost: the
                    neighborhood was last touched a whole window ago *)
                 cycles_of_task ?tuning ~miss:m.Machine.reread_miss_cycles m ~remote
                   ~work:r.Galois.Schedule.commit_work ~acquires:r.Galois.Schedule.acquires
               else
                 (* failed selection still clears its marks *)
                 cycles_of_task ?tuning m ~remote ~work:0 ~acquires:r.Galois.Schedule.acquires)
             round)
      in
      total :=
        !total +. makespan ?amplify ~threads inspect_costs +. barrier
        +. makespan ?amplify ~threads commit_costs +. barrier)
    rounds;
  seconds m !total

(* PBBS = handwritten DIG scheduling (paper §5.3): same round
   structure, but reservations are bare min-CAS writes, the commit phase
   resumes the task instead of re-executing its prefix
   (application-specific continuations), and the per-task scheduling
   constants are hand-tuned ([tuning], default 0.3). *)
let time_rounds_pbbs ?(tuning = 0.3) ?amplify (m : Machine.t) ~threads rounds =
  let remote = Machine.remote_fraction m ~threads in
  let barrier = barrier_cycles m ~threads in
  let total = ref 0.0 in
  List.iter
    (fun round ->
      let reserve_costs =
        Array.to_list
          (Array.map
             (fun r ->
               cycles_of_task ~tuning m ~remote ~work:r.Galois.Schedule.inspect_work
                 ~acquires:r.Galois.Schedule.acquires)
             round)
      in
      let commit_costs =
        Array.to_list
          (Array.map
             (fun r ->
               if r.Galois.Schedule.committed then
                 (* Hand-coded resume: only the work past the failsafe
                    point runs at commit — but the locality cost of the
                    inspect/commit separation applies to PBBS too
                    (Fig. 11). *)
                 cycles_of_task ~tuning ~miss:(0.6 *. m.Machine.reread_miss_cycles) m ~remote
                   ~work:(max 0 (r.Galois.Schedule.commit_work - r.Galois.Schedule.inspect_work))
                   ~acquires:r.Galois.Schedule.acquires
               else cycles_of_task ~tuning m ~remote ~work:0 ~acquires:r.Galois.Schedule.acquires)
             round)
      in
      total :=
        !total +. makespan ?amplify ~threads reserve_costs +. barrier
        +. makespan ?amplify ~threads commit_costs +. barrier)
    rounds;
  seconds m !total

let time_schedule ?tuning ?amplify (m : Machine.t) ~threads schedule =
  match schedule with
  | Galois.Schedule.Flat records -> time_flat ?tuning ?amplify m ~threads records
  | Galois.Schedule.Rounds rounds -> time_rounds ?tuning ?amplify m ~threads rounds

(* A hand-optimized sequential baseline (Fig. 8's role): the algorithmic
   work without any synchronization — no mark operations, minimal
   per-task cost. *)
let time_serial_baseline ?(amplify = 1) (m : Machine.t) records =
  let cycles =
    List.fold_left
      (fun acc r ->
        if r.Galois.Schedule.committed then
          acc
          +. (float_of_int (r.Galois.Schedule.inspect_work + r.Galois.Schedule.commit_work)
             *. m.work_cycles)
          +. (0.25 *. m.task_overhead_cycles)
        else acc)
      0.0 records
  in
  seconds m (float_of_int amplify *. cycles)

(* Data-parallel kernel (PARSEC skeletons): per barrier phase, work is
   list-scheduled; atomics are negligible by construction but included. *)
let time_kernel ?amplify (m : Machine.t) ~threads ~task_costs ~barriers ~atomics =
  let remote = Machine.remote_fraction m ~threads in
  let costs =
    List.map
      (fun w -> cycles_of_task m ~remote ~work:w ~acquires:0)
      (Array.to_list task_costs)
  in
  let amp = float_of_int (Option.value ~default:1 amplify) in
  let atomic =
    amp *. float_of_int atomics *. m.atomic_cycles
    *. (1.0 +. (remote *. (m.remote_multiplier -. 1.0)))
    /. float_of_int threads
  in
  let cycles =
    makespan ?amplify ~threads costs
    +. (float_of_int barriers *. barrier_cycles m ~threads)
    +. atomic
  in
  seconds m cycles
