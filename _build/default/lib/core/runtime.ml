(* The user-facing runtime entry point.

   A Galois program is an operator plus an initial task pool; everything
   about *how* it executes — serially, speculatively in parallel, or
   deterministically — is a run-time policy. This is the paper's
   on-demand determinism: the application source never changes. *)

type ('item, 'state) operator = ('item, 'state) Context.t -> 'item -> unit

type report = { stats : Stats.t; schedule : Schedule.t option }

let with_pool ?pool threads f =
  match pool with
  | Some p ->
      if Parallel.Domain_pool.size p < threads then
        invalid_arg "Runtime.for_each: pool smaller than policy thread count";
      f p
  | None -> Parallel.Domain_pool.with_pool threads f

let for_each ?(policy = Policy.Serial) ?pool ?(record = false) ?static_id ~operator items =
  match policy with
  | Policy.Serial ->
      let stats, schedule = Serial_sched.run ~record ~operator items in
      { stats; schedule }
  | Policy.Nondet { threads } ->
      with_pool ?pool threads (fun pool ->
          let stats, schedule = Nondet_sched.run ~record ~threads ~pool ~operator items in
          { stats; schedule })
  | Policy.Det { threads; options } ->
      with_pool ?pool threads (fun pool ->
          let stats, schedule =
            Det_sched.run ~record ~threads ~pool ~options ~static_id ~operator items
          in
          { stats; schedule })
