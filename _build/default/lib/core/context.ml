(* The operator execution context (paper §2, §3.2).

   Application operators receive a context and use it to acquire abstract
   locations, declare the failsafe point, create new tasks and stash
   continuation state. The same operator code runs under all three
   execution phases; the phase changes only what [acquire] and
   [failsafe] do:

   - [Direct]    non-deterministic or serial execution (Fig. 1b):
                 acquire = exclusive claim, conflict raises.
   - [Inspect]   deterministic inspection (Fig. 2 line 14): acquire =
                 writeMarksMax; the failsafe point aborts the prefix.
   - [Commit]    deterministic select-and-execute (Fig. 3): acquire =
                 verify the mark still carries our id. *)

exception Conflict
(* Raised to the scheduler when a task loses a location. *)

exception Not_cautious
(* The operator acquired a location after its failsafe point, violating
   the cautiousness contract (§2). *)

exception Failsafe_reached
(* Internal: terminates inspect-phase execution at the failsafe point. *)

type phase = Direct | Inspect | Commit

type ('item, 'state) t = {
  mutable phase : phase;
  mutable task_id : int;
  mutable stats : Stats.worker;
  mutable neighborhood : Lock.t list;  (* reverse acquisition order *)
  mutable neighborhood_size : int;
  mutable past_failsafe : bool;
  mutable saved : 'state option;
  mutable pushed : 'item list;  (* reverse push order *)
  mutable pushed_count : int;
  mutable work_units : int;
  mutable on_defeat : int -> unit;
}

let no_defeat (_ : int) = ()

let create () =
  {
    phase = Direct;
    task_id = 1;
    stats = Stats.make_worker ();
    neighborhood = [];
    neighborhood_size = 0;
    past_failsafe = false;
    saved = None;
    pushed = [];
    pushed_count = 0;
    work_units = 0;
    on_defeat = no_defeat;
  }

let reset t ~phase ~task_id ~saved =
  t.phase <- phase;
  t.task_id <- task_id;
  t.neighborhood <- [];
  t.neighborhood_size <- 0;
  t.past_failsafe <- false;
  t.saved <- saved;
  t.pushed <- [];
  t.pushed_count <- 0;
  t.work_units <- 0;
  t.on_defeat <- no_defeat

let acquire t lock =
  if t.past_failsafe then raise Not_cautious;
  t.stats.acquires <- t.stats.acquires + 1;
  match t.phase with
  | Direct ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      if Lock.try_claim lock t.task_id then begin
        t.neighborhood <- lock :: t.neighborhood;
        t.neighborhood_size <- t.neighborhood_size + 1
      end
      else raise Conflict
  | Inspect ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      t.neighborhood <- lock :: t.neighborhood;
      t.neighborhood_size <- t.neighborhood_size + 1;
      (match Lock.claim_max lock t.task_id with
      | `Won 0 -> ()
      | `Won displaced -> t.on_defeat displaced
      | `Lost ->
          (* A higher-priority task already holds the mark, so it cannot
             know about us: flag ourselves instead (§3.3 protocol). *)
          t.on_defeat t.task_id)
  | Commit ->
      (* The inspect phase of this very round acquired the same prefix,
         so the mark must still be ours; anything else is a scheduler
         invariant violation. *)
      if not (Lock.holds lock t.task_id) then raise Conflict

(* Integrate a location created by this task (e.g. a new mesh triangle).
   Under speculative execution the fresh lock is claimed immediately so
   concurrent tasks cannot touch the new object before we finish; it is
   released with the rest of the neighborhood. Deterministic commits need
   nothing: other committed tasks have disjoint, already-fixed
   neighborhoods, and later rounds start after the marks clear. *)
let register_new t lock =
  match t.phase with
  | Direct ->
      t.stats.atomic_updates <- t.stats.atomic_updates + 1;
      if not (Lock.try_claim lock t.task_id) then
        invalid_arg "Context.register_new: lock is not fresh";
      t.neighborhood <- lock :: t.neighborhood;
      t.neighborhood_size <- t.neighborhood_size + 1
  | Inspect ->
      (* Object creation is a write; writes may not precede the failsafe
         point. *)
      raise Not_cautious
  | Commit -> ()

let failsafe t =
  if not t.past_failsafe then begin
    t.past_failsafe <- true;
    match t.phase with Inspect -> raise Failsafe_reached | Direct | Commit -> ()
  end

let push t item =
  t.pushed <- item :: t.pushed;
  t.pushed_count <- t.pushed_count + 1

let save t state = t.saved <- Some state

let saved t = t.saved

let work t units = t.work_units <- t.work_units + units

let phase t = t.phase

let task_id t = t.task_id

(* Internal accessors for schedulers. *)

let neighborhood_rev t = t.neighborhood

let neighborhood_array t =
  let n = t.neighborhood_size in
  match t.neighborhood with
  | [] -> [||]
  | first :: _ ->
      let arr = Array.make n first in
      let rec fill i = function
        | [] -> ()
        | l :: rest ->
            arr.(i) <- l;
            fill (i - 1) rest
      in
      fill (n - 1) t.neighborhood;
      arr

let neighborhood_count t = t.neighborhood_size

let pushed_rev t = t.pushed
let pushed_count t = t.pushed_count
let work_units t = t.work_units
let reached_failsafe t = t.past_failsafe
let set_on_defeat t f = t.on_defeat <- f
let set_stats t stats = t.stats <- stats

let release_all t =
  List.iter (fun l -> Lock.release l t.task_id) t.neighborhood
