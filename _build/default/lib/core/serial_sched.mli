(** Sequential in-order scheduler (reference semantics and single-thread
    baseline). *)

val run :
  ?record:bool ->
  operator:(('item, 'state) Context.t -> 'item -> unit) ->
  'item array ->
  Stats.t * Schedule.t option
