(** Shared task pool with termination detection, used by the
    non-deterministic speculative scheduler. *)

type 'a t

val create : 'a array -> 'a t

val take : 'a t -> 'a option
(** Blocks until a task is available ([Some]) or every task has completed
    ([None], the termination signal for the calling worker). *)

val push_new : 'a t -> 'a list -> unit
(** Add freshly created tasks (increases the pending count). *)

val requeue : 'a t -> 'a -> unit
(** Return an aborted task for retry (pending count unchanged). *)

val complete : 'a t -> unit
(** Mark one task as successfully finished. *)
