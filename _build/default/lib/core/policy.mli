(** Execution policies — the on-demand determinism switch.

    The same application code runs under any policy; programs select one
    at run time (typically from the command line), realizing the paper's
    on-demand determinism. *)

type det_options = {
  target_ratio : float;
      (** Adaptive-window commit-ratio threshold (default 0.9). *)
  initial_window : int option;
      (** First-round window; [None] (default) derives it from the task
          count, keeping it machine-independent. *)
  spread : int;  (** Locality-spread piles; 1 disables (default 16). *)
  continuation : bool;  (** §3.3 continuation optimization (default on). *)
  validate : bool;
      (** Debug: re-verify neighborhood marks at commit in addition to
          the O(1) defeat flags. *)
}

val default_det : det_options

type t =
  | Serial  (** in-order sequential execution *)
  | Nondet of { threads : int }  (** speculative scheduling (Fig. 1b) *)
  | Det of { threads : int; options : det_options }
      (** deterministic DIG scheduling (Fig. 2) *)

val serial : t
val nondet : int -> t
val det : ?options:det_options -> int -> t

val threads : t -> int

val is_deterministic : t -> bool
(** True for [Serial] and [Det]: the output is a function of the input
    only, not of timing or thread count. *)

val of_string : string -> (t, string) result
(** Parses ["serial"], ["nondet:8"], ["det:8"] (thread count optional). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
