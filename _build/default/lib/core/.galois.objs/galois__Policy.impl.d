lib/core/policy.ml: Fmt Printf Result String
