lib/core/lock.mli:
