lib/core/nondet_sched.mli: Context Parallel Schedule Stats
