lib/core/workset.ml: Array Condition List Mutex Queue
