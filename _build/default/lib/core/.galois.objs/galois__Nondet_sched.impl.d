lib/core/nondet_sched.ml: Array Context Float List Lock Parallel Schedule Stats Unix Workset
