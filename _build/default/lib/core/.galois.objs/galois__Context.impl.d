lib/core/context.ml: Array List Lock Stats
