lib/core/runtime.ml: Context Det_sched Nondet_sched Parallel Policy Schedule Serial_sched Stats
