lib/core/det_sched.ml: Array Atomic Context Hashtbl List Lock Parallel Policy Schedule Stats Unix
