lib/core/serial_sched.mli: Context Schedule Stats
