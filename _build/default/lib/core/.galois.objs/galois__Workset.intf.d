lib/core/workset.mli:
