lib/core/stats.ml: Array Fmt
