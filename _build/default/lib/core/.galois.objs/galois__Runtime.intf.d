lib/core/runtime.mli: Context Parallel Policy Schedule Stats
