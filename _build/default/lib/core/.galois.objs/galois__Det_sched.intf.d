lib/core/det_sched.mli: Context Parallel Policy Schedule Stats
