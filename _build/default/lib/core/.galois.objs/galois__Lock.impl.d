lib/core/lock.ml: Array Atomic
