lib/core/schedule.mli:
