lib/core/serial_sched.ml: Array Context List Lock Queue Schedule Stats Unix
