lib/core/context.mli: Lock Stats
