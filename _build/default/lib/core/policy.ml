(* Execution policies: the on-demand determinism switch.

   A program written against [Runtime.for_each] never changes; the policy
   (serial, speculative non-deterministic, or deterministic DIG
   scheduling) is chosen at run time, e.g. from the command line — the
   paper's "on-demand" requirement (§1). *)

type det_options = {
  target_ratio : float;
      (* Commit-ratio threshold of the adaptive window (§3.2). Below it
         the window shrinks proportionally; at or above it the window
         doubles. A fixed constant: not machine-tuned, hence
         parameterless. *)
  initial_window : int option;
      (* Window of the first round. [None] derives it from the task
         count — deterministic, machine-independent. *)
  spread : int;
      (* Locality-spread piles (§3.3): iteration order is dealt into
         [spread] strided piles so neighboring (likely conflicting) tasks
         land in different rounds. [1] disables. *)
  continuation : bool;
      (* §3.3 continuation optimization: keep inspect-phase state for the
         commit phase instead of re-executing the task prefix. *)
  validate : bool;
      (* Debug: re-verify all neighborhood marks at commit instead of
         trusting the O(1) defeat flags. The two must agree; tests check
         this. *)
}

let default_det =
  { target_ratio = 0.9; initial_window = None; spread = 16; continuation = true; validate = false }

type t =
  | Serial
  | Nondet of { threads : int }
  | Det of { threads : int; options : det_options }

let serial = Serial
let nondet threads = Nondet { threads }
let det ?(options = default_det) threads = Det { threads; options }

let threads = function Serial -> 1 | Nondet { threads } | Det { threads; _ } -> threads

let is_deterministic = function Serial | Det _ -> true | Nondet _ -> false

let of_string s =
  let fail () =
    Error (Printf.sprintf "bad policy %S (expected serial | nondet[:T] | det[:T])" s)
  in
  let parse_threads rest = match int_of_string_opt rest with
    | Some t when t > 0 -> Ok t
    | _ -> fail ()
  in
  match String.split_on_char ':' s with
  | [ "serial" ] -> Ok Serial
  | [ "nondet" ] -> Ok (Nondet { threads = 1 })
  | [ "det" ] -> Ok (Det { threads = 1; options = default_det })
  | [ "nondet"; t ] -> Result.map (fun threads -> Nondet { threads }) (parse_threads t)
  | [ "det"; t ] ->
      Result.map (fun threads -> Det { threads; options = default_det }) (parse_threads t)
  | _ -> fail ()

let pp ppf = function
  | Serial -> Fmt.string ppf "serial"
  | Nondet { threads } -> Fmt.pf ppf "nondet:%d" threads
  | Det { threads; _ } -> Fmt.pf ppf "det:%d" threads

let to_string t = Fmt.str "%a" pp t
