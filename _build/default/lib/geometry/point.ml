type t = { x : float; y : float }

let make x y = { x; y }
let x t = t.x
let y t = t.y

let equal a b = a.x = b.x && a.y = b.y
let compare a b = if a.x <> b.x then Float.compare a.x b.x else Float.compare a.y b.y

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let scale s a = { x = s *. a.x; y = s *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let cross a b = (a.x *. b.y) -. (a.y *. b.x)
let norm2 a = dot a a
let dist2 a b = norm2 (sub a b)
let dist a b = sqrt (dist2 a b)
let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let pp ppf t = Format.fprintf ppf "(%g, %g)" t.x t.y

(* [n] points uniform in the unit square — the paper's dt/dmr input
   distribution. Deterministic in the seed. *)
let random_unit_square ?(seed = 1) n =
  let g = Parallel.Splitmix.create seed in
  Array.init n (fun _ ->
      let x = Parallel.Splitmix.float g in
      let y = Parallel.Splitmix.float g in
      { x; y })
