(** 2D points. *)

type t = { x : float; y : float }

val make : float -> float -> t
val x : t -> float
val y : t -> float
val equal : t -> t -> bool
val compare : t -> t -> int
val sub : t -> t -> t
val add : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val cross : t -> t -> float
val norm2 : t -> float
val dist2 : t -> t -> float
val dist : t -> t -> float
val midpoint : t -> t -> t
val pp : Format.formatter -> t -> unit

val random_unit_square : ?seed:int -> int -> t array
(** Deterministic uniform points in the unit square (paper §4.2). *)
