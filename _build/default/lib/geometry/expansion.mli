(** Exact floating-point expansion arithmetic (Shewchuk-style), the exact
    fallback of the robust geometric predicates. *)

type t = float array

val two_sum : float -> float -> float * float
(** Error-free sum: [(x, e)] with [x = fl(a+b)] and [a + b = x + e]
    exactly. *)

val two_prod : float -> float -> float * float
(** Error-free product via fused multiply-add. *)

val of_float : float -> t
val grow : t -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : t -> float -> t
val mul : t -> t -> t

val sign : t -> int
(** Exact sign of the represented real: -1, 0 or 1. *)

val approx : t -> float
