lib/geometry/predicates.ml: Expansion Float Point
