lib/geometry/expansion.ml: Array Float
