lib/geometry/point.ml: Array Float Format Parallel
