lib/geometry/expansion.mli:
