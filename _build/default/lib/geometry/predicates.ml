(* Robust geometric predicates: a floating-point filter in the style of
   Shewchuk's adaptive predicates, falling back to exact expansion
   arithmetic when the filter cannot certify the sign. Delaunay
   triangulation and refinement depend on these signs being exact;
   filtered-exact evaluation also makes them deterministic. *)

let epsilon = ldexp 1.0 (-53)
let ccw_errbound_a = (3.0 +. (16.0 *. epsilon)) *. epsilon
let icc_errbound_a = (10.0 +. (96.0 *. epsilon)) *. epsilon

(* Exact expansion for the difference of two floats. *)
let ediff a b =
  let hi, lo = Expansion.two_sum a (-.b) in
  [| lo; hi |]

let orient2d_exact ax ay bx by cx cy =
  let acx = ediff ax cx and acy = ediff ay cy in
  let bcx = ediff bx cx and bcy = ediff by cy in
  let left = Expansion.mul acx bcy and right = Expansion.mul acy bcx in
  Expansion.sign (Expansion.sub left right)

(* Sign of the orientation determinant: > 0 when (a, b, c) makes a left
   (counter-clockwise) turn. *)
let orient2d (a : Point.t) (b : Point.t) (c : Point.t) =
  let ax = a.Point.x and ay = a.Point.y in
  let bx = b.Point.x and by = b.Point.y in
  let cx = c.Point.x and cy = c.Point.y in
  let detleft = (ax -. cx) *. (by -. cy) in
  let detright = (ay -. cy) *. (bx -. cx) in
  let det = detleft -. detright in
  let detsum =
    if detleft > 0.0 then if detright <= 0.0 then nan else detleft +. detright
    else if detleft < 0.0 then
      if detright >= 0.0 then nan else -.detleft -. detright
    else nan
  in
  if Float.is_nan detsum then compare det 0.0
  else if Float.abs det >= ccw_errbound_a *. detsum then compare det 0.0
  else orient2d_exact ax ay bx by cx cy

let det3_exact a b c d e f g h i =
  (* a(ei - fh) - b(di - fg) + c(dh - eg), all entries expansions. *)
  let open Expansion in
  let minor x y z w = sub (mul x y) (mul z w) in
  let t1 = mul a (minor e i f h) in
  let t2 = mul b (minor d i f g) in
  let t3 = mul c (minor d h e g) in
  sign (add (sub t1 t2) t3)

let incircle_exact ax ay bx by cx cy dx dy =
  let adx = ediff ax dx and ady = ediff ay dy in
  let bdx = ediff bx dx and bdy = ediff by dy in
  let cdx = ediff cx dx and cdy = ediff cy dy in
  let lift x y = Expansion.add (Expansion.mul x x) (Expansion.mul y y) in
  det3_exact adx ady (lift adx ady) bdx bdy (lift bdx bdy) cdx cdy (lift cdx cdy)

(* Sign of the in-circle determinant: > 0 when d lies strictly inside the
   circumcircle of (a, b, c), which must be in counter-clockwise
   order. *)
let incircle (a : Point.t) (b : Point.t) (c : Point.t) (d : Point.t) =
  let ax = a.Point.x and ay = a.Point.y in
  let bx = b.Point.x and by = b.Point.y in
  let cx = c.Point.x and cy = c.Point.y in
  let dx = d.Point.x and dy = d.Point.y in
  let adx = ax -. dx and ady = ay -. dy in
  let bdx = bx -. dx and bdy = by -. dy in
  let cdx = cx -. dx and cdy = cy -. dy in
  let bdxcdy = bdx *. cdy and cdxbdy = cdx *. bdy in
  let alift = (adx *. adx) +. (ady *. ady) in
  let cdxady = cdx *. ady and adxcdy = adx *. cdy in
  let blift = (bdx *. bdx) +. (bdy *. bdy) in
  let adxbdy = adx *. bdy and bdxady = bdx *. ady in
  let clift = (cdx *. cdx) +. (cdy *. cdy) in
  let det =
    (alift *. (bdxcdy -. cdxbdy))
    +. (blift *. (cdxady -. adxcdy))
    +. (clift *. (adxbdy -. bdxady))
  in
  let permanent =
    ((Float.abs bdxcdy +. Float.abs cdxbdy) *. alift)
    +. ((Float.abs cdxady +. Float.abs adxcdy) *. blift)
    +. ((Float.abs adxbdy +. Float.abs bdxady) *. clift)
  in
  let errbound = icc_errbound_a *. permanent in
  if det > errbound || -.det > errbound then compare det 0.0
  else incircle_exact ax ay bx by cx cy dx dy

(* Circumcenter of a non-degenerate triangle; plain floating point (used
   for refinement point placement, where exactness is not required). *)
let circumcenter (a : Point.t) (b : Point.t) (c : Point.t) =
  let abx = b.Point.x -. a.Point.x and aby = b.Point.y -. a.Point.y in
  let acx = c.Point.x -. a.Point.x and acy = c.Point.y -. a.Point.y in
  let d = 2.0 *. ((abx *. acy) -. (aby *. acx)) in
  if d = 0.0 then None
  else begin
    let ab2 = (abx *. abx) +. (aby *. aby) in
    let ac2 = (acx *. acx) +. (acy *. acy) in
    let ux = ((acy *. ab2) -. (aby *. ac2)) /. d in
    let uy = ((abx *. ac2) -. (acx *. ab2)) /. d in
    Some (Point.make (a.Point.x +. ux) (a.Point.y +. uy))
  end

(* Is [p] inside (or on the boundary of) triangle (a, b, c) in CCW
   order? *)
let in_triangle a b c p =
  orient2d a b p >= 0 && orient2d b c p >= 0 && orient2d c a p >= 0

(* Minimum angle of a triangle, in degrees; the refinement quality
   test. *)
let min_angle_deg a b c =
  let angle u v w =
    (* angle at v *)
    let d1 = Point.sub u v and d2 = Point.sub w v in
    let cosv = Point.dot d1 d2 /. (Point.dist u v *. Point.dist w v) in
    acos (Float.max (-1.0) (Float.min 1.0 cosv)) *. 180.0 /. Float.pi
  in
  Float.min (angle b a c) (Float.min (angle a b c) (angle a c b))
