(** Robust geometric predicates: floating-point filters with exact
    expansion fallback.

    Exact signs make the triangulation algorithms correct on degenerate
    inputs and deterministic everywhere. *)

val orient2d : Point.t -> Point.t -> Point.t -> int
(** [> 0] when (a, b, c) turn counter-clockwise, [0] when collinear,
    [< 0] clockwise. Exact. *)

val incircle : Point.t -> Point.t -> Point.t -> Point.t -> int
(** [incircle a b c d > 0] when [d] is strictly inside the circumcircle
    of CCW triangle (a, b, c). Exact. *)

val circumcenter : Point.t -> Point.t -> Point.t -> Point.t option
(** [None] for degenerate (collinear) triangles. Approximate (used only
    for point placement). *)

val in_triangle : Point.t -> Point.t -> Point.t -> Point.t -> bool
(** Containment in a CCW triangle, boundary inclusive. Exact. *)

val min_angle_deg : Point.t -> Point.t -> Point.t -> float
(** Smallest interior angle in degrees (refinement quality measure). *)
