(* Exact floating-point expansion arithmetic (Shewchuk 1997).

   An expansion represents an exact real as a sum of non-overlapping
   floats in increasing magnitude order. We implement the handful of
   primitives the robust predicates need; this favors clarity over
   Shewchuk's hand-tuned special cases — the exact path only runs when
   the floating-point filter fails, which is rare. *)

(* Error-free transforms. [two_sum] is Knuth's; [two_prod] uses the
   correctly rounded fused multiply-add. *)
let two_sum a b =
  let x = a +. b in
  let bv = x -. a in
  let av = x -. bv in
  let br = b -. bv in
  let ar = a -. av in
  (x, ar +. br)

let two_prod a b =
  let x = a *. b in
  let y = Float.fma a b (-.x) in
  (x, y)

type t = float array
(* components in increasing magnitude order; zeros allowed *)

let of_float f : t = [| f |]

(* Shewchuk's GROW-EXPANSION: add one float to an expansion. *)
let grow (e : t) b : t =
  let n = Array.length e in
  let h = Array.make (n + 1) 0.0 in
  let q = ref b in
  for i = 0 to n - 1 do
    let sum, err = two_sum !q e.(i) in
    h.(i) <- err;
    q := sum
  done;
  h.(n) <- !q;
  h

(* EXPANSION-SUM: add two expansions. *)
let add (e : t) (f : t) : t = Array.fold_left grow e f

(* SCALE-EXPANSION: multiply an expansion by a float. *)
let scale (e : t) b : t =
  let n = Array.length e in
  if n = 0 then [||]
  else begin
    let h = Array.make (2 * n) 0.0 in
    let q, err = two_prod e.(0) b in
    h.(0) <- err;
    let q = ref q in
    for i = 1 to n - 1 do
      let t1, t0 = two_prod e.(i) b in
      let s, e0 = two_sum !q t0 in
      h.((2 * i) - 1) <- e0;
      let s', e1 = two_sum s t1 in
      h.(2 * i) <- e1;
      q := s'
    done;
    h.((2 * n) - 1) <- !q;
    h
  end

let neg (e : t) : t = Array.map (fun x -> -.x) e

let sub e f = add e (neg f)

let mul (e : t) (f : t) : t =
  (* Distribute: sum of scale e fi. Quadratic blowup is fine at predicate
     sizes. *)
  Array.fold_left (fun acc fi -> add acc (scale e fi)) [| 0.0 |] f

(* The components are non-overlapping with the largest last, so the sign
   of the expansion is the sign of its last nonzero component. *)
let sign (e : t) =
  let s = ref 0 in
  Array.iter (fun x -> if x > 0.0 then s := 1 else if x < 0.0 then s := -1) e;
  !s

let approx (e : t) = Array.fold_left ( +. ) 0.0 e
