(** Deterministic reservations (Blelloch et al.) — the PBBS
    determinism-by-construction framework used for the paper's
    handwritten deterministic baselines. *)

module Cell : sig
  type t

  val create : unit -> t
  val create_array : int -> t array

  val reserve : t -> int -> unit
  (** Priority-min write; deterministic regardless of timing. *)

  val holds : t -> int -> bool
  val release : t -> int -> unit
  val reset : t -> unit
end

type stats = { rounds : int; commits : int; retries : int; time_s : float }

val speculative_for :
  ?granularity:int ->
  pool:Parallel.Domain_pool.t ->
  n:int ->
  reserve:(int -> unit) ->
  commit:(int -> bool) ->
  unit ->
  stats
(** Run items [0..n-1] with sequential-priority semantics: rounds of
    [granularity]-sized prefixes; [reserve i] makes min-reservations,
    [commit i] returns true when the item succeeded (false = retry next
    round). [granularity] is PBBS's tunable round-size parameter. *)

val speculative_for_dynamic :
  ?granularity:int ->
  pool:Parallel.Domain_pool.t ->
  initial:'a array ->
  reserve:(int -> 'a -> unit) ->
  commit:(int -> 'a -> 'a list option) ->
  unit ->
  stats
(** Like {!speculative_for} but items carry data and a successful commit
    ([Some children]) may create new items, appended behind all pending
    work with deterministic priorities. [None] retries the item. *)
