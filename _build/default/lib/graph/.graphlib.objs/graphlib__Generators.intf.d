lib/graph/generators.mli: Csr
