lib/graph/csr.mli:
