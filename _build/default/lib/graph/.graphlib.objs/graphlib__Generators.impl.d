lib/graph/generators.ml: Array Csr List Parallel
