lib/graph/graph_io.mli: Csr
