lib/graph/graph_io.ml: Array Csr Fun List Parallel Printf String
