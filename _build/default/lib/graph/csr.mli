(** Immutable compressed-sparse-row directed graphs.

    Node ids are [0..nodes-1]. Edge indices are stable, so per-edge
    payloads (capacities, flows) live in plain arrays keyed by edge
    index. *)

type t

val nodes : t -> int
val edges : t -> int

val of_adjacency : int list array -> t
(** Build from out-adjacency lists; list order becomes edge order. *)

val of_edges : n:int -> (int * int) array -> t
(** Build from an edge array. Edge order is preserved per source node.
    Raises [Invalid_argument] on out-of-range endpoints. *)

val out_degree : t -> int -> int

val edge_range : t -> int -> int * int
(** [edge_range g u] is the half-open interval of edge indices leaving
    [u]. *)

val edge_target : t -> int -> int

val iter_succ : t -> int -> (int -> unit) -> unit
val iter_succ_edges : t -> int -> (int -> int -> unit) -> unit
val fold_succ : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val exists_succ : t -> int -> (int -> bool) -> bool

val all_edges : t -> (int * int) array
val transpose : t -> t

val symmetrize : t -> t
(** Undirected, simple version: both directions present, no self-loops,
    no duplicate edges, sorted adjacency. *)

val is_symmetric : t -> bool
