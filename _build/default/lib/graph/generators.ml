(* Synthetic graph generators matching the paper's inputs (§4.2):
   uniform k-out random graphs for bfs/mis/pfp, plus grid and R-MAT
   graphs for broader testing. All are deterministic in the seed. *)

let kout ?(seed = 1) ~n ~k () =
  if n <= 0 then invalid_arg "Generators.kout: n must be positive";
  if k < 0 || (k >= n && n > 1) then invalid_arg "Generators.kout: need 0 <= k < n";
  let g = Parallel.Splitmix.create seed in
  let adj = Array.make n [] in
  for u = 0 to n - 1 do
    (* k distinct targets, none equal to u. *)
    let chosen = ref [] in
    let count = ref 0 in
    while !count < k do
      let v = Parallel.Splitmix.int g n in
      if v <> u && not (List.mem v !chosen) then begin
        chosen := v :: !chosen;
        incr count
      end
    done;
    adj.(u) <- List.rev !chosen
  done;
  Csr.of_adjacency adj

let grid2d ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Generators.grid2d: dimensions must be positive";
  let id r c = (r * cols) + c in
  let adj = Array.make (rows * cols) [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let ns = ref [] in
      if r + 1 < rows then ns := id (r + 1) c :: !ns;
      if r > 0 then ns := id (r - 1) c :: !ns;
      if c + 1 < cols then ns := id r (c + 1) :: !ns;
      if c > 0 then ns := id r (c - 1) :: !ns;
      adj.(id r c) <- List.rev !ns
    done
  done;
  Csr.of_adjacency adj

(* R-MAT (Chakrabarti et al.): recursive quadrant descent with
   probabilities (a, b, c, d). Produces the skewed degree distributions
   of social-network-like graphs. *)
let rmat ?(seed = 1) ?(a = 0.45) ?(b = 0.22) ?(c = 0.22) ~scale ~edge_factor () =
  if scale <= 0 || scale > 30 then invalid_arg "Generators.rmat: scale out of range";
  let d = 1.0 -. a -. b -. c in
  if d < 0.0 then invalid_arg "Generators.rmat: probabilities exceed 1";
  let n = 1 lsl scale in
  let m = n * edge_factor in
  let g = Parallel.Splitmix.create seed in
  let edge () =
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Parallel.Splitmix.float g in
      let du, dv = if r < a then (0, 0) else if r < a +. b then (0, 1) else if r < a +. b +. c then (1, 0) else (1, 1) in
      u := (!u * 2) + du;
      v := (!v * 2) + dv
    done;
    (!u, !v)
  in
  Csr.of_edges ~n (Array.init m (fun _ -> edge ()))

(* The paper's pfp input shape: random graph with a designated source and
   sink and uniform random capacities. Returns (graph, capacities,
   source, sink). *)
let flow_network ?(seed = 1) ?(max_capacity = 100) ~n ~k () =
  let g = kout ~seed ~n ~k () in
  let rng = Parallel.Splitmix.create (seed + 17) in
  let caps = Array.init (Csr.edges g) (fun _ -> 1 + Parallel.Splitmix.int rng max_capacity) in
  (g, caps, 0, n - 1)
