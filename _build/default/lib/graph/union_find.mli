(** Union-find (path halving + union by rank). *)

type t

val create : int -> t

val find : t -> int -> int
(** Root with path halving (mutates). *)

val find_readonly : t -> int -> int
(** Root without any mutation; usable under fine-grain locking. *)

val union : t -> int -> int -> bool
(** [false] when already in the same set. *)

val same : t -> int -> int -> bool
val components : t -> int
