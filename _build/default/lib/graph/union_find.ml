(* Union-find with path halving and union by rank.

   Two flavors:
   - a plain sequential structure (baselines);
   - a per-element Galois lock array so Galois operators can acquire the
     current roots as their neighborhood (Boruvka's algorithm). *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* path halving *)
    let gp = t.parent.(p) in
    t.parent.(x) <- gp;
    find t gp
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    true
  end

let same t a b = find t a = find t b

let components t =
  let seen = Hashtbl.create 16 in
  Array.iteri (fun x _ -> Hashtbl.replace seen (find t x) ()) t.parent;
  Hashtbl.length seen

(* Find without path compression: safe to call while only holding locks
   on the endpoints' current roots (no writes to interior nodes). *)
let rec find_readonly t x =
  let p = t.parent.(x) in
  if p = x then x else find_readonly t p
