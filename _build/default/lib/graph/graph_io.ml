(* Plain-text graph serialization: one "u v [w]" edge per line, '#'
   comments, first non-comment line "n m". Deterministic round-trip. *)

let write_edges oc g =
  Printf.fprintf oc "# deterministic_galois edge list\n";
  Printf.fprintf oc "%d %d\n" (Csr.nodes g) (Csr.edges g);
  for u = 0 to Csr.nodes g - 1 do
    Csr.iter_succ g u (fun v -> Printf.fprintf oc "%d %d\n" u v)
  done

let save_edges path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_edges oc g)

let parse_error line what = failwith (Printf.sprintf "Graph_io: line %d: %s" line what)

let read_edges ic =
  let lineno = ref 0 in
  let rec next_line () =
    incr lineno;
    match input_line ic with
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then next_line () else Some line
    | exception End_of_file -> None
  in
  let header =
    match next_line () with
    | None -> parse_error !lineno "missing header"
    | Some l -> l
  in
  let n, m =
    match String.split_on_char ' ' header with
    | [ n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m when n >= 0 && m >= 0 -> (n, m)
        | _ -> parse_error !lineno "bad header")
    | _ -> parse_error !lineno "bad header"
  in
  let edges = Array.make m (0, 0) in
  for i = 0 to m - 1 do
    match next_line () with
    | None -> parse_error !lineno "unexpected end of file"
    | Some l -> (
        match List.filter (fun s -> s <> "") (String.split_on_char ' ' l) with
        | u :: v :: _ -> (
            match (int_of_string_opt u, int_of_string_opt v) with
            | Some u, Some v -> edges.(i) <- (u, v)
            | _ -> parse_error !lineno "bad edge")
        | _ -> parse_error !lineno "bad edge")
  done;
  Csr.of_edges ~n edges

let load_edges path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_edges ic)

(* Deterministic uniform edge weights in [1, max_weight]. *)
let random_weights ?(seed = 1) ?(max_weight = 100) g =
  let rng = Parallel.Splitmix.create seed in
  Array.init (Csr.edges g) (fun _ -> 1 + Parallel.Splitmix.int rng max_weight)

(* Weights for symmetric graphs where both directions of an undirected
   edge must carry the same weight (e.g. minimum spanning forest): the
   weight is a deterministic function of the unordered endpoint pair. *)
let undirected_random_weights ?(seed = 1) ?(max_weight = 100) g =
  let edges = Csr.all_edges g in
  Array.map
    (fun (u, v) ->
      let a = min u v and b = max u v in
      let rng = Parallel.Splitmix.create (seed + (a * 1_000_003) + b) in
      1 + Parallel.Splitmix.int rng max_weight)
    edges
