(** Edge-list serialization and per-edge weight generation. *)

val write_edges : out_channel -> Csr.t -> unit
val save_edges : string -> Csr.t -> unit

val read_edges : in_channel -> Csr.t
(** Raises [Failure] with a line number on malformed input. *)

val load_edges : string -> Csr.t

val random_weights : ?seed:int -> ?max_weight:int -> Csr.t -> int array
(** Deterministic uniform weights in [\[1, max_weight\]], indexed by edge
    id. *)

val undirected_random_weights : ?seed:int -> ?max_weight:int -> Csr.t -> int array
(** Like {!random_weights}, but the two directions of an undirected edge
    in a symmetric graph get equal weights (required by e.g. minimum
    spanning forest). *)
