(* Compressed-sparse-row directed graphs.

   The immutable topology shared by the graph benchmarks (bfs, mis, pfp).
   Node ids are 0..n-1; the out-edges of u occupy the index range
   [offsets.(u), offsets.(u+1)) of [targets]. Edge indices are stable and
   usable as keys for per-edge payload arrays (capacities, flows). *)

type t = { offsets : int array; targets : int array }

let nodes t = Array.length t.offsets - 1
let edges t = Array.length t.targets

let of_adjacency adj =
  let n = Array.length adj in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + List.length adj.(u)
  done;
  let targets = Array.make offsets.(n) 0 in
  for u = 0 to n - 1 do
    List.iteri (fun i v -> targets.(offsets.(u) + i) <- v) adj.(u)
  done;
  { offsets; targets }

let of_edges ~n edge_list =
  let degree = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Csr.of_edges: node out of range";
      degree.(u) <- degree.(u) + 1)
    edge_list;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + degree.(u)
  done;
  let cursor = Array.copy offsets in
  let targets = Array.make offsets.(n) 0 in
  Array.iter
    (fun (u, v) ->
      targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    edge_list;
  { offsets; targets }

let out_degree t u = t.offsets.(u + 1) - t.offsets.(u)

let edge_range t u = (t.offsets.(u), t.offsets.(u + 1))

let edge_target t e = t.targets.(e)

let iter_succ t u f =
  for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f t.targets.(e)
  done

let iter_succ_edges t u f =
  for e = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f e t.targets.(e)
  done

let fold_succ t u f acc =
  let acc = ref acc in
  iter_succ t u (fun v -> acc := f !acc v);
  !acc

let exists_succ t u p =
  let rec go e = e < t.offsets.(u + 1) && (p t.targets.(e) || go (e + 1)) in
  go t.offsets.(u)

let all_edges t =
  let out = Array.make (edges t) (0, 0) in
  for u = 0 to nodes t - 1 do
    iter_succ_edges t u (fun e v -> out.(e) <- (u, v))
  done;
  out

let transpose t =
  let n = nodes t in
  let rev = Array.map (fun (u, v) -> (v, u)) (all_edges t) in
  of_edges ~n rev

(* Make the graph symmetric and simple: for every edge (u,v), both
   directions exist, self-loops dropped, duplicates removed. Used for the
   undirected benchmarks (mis). *)
let symmetrize t =
  let n = nodes t in
  let adj = Array.make n [] in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    (all_edges t);
  let adj = Array.map (fun l -> List.sort_uniq compare l) adj in
  of_adjacency adj

let is_symmetric t =
  let ok = ref true in
  for u = 0 to nodes t - 1 do
    iter_succ t u (fun v -> if not (exists_succ t v (fun w -> w = u)) then ok := false)
  done;
  !ok
