(** Deterministic synthetic graph generators (paper §4.2 inputs). *)

val kout : ?seed:int -> n:int -> k:int -> unit -> Csr.t
(** Uniform random graph: each node gets [k] distinct random out-edges
    (no self-loops) — the bfs/mis/pfp input family of the paper. *)

val grid2d : rows:int -> cols:int -> Csr.t
(** 4-connected grid, symmetric. *)

val rmat :
  ?seed:int -> ?a:float -> ?b:float -> ?c:float -> scale:int -> edge_factor:int -> unit -> Csr.t
(** R-MAT power-law generator; [2^scale] nodes, [edge_factor] edges per
    node. *)

val flow_network :
  ?seed:int -> ?max_capacity:int -> n:int -> k:int -> unit -> Csr.t * int array * int * int
(** Random flow instance: (graph, edge capacities, source, sink). *)
