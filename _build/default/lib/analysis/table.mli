(** Aligned plain-text tables for the figure-regeneration harness. *)

type t

val make : header:string list -> string list list -> t
(** Raises [Invalid_argument] on ragged rows. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit

(** Cell formatting shorthands. *)

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string
val f4 : float -> string
val xf : float -> string
(** ["1.23X"] style ratios. *)

val i : int -> string
