(** Summary statistics (medians etc.) for result tables. All raise
    [Invalid_argument] on empty input; {!geomean} also on non-positive
    values. *)

val mean : float list -> float
val median : float list -> float
val geomean : float list -> float
val maximum : float list -> float
val minimum : float list -> float
