(* Ordinary least squares for the paper's Fig. 12: fitting

     eff_var = B0 + B1 * (PC_ref / PC_var) * eff_ref

   and reporting R^2, to test how much of the efficiency difference
   between variants a single performance counter explains. *)

type fit = { b0 : float; b1 : float; r2 : float; n : int }

let fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-30 then invalid_arg "Regression.fit: degenerate x values";
  let b1 = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let b0 = (sy -. (b1 *. sx)) /. nf in
  let ybar = sy /. nf in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.0)) 0.0 points in
  let ss_res =
    List.fold_left (fun a (x, y) -> a +. ((y -. (b0 +. (b1 *. x))) ** 2.0)) 0.0 points
  in
  let r2 = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { b0; b1; r2; n }

let predict f x = f.b0 +. (f.b1 *. x)
