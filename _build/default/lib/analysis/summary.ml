(* Summary statistics used in the paper's result reporting ("median
   speedup of 2.4X", Fig. 9's mean/max columns). *)

let mean = function
  | [] -> invalid_arg "Summary.mean: empty"
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let median = function
  | [] -> invalid_arg "Summary.median: empty"
  | l ->
      let sorted = List.sort Float.compare l in
      let n = List.length sorted in
      let nth i = List.nth sorted i in
      if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.0

let geomean = function
  | [] -> invalid_arg "Summary.geomean: empty"
  | l ->
      if List.exists (fun x -> x <= 0.0) l then invalid_arg "Summary.geomean: non-positive value";
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 l /. float_of_int (List.length l))

let maximum = function
  | [] -> invalid_arg "Summary.maximum: empty"
  | x :: rest -> List.fold_left Float.max x rest

let minimum = function
  | [] -> invalid_arg "Summary.minimum: empty"
  | x :: rest -> List.fold_left Float.min x rest
