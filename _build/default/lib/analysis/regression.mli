(** Ordinary least squares with R², for the Fig. 12 model-fit study. *)

type fit = { b0 : float; b1 : float; r2 : float; n : int }

val fit : (float * float) list -> fit
(** [(x, y)] samples; raises [Invalid_argument] with fewer than two
    points or degenerate x. *)

val predict : fit -> float -> float
