(* Plain-text table rendering for the figure harness: aligned columns,
   a header rule, no external dependencies beyond Fmt. *)

type t = { header : string list; rows : string list list }

let make ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.make: row width differs from header")
    rows;
  { header; rows }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)

let pp ppf t =
  let ws = widths t in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    String.concat "  " (List.map2 pad row ws)
  in
  Fmt.pf ppf "%s@." (render_row t.header);
  Fmt.pf ppf "%s@." (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun row -> Fmt.pf ppf "%s@." (render_row row)) t.rows

let print t = pp Fmt.stdout t

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let xf x = Printf.sprintf "%.2fX" x
let i x = string_of_int x
