lib/analysis/regression.ml: Float List
