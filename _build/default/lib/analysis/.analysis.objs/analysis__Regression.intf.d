lib/analysis/regression.mli:
