lib/analysis/table.mli: Format
