lib/analysis/summary.mli:
