lib/analysis/table.ml: Fmt List Printf String
