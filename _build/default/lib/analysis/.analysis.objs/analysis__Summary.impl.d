lib/analysis/summary.ml: Float List
