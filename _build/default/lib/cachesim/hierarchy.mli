(** Cache hierarchy: private L1/L2 per thread, shared L3, DRAM counter.
    Used to reproduce the locality study (Fig. 11/12). *)

type t

val create : ?l1_lines:int -> ?l2_lines:int -> ?l3_lines:int -> threads:int -> unit -> t

val access : t -> worker:int -> int -> unit
(** One location access by one thread. *)

val dram_accesses : t -> int

val replay :
  ?l1_lines:int -> ?l2_lines:int -> ?l3_lines:int -> threads:int -> Galois.Schedule.t -> t
(** Replay a recorded schedule's location streams: asynchronous
    schedules touch each task's neighborhood once; deterministic round
    schedules touch it at inspect and again at commit, a window apart. *)
