(** Set-associative LRU cache over abstract location ids (one location =
    one line). *)

type t

val create : lines:int -> associativity:int -> t
(** Raises [Invalid_argument] unless [lines] is a positive multiple of
    [associativity] and the resulting set count is a power of two. *)

val access : t -> int -> bool
(** Touch a line; [true] = hit. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
