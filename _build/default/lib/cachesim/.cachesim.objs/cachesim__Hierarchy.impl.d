lib/cachesim/hierarchy.ml: Array Cache Galois List
