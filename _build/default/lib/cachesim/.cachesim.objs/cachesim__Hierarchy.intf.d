lib/cachesim/hierarchy.mli: Galois
