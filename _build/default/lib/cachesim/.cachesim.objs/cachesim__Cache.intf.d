lib/cachesim/cache.mli:
