(* Per-thread L1/L2, shared L3, DRAM counter — enough structure to
   expose the paper's locality effect (Fig. 11): the deterministic
   scheduler separates a task's inspect and commit phases by an entire
   window of other tasks, evicting the task's data before it is used
   again. *)

type t = {
  l1 : Cache.t array;
  l2 : Cache.t array;
  l3 : Cache.t;
  mutable dram : int;
}

let create ?(l1_lines = 512) ?(l2_lines = 4096) ?(l3_lines = 262144) ~threads () =
  {
    l1 = Array.init threads (fun _ -> Cache.create ~lines:l1_lines ~associativity:8);
    l2 = Array.init threads (fun _ -> Cache.create ~lines:l2_lines ~associativity:8);
    l3 = Cache.create ~lines:l3_lines ~associativity:16;
    dram = 0;
  }

let access t ~worker id =
  if not (Cache.access t.l1.(worker) id) then
    if not (Cache.access t.l2.(worker) id) then
      if not (Cache.access t.l3 id) then t.dram <- t.dram + 1

let dram_accesses t = t.dram

(* Replay a recorded schedule. Workers are assigned deterministically:
   asynchronous schedules interleave tasks round-robin (each worker runs
   its own stream, touching a task's locations once, contiguously);
   round schedules replay inspect-then-commit per round, so a committed
   task's locations are touched again only after the whole window's
   inspections — exactly the temporal separation of §3.4. *)
let replay ?l1_lines ?l2_lines ?l3_lines ~threads schedule =
  let t = create ?l1_lines ?l2_lines ?l3_lines ~threads () in
  (match schedule with
  | Galois.Schedule.Flat records ->
      List.iteri
        (fun i r ->
          let worker = i mod threads in
          Array.iter (fun lid -> access t ~worker lid) r.Galois.Schedule.locks)
        records
  | Galois.Schedule.Rounds rounds ->
      List.iter
        (fun round ->
          Array.iteri
            (fun i r ->
              let worker = i mod threads in
              Array.iter (fun lid -> access t ~worker lid) r.Galois.Schedule.locks)
            round;
          Array.iteri
            (fun i r ->
              if r.Galois.Schedule.committed then begin
                let worker = i mod threads in
                Array.iter (fun lid -> access t ~worker lid) r.Galois.Schedule.locks
              end)
            round)
        rounds);
  t
