(* A set-associative LRU cache over abstract location ids.

   One location = one line: the runtime's access traces are in units of
   abstract locations (graph nodes, triangles), each of which occupies
   roughly a cache line of payload. *)

type t = {
  sets : int array array;  (* sets.(s) = lines in LRU order, most recent first; -1 = empty *)
  set_bits : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~lines ~associativity =
  if lines <= 0 || associativity <= 0 || lines mod associativity <> 0 then
    invalid_arg "Cache.create: lines must be a positive multiple of associativity";
  let nsets = lines / associativity in
  if nsets land (nsets - 1) <> 0 then invalid_arg "Cache.create: set count must be a power of two";
  let set_bits =
    let rec go b n = if n = 1 then b else go (b + 1) (n lsr 1) in
    go 0 nsets
  in
  {
    sets = Array.init nsets (fun _ -> Array.make associativity (-1));
    set_bits;
    hits = 0;
    misses = 0;
  }

(* Mix the id so neighboring ids spread across sets (ids are dense
   allocation counters, not addresses). *)
let set_of t id =
  let h = id * 0x9E3779B1 in
  (h lsr 7) land ((1 lsl t.set_bits) - 1)

(* Access a line: true = hit. LRU update by shifting. *)
let access t id =
  let set = t.sets.(set_of t id) in
  let assoc = Array.length set in
  let rec find i = if i = assoc then -1 else if set.(i) = id then i else find (i + 1) in
  let pos = find 0 in
  if pos >= 0 then begin
    (* move to front *)
    for j = pos downto 1 do
      set.(j) <- set.(j - 1)
    done;
    set.(0) <- id;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    for j = assoc - 1 downto 1 do
      set.(j) <- set.(j - 1)
    done;
    set.(0) <- id;
    t.misses <- t.misses + 1;
    false
  end

let hits t = t.hits
let misses t = t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
