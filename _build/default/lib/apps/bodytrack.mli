(** Annealed particle filter: PARSEC bodytrack's computational skeleton
    (per-particle weighting tasks, a few barriers per frame). *)

type config = {
  particles : int;
  frames : int;
  layers : int;
  state_dim : int;
  seed : int;
}

val default_config : config

type result = { mean_error : float; profile : Kernel_profile.t }

val run : ?config:config -> pool:Parallel.Domain_pool.t -> unit -> result
(** Deterministic in the config; [mean_error] measures tracking
    quality against the hidden trajectory. *)
