(* Residual flow networks for preflow-push.

   Every directed input edge becomes a forward/backward residual pair;
   [rev] maps an edge to its partner, so pushing flow is two capacity
   updates. Capacities are the only mutable state. *)

module Csr = Graphlib.Csr

type t = {
  nodes : int;
  offsets : int array;
  targets : int array;
  rev : int array;
  cap : int array;  (* mutable residual capacities *)
  initial_cap : int array;  (* residual capacities before any pushes *)
  source : int;
  sink : int;
}

let nodes t = t.nodes
let edge_range t u = (t.offsets.(u), t.offsets.(u + 1))
let edge_target t e = t.targets.(e)

let of_graph g caps ~source ~sink =
  let n = Csr.nodes g in
  if source = sink then invalid_arg "Flow_network.of_graph: source equals sink";
  let edge_list = Csr.all_edges g in
  if Array.length caps <> Array.length edge_list then
    invalid_arg "Flow_network.of_graph: capacity array size mismatch";
  let degree = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      degree.(u) <- degree.(u) + 1;
      degree.(v) <- degree.(v) + 1)
    edge_list;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + degree.(u)
  done;
  let m2 = offsets.(n) in
  let cursor = Array.copy offsets in
  let targets = Array.make m2 0 and rev = Array.make m2 0 and cap = Array.make m2 0 in
  Array.iteri
    (fun i (u, v) ->
      let pf = cursor.(u) in
      cursor.(u) <- pf + 1;
      let pb = cursor.(v) in
      cursor.(v) <- pb + 1;
      targets.(pf) <- v;
      targets.(pb) <- u;
      cap.(pf) <- caps.(i);
      cap.(pb) <- 0;
      rev.(pf) <- pb;
      rev.(pb) <- pf)
    edge_list;
  { nodes = n; offsets; targets; rev; cap; initial_cap = Array.copy cap; source; sink }

(* Exact distance-to-sink labels over the current residual graph — the
   global relabeling heuristic. Heights never decrease (max with the old
   label keeps the labeling valid); source stays pinned at n; nodes that
   cannot reach the sink get at least n. *)
let global_relabel t height =
  let n = t.nodes in
  let dist = Array.make n (-1) in
  dist.(t.sink) <- 0;
  let queue = Queue.create () in
  Queue.add t.sink queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let lo, hi = edge_range t v in
    for e = lo to hi - 1 do
      (* u -> v has residual capacity iff the reverse of v's edge to u
         does. *)
      let u = t.targets.(e) in
      if dist.(u) = -1 && t.cap.(t.rev.(e)) > 0 then begin
        dist.(u) <- dist.(v) + 1;
        Queue.add u queue
      end
    done
  done;
  for u = 0 to n - 1 do
    if u <> t.source then
      height.(u) <- max height.(u) (if dist.(u) >= 0 then dist.(u) else n)
  done;
  height.(t.source) <- n

(* Flow conservation check for validation: for every node besides source
   and sink, inflow = outflow; returns the flow value (sink inflow). *)
let check_flow t =
  (* Net flow along residual edge e = initial - current capacity;
     positive means flow was pushed in e's direction. Summing positive
     directions only avoids double counting the reverse pair. *)
  let n = t.nodes in
  let balance = Array.make n 0 in
  Array.iteri
    (fun e orig ->
      let f = orig - t.cap.(e) in
      if f > 0 then begin
        let v = t.targets.(e) in
        let u = t.targets.(t.rev.(e)) in
        balance.(u) <- balance.(u) - f;
        balance.(v) <- balance.(v) + f
      end)
    t.initial_cap;
  let ok = ref true in
  for u = 0 to n - 1 do
    if u <> t.source && u <> t.sink && balance.(u) <> 0 then ok := false
  done;
  (!ok, balance.(t.sink))
