(** Execution profile of a PARSEC-style data-parallel kernel, consumed
    by the machine and CoreDet simulators (Figs. 5, 6). *)

type t = {
  tasks : int;
  atomics : int;
  barriers : int;
  time_s : float;
  task_costs : int array;
}

val total_work : t -> int
val atomics_per_us : t -> float
val tasks_per_us : t -> float
