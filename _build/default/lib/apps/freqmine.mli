(** FP-growth frequent itemset mining: PARSEC freqmine's computational
    skeleton (irregularly sized per-item mining tasks). *)

type config = {
  transactions : int;
  items : int;
  avg_length : int;
  min_support : int;
  seed : int;
}

val default_config : config

val generate : config -> int list array
(** Synthetic transaction database with skewed item popularity. *)

val run : ?config:config -> pool:Parallel.Domain_pool.t -> unit -> int * Kernel_profile.t
(** Returns (number of frequent itemsets, execution profile).
    Deterministic in the config. *)
