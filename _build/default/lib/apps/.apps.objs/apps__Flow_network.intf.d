lib/apps/flow_network.mli: Graphlib
