lib/apps/freqmine.mli: Kernel_profile Parallel
