lib/apps/blackscholes.mli: Kernel_profile Parallel
