lib/apps/pagerank.mli: Galois Graphlib Parallel
