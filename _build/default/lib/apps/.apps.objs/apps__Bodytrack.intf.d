lib/apps/bodytrack.mli: Kernel_profile Parallel
