lib/apps/flow_network.ml: Array Graphlib Queue
