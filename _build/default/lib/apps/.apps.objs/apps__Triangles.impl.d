lib/apps/triangles.ml: Array Fun Galois Graphlib
