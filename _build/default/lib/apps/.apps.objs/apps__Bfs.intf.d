lib/apps/bfs.mli: Galois Graphlib Parallel
