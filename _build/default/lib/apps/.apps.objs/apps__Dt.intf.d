lib/apps/dt.mli: Detreserve Galois Geometry Mesh Parallel
