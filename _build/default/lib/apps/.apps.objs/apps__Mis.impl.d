lib/apps/mis.ml: Array Detreserve Fun Galois Graphlib
