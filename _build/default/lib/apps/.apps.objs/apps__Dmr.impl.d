lib/apps/dmr.ml: Array Detreserve Float Galois Geometry Hashtbl List Mesh Mutex
