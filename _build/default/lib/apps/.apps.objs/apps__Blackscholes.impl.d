lib/apps/blackscholes.ml: Array Atomic Float Kernel_profile Parallel Unix
