lib/apps/triangles.mli: Galois Graphlib Parallel
