lib/apps/cc.ml: Array Fun Galois Graphlib Hashtbl
