lib/apps/pagerank.ml: Array Float Fun Galois Graphlib
