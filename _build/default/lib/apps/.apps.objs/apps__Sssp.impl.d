lib/apps/sssp.ml: Array Galois Graphlib
