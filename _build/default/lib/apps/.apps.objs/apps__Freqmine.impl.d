lib/apps/freqmine.ml: Array Fun Hashtbl Kernel_profile List Option Parallel Unix
