lib/apps/bodytrack.ml: Array Float Kernel_profile Parallel Unix
