lib/apps/boruvka.ml: Array Fun Galois Graphlib List
