lib/apps/pfp.mli: Flow_network Galois Parallel
