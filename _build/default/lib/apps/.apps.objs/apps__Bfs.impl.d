lib/apps/bfs.ml: Array Detreserve Galois Graphlib List Parallel Queue
