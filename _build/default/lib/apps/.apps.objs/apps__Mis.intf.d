lib/apps/mis.mli: Detreserve Galois Graphlib Parallel
