lib/apps/dt.ml: Array Detreserve Fun Galois Geometry List Mesh
