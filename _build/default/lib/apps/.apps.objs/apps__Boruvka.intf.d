lib/apps/boruvka.mli: Galois Graphlib Parallel
