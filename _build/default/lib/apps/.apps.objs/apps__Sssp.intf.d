lib/apps/sssp.mli: Galois Graphlib Parallel
