lib/apps/dmr.mli: Detreserve Galois Geometry Mesh Parallel
