lib/apps/pfp.ml: Array Flow_network Fun Galois List Queue
