lib/apps/kernel_profile.ml: Array
