lib/apps/cc.mli: Galois Graphlib Parallel
