lib/apps/kernel_profile.mli:
