(** Black–Scholes option pricing: the PARSEC kernel's computational
    skeleton (coarse uniform tasks, near-zero synchronization). *)

type option_data = {
  spot : float;
  strike : float;
  rate : float;
  volatility : float;
  maturity : float;
  call : bool;
}

val generate : ?seed:int -> int -> option_data array
val cndf : float -> float
val price : option_data -> float

val run :
  ?iterations:int ->
  pool:Parallel.Domain_pool.t ->
  option_data array ->
  float array * Kernel_profile.t
