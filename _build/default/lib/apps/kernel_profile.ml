(* Execution profile of a PARSEC-style data-parallel kernel.

   These kernels (blackscholes, bodytrack, freqmine) contrast with the
   irregular benchmarks in the paper's characteristics study: coarse
   tasks, orders of magnitude fewer atomic updates (Fig. 5), and good
   behavior under CoreDet-style deterministic thread scheduling (Fig. 6).
   The per-task cost vector feeds the machine and CoreDet simulators. *)

type t = {
  tasks : int;
  atomics : int;  (* shared-memory atomic updates performed *)
  barriers : int;  (* bulk-synchronous phase boundaries *)
  time_s : float;
  task_costs : int array;  (* abstract work units per task *)
}

let total_work t = Array.fold_left ( + ) 0 t.task_costs

let atomics_per_us t = if t.time_s <= 0.0 then 0.0 else float_of_int t.atomics /. (t.time_s *. 1e6)

let tasks_per_us t = if t.time_s <= 0.0 then 0.0 else float_of_int t.tasks /. (t.time_s *. 1e6)
