(** Residual flow networks for preflow-push. *)

type t = {
  nodes : int;
  offsets : int array;
  targets : int array;
  rev : int array;  (** edge -> reverse edge *)
  cap : int array;  (** mutable residual capacities *)
  initial_cap : int array;
  source : int;
  sink : int;
}

val nodes : t -> int
val edge_range : t -> int -> int * int
val edge_target : t -> int -> int

val of_graph : Graphlib.Csr.t -> int array -> source:int -> sink:int -> t
(** Build the residual pair structure from a directed graph and its
    capacities. Raises [Invalid_argument] on size mismatch or
    [source = sink]. *)

val global_relabel : t -> int array -> unit
(** Raise heights to exact residual distances-to-sink (never decreases a
    height; pins the source at [n]). *)

val check_flow : t -> bool * int
(** (conservation holds at every internal node, flow value at the
    sink). *)
