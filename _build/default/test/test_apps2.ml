(* Tests for the extended application set: connected components, SSSP,
   Boruvka MSF, triangle counting — plus the new graph substrates
   (union-find, I/O, weights). *)

module Csr = Graphlib.Csr
module Gen = Graphlib.Generators
module Uf = Graphlib.Union_find

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let policies =
  [ ("serial", Galois.Policy.serial); ("nondet", Galois.Policy.nondet 3); ("det", Galois.Policy.det 3) ]

(* --- union-find ------------------------------------------------------ *)

let test_union_find_basics () =
  let uf = Uf.create 10 in
  check_int "initially 10 components" 10 (Uf.components uf);
  check_bool "union joins" true (Uf.union uf 0 1);
  check_bool "redundant union" false (Uf.union uf 1 0);
  check_bool "same" true (Uf.same uf 0 1);
  check_bool "not same" false (Uf.same uf 0 2);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 1 3);
  check_bool "transitive" true (Uf.same uf 0 2);
  check_int "components" 7 (Uf.components uf)

let test_union_find_readonly () =
  let uf = Uf.create 6 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 1 2);
  check_int "readonly root agrees" (Uf.find uf 2) (Uf.find_readonly uf 2)

let prop_union_find_partition =
  QCheck.Test.make ~name:"union-find partitions consistently" ~count:100
    QCheck.(pair (int_range 2 40) (list_of_size Gen.(int_range 0 80) (pair small_nat small_nat)))
    (fun (n, pairs) ->
      let uf = Uf.create n in
      let pairs = List.map (fun (a, b) -> (a mod n, b mod n)) pairs in
      List.iter (fun (a, b) -> ignore (Uf.union uf a b)) pairs;
      (* same is an equivalence relation consistent with find *)
      List.for_all (fun (a, b) -> Uf.same uf a b = (Uf.find uf a = Uf.find uf b)) pairs)

(* --- graph I/O -------------------------------------------------------- *)

let test_graph_io_roundtrip () =
  let g = Gen.kout ~seed:12 ~n:50 ~k:4 () in
  let path = Filename.temp_file "galois" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graphlib.Graph_io.save_edges path g;
      let g' = Graphlib.Graph_io.load_edges path in
      check_int "nodes" (Csr.nodes g) (Csr.nodes g');
      check_int "edges" (Csr.edges g) (Csr.edges g');
      for u = 0 to Csr.nodes g - 1 do
        let succ h = List.sort compare (Csr.fold_succ h u (fun acc v -> v :: acc) []) in
        if succ g <> succ g' then Alcotest.failf "adjacency differs at %d" u
      done)

let test_graph_io_rejects_garbage () =
  let path = Filename.temp_file "galois" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# junk\nnot a header\n";
      close_out oc;
      match Graphlib.Graph_io.load_edges path with
      | _ -> Alcotest.fail "garbage accepted"
      | exception Failure _ -> ())

let test_random_weights () =
  let g = Gen.kout ~seed:3 ~n:30 ~k:3 () in
  let w = Graphlib.Graph_io.random_weights ~seed:5 ~max_weight:10 g in
  check_int "one weight per edge" (Csr.edges g) (Array.length w);
  check_bool "in range" true (Array.for_all (fun x -> x >= 1 && x <= 10) w);
  let w' = Graphlib.Graph_io.random_weights ~seed:5 ~max_weight:10 g in
  check_bool "deterministic" true (w = w')

let test_undirected_weights () =
  let g = Csr.symmetrize (Gen.kout ~seed:8 ~n:40 ~k:3 ()) in
  let w = Graphlib.Graph_io.undirected_random_weights ~seed:9 g in
  let edges = Csr.all_edges g in
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun e (u, v) ->
      let key = (min u v, max u v) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key w.(e)
      | Some prev -> check_int "both directions equal" prev w.(e))
    edges

(* --- connected components --------------------------------------------- *)

let cc_graph () =
  (* Several components: disjoint random blobs plus isolated nodes. *)
  let edges = ref [] in
  let rng = Parallel.Splitmix.create 77 in
  List.iter
    (fun (base, size) ->
      for _ = 1 to size * 2 do
        let u = base + Parallel.Splitmix.int rng size in
        let v = base + Parallel.Splitmix.int rng size in
        if u <> v then edges := (u, v) :: !edges
      done)
    [ (0, 40); (40, 25); (65, 10) ];
  Csr.symmetrize (Csr.of_edges ~n:80 (Array.of_list !edges))

let test_cc_variants_agree () =
  let g = cc_graph () in
  let reference = Apps.Cc.serial g in
  check_bool "serial validates" true (Apps.Cc.validate g reference);
  List.iter
    (fun (name, policy) ->
      let label, _ = Apps.Cc.galois ~policy g in
      if label <> reference then Alcotest.failf "cc %s differs from union-find" name)
    policies

let test_cc_counts_components () =
  let g = cc_graph () in
  let label = Apps.Cc.serial g in
  (* 3 blobs (likely internally connected) + 5 isolated nodes 75..79:
     count = components of union-find ground truth. *)
  let uf = Uf.create (Csr.nodes g) in
  Array.iter (fun (u, v) -> ignore (Uf.union uf u v)) (Csr.all_edges g);
  check_int "component count" (Uf.components uf) (Apps.Cc.count_components label)

(* --- SSSP -------------------------------------------------------------- *)

let test_sssp_variants_agree () =
  let g = Gen.kout ~seed:21 ~n:800 ~k:4 () in
  let w = Graphlib.Graph_io.random_weights ~seed:22 ~max_weight:20 g in
  let reference = Apps.Sssp.serial g w ~source:0 in
  check_bool "dijkstra validates" true (Apps.Sssp.validate g w ~source:0 reference);
  List.iter
    (fun (name, policy) ->
      let dist, _ = Apps.Sssp.galois ~policy g w ~source:0 in
      if dist <> reference then Alcotest.failf "sssp %s differs from dijkstra" name)
    policies

let test_sssp_weight_mismatch () =
  let g = Gen.kout ~seed:21 ~n:10 ~k:2 () in
  Alcotest.check_raises "bad weights" (Invalid_argument "Sssp.galois: weight array size mismatch")
    (fun () ->
      ignore (Apps.Sssp.galois ~policy:Galois.Policy.serial g [| 1 |] ~source:0))

let test_sssp_unit_weights_equal_bfs () =
  let g = Gen.kout ~seed:25 ~n:500 ~k:5 () in
  let w = Array.make (Csr.edges g) 1 in
  let sssp = Apps.Sssp.serial g w ~source:0 in
  let bfs = Apps.Bfs.serial g ~source:0 in
  check_bool "unit-weight sssp = bfs" true (sssp = bfs)

(* --- Boruvka MSF ------------------------------------------------------- *)

let msf_graph () = Csr.symmetrize (Gen.kout ~seed:31 ~n:300 ~k:3 ())

let test_boruvka_weight_matches_kruskal () =
  let g = msf_graph () in
  let w = Graphlib.Graph_io.undirected_random_weights ~seed:32 ~max_weight:50 g in
  let reference = Apps.Boruvka.serial g w in
  check_bool "kruskal forest valid" true (Apps.Boruvka.validate g reference);
  List.iter
    (fun (name, policy) ->
      let forest, _ = Apps.Boruvka.galois ~policy g w in
      check_bool (name ^ " forest valid") true (Apps.Boruvka.validate g forest);
      check_int (name ^ " total weight")
        reference.Apps.Boruvka.total_weight forest.Apps.Boruvka.total_weight)
    policies

let test_boruvka_edge_count () =
  let g = msf_graph () in
  let w = Graphlib.Graph_io.undirected_random_weights ~seed:33 g in
  let forest = Apps.Boruvka.serial g w in
  let uf = Uf.create (Csr.nodes g) in
  Array.iter (fun (u, v) -> ignore (Uf.union uf u v)) (Csr.all_edges g);
  check_int "n - components edges" (Csr.nodes g - Uf.components uf)
    (List.length forest.Apps.Boruvka.parent_edge)

(* --- pagerank ----------------------------------------------------------- *)

let test_pagerank_converges () =
  let g = Gen.kout ~seed:51 ~n:500 ~k:5 () in
  let reference = Apps.Pagerank.serial g in
  List.iter
    (fun (name, policy) ->
      let ranks, report = Apps.Pagerank.galois ~policy g in
      check_bool (name ^ " all tasks processed") true (report.stats.commits >= 500);
      let diff = Apps.Pagerank.max_abs_diff ranks reference in
      if diff > 0.01 then Alcotest.failf "pagerank %s off by %f" name diff)
    policies

let test_pagerank_det_portable () =
  let g = Gen.kout ~seed:52 ~n:400 ~k:4 () in
  let run t =
    let r, _ = Apps.Pagerank.galois ~policy:(Galois.Policy.det t) g in
    r
  in
  let reference = run 1 in
  List.iter
    (fun t ->
      (* Fixed-point arithmetic: deterministic runs must agree exactly,
         bit for bit. *)
      if run t <> reference then Alcotest.failf "pagerank det differs at %d threads" t)
    [ 2; 4 ]

let test_pagerank_sink_nodes () =
  (* Graph with a sink (no out-edges): residual there accumulates into
     rank and propagation still terminates. *)
  let g = Csr.of_edges ~n:3 [| (0, 2); (1, 2) |] in
  let ranks, _ = Apps.Pagerank.galois ~policy:Galois.Policy.serial g in
  check_bool "sink has the largest rank" true (ranks.(2) > ranks.(0) && ranks.(2) > ranks.(1))

(* --- triangle counting ------------------------------------------------- *)

let test_triangles_known () =
  (* A 4-clique has exactly 4 triangles. *)
  let g =
    Csr.symmetrize (Csr.of_edges ~n:4 [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) |])
  in
  check_int "4-clique" 4 (Apps.Triangles.serial g);
  (* A 4-cycle has none. *)
  let c = Csr.symmetrize (Csr.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3); (3, 0) |]) in
  check_int "4-cycle" 0 (Apps.Triangles.serial c)

let test_triangles_variants_agree () =
  let g = Csr.symmetrize (Gen.rmat ~seed:35 ~scale:8 ~edge_factor:6 ()) in
  let reference = Apps.Triangles.serial g in
  check_bool "some triangles exist" true (reference > 0);
  List.iter
    (fun (name, policy) ->
      let total, report = Apps.Triangles.galois ~policy g in
      check_int (name ^ " count") reference total;
      check_int (name ^ " all commit") (Csr.nodes g) report.stats.commits)
    policies

let suite =
  [
    Alcotest.test_case "union-find basics" `Quick test_union_find_basics;
    Alcotest.test_case "union-find readonly find" `Quick test_union_find_readonly;
    QCheck_alcotest.to_alcotest prop_union_find_partition;
    Alcotest.test_case "graph io roundtrip" `Quick test_graph_io_roundtrip;
    Alcotest.test_case "graph io rejects garbage" `Quick test_graph_io_rejects_garbage;
    Alcotest.test_case "random weights" `Quick test_random_weights;
    Alcotest.test_case "undirected weights symmetric" `Quick test_undirected_weights;
    Alcotest.test_case "cc: all variants agree" `Quick test_cc_variants_agree;
    Alcotest.test_case "cc: component count" `Quick test_cc_counts_components;
    Alcotest.test_case "sssp: all variants agree with dijkstra" `Quick test_sssp_variants_agree;
    Alcotest.test_case "sssp: weight validation" `Quick test_sssp_weight_mismatch;
    Alcotest.test_case "sssp: unit weights = bfs" `Quick test_sssp_unit_weights_equal_bfs;
    Alcotest.test_case "boruvka: weight matches kruskal" `Quick
      test_boruvka_weight_matches_kruskal;
    Alcotest.test_case "boruvka: forest size" `Quick test_boruvka_edge_count;
    Alcotest.test_case "pagerank: converges to power iteration" `Quick test_pagerank_converges;
    Alcotest.test_case "pagerank: det bit-portable" `Quick test_pagerank_det_portable;
    Alcotest.test_case "pagerank: sink nodes" `Quick test_pagerank_sink_nodes;
    Alcotest.test_case "triangles: known graphs" `Quick test_triangles_known;
    Alcotest.test_case "triangles: variants agree" `Quick test_triangles_variants_agree;
  ]
