let check_float = Alcotest.(check (float 1e-9))

let test_summary_stats () =
  check_float "mean" 2.0 (Analysis.Summary.mean [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Analysis.Summary.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Analysis.Summary.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "geomean" 2.0 (Analysis.Summary.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "max" 4.0 (Analysis.Summary.maximum [ 4.0; 1.0; 2.0 ]);
  check_float "min" 1.0 (Analysis.Summary.minimum [ 4.0; 1.0; 2.0 ])

let test_summary_validation () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Summary.mean: empty") (fun () ->
      ignore (Analysis.Summary.mean []));
  Alcotest.check_raises "geomean non-positive"
    (Invalid_argument "Summary.geomean: non-positive value") (fun () ->
      ignore (Analysis.Summary.geomean [ 1.0; 0.0 ]))

let test_regression_exact_line () =
  let points = List.map (fun x -> (float_of_int x, (2.0 *. float_of_int x) +. 1.0)) [ 0; 1; 2; 3 ] in
  let fit = Analysis.Regression.fit points in
  check_float "b0" 1.0 fit.Analysis.Regression.b0;
  check_float "b1" 2.0 fit.b1;
  check_float "perfect R2" 1.0 fit.r2;
  check_float "predict" 7.0 (Analysis.Regression.predict fit 3.0)

let test_regression_noisy () =
  let points = [ (0.0, 0.1); (1.0, 0.9); (2.0, 2.2); (3.0, 2.8); (4.0, 4.1) ] in
  let fit = Analysis.Regression.fit points in
  Alcotest.(check bool) "good but imperfect fit" true (fit.Analysis.Regression.r2 > 0.9 && fit.r2 < 1.0)

let test_regression_validation () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Regression.fit: need at least two points") (fun () ->
      ignore (Analysis.Regression.fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.fit: degenerate x values")
    (fun () -> ignore (Analysis.Regression.fit [ (1.0, 1.0); (1.0, 2.0) ]))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_table_rendering () =
  let t = Analysis.Table.make ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let s = Fmt.str "%a" Analysis.Table.pp t in
  Alcotest.(check bool) "contains rule" true (contains ~sub:"---" s);
  Alcotest.(check bool) "contains cells" true (contains ~sub:"333" s)

let test_table_validation () =
  Alcotest.check_raises "ragged rows" (Invalid_argument "Table.make: row width differs from header")
    (fun () -> ignore (Analysis.Table.make ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_formatters () =
  Alcotest.(check string) "f2" "3.14" (Analysis.Table.f2 3.14159);
  Alcotest.(check string) "xf" "2.40X" (Analysis.Table.xf 2.4);
  Alcotest.(check string) "i" "42" (Analysis.Table.i 42)

(* Property: median is invariant under permutation and lies within
   min..max. *)
let prop_median_bounds =
  QCheck.Test.make ~name:"median within bounds" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-1000.) 1000.))
    (fun l ->
      let m = Analysis.Summary.median l in
      m >= Analysis.Summary.minimum l && m <= Analysis.Summary.maximum l)

let suite =
  [
    Alcotest.test_case "summary statistics" `Quick test_summary_stats;
    Alcotest.test_case "summary validation" `Quick test_summary_validation;
    Alcotest.test_case "regression on exact line" `Quick test_regression_exact_line;
    Alcotest.test_case "regression on noisy data" `Quick test_regression_noisy;
    Alcotest.test_case "regression validation" `Quick test_regression_validation;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "table validation" `Quick test_table_validation;
    Alcotest.test_case "cell formatters" `Quick test_formatters;
    QCheck_alcotest.to_alcotest prop_median_bounds;
  ]
