let check_int = Alcotest.(check int)

let test_pool_runs_all_workers () =
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      let seen = Array.make 4 false in
      Parallel.Domain_pool.run pool (fun w -> seen.(w) <- true);
      Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "worker %d ran" i) true s) seen)

let test_pool_size_one () =
  Parallel.Domain_pool.with_pool 1 (fun pool ->
      let hit = ref 0 in
      Parallel.Domain_pool.run pool (fun w ->
          check_int "only worker 0" 0 w;
          incr hit);
      check_int "ran once" 1 !hit)

let test_pool_rejects_zero () =
  Alcotest.check_raises "zero size" (Invalid_argument "Domain_pool.create: size must be positive")
    (fun () -> ignore (Parallel.Domain_pool.create 0))

let test_pool_propagates_exception () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      match Parallel.Domain_pool.run pool (fun w -> if w = 1 then failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_reusable_after_exception () =
  Parallel.Domain_pool.with_pool 2 (fun pool ->
      (try Parallel.Domain_pool.run pool (fun _ -> failwith "first") with Failure _ -> ());
      let counter = Atomic.make 0 in
      Parallel.Domain_pool.run pool (fun _ -> Atomic.incr counter);
      check_int "both workers ran after failure" 2 (Atomic.get counter))

let test_parallel_for_covers_range () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let n = 1000 in
      let hits = Array.make n (Atomic.make 0) in
      for i = 0 to n - 1 do
        hits.(i) <- Atomic.make 0
      done;
      Parallel.Domain_pool.parallel_for pool 0 n (fun i -> Atomic.incr hits.(i));
      Array.iteri (fun i a -> check_int (Printf.sprintf "index %d hit once" i) 1 (Atomic.get a)) hits)

let test_parallel_for_empty () =
  Parallel.Domain_pool.with_pool 2 (fun pool ->
      let hit = Atomic.make 0 in
      Parallel.Domain_pool.parallel_for pool 5 5 (fun _ -> Atomic.incr hit);
      check_int "no iterations" 0 (Atomic.get hit))

let test_parallel_for_workers_partition () =
  Parallel.Domain_pool.with_pool 3 (fun pool ->
      let n = 100 in
      let owner = Array.make n (-1) in
      Parallel.Domain_pool.parallel_for_workers pool 0 n (fun w lo hi ->
          for i = lo to hi - 1 do
            owner.(i) <- w
          done);
      Array.iteri (fun i w -> Alcotest.(check bool) (Printf.sprintf "index %d owned" i) true (w >= 0)) owner;
      (* Slices must be contiguous: owner array is non-decreasing. *)
      for i = 1 to n - 1 do
        if owner.(i) < owner.(i - 1) then Alcotest.failf "owners not contiguous at %d" i
      done)

let test_many_jobs () =
  Parallel.Domain_pool.with_pool 4 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 200 do
        Parallel.Domain_pool.run pool (fun _ -> Atomic.incr total)
      done;
      check_int "all jobs ran on all workers" 800 (Atomic.get total))

let test_barrier_rounds () =
  let parties = 4 in
  let b = Parallel.Barrier.create parties in
  let rounds = 50 in
  let log = Array.make parties 0 in
  Parallel.Domain_pool.with_pool parties (fun pool ->
      Parallel.Domain_pool.run pool (fun w ->
          for r = 1 to rounds do
            log.(w) <- r;
            Parallel.Barrier.wait b;
            (* After the barrier every worker must have logged round r. *)
            Array.iter (fun v -> if v < r then failwith "barrier violated") log;
            Parallel.Barrier.wait b
          done));
  check_int "parties" parties (Parallel.Barrier.parties b)

let test_barrier_rejects_zero () =
  Alcotest.check_raises "zero parties" (Invalid_argument "Barrier.create: parties must be positive")
    (fun () -> ignore (Parallel.Barrier.create 0))

let suite =
  [
    Alcotest.test_case "pool runs every worker" `Quick test_pool_runs_all_workers;
    Alcotest.test_case "pool of size one" `Quick test_pool_size_one;
    Alcotest.test_case "pool rejects size zero" `Quick test_pool_rejects_zero;
    Alcotest.test_case "pool propagates worker exception" `Quick test_pool_propagates_exception;
    Alcotest.test_case "pool usable after exception" `Quick test_pool_reusable_after_exception;
    Alcotest.test_case "parallel_for covers range exactly once" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "parallel_for on empty range" `Quick test_parallel_for_empty;
    Alcotest.test_case "parallel_for_workers partitions contiguously" `Quick
      test_parallel_for_workers_partition;
    Alcotest.test_case "pool handles many sequential jobs" `Quick test_many_jobs;
    Alcotest.test_case "barrier synchronizes rounds" `Quick test_barrier_rounds;
    Alcotest.test_case "barrier rejects zero parties" `Quick test_barrier_rejects_zero;
  ]
