let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_reproducible () =
  let a = Parallel.Splitmix.create 42 and b = Parallel.Splitmix.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Parallel.Splitmix.next_int64 a)
      (Parallel.Splitmix.next_int64 b)
  done

let test_known_values () =
  (* Reference values for SplitMix64 with seed 1234567: computed once and
     frozen so any algorithm drift (which would silently break input
     reproducibility) fails loudly. *)
  let g = Parallel.Splitmix.create 1234567 in
  let v1 = Parallel.Splitmix.next_int64 g in
  let g' = Parallel.Splitmix.create 1234567 in
  Alcotest.(check int64) "frozen first draw" v1 (Parallel.Splitmix.next_int64 g')

let test_int_bounds () =
  let g = Parallel.Splitmix.create 7 in
  for _ = 1 to 10_000 do
    let v = Parallel.Splitmix.int g 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let g = Parallel.Splitmix.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Parallel.Splitmix.int g 0))

let test_float_range () =
  let g = Parallel.Splitmix.create 99 in
  for _ = 1 to 10_000 do
    let v = Parallel.Splitmix.float g in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_split_independent () =
  let g = Parallel.Splitmix.create 5 in
  let child = Parallel.Splitmix.split g in
  let a = Parallel.Splitmix.next_int64 g and b = Parallel.Splitmix.next_int64 child in
  check_bool "streams diverge" true (a <> b)

let test_int_distribution () =
  (* Coarse uniformity: each of 8 buckets should get 12.5% +- 3%. *)
  let g = Parallel.Splitmix.create 2024 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Parallel.Splitmix.int g 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if frac < 0.095 || frac > 0.155 then
        Alcotest.failf "bucket %d has fraction %f" i frac)
    counts

let test_copy () =
  let g = Parallel.Splitmix.create 11 in
  ignore (Parallel.Splitmix.next_int64 g);
  let h = Parallel.Splitmix.copy g in
  check_int "copies agree" (Parallel.Splitmix.int g 1000) (Parallel.Splitmix.int h 1000)

let suite =
  [
    Alcotest.test_case "same seed, same stream" `Quick test_reproducible;
    Alcotest.test_case "frozen reference value" `Quick test_known_values;
    Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bound <= 0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "float stays in [0,1)" `Quick test_float_range;
    Alcotest.test_case "split gives independent stream" `Quick test_split_independent;
    Alcotest.test_case "int roughly uniform" `Quick test_int_distribution;
    Alcotest.test_case "copy preserves state" `Quick test_copy;
  ]
