module Csr = Graphlib.Csr
module Gen = Graphlib.Generators

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_of_adjacency () =
  let g = Csr.of_adjacency [| [ 1; 2 ]; [ 2 ]; [] |] in
  check_int "nodes" 3 (Csr.nodes g);
  check_int "edges" 3 (Csr.edges g);
  check_int "deg 0" 2 (Csr.out_degree g 0);
  check_int "deg 2" 0 (Csr.out_degree g 2);
  let succ = Csr.fold_succ g 0 (fun acc v -> v :: acc) [] in
  Alcotest.(check (list int)) "succ of 0" [ 2; 1 ] succ

let test_of_edges () =
  let g = Csr.of_edges ~n:4 [| (0, 1); (2, 3); (0, 3); (1, 0) |] in
  check_int "edges" 4 (Csr.edges g);
  check_int "deg 0" 2 (Csr.out_degree g 0);
  check_bool "0 -> 3" true (Csr.exists_succ g 0 (fun v -> v = 3));
  check_bool "3 has no succ" false (Csr.exists_succ g 3 (fun _ -> true))

let test_of_edges_rejects_bad () =
  Alcotest.check_raises "out of range" (Invalid_argument "Csr.of_edges: node out of range")
    (fun () -> ignore (Csr.of_edges ~n:2 [| (0, 5) |]))

let test_transpose () =
  let g = Csr.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let t = Csr.transpose g in
  check_bool "1 -> 0 in transpose" true (Csr.exists_succ t 1 (fun v -> v = 0));
  check_bool "2 -> 1 in transpose" true (Csr.exists_succ t 2 (fun v -> v = 1));
  check_int "edge count preserved" (Csr.edges g) (Csr.edges t)

let test_symmetrize () =
  let g = Csr.of_edges ~n:4 [| (0, 1); (1, 0); (2, 2); (1, 3) |] in
  let s = Csr.symmetrize g in
  check_bool "symmetric" true (Csr.is_symmetric s);
  check_bool "self loop dropped" false (Csr.exists_succ s 2 (fun v -> v = 2));
  check_bool "0-1 single edge each way" true (Csr.out_degree s 0 = 1);
  check_bool "3 -> 1 added" true (Csr.exists_succ s 3 (fun v -> v = 1))

let test_edge_range_targets () =
  let g = Csr.of_adjacency [| [ 2; 1 ]; []; [ 0 ] |] in
  let lo, hi = Csr.edge_range g 0 in
  check_int "range width" 2 (hi - lo);
  check_int "first target" 2 (Csr.edge_target g lo)

let test_kout_degrees () =
  let g = Gen.kout ~seed:3 ~n:100 ~k:5 () in
  check_int "nodes" 100 (Csr.nodes g);
  check_int "edges" 500 (Csr.edges g);
  for u = 0 to 99 do
    check_int "degree" 5 (Csr.out_degree g u);
    check_bool "no self loop" false (Csr.exists_succ g u (fun v -> v = u));
    (* distinct targets *)
    let succ = List.sort compare (Csr.fold_succ g u (fun acc v -> v :: acc) []) in
    check_int "distinct" 5 (List.length (List.sort_uniq compare succ))
  done

let test_kout_deterministic () =
  let a = Gen.kout ~seed:42 ~n:50 ~k:3 () and b = Gen.kout ~seed:42 ~n:50 ~k:3 () in
  for u = 0 to 49 do
    let sa = Csr.fold_succ a u (fun acc v -> v :: acc) [] in
    let sb = Csr.fold_succ b u (fun acc v -> v :: acc) [] in
    if sa <> sb then Alcotest.failf "kout differs at node %d" u
  done

let test_kout_rejects_bad () =
  Alcotest.check_raises "k >= n" (Invalid_argument "Generators.kout: need 0 <= k < n") (fun () ->
      ignore (Gen.kout ~n:3 ~k:3 ()))

let test_grid () =
  let g = Gen.grid2d ~rows:3 ~cols:4 in
  check_int "nodes" 12 (Csr.nodes g);
  check_bool "symmetric" true (Csr.is_symmetric g);
  (* Corner has degree 2, interior 4. *)
  check_int "corner degree" 2 (Csr.out_degree g 0);
  check_int "interior degree" 4 (Csr.out_degree g 5)

let test_rmat () =
  let g = Gen.rmat ~seed:5 ~scale:8 ~edge_factor:4 () in
  check_int "nodes" 256 (Csr.nodes g);
  check_int "edges" 1024 (Csr.edges g)

let test_flow_network_gen () =
  let g, caps, s, t = Gen.flow_network ~seed:1 ~n:20 ~k:3 () in
  check_int "caps size" (Csr.edges g) (Array.length caps);
  check_bool "caps positive" true (Array.for_all (fun c -> c > 0) caps);
  check_int "source" 0 s;
  check_int "sink" 19 t

(* Property: symmetrize is idempotent. *)
let prop_symmetrize_idempotent =
  QCheck.Test.make ~name:"symmetrize idempotent" ~count:50
    QCheck.(pair (int_range 2 30) (int_range 0 60))
    (fun (n, m) ->
      let g = Parallel.Splitmix.create (n + (m * 1000)) in
      let edges =
        Array.init m (fun _ -> (Parallel.Splitmix.int g n, Parallel.Splitmix.int g n))
      in
      let s = Csr.symmetrize (Csr.of_edges ~n edges) in
      let s2 = Csr.symmetrize s in
      Csr.edges s = Csr.edges s2 && Csr.is_symmetric s)

let suite =
  [
    Alcotest.test_case "of_adjacency" `Quick test_of_adjacency;
    Alcotest.test_case "of_edges" `Quick test_of_edges;
    Alcotest.test_case "of_edges range check" `Quick test_of_edges_rejects_bad;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "symmetrize" `Quick test_symmetrize;
    Alcotest.test_case "edge ranges" `Quick test_edge_range_targets;
    Alcotest.test_case "kout degrees/self-loops/distinctness" `Quick test_kout_degrees;
    Alcotest.test_case "kout deterministic" `Quick test_kout_deterministic;
    Alcotest.test_case "kout argument check" `Quick test_kout_rejects_bad;
    Alcotest.test_case "grid2d" `Quick test_grid;
    Alcotest.test_case "rmat sizes" `Quick test_rmat;
    Alcotest.test_case "flow network generator" `Quick test_flow_network_gen;
    QCheck_alcotest.to_alcotest prop_symmetrize_idempotent;
  ]
